//! Integration: the offline/online deployment split — build on one
//! "cluster", persist, serve queries from a fresh process image.

use pasco::graph::{generators, io};
use pasco::simrank::{persist, CloudWalker, ExecMode, SimRankConfig, SimRankError};
use std::sync::Arc;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pasco_integration");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn full_offline_online_roundtrip() {
    // Offline: generate graph, index, persist both artifacts.
    let g = Arc::new(generators::barabasi_albert(250, 4, 77));
    let cfg = SimRankConfig::fast().with_seed(8);
    let cw = CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Local).unwrap();
    let graph_path = tmp("roundtrip.graph");
    let index_path = tmp("roundtrip.idx");
    io::write_binary(&g, &graph_path).unwrap();
    persist::save_index(cw.diagonal(), &index_path).unwrap();

    // Online: load everything back and verify identical answers.
    let g2 = Arc::new(io::read_binary(&graph_path).unwrap());
    assert_eq!(*g, *g2);
    let idx = persist::load_index(&index_path).unwrap();
    let server = CloudWalker::from_index(g2, cfg, idx).unwrap();
    for &(i, j) in &[(1u32, 2u32), (100, 200), (3, 249)] {
        assert_eq!(cw.single_pair(i, j), server.single_pair(i, j));
    }
    assert_eq!(cw.single_source(42), server.single_source(42));
}

#[test]
fn roundtripped_index_serves_identically_for_every_build_mode() {
    // The deployment contract behind persist: whichever substrate built the
    // index, a query server that loads it from disk must answer
    // single-pair and single-source queries bitwise-identically to the
    // freshly built engine.
    use pasco::cluster::ClusterConfig;
    let g = Arc::new(generators::barabasi_albert(180, 3, 55));
    let cfg = SimRankConfig::fast().with_seed(19);
    let modes = [
        ("local", ExecMode::Local),
        ("broadcast", ExecMode::Broadcast(ClusterConfig::local(3))),
        ("rdd", ExecMode::Rdd(ClusterConfig::local(4))),
    ];
    for (name, mode) in modes {
        let built = CloudWalker::build(Arc::clone(&g), cfg, mode).unwrap();
        let path = tmp(&format!("parity-{name}.idx"));
        persist::save_index(built.diagonal(), &path).unwrap();
        let loaded = persist::load_index(&path).unwrap();
        assert_eq!(&loaded, built.diagonal(), "{name}: index must roundtrip bitwise");
        let server = CloudWalker::from_index(Arc::clone(&g), cfg, loaded).unwrap();
        for &(i, j) in &[(0u32, 1u32), (17, 130), (90, 91), (179, 3)] {
            assert_eq!(
                built.single_pair(i, j),
                server.single_pair(i, j),
                "{name}: single_pair({i},{j})"
            );
        }
        for &s in &[5u32, 120] {
            let a = built.single_source(s);
            let b = server.single_source(s);
            for (v, (x, y)) in a.iter().zip(&b).enumerate() {
                assert!((x - y).abs() < 1e-12, "{name}: single_source({s}) node {v}: {x} vs {y}");
            }
        }
    }
}

#[test]
fn index_graph_mismatch_is_rejected() {
    let g = Arc::new(generators::cycle(10));
    let other = Arc::new(generators::cycle(12));
    let cfg = SimRankConfig::fast();
    let cw = CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Local).unwrap();
    let path = tmp("mismatch.idx");
    persist::save_index(cw.diagonal(), &path).unwrap();
    let idx = persist::load_index(&path).unwrap();
    match CloudWalker::from_index(other, cfg, idx) {
        Err(SimRankError::BadIndex(msg)) => assert!(msg.contains("10")),
        other => panic!("expected BadIndex, got ok={}", other.is_ok()),
    }
}

#[test]
fn edge_list_graphs_work_end_to_end() {
    // Users will bring SNAP-style edge lists; exercise that path fully.
    let g = generators::two_communities(80, 400, 8, 2);
    let path = tmp("snap.txt");
    io::write_edge_list(&g, &path).unwrap();
    let loaded = Arc::new(io::read_edge_list(&path).unwrap());
    assert_eq!(g, *loaded);
    let cw = CloudWalker::build(loaded, SimRankConfig::fast(), ExecMode::Local).unwrap();
    assert!(cw.single_pair(0, 1) >= 0.0);
}
