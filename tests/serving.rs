//! Integration: the concurrent serving layer. One shared `QuerySession`
//! must (a) hand N threads exactly the answers a sequential replay gets,
//! (b) keep its hit/miss accounting consistent under races, and (c) run
//! its LRU hot path without scans or evictions-on-hit at serving-sized
//! capacities.

use pasco::graph::generators;
use pasco::simrank::{CloudWalker, ExecMode, QuerySession, SimRankConfig};
use std::sync::Arc;

fn build(nodes: u32, seed: u64) -> Arc<CloudWalker> {
    let g = Arc::new(generators::barabasi_albert(nodes, 3, seed));
    Arc::new(CloudWalker::build(g, SimRankConfig::fast().with_seed(7), ExecMode::Local).unwrap())
}

/// Client `t`'s deterministic query stream: 120 pairs over a 24-node hot
/// set shifted by 8 per client, so neighbouring clients overlap on 16 hot
/// nodes and hammer the same cache entries.
fn client_stream(t: u32, n: u32) -> Vec<(u32, u32)> {
    (0..120u32)
        .map(|q| {
            let i = (t * 8 + q % 24) % n;
            let j = (t * 8 + (q * 7 + 5) % 24) % n;
            (i, j)
        })
        .collect()
}

#[test]
fn shared_session_matches_sequential_replay() {
    const CLIENTS: u32 = 8;
    let cw = build(300, 41);
    let n = cw.node_count();

    // Concurrent: all clients hammer one shared session.
    let shared = QuerySession::new(Arc::clone(&cw), 64);
    let concurrent: Vec<Vec<f64>> = std::thread::scope(|scope| {
        (0..CLIENTS)
            .map(|t| {
                let session = &shared;
                scope.spawn(move || {
                    client_stream(t, n).iter().map(|&(i, j)| session.single_pair(i, j)).collect()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });

    // Sequential replay on a fresh session: answers must be bitwise equal.
    let replay = QuerySession::new(Arc::clone(&cw), 64);
    let mut lookups = 0u64;
    for (t, answers) in concurrent.iter().enumerate() {
        for (q, (&(i, j), &got)) in client_stream(t as u32, n).iter().zip(answers).enumerate() {
            let expect = replay.single_pair(i, j);
            assert_eq!(got, expect, "client {t} query {q} ({i},{j})");
            if i != j {
                lookups += 2;
            }
        }
    }

    // Counter consistency: every cohort lookup is either a hit or a miss,
    // and misses can never exceed the number of lookups that happened.
    let stats = shared.cache_stats();
    assert_eq!(stats.lookups(), lookups, "concurrent session counters");
    let replay_stats = replay.cache_stats();
    assert_eq!(replay_stats.lookups(), lookups, "replay session counters");
    // The replay is single-threaded, so its miss count is the working-set
    // optimum; racing clients may at worst duplicate a miss in flight.
    assert!(
        stats.misses >= replay_stats.misses,
        "concurrent misses {} < sequential {}",
        stats.misses,
        replay_stats.misses
    );
    assert!(stats.hit_rate() <= replay_stats.hit_rate() + 1e-12);
    // Answers equal the uncached engine too.
    let (i, j) = client_stream(0, n)[17];
    assert_eq!(shared.single_pair(i, j), cw.single_pair(i, j));
}

#[test]
fn concurrent_batches_match_engine() {
    let cw = build(200, 23);
    let session = Arc::new(QuerySession::new(Arc::clone(&cw), 32));
    let sources: Vec<u32> = (0..16u32).map(|i| i * 11 % 200).collect();
    let expect: Vec<Vec<f64>> = sources.iter().map(|&s| cw.single_source(s)).collect();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let session = Arc::clone(&session);
            let sources = sources.clone();
            let expect = &expect;
            scope.spawn(move || {
                let got = session.single_source_batch(&sources);
                assert_eq!(&got, expect, "batch answers must be identical");
            });
        }
    });
}

/// Regression for the old LRU hot path, which scanned a `VecDeque` on
/// every hit (O(capacity)) and allocated an O(graph-size) slot vector per
/// session. At serving-sized capacity the cache must serve hits without
/// evicting, evict exactly least-recently-used on overflow, and never
/// touch evicted entries' neighbours.
#[test]
fn lru_hit_path_regression_at_capacity_1024() {
    const CAP: usize = 1024;
    let cw = build(2100, 3);
    // One shard: exact global LRU, so eviction order is fully predictable.
    let session = QuerySession::with_shards(Arc::clone(&cw), CAP, 1);

    // Fill to exactly capacity: 512 disjoint pairs = 1024 distinct cohorts.
    for p in 0..(CAP as u32 / 2) {
        session.single_pair(2 * p, 2 * p + 1);
    }
    let stats = session.cache_stats();
    assert_eq!((stats.hits, stats.misses), (0, CAP as u64));
    assert_eq!(session.cached_cohorts(), CAP);

    // Re-run the same stream: pure hits, nothing evicted, nothing re-simulated.
    for p in 0..(CAP as u32 / 2) {
        session.single_pair(2 * p, 2 * p + 1);
    }
    let stats = session.cache_stats();
    assert_eq!((stats.hits, stats.misses), (CAP as u64, CAP as u64));
    assert_eq!(session.cached_cohorts(), CAP);

    // Two fresh nodes evict exactly the two least recently used (0 and 1).
    session.single_pair(2000, 2001);
    assert_eq!(session.cache_stats().misses, CAP as u64 + 2);
    assert_eq!(session.cached_cohorts(), CAP);
    // 2 and 3 are still resident...
    let hits_before = session.cache_stats().hits;
    session.single_pair(2, 3);
    let stats = session.cache_stats();
    assert_eq!(stats.hits, hits_before + 2);
    assert_eq!(stats.misses, CAP as u64 + 2);
    // ...while 0 and 1 were evicted and must re-simulate.
    session.single_pair(0, 1);
    assert_eq!(session.cache_stats().misses, CAP as u64 + 4);
}

/// The typed front door under concurrency: N clients hammer one shared
/// `&dyn QueryService`, answers must equal the direct session calls, and
/// malformed requests come back as typed errors from every thread.
#[test]
fn shared_query_service_is_safe_and_consistent() {
    use pasco::simrank::api::{QueryError, QueryRequest, QueryResponse, QueryService};
    let cw = build(150, 9);
    let session = QuerySession::new(Arc::clone(&cw), 32);
    let svc: &dyn QueryService = &session;
    std::thread::scope(|scope| {
        for t in 0..4u32 {
            let cw = &cw;
            scope.spawn(move || {
                for q in 0..40u32 {
                    let i = (t * 17 + q) % 150;
                    let mut j = (q * 7 + 3) % 150;
                    if i == j {
                        // Distinct nodes keep the lookup count exact below.
                        j = (j + 1) % 150;
                    }
                    match svc.execute(QueryRequest::SinglePair { i, j }).unwrap() {
                        QueryResponse::Score(s) => assert_eq!(s, cw.single_pair(i, j)),
                        other => panic!("wrong variant {other:?}"),
                    }
                    let bad = svc.execute(QueryRequest::Cohort { v: 150 + q }).unwrap_err();
                    assert_eq!(bad, QueryError::NodeOutOfRange { node: 150 + q, node_count: 150 });
                }
            });
        }
    });
    assert_eq!(session.cache_stats().lookups(), 4 * 40 * 2);
}
