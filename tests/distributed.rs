//! Integration: the distributed substrate over **real loopback TCP**.
//!
//! The acceptance bar for the 5th engine: with `pasco_worker` processes
//! spawned in-process on ephemeral loopback ports (same pattern as
//! `tests/server.rs`), `ExecMode::Distributed` must produce results
//! bit-identical to `ExecMode::Local` for every query kind — index,
//! MCSP, dense MCSS, top-`k`, raw cohorts — at worker counts 1, 2 and
//! 4, with the cluster accounting reporting real wire bytes. Worker
//! death is a typed error (`QueryError::WorkerUnavailable` /
//! `SimRankError::Query`), never a hang or a panic, and surviving
//! workers keep answering.

use pasco::graph::generators;
use pasco::simrank::api::envelope::{Envelope, FrameKind, ServerInfo, DEFAULT_MAX_FRAME};
use pasco::simrank::api::transport::{read_envelope, write_envelope};
use pasco::simrank::api::wire::WireCodec;
use pasco::simrank::api::worker::{LoadAck, LoadPartition};
use pasco::simrank::{
    CloudWalker, ExecMode, QueryError, QuerySession, SimRankConfig, SimRankError,
};
use pasco::worker::{PascoWorker, WorkerConfig, WorkerHandle};
use proptest::prelude::*;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A set of in-process loopback workers.
struct Fleet {
    addrs: Vec<String>,
    handles: Vec<WorkerHandle>,
    joins: Vec<JoinHandle<()>>,
}

fn spawn_fleet(count: usize) -> Fleet {
    let mut fleet = Fleet { addrs: Vec::new(), handles: Vec::new(), joins: Vec::new() };
    for _ in 0..count {
        let worker = PascoWorker::bind("127.0.0.1:0", WorkerConfig::default()).unwrap();
        fleet.addrs.push(worker.local_addr().to_string());
        fleet.handles.push(worker.handle());
        fleet.joins.push(std::thread::spawn(move || worker.run().unwrap()));
    }
    fleet
}

impl Fleet {
    fn mode(&self) -> ExecMode {
        ExecMode::Distributed { workers: self.addrs.clone() }
    }

    fn stop(self) {
        for handle in &self.handles {
            handle.shutdown();
        }
        for join in self.joins {
            let _ = join.join();
        }
    }
}

#[test]
fn distributed_is_bit_identical_to_local_at_worker_counts_1_2_4() {
    for (gname, g) in [
        ("ba", Arc::new(generators::barabasi_albert(150, 3, 7))),
        ("rmat", Arc::new(generators::rmat(8, 1_600, generators::RmatParams::default(), 5))),
    ] {
        let cfg = SimRankConfig::fast().with_seed(17);
        let local = CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Local).unwrap();
        for workers in [1usize, 2, 4] {
            let fleet = spawn_fleet(workers);
            let dist = CloudWalker::build(Arc::clone(&g), cfg, fleet.mode()).unwrap();
            assert_eq!(dist.mode_name(), "distributed");
            assert_eq!(local.diagonal(), dist.diagonal(), "{gname}: index, {workers} workers");
            for &(i, j) in &[(0u32, 1u32), (5, 70), (33, 32)] {
                assert_eq!(
                    local.single_pair(i, j),
                    dist.single_pair(i, j),
                    "{gname}: MCSP ({i},{j}), {workers} workers"
                );
            }
            for &s in &[0u32, 64, 149] {
                assert_eq!(
                    local.single_source(s),
                    dist.single_source(s),
                    "{gname}: dense MCSS source {s}, {workers} workers"
                );
                assert_eq!(
                    local.single_source_topk(s, 10),
                    dist.single_source_topk(s, 10),
                    "{gname}: top-k source {s}, {workers} workers"
                );
                assert_eq!(
                    local.query_cohort(s),
                    dist.query_cohort(s),
                    "{gname}: cohort {s}, {workers} workers"
                );
            }

            // Real-wire accounting: partitions and queries moved actual
            // encoded bytes.
            let report = dist.cluster_report().expect("distributed substrate is accounted");
            assert!(report.shuffle_bytes > 0, "wire bytes recorded");
            assert!(report.shuffle_records > 0);
            assert!(report.stages > 0, "build stage recorded");

            // Worker stats: one per worker, owned nodes partition the
            // graph, each served exactly one build.
            let stats: Vec<_> = dist
                .worker_stats()
                .expect("distributed substrate reports workers")
                .into_iter()
                .collect::<Result<_, _>>()
                .expect("all workers alive");
            assert_eq!(stats.len(), workers.min(g.node_count() as usize));
            assert_eq!(
                stats.iter().map(|s| u64::from(s.owned_nodes)).sum::<u64>(),
                u64::from(g.node_count()),
                "{gname}: owned nodes cover the graph"
            );
            assert!(stats.iter().all(|s| s.builds == 1));
            assert!(stats.iter().all(|s| s.owned_bytes <= s.resident_bytes));
            assert!(local.worker_stats().is_none());

            // The ownership breakdown matches the per-worker stats.
            let footprints = dist.shard_footprints().expect("ownership breakdown");
            assert_eq!(footprints.len(), stats.len());
            fleet.stop();
        }
    }
}

#[test]
fn persisted_index_serves_distributed_bit_identically() {
    // The CLI query path: skip the build, serve a precomputed diagonal
    // from workers (`from_index_with_mode`).
    let g = Arc::new(generators::barabasi_albert(120, 3, 11));
    let cfg = SimRankConfig::fast().with_seed(3);
    let local = CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Local).unwrap();
    let fleet = spawn_fleet(2);
    let dist = CloudWalker::from_index_with_mode(
        Arc::clone(&g),
        cfg,
        local.diagonal().clone(),
        fleet.mode(),
    )
    .unwrap();
    assert_eq!(local.single_source_topk(4, 8), dist.single_source_topk(4, 8));
    assert_eq!(local.single_pair(4, 90), dist.single_pair(4, 90));
    // Several queries against one diagonal: after the first ships it,
    // the rest ride the fingerprint — and answers stay identical.
    for s in [1u32, 61, 119] {
        assert_eq!(local.single_source_topk(s, 5), dist.single_source_topk(s, 5), "source {s}");
    }
    fleet.stop();
}

#[test]
fn store_backed_workers_serve_bit_identically_without_shipping_partitions() {
    // The out-of-core provisioning path: workers `mmap` their own shard
    // of a saved store (`FrameKind::LoadStore` ships a directory path),
    // so provisioning moves O(path) wire bytes instead of O(E), the
    // diagonal never crosses the wire, and every query kind still
    // answers bit-identically to the local engine.
    let g = Arc::new(generators::barabasi_albert(150, 3, 7));
    let cfg = SimRankConfig::fast().with_seed(17);
    let local = CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Local).unwrap();
    for parts in [1u32, 2, 4] {
        let dir = std::env::temp_dir().join(format!("pasco_dist_store_{parts}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        local.save_store(&dir, parts).unwrap();

        let fleet = spawn_fleet(parts as usize);
        let dist = CloudWalker::open_store_distributed(&dir, cfg, &fleet.addrs).unwrap();
        assert_eq!(dist.mode_name(), "distributed");

        // Provisioning accounting, sampled before any query runs: the
        // load stage shipped one directory path + ack per worker — a few
        // hundred bytes, not the O(E) a partition transfer moves. (No
        // build ran, so there are no stage rows on this path.)
        let provisioning = dist.cluster_report().expect("store provisioning is accounted");
        assert!(provisioning.shuffle_bytes > 0, "load frames move real wire bytes");
        assert!(
            provisioning.shuffle_bytes < 1024 * u64::from(parts),
            "provisioning moved {} bytes for {parts} shards — that is not O(path)",
            provisioning.shuffle_bytes
        );
        assert_eq!(local.diagonal(), dist.diagonal(), "index, {parts} shards");
        for &(i, j) in &[(0u32, 1u32), (5, 70), (33, 32)] {
            assert_eq!(local.single_pair(i, j), dist.single_pair(i, j), "MCSP, {parts} shards");
        }
        for &s in &[0u32, 64, 149] {
            assert_eq!(local.single_source(s), dist.single_source(s), "MCSS, {parts} shards");
            assert_eq!(
                local.single_source_topk(s, 10),
                dist.single_source_topk(s, 10),
                "top-k, {parts} shards"
            );
            assert_eq!(local.query_cohort(s), dist.query_cohort(s), "cohort, {parts} shards");
        }

        // Workers report their mapped shard as resident state.
        let stats: Vec<_> = dist
            .worker_stats()
            .expect("distributed substrate reports workers")
            .into_iter()
            .collect::<Result<_, _>>()
            .expect("all workers alive");
        assert_eq!(stats.len(), parts as usize);
        assert_eq!(
            stats.iter().map(|s| u64::from(s.owned_nodes)).sum::<u64>(),
            u64::from(g.node_count()),
            "owned nodes cover the graph"
        );
        fleet.stop();
    }

    // Fewer workers than shards is a typed config error, before any
    // connection is attempted.
    let dir = std::env::temp_dir().join("pasco_dist_store_short");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    local.save_store(&dir, 3).unwrap();
    let fleet = spawn_fleet(2);
    match CloudWalker::open_store_distributed(&dir, cfg, &fleet.addrs) {
        Err(SimRankError::InvalidConfig(msg)) => {
            assert!(msg.contains("3 shards"), "{msg}");
        }
        other => panic!("expected InvalidConfig, got ok={}", other.is_ok()),
    }
    fleet.stop();
}

#[test]
fn distributed_mode_rejects_empty_worker_list_and_dead_addresses() {
    let g = Arc::new(generators::cycle(8));
    let err = CloudWalker::build(
        Arc::clone(&g),
        SimRankConfig::fast(),
        ExecMode::Distributed { workers: vec![] },
    )
    .unwrap_err();
    assert!(matches!(err, SimRankError::InvalidConfig(_)), "{err}");

    // A worker that is not there: typed connect failure, no hang.
    let unused = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = unused.local_addr().unwrap().to_string();
    drop(unused);
    let err =
        CloudWalker::build(g, SimRankConfig::fast(), ExecMode::Distributed { workers: vec![addr] })
            .unwrap_err();
    match err {
        SimRankError::Query(QueryError::WorkerUnavailable { detail }) => {
            assert!(detail.contains("connect"), "{detail}");
        }
        other => panic!("expected WorkerUnavailable, got {other}"),
    }
}

/// A scripted rogue worker: speaks the protocol through the load phase,
/// then drops the connection the moment the build starts — the
/// deterministic stand-in for "worker process died mid-build".
fn spawn_rogue_drops_on_build() -> (String, JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let join = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let hello = read_envelope(&mut reader, DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(hello.kind, FrameKind::Hello);
        let info = ServerInfo { node_count: 0, max_frame_bytes: DEFAULT_MAX_FRAME };
        write_envelope(&mut writer, &Envelope::hello_ack(&info)).unwrap();
        loop {
            let env = read_envelope(&mut reader, DEFAULT_MAX_FRAME).unwrap();
            match env.kind {
                FrameKind::LoadPartition => {
                    let msg = LoadPartition::from_bytes(&env.payload).unwrap();
                    let ack = LoadAck { resident_bytes: 0, loaded: msg.part_index + 1 };
                    write_envelope(
                        &mut writer,
                        &Envelope::worker(FrameKind::LoadPartition, env.request_id, &ack),
                    )
                    .unwrap();
                }
                // Mid-build death: hang up without answering.
                FrameKind::BuildShard => return,
                other => panic!("rogue worker got {other:?}"),
            }
        }
    });
    (addr, join)
}

#[test]
fn worker_dropping_mid_build_is_a_typed_error_not_a_hang() {
    let g = Arc::new(generators::barabasi_albert(60, 3, 9));
    let (addr, join) = spawn_rogue_drops_on_build();
    let err =
        CloudWalker::build(g, SimRankConfig::fast(), ExecMode::Distributed { workers: vec![addr] })
            .unwrap_err();
    match err {
        SimRankError::Query(QueryError::WorkerUnavailable { detail }) => {
            assert!(detail.contains("worker 0"), "{detail}");
        }
        other => panic!("expected WorkerUnavailable, got {other}"),
    }
    join.join().unwrap();
}

#[test]
fn worker_dying_mid_serve_is_typed_and_survivors_keep_answering() {
    let g = Arc::new(generators::barabasi_albert(100, 3, 13));
    let cfg = SimRankConfig::fast().with_seed(9);
    let local = CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Local).unwrap();
    let fleet = spawn_fleet(2);
    let dist = CloudWalker::build(Arc::clone(&g), cfg, fleet.mode()).unwrap();
    // Range partitioning over 100 nodes / 2 workers: worker 0 owns
    // [0, 50), worker 1 owns [50, 100).
    assert_eq!(local.single_source_topk(99, 5), dist.single_source_topk(99, 5));

    // Kill worker 1 hard (sockets torn down, as a dead process would).
    fleet.handles[1].kill();
    let err = dist.try_single_source(99).unwrap_err();
    assert!(matches!(err, QueryError::WorkerUnavailable { .. }), "{err}");
    let err = dist.try_single_source_topk(60, 5).unwrap_err();
    assert!(matches!(err, QueryError::WorkerUnavailable { .. }), "{err}");
    // The same failure again: the dead link reports immediately, it
    // does not retry into a hang.
    let err = dist.try_query_cohort(99).unwrap_err();
    assert!(matches!(err, QueryError::WorkerUnavailable { .. }), "{err}");

    // Worker 0 is untouched: its sources still answer, bit-identically.
    assert_eq!(local.single_source(7), dist.single_source(7));
    assert_eq!(local.single_source_topk(7, 5), dist.single_source_topk(7, 5));
    fleet.stop();
}

#[test]
fn coordinator_reconnects_after_a_network_blip() {
    // A broken *connection* is not a dead *worker*: the worker process
    // keeps its loaded partitions and diagonal cache across reconnects,
    // so the coordinator retries a fresh connection on a dead link —
    // one typed failure, then service resumes bit-identically.
    let g = Arc::new(generators::barabasi_albert(80, 3, 5));
    let cfg = SimRankConfig::fast().with_seed(6);
    let local = CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Local).unwrap();
    let fleet = spawn_fleet(2);
    let dist = CloudWalker::build(Arc::clone(&g), cfg, fleet.mode()).unwrap();
    assert_eq!(local.single_source_topk(70, 5), dist.single_source_topk(70, 5));

    // Sever the sockets (worker processes stay up, state resident). The
    // coordinator heals transparently: each link retries its request
    // once over a fresh connection, so the caller sees no error at all
    // — just bit-identical answers.
    fleet.handles[0].sever_connections();
    fleet.handles[1].sever_connections();
    assert_eq!(local.single_source_topk(70, 5), dist.single_source_topk(70, 5));
    assert_eq!(local.single_pair(3, 70), dist.single_pair(3, 70));
    assert_eq!(local.single_source(12), dist.single_source(12));
    fleet.stop();
}

#[test]
fn session_serving_path_stays_typed_when_a_worker_dies() {
    // The caching serving layer (what `pasco serve --mode distributed`
    // actually runs) must degrade the same way the engine does: a dead
    // worker is a typed error frame, never a panicked pool thread.
    let g = Arc::new(generators::barabasi_albert(100, 3, 21));
    let cfg = SimRankConfig::fast().with_seed(2);
    let fleet = spawn_fleet(2);
    let dist = Arc::new(CloudWalker::build(Arc::clone(&g), cfg, fleet.mode()).unwrap());
    let session = QuerySession::new(Arc::clone(&dist), 16);
    // Warm a worker-1-owned pair (nodes 50..100), then kill worker 1.
    let warm = session.try_single_pair(99, 98).unwrap();
    fleet.handles[1].kill();
    // A fresh worker-1 cohort is a typed error (the single-flight guard
    // abandons the flight instead of wedging followers)...
    let err = session.try_single_pair(60, 61).unwrap_err();
    assert!(matches!(err, QueryError::WorkerUnavailable { .. }), "{err}");
    let err = session.try_cohort(60).unwrap_err();
    assert!(matches!(err, QueryError::WorkerUnavailable { .. }), "{err}");
    // ...while cached cohorts and the surviving worker keep serving.
    assert_eq!(session.try_single_pair(99, 98).unwrap(), warm, "cache survives the fault");
    assert!(session.try_single_pair(1, 2).is_ok(), "worker 0 still answers");
    assert!(session.try_pairs_matrix(&[1, 60], &[2]).is_err(), "matrix fails typed too");
    fleet.stop();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The worker count of the distributed engine never changes any
    /// answer — the real-TCP mirror of PR 3's
    /// `shard_count_never_changes_results`. Few cases (each spawns a
    /// worker fleet), arbitrary graphs, seeds and worker counts.
    #[test]
    fn worker_count_never_changes_results(
        edges in prop::collection::vec((0u32..30, 0u32..30), 0..120),
        workers in 1usize..5,
        seed in 0u64..1000,
    ) {
        use pasco::graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        b.ensure_nodes(30);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = Arc::new(b.build());
        let cfg = SimRankConfig::fast().with_seed(seed).with_t(4).with_r(16).with_r_query(64);
        let l = CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Local).unwrap();
        let fleet = spawn_fleet(workers);
        let d = CloudWalker::build(Arc::clone(&g), cfg, fleet.mode()).unwrap();
        prop_assert_eq!(l.diagonal(), d.diagonal());
        prop_assert_eq!(l.single_pair(3, 17), d.single_pair(3, 17));
        prop_assert_eq!(l.single_source(5), d.single_source(5));
        prop_assert_eq!(l.single_source_topk(9, 6), d.single_source_topk(9, 6));
        fleet.stop();
    }
}

/// A raw-socket conformance check: the worker's load/ack exchange emits
/// exactly the frames the protocol promises (kind echoed, id echoed,
/// loaded counter monotone).
#[test]
fn load_acks_echo_kind_and_id_over_a_raw_socket() {
    let g = generators::cycle(10);
    let partitioner = pasco::graph::partition::Partitioner::range(10, 2);
    let parts = pasco::graph::partitioned::partition_graph(&g, &partitioner);

    let worker = PascoWorker::bind("127.0.0.1:0", WorkerConfig::default()).unwrap();
    let addr = worker.local_addr();
    let handle = worker.handle();
    let join = std::thread::spawn(move || worker.run().unwrap());

    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    write_envelope(&mut stream, &Envelope::hello()).unwrap();
    assert_eq!(read_envelope(&mut reader, DEFAULT_MAX_FRAME).unwrap().kind, FrameKind::HelloAck);

    for (q, part) in parts.iter().enumerate() {
        let msg = LoadPartition {
            n: 10,
            parts: 2,
            owned_part: 0,
            part_index: q as u32,
            partition: part.clone(),
        };
        let id = 100 + q as u64;
        write_envelope(&mut stream, &Envelope::worker(FrameKind::LoadPartition, id, &msg)).unwrap();
        let reply = read_envelope(&mut reader, DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(reply.kind, FrameKind::LoadPartition);
        assert_eq!(reply.request_id, id);
        let ack = LoadAck::from_bytes(&reply.payload).unwrap();
        assert_eq!(ack.loaded, q as u32 + 1);
        assert!(ack.resident_bytes > 0);
    }
    handle.shutdown();
    join.join().unwrap();
}
