//! Cross-system integration: the three similarity engines (CloudWalker,
//! FMT, LIN) independently approximate the same ground truth, and their
//! failure modes match the paper's comparison table.

use pasco::baselines::{BaselineError, Fmt, FmtConfig, Lin, LinConfig};
use pasco::graph::generators;
use pasco::simrank::exact::ExactSimRank;
use pasco::simrank::{CloudWalker, ExecMode, SimRankConfig};
use std::sync::Arc;

#[test]
fn three_systems_approximate_the_same_truth() {
    let g = Arc::new(generators::barabasi_albert(90, 3, 17));
    let exact = ExactSimRank::compute(&g, 0.6, 25);

    let cw = CloudWalker::build(
        Arc::clone(&g),
        SimRankConfig::default_paper().with_r(300).with_r_query(6_000),
        ExecMode::Local,
    )
    .unwrap();
    let fmt =
        Fmt::build(Arc::clone(&g), FmtConfig { r: 3_000, ..FmtConfig::default_paper() }).unwrap();
    let lin = Lin::build(Arc::clone(&g), LinConfig::default_paper()).unwrap();

    for &(i, j) in &[(0u32, 1u32), (10, 50), (44, 45), (70, 3)] {
        let truth = exact.get(i, j);
        let e_cw = (cw.single_pair(i, j) - truth).abs();
        let e_fmt = (fmt.single_pair(i, j) - truth).abs();
        let e_lin = (lin.single_pair(i, j) - truth).abs();
        assert!(e_cw < 0.06, "CloudWalker ({i},{j}): {e_cw}");
        assert!(e_fmt < 0.08, "FMT ({i},{j}): {e_fmt}");
        assert!(e_lin < 0.02, "LIN ({i},{j}): {e_lin}");
    }
}

#[test]
fn lin_is_the_most_accurate_but_cloudwalker_is_close() {
    // LIN computes the truncated series exactly — its only errors are
    // truncation and pruning. CloudWalker should be within sampling noise.
    let g = Arc::new(generators::rmat(8, 1_200, generators::RmatParams::default(), 9));
    let exact = ExactSimRank::compute(&g, 0.6, 25);
    let lin = Lin::build(Arc::clone(&g), LinConfig::default_paper()).unwrap();
    let cw = CloudWalker::build(
        Arc::clone(&g),
        SimRankConfig::default_paper().with_r(200).with_r_query(4_000),
        ExecMode::Local,
    )
    .unwrap();
    let (mut lin_err, mut cw_err) = (0.0f64, 0.0f64);
    let mut pairs = 0;
    for i in (0..g.node_count()).step_by(41) {
        for j in (1..g.node_count()).step_by(73) {
            let truth = exact.get(i, j);
            lin_err += (lin.single_pair(i, j) - truth).abs();
            cw_err += (cw.single_pair(i, j) - truth).abs();
            pairs += 1;
        }
    }
    let (lin_err, cw_err) = (lin_err / pairs as f64, cw_err / pairs as f64);
    assert!(lin_err <= cw_err + 1e-6, "LIN {lin_err} vs CloudWalker {cw_err}");
    assert!(cw_err < 0.02, "CloudWalker mean error {cw_err}");
}

#[test]
fn failure_modes_match_the_papers_table() {
    // FMT dies on memory; LIN dies on work; CloudWalker keeps going — the
    // N/A structure of the comparison table.
    let g = Arc::new(generators::rmat(13, 60_000, generators::RmatParams::default(), 5));

    let fmt = Fmt::build(
        Arc::clone(&g),
        FmtConfig { memory_budget: 4 << 20, ..FmtConfig::default_paper() },
    );
    assert!(matches!(fmt, Err(BaselineError::MemoryBudget { .. })));

    let lin = Lin::build(
        Arc::clone(&g),
        LinConfig { work_budget: 100_000, ..LinConfig::default_paper() },
    );
    assert!(matches!(lin, Err(BaselineError::WorkBudget { .. })));

    let cw = CloudWalker::build(Arc::clone(&g), SimRankConfig::fast(), ExecMode::Local);
    assert!(cw.is_ok());
}

#[test]
fn fmt_single_source_agrees_with_its_single_pair() {
    let g = Arc::new(generators::barabasi_albert(60, 3, 3));
    let fmt = Fmt::build(g, FmtConfig { r: 500, ..FmtConfig::default_paper() }).unwrap();
    let row = fmt.single_source(7);
    for j in [0u32, 20, 59] {
        if j != 7 {
            assert_eq!(row[j as usize], fmt.single_pair(7, j));
        }
    }
}
