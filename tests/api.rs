//! Integration: the typed query API. (a) Every `QueryRequest` /
//! `QueryResponse` round-trips bit-exactly through the binary wire codec
//! on randomly generated values; (b) `QueryService::execute` answers —
//! on both `QuerySession` and the bare `CloudWalker` adapter — are
//! identical to the direct method calls for every query kind; (c) the
//! old out-of-range panic is gone from the service path.

use pasco::graph::generators;
use pasco::simrank::api::envelope::Envelope;
use pasco::simrank::api::wire::WireCodec;
use pasco::simrank::api::{QueryError, QueryRequest, QueryResponse, QueryService};
use pasco::simrank::{CloudWalker, ExecMode, QuerySession, SimRankConfig};
use proptest::prelude::*;
use proptest::TestRng;
use std::sync::{Arc, OnceLock};

const NODES: u32 = 80;

fn walker() -> &'static Arc<CloudWalker> {
    static WALKER: OnceLock<Arc<CloudWalker>> = OnceLock::new();
    WALKER.get_or_init(|| {
        let g = Arc::new(generators::barabasi_albert(NODES, 3, 11));
        Arc::new(CloudWalker::build(g, SimRankConfig::fast(), ExecMode::Local).unwrap())
    })
}

// ---- random value generators ------------------------------------------

fn gen_f64(rng: &mut TestRng) -> f64 {
    // Mixed population: unit-interval scores plus exact edge values.
    match rng.next_u64() % 8 {
        0 => 0.0,
        1 => -0.0,
        2 => 1.0,
        3 => f64::MIN_POSITIVE,
        _ => (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64,
    }
}

fn gen_nodes(rng: &mut TestRng, max_len: usize) -> Vec<u32> {
    let len = rng.next_u64() as usize % (max_len + 1);
    (0..len).map(|_| (rng.next_u64() >> 32) as u32).collect()
}

/// One random request, spanning every variant; `batch_ok` gates whether
/// a (flat) batch may be drawn.
fn gen_request(rng: &mut TestRng, batch_ok: bool) -> QueryRequest {
    match rng.next_u64() % if batch_ok { 7 } else { 6 } {
        0 => QueryRequest::SinglePair {
            i: (rng.next_u64() >> 32) as u32,
            j: (rng.next_u64() >> 32) as u32,
        },
        1 => QueryRequest::SingleSource { i: (rng.next_u64() >> 32) as u32 },
        2 => QueryRequest::SingleSourcePush { i: (rng.next_u64() >> 32) as u32 },
        3 => QueryRequest::SingleSourceTopK { i: (rng.next_u64() >> 32) as u32, k: rng.next_u64() },
        4 => QueryRequest::Cohort { v: (rng.next_u64() >> 32) as u32 },
        5 => QueryRequest::PairsMatrix { rows: gen_nodes(rng, 6), cols: gen_nodes(rng, 6) },
        _ => {
            let len = 1 + rng.next_u64() as usize % 4;
            QueryRequest::Batch((0..len).map(|_| gen_request(rng, false)).collect())
        }
    }
}

fn gen_response(rng: &mut TestRng, batch_ok: bool) -> QueryResponse {
    match rng.next_u64() % if batch_ok { 6 } else { 5 } {
        0 => QueryResponse::Score(gen_f64(rng)),
        1 => {
            let len = rng.next_u64() as usize % 8;
            QueryResponse::Scores((0..len).map(|_| gen_f64(rng)).collect())
        }
        2 => {
            let len = rng.next_u64() as usize % 8;
            QueryResponse::Ranked(
                (0..len).map(|_| ((rng.next_u64() >> 32) as u32, gen_f64(rng))).collect(),
            )
        }
        3 => {
            let rows = rng.next_u64() as usize % 5;
            QueryResponse::Matrix(
                (0..rows)
                    .map(|_| {
                        let cols = rng.next_u64() as usize % 5;
                        (0..cols).map(|_| gen_f64(rng)).collect()
                    })
                    .collect(),
            )
        }
        4 => {
            let steps = rng.next_u64() as usize % 5;
            QueryResponse::Cohort(pasco::mc::walks::StepDistributions {
                source: (rng.next_u64() >> 32) as u32,
                walkers: (rng.next_u64() >> 32) as u32,
                counts: (0..=steps)
                    .map(|_| {
                        let len = rng.next_u64() as usize % 6;
                        (0..len).map(|_| ((rng.next_u64() >> 32) as u32, rng.next_u64())).collect()
                    })
                    .collect(),
            })
        }
        _ => {
            let len = rng.next_u64() as usize % 4;
            QueryResponse::Batch((0..len).map(|_| gen_response(rng, false)).collect())
        }
    }
}

/// Strategy adapters so the generators plug into `proptest!`.
struct AnyRequest;
impl Strategy for AnyRequest {
    type Value = QueryRequest;
    fn generate(&self, rng: &mut TestRng) -> QueryRequest {
        gen_request(rng, true)
    }
}

struct AnyResponse;
impl Strategy for AnyResponse {
    type Value = QueryResponse;
    fn generate(&self, rng: &mut TestRng) -> QueryResponse {
        gen_response(rng, true)
    }
}

/// Round trip plus bit-exactness: decoding and re-encoding must
/// reproduce the original byte string exactly (catches -0.0 vs 0.0 and
/// any lossy field), and `encoded_len` must match reality.
fn assert_exact_roundtrip<T: WireCodec + PartialEq + std::fmt::Debug>(value: &T) {
    let bytes = value.to_bytes();
    assert_eq!(bytes.len(), value.encoded_len(), "{value:?}");
    let back = T::from_bytes(&bytes).unwrap();
    assert_eq!(&back, value);
    assert_eq!(back.to_bytes(), bytes, "re-encode must be byte-identical");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary requests survive the wire bit-exactly.
    #[test]
    fn request_wire_roundtrip_is_exact(req in AnyRequest) {
        assert_exact_roundtrip(&req);
    }

    /// Arbitrary responses survive the wire bit-exactly.
    #[test]
    fn response_wire_roundtrip_is_exact(resp in AnyResponse) {
        assert_exact_roundtrip(&resp);
    }

    /// Corrupting any single byte of an encoded request never panics the
    /// decoder: it either fails typed or decodes to some (other) value.
    #[test]
    fn decoder_tolerates_single_byte_corruption(req in AnyRequest, flip in 0u64..1_000) {
        let mut bytes = req.to_bytes();
        let pos = flip as usize % bytes.len();
        bytes[pos] ^= 0xff;
        let _ = QueryRequest::from_bytes(&bytes); // must return, not panic
    }

    /// Adversarial input: arbitrary byte soup into every decoder — wire
    /// values and framed envelopes alike — must return (typed error or a
    /// decoded value), never panic, and never reserve capacity from an
    /// unvalidated length. A decoder that trusted a corrupt prefix would
    /// OOM-abort here long before 512 cases finished.
    #[test]
    fn decoders_survive_arbitrary_byte_soup(seed in proptest::any::<u64>()) {
        let mut rng = TestRng::for_case("api::byte_soup", seed as u32);
        let len = (rng.next_u64() % 128) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let _ = QueryRequest::from_bytes(&bytes);
        let _ = QueryResponse::from_bytes(&bytes);
        let _ = QueryError::from_bytes(&bytes);
        let _ = Envelope::from_bytes(&bytes, 1 << 20);
    }

    /// A hostile peer rewriting any aligned window of a valid encoding
    /// into a maximal length prefix gets a clean failure (or a benign
    /// reinterpretation), not a gigabyte allocation — on requests and on
    /// responses, whose score rows are the largest repeated fields.
    #[test]
    fn hostile_length_prefixes_cannot_force_oom_allocations(
        req in AnyRequest,
        resp in AnyResponse,
        pos in proptest::any::<u64>(),
    ) {
        let mut bytes = req.to_bytes();
        if bytes.len() >= 4 {
            let p = pos as usize % (bytes.len() - 3);
            bytes[p..p + 4].copy_from_slice(&u32::MAX.to_le_bytes());
            let _ = QueryRequest::from_bytes(&bytes);
        }
        let mut bytes = resp.to_bytes();
        if bytes.len() >= 4 {
            let p = pos as usize % (bytes.len() - 3);
            bytes[p..p + 4].copy_from_slice(&u32::MAX.to_le_bytes());
            let _ = QueryResponse::from_bytes(&bytes);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `QueryService::execute` equals the direct method calls for every
    /// query kind, on both implementations, for random in-range inputs.
    #[test]
    fn execute_matches_direct_methods(seed in proptest::any::<u64>()) {
        let cw = walker();
        let session = QuerySession::new(Arc::clone(cw), 16);
        let mut rng = TestRng::for_case("api::execute_matches", seed as u32);
        let node = |rng: &mut TestRng| (rng.next_u64() % NODES as u64) as u32;
        let (i, j) = (node(&mut rng), node(&mut rng));
        let k = 1 + rng.next_u64() % 10;
        for svc in [cw.as_ref() as &dyn QueryService, &session] {
            prop_assert_eq!(
                svc.execute(QueryRequest::SinglePair { i, j }).unwrap(),
                QueryResponse::Score(cw.single_pair(i, j))
            );
            prop_assert_eq!(
                svc.execute(QueryRequest::SingleSource { i }).unwrap(),
                QueryResponse::Scores(cw.single_source(i))
            );
            prop_assert_eq!(
                svc.execute(QueryRequest::SingleSourcePush { i }).unwrap(),
                QueryResponse::Scores(cw.single_source_push(i))
            );
            prop_assert_eq!(
                svc.execute(QueryRequest::SingleSourceTopK { i, k }).unwrap(),
                QueryResponse::Ranked(cw.single_source_topk(i, k as usize))
            );
            prop_assert_eq!(
                svc.execute(QueryRequest::Cohort { v: i }).unwrap(),
                QueryResponse::Cohort(cw.query_cohort(i))
            );
            prop_assert_eq!(
                svc.execute(QueryRequest::PairsMatrix { rows: vec![i], cols: vec![j] }).unwrap(),
                QueryResponse::Matrix(vec![vec![cw.single_pair(i, j)]])
            );
        }
    }
}

/// Regression: the panic on out-of-range nodes is gone from the whole
/// service path — every request kind referencing a bad node returns
/// `QueryError::NodeOutOfRange` from both implementations.
#[test]
fn service_path_never_panics_on_bad_nodes() {
    let cw = walker();
    let session = QuerySession::new(Arc::clone(cw), 16);
    let bad = NODES + 7;
    let requests = vec![
        QueryRequest::SinglePair { i: 0, j: bad },
        QueryRequest::SinglePair { i: bad, j: bad },
        QueryRequest::SingleSource { i: bad },
        QueryRequest::SingleSourcePush { i: bad },
        QueryRequest::SingleSourceTopK { i: bad, k: 3 },
        QueryRequest::PairsMatrix { rows: vec![0, bad], cols: vec![1] },
        QueryRequest::Cohort { v: bad },
        QueryRequest::Batch(vec![
            QueryRequest::SinglePair { i: 0, j: 1 },
            QueryRequest::Cohort { v: bad },
        ]),
    ];
    for svc in [cw.as_ref() as &dyn QueryService, &session] {
        for req in &requests {
            assert_eq!(
                svc.execute(req.clone()).unwrap_err(),
                QueryError::NodeOutOfRange { node: bad, node_count: NODES },
                "{req:?}"
            );
        }
    }
    // The checked engine variants too (the layer the service routes through).
    assert!(cw.try_single_pair(0, bad).is_err());
    assert!(cw.try_single_source(bad).is_err());
    assert!(cw.try_single_source_topk(bad, 3).is_err());
}

/// A request executed on one side of the wire and a response shipped
/// back decode to exactly what was computed — the end-to-end shape a
/// network front-end will use.
#[test]
fn wire_request_execute_wire_response_end_to_end() {
    let cw = walker();
    let req = QueryRequest::Batch(vec![
        QueryRequest::SinglePair { i: 2, j: 9 },
        QueryRequest::SingleSourceTopK { i: 2, k: 4 },
    ]);
    // Client encodes; server decodes, executes, encodes; client decodes.
    let server_req = QueryRequest::from_bytes(&req.to_bytes()).unwrap();
    let resp = cw.execute(server_req).unwrap();
    let client_resp = QueryResponse::from_bytes(&resp.to_bytes()).unwrap();
    assert_eq!(
        client_resp,
        QueryResponse::Batch(vec![
            QueryResponse::Score(cw.single_pair(2, 9)),
            QueryResponse::Ranked(cw.single_source_topk(2, 4)),
        ])
    );
    // Typed errors cross the wire the same way.
    let err = cw.execute(QueryRequest::Cohort { v: 10_000 }).unwrap_err();
    assert_eq!(QueryError::from_bytes(&err.to_bytes()).unwrap(), err);
}
