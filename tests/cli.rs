//! Integration: the `pasco` command-line binary, invoked as a subprocess.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pasco"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("pasco_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn generate_index_query_pipeline() {
    let graph = tmp("pipeline.bin");
    let index = tmp("pipeline.idx");

    let out = bin()
        .args(["generate", "--model", "ba", "--nodes", "500", "--edges-per-node", "4"])
        .args(["--out", graph.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("500 nodes"));

    let out = bin()
        .args(["index", "--graph", graph.to_str().unwrap()])
        .args(["--out", index.to_str().unwrap()])
        .args(["--r-query", "500", "--r", "32", "--t", "5"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = bin()
        .args(["sp", "--graph", graph.to_str().unwrap()])
        .args(["--index", index.to_str().unwrap()])
        .args(["--i", "3", "--j", "99", "--r-query", "500", "--t", "5"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("s(3, 99)"));

    let out = bin()
        .args(["ss", "--graph", graph.to_str().unwrap()])
        .args(["--index", index.to_str().unwrap()])
        .args(["--i", "3", "--top", "3", "--r-query", "500", "--t", "5"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("top-3 similar to 3"), "{stdout}");

    let out = bin()
        .args(["pairs", "--graph", graph.to_str().unwrap()])
        .args(["--index", index.to_str().unwrap()])
        .args(["--nodes", "1,5,9", "--r-query", "500", "--t", "5"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("3x3 similarity matrix"), "{stdout}");
    assert!(stdout.contains("3 cohorts simulated"), "{stdout}");
}

#[test]
fn stats_and_convert_roundtrip() {
    let bin_path = tmp("conv.bin");
    let txt_path = tmp("conv.txt");
    assert!(bin()
        .args(["generate", "--model", "er", "--nodes", "100", "--edges", "400"])
        .args(["--out", bin_path.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args(["convert", "--in", bin_path.to_str().unwrap()])
        .args(["--out", txt_path.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out = bin().args(["stats", "--graph", txt_path.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("edges:  400"), "{stdout}");
}

#[test]
fn bad_invocations_fail_cleanly() {
    // Unknown command.
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
    // Missing required flag.
    let out = bin().args(["stats"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--graph"));
    // Nonexistent file.
    let out = bin().args(["stats", "--graph", "/nonexistent/g.bin"]).output().unwrap();
    assert!(!out.status.success());
    // Bad parameter value.
    let graph = tmp("badparam.bin");
    bin()
        .args(["generate", "--model", "er", "--nodes", "50", "--edges", "100"])
        .args(["--out", graph.to_str().unwrap()])
        .status()
        .unwrap();
    let out = bin()
        .args(["index", "--graph", graph.to_str().unwrap()])
        .args(["--out", tmp("x.idx").to_str().unwrap(), "--c", "1.5"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("decay factor"));
}
