//! Integration: the `pasco` command-line binary, invoked as a subprocess.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pasco"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("pasco_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn generate_index_query_pipeline() {
    let graph = tmp("pipeline.bin");
    let index = tmp("pipeline.idx");

    let out = bin()
        .args(["generate", "--model", "ba", "--nodes", "500", "--edges-per-node", "4"])
        .args(["--out", graph.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("500 nodes"));

    let out = bin()
        .args(["index", "--graph", graph.to_str().unwrap()])
        .args(["--out", index.to_str().unwrap()])
        .args(["--r-query", "500", "--r", "32", "--t", "5"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = bin()
        .args(["sp", "--graph", graph.to_str().unwrap()])
        .args(["--index", index.to_str().unwrap()])
        .args(["--i", "3", "--j", "99", "--r-query", "500", "--t", "5"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("s(3, 99)"));

    let out = bin()
        .args(["ss", "--graph", graph.to_str().unwrap()])
        .args(["--index", index.to_str().unwrap()])
        .args(["--i", "3", "--top", "3", "--r-query", "500", "--t", "5"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("top-3 similar to 3"), "{stdout}");

    let out = bin()
        .args(["topk", "--graph", graph.to_str().unwrap()])
        .args(["--index", index.to_str().unwrap()])
        .args(["--i", "3", "--k", "4", "--r-query", "500", "--t", "5"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // TSV: every line is `node<TAB>score`, at most k of them.
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(!lines.is_empty() && lines.len() <= 4, "{stdout}");
    for line in &lines {
        let (node, score) = line.split_once('\t').expect("tab-separated");
        node.parse::<u32>().unwrap();
        score.parse::<f64>().unwrap();
    }

    let out = bin()
        .args(["ss", "--graph", graph.to_str().unwrap()])
        .args(["--index", index.to_str().unwrap()])
        .args(["--i", "3", "--top", "3", "--estimator", "push"])
        .args(["--r-query", "500", "--t", "5"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("top-3 similar to 3"));

    let out = bin()
        .args(["pairs", "--graph", graph.to_str().unwrap()])
        .args(["--index", index.to_str().unwrap()])
        .args(["--nodes", "1,5,9", "--r-query", "500", "--t", "5"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("3x3 similarity matrix"), "{stdout}");
    assert!(stdout.contains("3 cohorts simulated"), "{stdout}");
}

/// The sharded substrate end to end: indexing with `--mode sharded`
/// produces the identical index, and serving queries with any shard count
/// yields byte-identical TSV output to local serving.
#[test]
fn sharded_pipeline_matches_local_output() {
    let graph = tmp("sharded.bin");
    let idx_local = tmp("sharded_local.idx");
    let idx_sharded = tmp("sharded_sharded.idx");
    assert!(bin()
        .args(["generate", "--model", "ba", "--nodes", "400", "--edges-per-node", "4"])
        .args(["--out", graph.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let cheap = ["--r", "16", "--t", "4", "--r-query", "400"];
    let out = bin()
        .args(["index", "--graph", graph.to_str().unwrap()])
        .args(["--out", idx_local.to_str().unwrap()])
        .args(cheap)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = bin()
        .args(["index", "--graph", graph.to_str().unwrap()])
        .args(["--out", idx_sharded.to_str().unwrap()])
        .args(["--mode", "sharded", "--shards", "3"])
        .args(cheap)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("sharded engine"), "{stdout}");
    assert!(stdout.contains("shards: 3"), "{stdout}");
    assert_eq!(
        std::fs::read(&idx_local).unwrap(),
        std::fs::read(&idx_sharded).unwrap(),
        "sharded index must be byte-identical to local"
    );

    // Serve the same top-k through local and sharded substrates: the TSV
    // output must match byte for byte.
    let query = |mode_args: &[&str]| {
        let out = bin()
            .args(["topk", "--graph", graph.to_str().unwrap()])
            .args(["--index", idx_local.to_str().unwrap()])
            .args(["--i", "7", "--k", "5"])
            .args(cheap)
            .args(mode_args)
            .output()
            .unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        out.stdout
    };
    let local = query(&[]);
    assert_eq!(local, query(&["--mode", "sharded", "--shards", "2"]));
    assert_eq!(local, query(&["--mode", "sharded", "--shards", "5"]));

    // Zero shards is a clean CLI error.
    let out = bin()
        .args(["topk", "--graph", graph.to_str().unwrap()])
        .args(["--index", idx_local.to_str().unwrap()])
        .args(["--i", "7", "--k", "5", "--mode", "sharded", "--shards", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--shards must be positive"));
}

/// Out-of-range nodes surface as the typed `QueryError` rendered on
/// stderr — a clean nonzero exit, never the old panic/abort.
#[test]
fn out_of_range_queries_fail_cleanly_with_typed_errors() {
    let graph = tmp("oob.bin");
    let index = tmp("oob.idx");
    assert!(bin()
        .args(["generate", "--model", "er", "--nodes", "50", "--edges", "200"])
        .args(["--out", graph.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args(["index", "--graph", graph.to_str().unwrap()])
        .args(["--out", index.to_str().unwrap(), "--r", "16", "--t", "4"])
        .status()
        .unwrap()
        .success());
    let common = [
        "--graph".to_string(),
        graph.to_str().unwrap().to_string(),
        "--index".to_string(),
        index.to_str().unwrap().to_string(),
        "--t".to_string(),
        "4".to_string(),
    ];
    for args in [
        vec!["sp", "--i", "0", "--j", "50"],
        vec!["ss", "--i", "50"],
        vec!["topk", "--i", "99", "--k", "5"],
        vec!["pairs", "--nodes", "1,50"],
    ] {
        let out = bin().args(&args).args(&common).output().unwrap();
        assert!(!out.status.success(), "{args:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("out of range"), "{args:?}: {stderr}");
        assert!(!stderr.contains("panicked"), "{args:?} panicked: {stderr}");
    }
    // InvalidK is typed too.
    let out = bin().args(["topk", "--i", "1", "--k", "0"]).args(&common).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid k"));
}

#[test]
fn stats_and_convert_roundtrip() {
    let bin_path = tmp("conv.bin");
    let txt_path = tmp("conv.txt");
    assert!(bin()
        .args(["generate", "--model", "er", "--nodes", "100", "--edges", "400"])
        .args(["--out", bin_path.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args(["convert", "--in", bin_path.to_str().unwrap()])
        .args(["--out", txt_path.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    let out = bin().args(["stats", "--graph", txt_path.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("edges:  400"), "{stdout}");
}

/// The network pipeline end to end as a user runs it: `pasco serve` on
/// an ephemeral port, `pasco query --connect` round trips (byte-identical
/// TSV to in-process serving), then a clean drain on the shutdown frame.
#[test]
fn serve_and_query_over_loopback_with_clean_drain() {
    use std::io::BufRead;

    let graph = tmp("serve.bin");
    let index = tmp("serve.idx");
    let fast = ["--r", "32", "--t", "5", "--r-query", "500"];
    assert!(bin()
        .args(["generate", "--model", "ba", "--nodes", "400", "--edges-per-node", "4"])
        .args(["--out", graph.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args(["index", "--graph", graph.to_str().unwrap()])
        .args(["--out", index.to_str().unwrap()])
        .args(fast)
        .status()
        .unwrap()
        .success());

    // Boot the server on port 0 and read the bound address off its
    // first stdout line (flushed before the accept loop starts).
    let mut server = bin()
        .args(["serve", "--graph", graph.to_str().unwrap()])
        .args(["--index", index.to_str().unwrap()])
        .args(["--addr", "127.0.0.1:0", "--mode", "sharded", "--shards", "2"])
        .args(fast)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut lines = std::io::BufReader::new(server.stdout.take().unwrap()).lines();
    let banner = lines.next().unwrap().unwrap();
    let addr = banner
        .strip_prefix("listening on ")
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();

    // A pair query over the wire answers in the usual format.
    let out = bin()
        .args(["query", "--connect", &addr, "--kind", "sp", "--i", "3", "--j", "99"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("s(3, 99)"));

    // Top-k over the wire is byte-identical to in-process top-k.
    let net = bin()
        .args(["query", "--connect", &addr, "--kind", "topk", "--i", "3", "--k", "4"])
        .output()
        .unwrap();
    assert!(net.status.success(), "{}", String::from_utf8_lossy(&net.stderr));
    let local = bin()
        .args(["topk", "--graph", graph.to_str().unwrap()])
        .args(["--index", index.to_str().unwrap()])
        .args(["--i", "3", "--k", "4"])
        .args(fast)
        .output()
        .unwrap();
    assert!(local.status.success());
    assert_eq!(net.stdout, local.stdout, "wire TSV must equal in-process TSV");

    // Shutdown frame: the server drains and exits 0.
    let out = bin().args(["query", "--connect", &addr, "--kind", "shutdown"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("server drained"));
    let status = server.wait().unwrap();
    assert!(status.success(), "server must exit cleanly after a drain");
    let rest: Vec<String> = lines.map_while(Result::ok).collect();
    assert!(rest.iter().any(|l| l.contains("drained")), "{rest:?}");
}

#[test]
fn bad_invocations_fail_cleanly() {
    // Unknown command.
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
    // Missing required flag.
    let out = bin().args(["stats"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--graph"));
    // Nonexistent file.
    let out = bin().args(["stats", "--graph", "/nonexistent/g.bin"]).output().unwrap();
    assert!(!out.status.success());
    // Bad parameter value.
    let graph = tmp("badparam.bin");
    bin()
        .args(["generate", "--model", "er", "--nodes", "50", "--edges", "100"])
        .args(["--out", graph.to_str().unwrap()])
        .status()
        .unwrap();
    let out = bin()
        .args(["index", "--graph", graph.to_str().unwrap()])
        .args(["--out", tmp("x.idx").to_str().unwrap(), "--c", "1.5"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("decay factor"));
}
