//! The reproduction's strongest guarantee: the execution engines
//! (Local, Sharded, Broadcasting, RDD — and the out-of-core mapped
//! store) are observationally equivalent under a fixed seed — indexes
//! bitwise equal, MCSP bitwise equal, MCSS equal to float accumulation
//! order (bitwise for Sharded and Mapped, whose accumulation order
//! matches Local's exactly).

use pasco::cluster::{ClusterConfig, ClusterError};
use pasco::graph::generators;
use pasco::simrank::{CloudWalker, ExecMode, QueryError, SimRankConfig, SimRankError};
use std::sync::Arc;

fn build_all(g: &Arc<pasco::graph::CsrGraph>, cfg: SimRankConfig) -> [CloudWalker; 3] {
    [
        CloudWalker::build(Arc::clone(g), cfg, ExecMode::Local).unwrap(),
        CloudWalker::build(Arc::clone(g), cfg, ExecMode::Broadcast(ClusterConfig::local(3)))
            .unwrap(),
        CloudWalker::build(Arc::clone(g), cfg, ExecMode::Rdd(ClusterConfig::local(5))).unwrap(),
    ]
}

#[test]
fn indexes_are_bitwise_identical_across_modes() {
    for seed in [1u64, 99, 0xdead] {
        let g = Arc::new(generators::rmat(8, 1_600, generators::RmatParams::default(), seed));
        let cfg = SimRankConfig::fast().with_seed(seed);
        let [l, b, r] = build_all(&g, cfg);
        assert_eq!(l.diagonal(), b.diagonal(), "seed {seed}: broadcast");
        assert_eq!(l.diagonal(), r.diagonal(), "seed {seed}: rdd");
    }
}

#[test]
fn mcsp_is_bitwise_identical_across_modes() {
    let g = Arc::new(generators::barabasi_albert(140, 3, 7));
    let cfg = SimRankConfig::fast().with_seed(11);
    let [l, b, r] = build_all(&g, cfg);
    for &(i, j) in &[(0u32, 1u32), (5, 70), (120, 139), (33, 32)] {
        let expect = l.single_pair(i, j);
        assert_eq!(expect, b.single_pair(i, j), "broadcast ({i},{j})");
        assert_eq!(expect, r.single_pair(i, j), "rdd ({i},{j})");
    }
}

#[test]
fn mcss_matches_across_modes_to_float_tolerance() {
    let g = Arc::new(generators::barabasi_albert(140, 3, 19));
    let cfg = SimRankConfig::fast().with_seed(23);
    let [l, b, r] = build_all(&g, cfg);
    for &s in &[0u32, 64, 139] {
        let expect = l.single_source(s);
        for (name, row) in [("broadcast", b.single_source(s)), ("rdd", r.single_source(s))] {
            for (v, (a, e)) in row.iter().zip(&expect).enumerate() {
                assert!((a - e).abs() < 1e-12, "{name} source {s} node {v}: {a} vs {e}");
            }
        }
    }
}

#[test]
fn topk_rankings_are_identical_across_modes() {
    // Top-k now routes through the engine trait: cluster modes run it on
    // their own distributed single-source path (and account the work in
    // their ClusterReport) yet must produce the same ranking as the local
    // sparse estimator, with scores equal to float accumulation order.
    let g = Arc::new(generators::barabasi_albert(140, 3, 13));
    let cfg = SimRankConfig::fast().with_seed(31);
    let [l, b, r] = build_all(&g, cfg);
    for &s in &[2u32, 40, 70] {
        let expect = l.single_source_topk(s, 10);
        assert!(!expect.is_empty(), "source {s} must reach someone");
        for (name, got) in
            [("broadcast", b.single_source_topk(s, 10)), ("rdd", r.single_source_topk(s, 10))]
        {
            assert_eq!(
                got.iter().map(|&(v, _)| v).collect::<Vec<_>>(),
                expect.iter().map(|&(v, _)| v).collect::<Vec<_>>(),
                "{name} ranking, source {s}"
            );
            for ((gn, gs), (en, es)) in got.iter().zip(&expect) {
                assert_eq!(gn, en, "{name} source {s}");
                assert!((gs - es).abs() < 1e-12, "{name} source {s}: {gs} vs {es}");
            }
        }
    }
    // The distributed top-k paths must be accounted in the cluster logs.
    assert!(b.cluster_report().unwrap().stages > 0);
    assert!(r.cluster_report().unwrap().shuffle_bytes > 0);
}

#[test]
fn sharded_engine_is_bit_identical_to_local_for_every_query_kind() {
    // The sharded engine routes walks through per-shard partition views;
    // since the routed adjacency equals the resident graph's and the
    // accumulation order matches the local kernels, every query kind is
    // *bitwise* equal at shard counts 1, 2 and 4 — including dense MCSS,
    // where the cluster engines only promise float-tolerance equality.
    for (gname, g) in [
        ("ba", Arc::new(generators::barabasi_albert(150, 3, 7))),
        ("rmat", Arc::new(generators::rmat(8, 1_600, generators::RmatParams::default(), 5))),
    ] {
        let cfg = SimRankConfig::fast().with_seed(17);
        let local = CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Local).unwrap();
        for shards in [1u32, 2, 4] {
            let sh = CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Sharded { shards }).unwrap();
            assert_eq!(sh.mode_name(), "sharded");
            assert_eq!(local.diagonal(), sh.diagonal(), "{gname}: index, {shards} shards");
            for &(i, j) in &[(0u32, 1u32), (5, 70), (33, 32)] {
                assert_eq!(
                    local.single_pair(i, j),
                    sh.single_pair(i, j),
                    "{gname}: MCSP ({i},{j}), {shards} shards"
                );
            }
            for &s in &[0u32, 64, 149] {
                assert_eq!(
                    local.single_source(s),
                    sh.single_source(s),
                    "{gname}: MCSS source {s}, {shards} shards"
                );
                assert_eq!(
                    local.single_source_topk(s, 10),
                    sh.single_source_topk(s, 10),
                    "{gname}: top-k source {s}, {shards} shards"
                );
                assert_eq!(
                    local.query_cohort(s),
                    sh.query_cohort(s),
                    "{gname}: cohort {s}, {shards} shards"
                );
            }
            // Footprint accounting: partitioned, with a per-shard breakdown
            // whose max is the per-worker demand.
            let fp = sh.memory_footprint();
            assert!(fp.partitioned);
            let per_shard = sh.shard_footprints().expect("sharded breakdown");
            assert_eq!(per_shard.len(), shards as usize);
            assert_eq!(per_shard.iter().copied().max().unwrap(), fp.per_worker_bytes);
            assert!(local.shard_footprints().is_none());
        }
    }
}

#[test]
fn mapped_store_is_bit_identical_to_local_for_every_query_kind() {
    // The out-of-core substrate: save the walker as an on-disk shard
    // store, reopen it through the mmap path (no CSR, no reverse-chain
    // index rebuilt), and every query kind must be *bitwise* equal to
    // the resident walker at shard counts 1, 2 and 4 — adjacency and
    // sampling weights are read in place from the mapping, and the
    // generic kernels keep the accumulation order.
    for (gname, g) in [
        ("ba", Arc::new(generators::barabasi_albert(150, 3, 7))),
        ("rmat", Arc::new(generators::rmat(8, 1_600, generators::RmatParams::default(), 5))),
    ] {
        let cfg = SimRankConfig::fast().with_seed(17);
        let local = CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Local).unwrap();
        for parts in [1u32, 2, 4] {
            let dir = std::env::temp_dir().join(format!("pasco_exec_mapped_{gname}_{parts}"));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            local.save_store(&dir, parts).unwrap();
            let mapped = CloudWalker::open_store(&dir, cfg).unwrap();
            assert_eq!(mapped.mode_name(), "mapped");
            assert_eq!(local.diagonal(), mapped.diagonal(), "{gname}: index, {parts} shards");
            for &(i, j) in &[(0u32, 1u32), (5, 70), (33, 32)] {
                assert_eq!(
                    local.single_pair(i, j),
                    mapped.single_pair(i, j),
                    "{gname}: MCSP ({i},{j}), {parts} shards"
                );
            }
            for &s in &[0u32, 64, 149] {
                assert_eq!(
                    local.single_source(s),
                    mapped.single_source(s),
                    "{gname}: dense MCSS source {s}, {parts} shards"
                );
                assert_eq!(
                    local.single_source_topk(s, 10),
                    mapped.single_source_topk(s, 10),
                    "{gname}: top-k source {s}, {parts} shards"
                );
                assert_eq!(
                    local.query_cohort(s),
                    mapped.query_cohort(s),
                    "{gname}: cohort {s}, {parts} shards"
                );
            }

            // Footprint is the mapped file bytes, reported per shard.
            let fp = mapped.memory_footprint();
            assert!(fp.partitioned);
            let per_shard = mapped.shard_footprints().expect("mapped breakdown");
            assert_eq!(per_shard.len(), parts as usize);
            assert_eq!(per_shard.iter().copied().max().unwrap(), fp.per_worker_bytes);

            // No resident graph: the one query kind that needs the CSR
            // (the deterministic-push ablation) is a typed refusal, and
            // re-saving a mapped walker is a typed refusal too.
            assert!(mapped.graph().is_none());
            assert!(mapped.store().is_some());
            assert!(matches!(
                mapped.try_single_source_push(0),
                Err(QueryError::Unsupported { .. })
            ));
            let other = dir.join("copy");
            assert!(matches!(mapped.save_store(&other, 1), Err(SimRankError::InvalidConfig(_))));
        }
    }
}

#[test]
fn sharded_mode_rejects_zero_shards() {
    let g = Arc::new(generators::cycle(8));
    let err =
        CloudWalker::build(g, SimRankConfig::fast(), ExecMode::Sharded { shards: 0 }).unwrap_err();
    assert!(matches!(err, SimRankError::InvalidConfig(_)), "{err}");
}

#[test]
fn result_is_independent_of_cluster_shape() {
    // Different worker counts and partition counts must not change results
    // (the determinism that makes elastic deployments debuggable).
    let g = Arc::new(generators::rmat(8, 1_500, generators::RmatParams::default(), 4));
    let cfg = SimRankConfig::fast().with_seed(40);
    let reference =
        CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Rdd(ClusterConfig::local(2))).unwrap();
    for workers in [1usize, 3, 7] {
        let other =
            CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Rdd(ClusterConfig::local(workers)))
                .unwrap();
        assert_eq!(reference.diagonal(), other.diagonal(), "workers {workers}");
    }
}

#[test]
fn broadcast_memory_wall_vs_rdd_scalability() {
    // The paper's central operational contrast, as an assertion.
    let g = Arc::new(generators::rmat(10, 8_000, generators::RmatParams::default(), 2));
    let budget = g.memory_bytes(); // graph alone fits, graph + query index does not
    let cluster = ClusterConfig::local(4).with_memory_per_worker(budget);
    let cfg = SimRankConfig::fast();
    match CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Broadcast(cluster)) {
        Err(SimRankError::Cluster(ClusterError::BroadcastExceedsMemory { .. })) => {}
        other => panic!("expected the broadcast memory wall, got ok={}", other.is_ok()),
    }
    let rdd = CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Rdd(cluster)).unwrap();
    assert!(rdd.max_partition_bytes().unwrap() < budget);
    assert!(rdd.cluster_report().unwrap().shuffle_bytes > 0);
}
