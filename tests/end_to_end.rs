//! End-to-end integration: CloudWalker against exact SimRank, across
//! crates — and the typed `QueryService` front door against the direct
//! engine methods.

use pasco::graph::generators;
use pasco::simrank::api::{QueryRequest, QueryResponse, QueryService};
use pasco::simrank::exact::ExactSimRank;
use pasco::simrank::{metrics, CloudWalker, ExecMode, QuerySession, SimRankConfig};
use std::sync::Arc;

/// The headline correctness property: with paper parameters, CloudWalker's
/// estimates track exact SimRank on a scale-free graph.
#[test]
fn cloudwalker_tracks_exact_simrank() {
    let g = Arc::new(generators::barabasi_albert(150, 4, 31));
    let cfg = SimRankConfig::default_paper().with_r(400).with_r_query(6_000).with_seed(3);
    let cw = CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Local).unwrap();
    let exact = ExactSimRank::compute(&g, cfg.c, 25);

    // Pairs.
    let mut worst = 0.0f64;
    for i in (0..150).step_by(17) {
        for j in (1..150).step_by(29) {
            let est = cw.single_pair(i, j);
            worst = worst.max((est - exact.get(i, j)).abs());
        }
    }
    assert!(worst < 0.06, "worst single-pair error {worst}");

    // Single-source rows: value error and ranking quality.
    for s in [0u32, 75, 149] {
        let est = cw.single_source(s);
        let truth = exact.row(s);
        let mean = metrics::mean_abs_diff(&est, truth);
        assert!(mean < 0.03, "source {s}: mean error {mean}");
        let ranking: Vec<u32> =
            metrics::top_k(&est, 10, Some(s)).into_iter().map(|(i, _)| i).collect();
        let ndcg = metrics::ndcg_at_k(truth, &ranking, 10, Some(s));
        assert!(ndcg > 0.85, "source {s}: NDCG@10 = {ndcg}");
    }
}

/// The typed front door is a faithful façade: every query kind executed
/// through `QueryService` — on both the bare engine and a caching
/// session — answers bitwise-identically to the direct method calls.
#[test]
fn query_service_facade_matches_direct_methods_end_to_end() {
    let g = Arc::new(generators::barabasi_albert(120, 3, 17));
    let cw = Arc::new(
        CloudWalker::build(Arc::clone(&g), SimRankConfig::fast(), ExecMode::Local).unwrap(),
    );
    let session = QuerySession::new(Arc::clone(&cw), 32);
    let requests = vec![
        QueryRequest::SinglePair { i: 5, j: 80 },
        QueryRequest::SingleSource { i: 5 },
        QueryRequest::SingleSourcePush { i: 5 },
        QueryRequest::SingleSourceTopK { i: 5, k: 7 },
        QueryRequest::PairsMatrix { rows: vec![1, 5], cols: vec![5, 9] },
        QueryRequest::Cohort { v: 5 },
    ];
    for svc in [cw.as_ref() as &dyn QueryService, &session] {
        for req in &requests {
            match svc.execute(req.clone()).unwrap() {
                QueryResponse::Score(s) => assert_eq!(s, cw.single_pair(5, 80)),
                QueryResponse::Scores(row) => {
                    let direct = match req {
                        QueryRequest::SingleSource { .. } => cw.single_source(5),
                        _ => cw.single_source_push(5),
                    };
                    assert_eq!(row, direct, "{req:?}");
                }
                QueryResponse::Ranked(list) => assert_eq!(list, cw.single_source_topk(5, 7)),
                QueryResponse::Matrix(m) => {
                    for (r, &i) in [1u32, 5].iter().enumerate() {
                        for (c, &j) in [5u32, 9].iter().enumerate() {
                            assert_eq!(m[r][c], cw.single_pair(i, j), "({i},{j})");
                        }
                    }
                }
                QueryResponse::Cohort(d) => assert_eq!(d, cw.query_cohort(5)),
                QueryResponse::Batch(_) => unreachable!("no batch request sent"),
            }
        }
    }
}

/// SimRank fundamentals survive the full pipeline: unit diagonal, [0, 1]
/// range, near-symmetry of the estimator.
#[test]
fn estimates_respect_simrank_axioms() {
    let g = Arc::new(generators::rmat(9, 3_000, generators::RmatParams::default(), 8));
    let cfg = SimRankConfig::fast();
    let cw = CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Local).unwrap();
    for v in (0..g.node_count()).step_by(97) {
        assert_eq!(cw.single_pair(v, v), 1.0);
    }
    let scores = cw.single_source(100);
    assert!(scores.iter().all(|&s| (0.0..=1.0 + 1e-9).contains(&s)));
    assert_eq!(scores[100], 1.0);
    // The estimator reuses per-node cohorts: exact argument symmetry.
    assert_eq!(cw.single_pair(5, 200), cw.single_pair(200, 5));
}

/// Dangling nodes (no in-links) are only similar to themselves.
#[test]
fn dangling_nodes_have_zero_similarity() {
    let g = Arc::new(generators::star(40)); // leaves 1..40 are dangling
    let cfg = SimRankConfig::fast();
    let cw = CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Local).unwrap();
    // Leaves have no in-neighbours: s(leaf, anything else) = 0.
    assert_eq!(cw.single_pair(1, 2), 0.0);
    assert_eq!(cw.single_pair(1, 0), 0.0);
    let row = cw.single_source(1);
    assert_eq!(row[1], 1.0);
    assert!(row.iter().enumerate().all(|(i, &s)| i == 1 || s == 0.0));
}

/// The two-community structure that the examples rely on: within-community
/// similarity dominates cross-community similarity.
#[test]
fn community_structure_is_respected() {
    let g = Arc::new(generators::two_communities(200, 1_200, 16, 5));
    let cfg = SimRankConfig::fast();
    let cw = CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Local).unwrap();
    let row = cw.single_source(10);
    let within: f64 = (0..100).filter(|&i| i != 10).map(|i| row[i]).sum::<f64>() / 99.0;
    let cross: f64 = (100..200).map(|i| row[i]).sum::<f64>() / 100.0;
    assert!(within > 2.0 * cross, "within {within} should dominate cross {cross}");
}

/// MCAP output is consistent with individual MCSS calls. MCAP runs the
/// sparse top-k estimator per source, so its lists carry only nodes the
/// walks actually reached — the dense row's nonzero top-k, with scores
/// equal up to float accumulation order.
#[test]
fn all_pairs_is_consistent_with_single_source() {
    let g = Arc::new(generators::barabasi_albert(60, 3, 12));
    let cfg = SimRankConfig::fast();
    let cw = CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Local).unwrap();
    let all = cw.all_pairs_topk(5);
    for &s in &[0u32, 30, 59] {
        let row = cw.single_source(s);
        let expect: Vec<(u32, f64)> = metrics::top_k(&row, 5, Some(s))
            .into_iter()
            .filter(|&(_, score)| score > 0.0)
            .collect();
        let got = &all[s as usize];
        assert_eq!(
            got.iter().map(|&(v, _)| v).collect::<Vec<_>>(),
            expect.iter().map(|&(v, _)| v).collect::<Vec<_>>(),
            "source {s}"
        );
        for ((gn, gs), (en, es)) in got.iter().zip(&expect) {
            assert_eq!(gn, en, "source {s}");
            assert!((gs - es).abs() < 1e-12, "source {s}: {gs} vs {es}");
        }
        assert_eq!(got, &cw.single_source_topk(s, 5), "MCAP row ≡ sparse top-k, source {s}");
    }
}
