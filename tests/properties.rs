//! Property-based tests over the whole stack (proptest).

use pasco::graph::{generators, GraphBuilder};
use pasco::mc::walks::{reverse_walk_distributions, WalkParams};
use pasco::simrank::exact::ExactSimRank;
use pasco::solver::SparseVec;
use proptest::prelude::*;

/// Arbitrary edge lists over up to 40 nodes.
fn edges_strategy() -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0u32..40, 0u32..40), 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR construction from arbitrary edge lists preserves the edge
    /// multiset (after dedup) in both directions.
    #[test]
    fn csr_invariants_hold(edges in edges_strategy()) {
        let mut b = GraphBuilder::new();
        b.ensure_nodes(40);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = b.build();
        let mut expect: Vec<(u32, u32)> = edges.clone();
        expect.sort_unstable();
        expect.dedup();
        let got: Vec<(u32, u32)> = g.edges().collect();
        prop_assert_eq!(got, expect);
        // In/out views agree edge by edge.
        for v in g.nodes() {
            for &u in g.in_neighbors(v) {
                prop_assert!(g.out_neighbors(u).binary_search(&v).is_ok());
            }
        }
        let in_total: u64 = g.nodes().map(|v| g.in_degree(v) as u64).sum();
        prop_assert_eq!(in_total, g.edge_count());
    }

    /// Exact SimRank on arbitrary graphs is symmetric, bounded and has a
    /// unit diagonal.
    #[test]
    fn exact_simrank_axioms(edges in edges_strategy(), c in 0.1f64..0.9) {
        let mut b = GraphBuilder::new();
        b.ensure_nodes(12);
        for &(u, v) in &edges {
            b.add_edge(u % 12, v % 12);
        }
        let g = b.build();
        let ex = ExactSimRank::compute(&g, c, 12);
        for i in 0..12u32 {
            prop_assert_eq!(ex.get(i, i), 1.0);
            for j in 0..12u32 {
                let s = ex.get(i, j);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&s), "s({},{}) = {}", i, j, s);
                prop_assert!((s - ex.get(j, i)).abs() < 1e-9);
            }
        }
    }

    /// Walk distributions conserve walkers: step-t mass never exceeds
    /// step-(t−1) mass, and every count vector sums to at most R.
    #[test]
    fn walk_mass_is_monotone(seed in any::<u64>(), source in 0u32..100) {
        let g = generators::barabasi_albert(100, 3, 5);
        let d = reverse_walk_distributions(&g, source, WalkParams::new(6, 50), seed);
        let mut prev = 50u64;
        for t in 0..=6 {
            let total: u64 = d.counts[t].iter().map(|&(_, c)| c).sum();
            prop_assert!(total <= prev, "step {}: {} > {}", t, total, prev);
            prev = total;
        }
    }

    /// Sparse vector algebra: add_scaled distributes over dot products.
    #[test]
    fn sparse_vec_linearity(
        a in prop::collection::vec((0u32..500, -10.0f64..10.0), 0..50),
        b in prop::collection::vec((0u32..500, -10.0f64..10.0), 0..50),
        w in prop::collection::vec((0u32..500, -10.0f64..10.0), 0..50),
        k in -4.0f64..4.0,
    ) {
        let a = SparseVec::from_unsorted(a);
        let b = SparseVec::from_unsorted(b);
        let w = SparseVec::from_unsorted(w);
        let lhs = w.dot_sparse(&a.add_scaled(&b, k));
        let rhs = w.dot_sparse(&a) + k * w.dot_sparse(&b);
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs().max(rhs.abs())));
    }

    /// The deterministic RNG keying: distinct (seed, source, walker)
    /// triples give distinct streams, identical triples identical streams.
    #[test]
    fn walker_streams_are_keyed(seed in any::<u64>(), v in 0u32..1000, w in 0u32..1000) {
        use pasco::mc::walks::{step_u64, walker_key};
        let k1 = walker_key(seed, v, w);
        let k2 = walker_key(seed, v, w.wrapping_add(1));
        prop_assert_ne!(k1, k2);
        prop_assert_eq!(step_u64(k1, 3), step_u64(k1, 3));
        prop_assert_ne!(step_u64(k1, 3), step_u64(k1, 4));
    }

    /// Double reversal is the identity, and reversal swaps degree
    /// sequences, on arbitrary graphs.
    #[test]
    fn reversal_involution(edges in edges_strategy()) {
        use pasco::graph::transform::reverse;
        let mut b = GraphBuilder::new();
        b.ensure_nodes(40);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = b.build();
        let r = reverse(&g);
        prop_assert_eq!(&reverse(&r), &g);
        for v in g.nodes() {
            prop_assert_eq!(g.in_degree(v), r.out_degree(v));
            prop_assert_eq!(g.out_degree(v), r.in_degree(v));
        }
    }

    /// WCC labels are consistent: every edge's endpoints share a label,
    /// and the induced subgraph of any component contains all its edges.
    #[test]
    fn wcc_labels_are_edge_consistent(edges in edges_strategy()) {
        use pasco::graph::transform::weakly_connected_components;
        let mut b = GraphBuilder::new();
        b.ensure_nodes(40);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = b.build();
        let labels = weakly_connected_components(&g);
        for (u, v) in g.edges() {
            prop_assert_eq!(labels[u as usize], labels[v as usize]);
        }
    }

    /// The binary graph format rejects random corruption of the payload
    /// rather than silently mis-loading (offsets and lengths are checked).
    #[test]
    fn binary_format_detects_truncation(cut in 9usize..60) {
        use pasco::graph::io;
        let g = generators::erdos_renyi(20, 60, 5);
        let dir = std::env::temp_dir().join("pasco_prop_io");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("t{cut}.bin"));
        io::write_binary(&g, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let keep = bytes.len().saturating_sub(cut);
        std::fs::write(&path, &bytes[..keep]).unwrap();
        prop_assert!(io::read_binary(&path).is_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cross-mode equality on random small graphs (the expensive property,
    /// fewer cases).
    #[test]
    fn modes_agree_on_random_graphs(seed in 0u64..1000) {
        use pasco::cluster::ClusterConfig;
        use pasco::simrank::{CloudWalker, ExecMode, SimRankConfig};
        use std::sync::Arc;
        let g = Arc::new(generators::rmat(6, 300, generators::RmatParams::default(), seed));
        let cfg = SimRankConfig::fast().with_seed(seed).with_t(4).with_r(16).with_r_query(64);
        let l = CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Local).unwrap();
        let r = CloudWalker::build(
            Arc::clone(&g),
            cfg,
            ExecMode::Rdd(ClusterConfig::local(3)),
        ).unwrap();
        prop_assert_eq!(l.diagonal(), r.diagonal());
        prop_assert_eq!(l.single_pair(1, 2), r.single_pair(1, 2));
    }

    /// The shard count of the sharded engine never changes any answer:
    /// for arbitrary graphs, seeds and shard counts, the index, MCSP,
    /// dense MCSS and top-k equal the local engine's bitwise.
    #[test]
    fn shard_count_never_changes_results(
        edges in prop::collection::vec((0u32..40, 0u32..40), 0..160),
        shards in 1u32..7,
        seed in 0u64..1000,
    ) {
        use pasco::simrank::{CloudWalker, ExecMode, SimRankConfig};
        use std::sync::Arc;
        let mut b = GraphBuilder::new();
        b.ensure_nodes(40);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = Arc::new(b.build());
        let cfg = SimRankConfig::fast().with_seed(seed).with_t(4).with_r(16).with_r_query(64);
        let l = CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Local).unwrap();
        let s = CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Sharded { shards }).unwrap();
        prop_assert_eq!(l.diagonal(), s.diagonal());
        prop_assert_eq!(l.single_pair(3, 17), s.single_pair(3, 17));
        prop_assert_eq!(l.single_source(5), s.single_source(5));
        prop_assert_eq!(l.single_source_topk(9, 6), s.single_source_topk(9, 6));
    }

    /// The shard count of the *on-disk* store never changes any answer:
    /// for arbitrary graphs, seeds and shard counts, a walker reopened
    /// from a saved store equals the resident walker bitwise — the
    /// out-of-core dual of `shard_count_never_changes_results`.
    #[test]
    fn store_parts_never_changes_results(
        edges in prop::collection::vec((0u32..40, 0u32..40), 0..160),
        parts in 1u32..7,
        seed in 0u64..1000,
    ) {
        use pasco::simrank::{CloudWalker, ExecMode, SimRankConfig};
        use std::sync::Arc;
        let mut b = GraphBuilder::new();
        b.ensure_nodes(40);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = Arc::new(b.build());
        let cfg = SimRankConfig::fast().with_seed(seed).with_t(4).with_r(16).with_r_query(64);
        let l = CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Local).unwrap();
        let dir = std::env::temp_dir()
            .join(format!("pasco_prop_store_{parts}_{seed}_{}", edges.len()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        l.save_store(&dir, parts).unwrap();
        let m = CloudWalker::open_store(&dir, cfg).unwrap();
        prop_assert_eq!(l.diagonal(), m.diagonal());
        prop_assert_eq!(l.single_pair(3, 17), m.single_pair(3, 17));
        prop_assert_eq!(l.single_source(5), m.single_source(5));
        prop_assert_eq!(l.single_source_topk(9, 6), m.single_source_topk(9, 6));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Shuffles are permutations: nothing lost, nothing duplicated, routing
    /// respected — for arbitrary record sets and partition counts.
    #[test]
    fn shuffle_is_permutation(
        items in prop::collection::vec(any::<(u32, u32)>(), 0..500),
        src_parts in 1usize..6,
        dst_parts in 1usize..6,
    ) {
        use pasco::cluster::{Cluster, ClusterConfig, DistVec};
        let cluster = Cluster::new(ClusterConfig::local(2));
        let dv = DistVec::parallelize(items.clone(), src_parts);
        let out = dv.shuffle(&cluster, "prop", dst_parts, |&(k, _)| (k as usize) % dst_parts);
        for p in 0..dst_parts {
            prop_assert!(out.partition(p).iter().all(|&(k, _)| k as usize % dst_parts == p));
        }
        let mut got = out.collect();
        let mut expect = items;
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }
}
