//! Integration: the network front door. A loopback `PascoServer` must be
//! protocol-conformant at the byte level (golden frames, malformed-frame
//! rejection) and semantically transparent: every `QueryRequest` variant
//! answered over TCP is bit-identical to a direct `QueryService::execute`
//! on the same engine — Local and Sharded alike — including pipelined
//! out-of-order exchanges, typed errors as error frames, and a graceful
//! drain on the shutdown frame.

use pasco::graph::generators;
use pasco::server::{ClientError, PascoClient, PascoServer, ServerConfig, ServerHandle};
use pasco::simrank::api::envelope::{Envelope, FrameKind, HEADER_LEN, MAGIC};
use pasco::simrank::api::wire::WireCodec;
use pasco::simrank::{
    CloudWalker, ExecMode, QueryError, QueryRequest, QueryResponse, QueryService, QuerySession,
    SimRankConfig,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

const NODES: u32 = 80;

fn walker(mode: ExecMode) -> Arc<CloudWalker> {
    let g = Arc::new(generators::barabasi_albert(NODES, 3, 13));
    Arc::new(CloudWalker::build(g, SimRankConfig::fast(), mode).unwrap())
}

fn local_walker() -> &'static Arc<CloudWalker> {
    static W: OnceLock<Arc<CloudWalker>> = OnceLock::new();
    W.get_or_init(|| walker(ExecMode::Local))
}

/// Boots a server over `svc` on an ephemeral loopback port.
fn spawn_server(
    svc: Arc<dyn QueryService>,
    cfg: ServerConfig,
) -> (SocketAddr, ServerHandle, JoinHandle<()>) {
    let server = PascoServer::bind("127.0.0.1:0", svc, cfg).unwrap();
    let (addr, handle) = (server.local_addr(), server.handle());
    let join = std::thread::spawn(move || server.run().unwrap());
    (addr, handle, join)
}

/// Every request variant the protocol knows, all in range.
fn all_variants() -> Vec<QueryRequest> {
    vec![
        QueryRequest::SinglePair { i: 3, j: 41 },
        QueryRequest::SingleSource { i: 7 },
        QueryRequest::SingleSourcePush { i: 7 },
        QueryRequest::SingleSourceTopK { i: 11, k: 6 },
        QueryRequest::PairsMatrix { rows: vec![1, 5], cols: vec![2, 9, 17] },
        QueryRequest::Cohort { v: 23 },
        QueryRequest::Batch(vec![
            QueryRequest::SinglePair { i: 4, j: 6 },
            QueryRequest::SingleSourceTopK { i: 4, k: 3 },
        ]),
    ]
}

/// The acceptance bar: client → server → session answers are bit-identical
/// to direct `QueryService::execute`, for every variant, on both the
/// Local and the Sharded engine.
#[test]
fn network_answers_equal_direct_execute_on_local_and_sharded() {
    for mode in [ExecMode::Local, ExecMode::Sharded { shards: 3 }] {
        let cw = walker(mode);
        let session = Arc::new(QuerySession::new(Arc::clone(&cw), 32));
        let (addr, _, join) = spawn_server(Arc::clone(&session) as _, ServerConfig::default());
        let mut client = PascoClient::connect(addr).unwrap();
        assert_eq!(client.server_info().node_count, NODES);
        for req in all_variants() {
            let over_wire = client.query(req.clone()).unwrap();
            let direct = session.execute(req.clone()).unwrap();
            assert_eq!(over_wire, direct, "{req:?} on {}", cw.mode_name());
        }
        client.shutdown_server().unwrap();
        join.join().unwrap();
    }
}

/// Pipelining: many requests on the wire before any answer is read, then
/// collected in *reverse* send order — every answer must match by id even
/// though the reads force the out-of-order buffer through its paces.
#[test]
fn pipelined_out_of_order_collection_matches_by_request_id() {
    let cw = local_walker();
    let (addr, _, join) =
        spawn_server(Arc::clone(cw) as _, ServerConfig { workers: 3, ..ServerConfig::default() });
    let mut client = PascoClient::connect(addr).unwrap();

    let reqs = all_variants();
    let ids: Vec<u64> = reqs.iter().map(|r| client.send(r).unwrap()).collect();
    for (id, req) in ids.iter().zip(&reqs).rev() {
        let got = client.wait(*id).unwrap().unwrap();
        assert_eq!(got, cw.execute(req.clone()).unwrap(), "{req:?}");
    }
    assert!(client.is_open());

    // Waiting on an id that was never issued (or one already delivered)
    // fails fast instead of blocking on a frame that will never come.
    assert!(matches!(client.wait(9_999), Err(ClientError::UnknownId { id: 9_999 })));
    assert!(matches!(client.wait(ids[0]), Err(ClientError::UnknownId { .. })));
    assert!(client.is_open());

    // query_batch pipelines internally and keeps per-request outcomes.
    let outcomes = client.query_batch(&reqs).unwrap();
    for (outcome, req) in outcomes.iter().zip(&reqs) {
        assert_eq!(outcome.as_ref().unwrap(), &cw.execute(req.clone()).unwrap());
    }
    client.shutdown_server().unwrap();
    join.join().unwrap();
}

/// A typed `QueryError` crosses the wire as an error frame: the client
/// surfaces it typed, nothing panics, and the connection keeps serving.
#[test]
fn query_error_travels_as_error_frame_and_connection_survives() {
    let cw = local_walker();
    let (addr, _, join) = spawn_server(Arc::clone(cw) as _, ServerConfig::default());
    let mut client = PascoClient::connect(addr).unwrap();

    let bad = NODES + 9;
    match client.query(QueryRequest::SingleSource { i: bad }) {
        Err(ClientError::Query(e)) => {
            assert_eq!(e, QueryError::NodeOutOfRange { node: bad, node_count: NODES });
        }
        other => panic!("expected a typed query error, got {other:?}"),
    }
    assert!(client.is_open(), "a typed error must not close the connection");

    // Mixed batch: the bad request fails alone, its neighbours answer.
    let outcomes = client
        .query_batch(&[
            QueryRequest::SinglePair { i: 1, j: 2 },
            QueryRequest::SingleSourceTopK { i: 1, k: 0 },
            QueryRequest::Cohort { v: 5 },
        ])
        .unwrap();
    assert_eq!(outcomes[0], Ok(QueryResponse::Score(cw.single_pair(1, 2))));
    assert_eq!(outcomes[1], Err(QueryError::InvalidK { k: 0 }));
    assert_eq!(outcomes[2], Ok(QueryResponse::Cohort(cw.query_cohort(5))));

    // And the connection still answers a clean query afterwards.
    assert_eq!(
        client.query(QueryRequest::SinglePair { i: 2, j: 3 }).unwrap(),
        QueryResponse::Score(cw.single_pair(2, 3))
    );
    client.shutdown_server().unwrap();
    join.join().unwrap();
}

fn hex(s: &str) -> Vec<u8> {
    s.split_whitespace().map(|b| u8::from_str_radix(b, 16).unwrap()).collect()
}

/// Reads until the peer closes, returning everything received.
fn read_to_close(stream: &mut TcpStream) -> Vec<u8> {
    let mut all = Vec::new();
    let _ = stream.read_to_end(&mut all);
    all
}

/// Byte-level conformance: a raw socket speaking fixed hex fixtures gets
/// the exact bytes the protocol spec promises — handshake ack, response
/// frame, goodbye — with no client library in the loop.
#[test]
fn golden_bytes_over_a_raw_socket() {
    let cw = local_walker();
    let cfg = ServerConfig { max_frame_bytes: 1 << 20, ..ServerConfig::default() };
    let (addr, handle, join) = spawn_server(Arc::clone(cw) as _, cfg);
    let mut stream = TcpStream::connect(addr).unwrap();

    // Hello: magic "PSCO", version 1, kind 0, flags 0, id 0, empty.
    stream.write_all(&hex("50 53 43 4f 01 00 00 00 00 00 00 00 00 00 00 00 00 00 00 00")).unwrap();
    // HelloAck: kind 1, 8-byte ServerInfo { node_count=80=0x50, max_frame=0x100000 }.
    let mut ack = vec![0u8; HEADER_LEN + 8];
    stream.read_exact(&mut ack).unwrap();
    assert_eq!(
        ack,
        hex("50 53 43 4f 01 00 01 00 00 00 00 00 00 00 00 00 08 00 00 00 \
             50 00 00 00 00 00 10 00"),
    );

    // Request id 0x2a: SinglePair { i: 3, j: 41 } (tag 0, u32 LE × 2).
    stream
        .write_all(&hex("50 53 43 4f 01 00 02 00 2a 00 00 00 00 00 00 00 09 00 00 00 \
             00 03 00 00 00 29 00 00 00"))
        .unwrap();
    // Response: header (kind 3, id 0x2a echoed, 9-byte payload), then
    // tag 0 + the f64 bits of the direct answer.
    let mut resp = vec![0u8; HEADER_LEN + 9];
    stream.read_exact(&mut resp).unwrap();
    let mut expect = hex("50 53 43 4f 01 00 03 00 2a 00 00 00 00 00 00 00 09 00 00 00 00");
    expect.extend_from_slice(&cw.single_pair(3, 41).to_le_bytes());
    assert_eq!(resp, expect);

    // Shutdown (kind 5) → Goodbye (kind 6), then a clean close.
    stream.write_all(&hex("50 53 43 4f 01 00 05 00 00 00 00 00 00 00 00 00 00 00 00 00")).unwrap();
    let tail = read_to_close(&mut stream);
    assert_eq!(tail, hex("50 53 43 4f 01 00 06 00 00 00 00 00 00 00 00 00 00 00 00 00"));
    drop(handle);
    join.join().unwrap();
}

/// Framing violations close the connection — bad magic, an unsupported
/// version, an oversize payload announcement, an undecodable request
/// payload — and the server keeps serving everyone else.
#[test]
fn malformed_and_oversize_frames_drop_the_connection_not_the_server() {
    let cw = local_walker();
    let cfg = ServerConfig { max_frame_bytes: 4096, ..ServerConfig::default() };
    let (addr, _, join) = spawn_server(Arc::clone(cw) as _, cfg);

    // Bad magic: closed before any handshake answer.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    assert!(read_to_close(&mut s).is_empty(), "no bytes for a non-protocol peer");

    // Wrong version in the hello.
    let mut s = TcpStream::connect(addr).unwrap();
    let mut bad = Envelope::hello().to_bytes();
    bad[4] = 9;
    s.write_all(&bad).unwrap();
    assert!(read_to_close(&mut s).is_empty());

    // Valid handshake, then a header announcing a payload over the limit:
    // the ack arrives, then the connection closes with nothing more.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&Envelope::hello().to_bytes()).unwrap();
    let mut ack = vec![0u8; HEADER_LEN + 8];
    s.read_exact(&mut ack).unwrap();
    assert_eq!(ack[..4], MAGIC);
    let mut oversize = Envelope::request(1, &QueryRequest::Cohort { v: 1 }).to_bytes();
    oversize[16..20].copy_from_slice(&(1u32 << 30).to_le_bytes());
    s.write_all(&oversize).unwrap();
    assert!(read_to_close(&mut s).is_empty(), "oversize frame must drop the connection");

    // Valid envelope, garbage payload: also dropped.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&Envelope::hello().to_bytes()).unwrap();
    s.read_exact(&mut [0u8; HEADER_LEN + 8]).unwrap();
    let garbage = Envelope { kind: FrameKind::Request, request_id: 1, payload: vec![0xee, 0xee] };
    s.write_all(&garbage.to_bytes()).unwrap();
    assert!(read_to_close(&mut s).is_empty());

    // After all of that, a well-behaved client is served normally.
    let mut client = PascoClient::connect(addr).unwrap();
    assert_eq!(
        client.query(QueryRequest::SinglePair { i: 0, j: 1 }).unwrap(),
        QueryResponse::Score(cw.single_pair(0, 1))
    );
    client.shutdown_server().unwrap();
    join.join().unwrap();
}

/// A peer that connects and never sends a byte is cut off at the
/// handshake deadline instead of pinning a connection thread (and its
/// socket) until server shutdown.
#[test]
fn silent_peers_are_dropped_at_the_handshake_deadline() {
    let cw = local_walker();
    let cfg = ServerConfig {
        io_timeout: std::time::Duration::from_millis(150),
        ..ServerConfig::default()
    };
    let (addr, _, join) = spawn_server(Arc::clone(cw) as _, cfg);
    let started = std::time::Instant::now();
    let mut silent = TcpStream::connect(addr).unwrap();
    assert!(read_to_close(&mut silent).is_empty(), "no bytes for a silent peer");
    let waited = started.elapsed();
    assert!(waited < std::time::Duration::from_secs(5), "dropped at the deadline, not never");
    // The server is unaffected.
    let mut client = PascoClient::connect(addr).unwrap();
    assert!(client.query(QueryRequest::SinglePair { i: 0, j: 1 }).is_ok());
    client.shutdown_server().unwrap();
    join.join().unwrap();
}

/// An oversize *request* is refused client-side against the advertised
/// limit, without poisoning the connection.
#[test]
fn client_refuses_requests_over_the_advertised_frame_limit() {
    let cw = local_walker();
    let cfg = ServerConfig { max_frame_bytes: 64, ..ServerConfig::default() };
    let (addr, _, join) = spawn_server(Arc::clone(cw) as _, cfg);
    let mut client = PascoClient::connect(addr).unwrap();
    assert_eq!(client.server_info().max_frame_bytes, 64);
    let huge = QueryRequest::PairsMatrix { rows: (0..40).collect(), cols: (0..40).collect() };
    assert!(matches!(client.send(&huge), Err(ClientError::Protocol(_))));
    assert!(client.is_open(), "nothing touched the wire");
    assert!(client.query(QueryRequest::SinglePair { i: 1, j: 2 }).is_ok());

    // And the server binds itself to the same limit: an answer that
    // would not fit degrades into a typed error (never an oversize frame
    // that would poison the client), and the connection keeps serving.
    match client.query(QueryRequest::SingleSource { i: 1 }) {
        Err(ClientError::Query(QueryError::ResponseTooLarge { bytes, max_frame: 64 })) => {
            assert!(bytes > 64, "dense row of {NODES} nodes is {bytes} bytes");
        }
        other => panic!("expected ResponseTooLarge, got {other:?}"),
    }
    assert!(client.is_open());
    assert!(client.query(QueryRequest::SinglePair { i: 2, j: 3 }).is_ok());
    client.shutdown_server().unwrap();
    join.join().unwrap();
}

/// The shutdown frame drains the whole server: the shutting-down client
/// gets every in-flight answer then a goodbye; other connected clients
/// are told goodbye rather than cut off; `run()` returns; and a poisoned
/// client reports `Poisoned` (reconnect) instead of writing to the dead
/// stream.
#[test]
fn shutdown_frame_drains_the_server_cleanly() {
    let cw = local_walker();
    let (addr, _, join) = spawn_server(Arc::clone(cw) as _, ServerConfig::default());
    let mut survivor = PascoClient::connect(addr).unwrap();
    assert!(survivor.query(QueryRequest::SinglePair { i: 1, j: 2 }).is_ok());

    let mut closer = PascoClient::connect(addr).unwrap();
    // Leave answers in flight when the shutdown frame goes out: the
    // server must deliver them (drain) before its goodbye.
    for req in [QueryRequest::SingleSource { i: 3 }, QueryRequest::Cohort { v: 4 }] {
        closer.send(&req).unwrap();
    }
    closer.shutdown_server().unwrap();
    join.join().unwrap();

    // The surviving client's next exchange learns the server is gone —
    // as a clean `Closed`/`Io`, never a hang or a panic.
    match survivor.query(QueryRequest::SinglePair { i: 1, j: 2 }) {
        Err(ClientError::Closed) | Err(ClientError::Io(_)) => {}
        other => panic!("expected a clean close, got {other:?}"),
    }
    assert!(!survivor.is_open());
    assert!(matches!(
        survivor.query(QueryRequest::SinglePair { i: 1, j: 2 }),
        Err(ClientError::Poisoned)
    ));
}

/// `ServerHandle::shutdown` must drain promptly on a *wildcard* bind.
/// The old implementation woke the accept loop by connecting to itself
/// and needed a special case to turn `0.0.0.0` into a dialable address;
/// the reactor's eventfd wake has no such seam — this pins that down.
#[test]
fn handle_shutdown_drains_promptly_on_a_wildcard_bind() {
    let cw = local_walker();
    let server = PascoServer::bind(
        "0.0.0.0:0",
        Arc::clone(cw) as Arc<dyn QueryService>,
        ServerConfig::default(),
    )
    .unwrap();
    let port = server.local_addr().port();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().unwrap());

    // A connected, idle client when the shutdown lands: it must be told
    // goodbye, not abandoned.
    let mut client = PascoClient::connect(("127.0.0.1", port)).unwrap();
    assert!(client.query(QueryRequest::SinglePair { i: 1, j: 2 }).is_ok());

    let started = std::time::Instant::now();
    handle.shutdown();
    join.join().unwrap();
    assert!(
        started.elapsed() < std::time::Duration::from_secs(5),
        "wildcard shutdown must not wait for a poll interval or a new connection"
    );
    match client.query(QueryRequest::SinglePair { i: 1, j: 2 }) {
        Err(ClientError::Closed) | Err(ClientError::Io(_)) => {}
        other => panic!("expected a clean close after drain, got {other:?}"),
    }
}

/// The zero-idle-wakeup guarantee, asserted with the server's own
/// counters: 64 established connections sitting between requests cause
/// not a single `read` call. (The retired `poll_interval` design woke
/// every connection every 25ms just to check for drain.)
#[test]
fn idle_connections_cause_zero_reads() {
    let cw = local_walker();
    let (addr, handle, join) = spawn_server(Arc::clone(cw) as _, ServerConfig::default());
    let mut clients: Vec<PascoClient> = (0..64)
        .map(|_| {
            let mut c = PascoClient::connect(addr).unwrap();
            assert!(c.query(QueryRequest::SinglePair { i: 1, j: 2 }).is_ok());
            c
        })
        .collect();
    assert_eq!(handle.stats().accepted, 64);

    // Let in-flight readiness settle, then sample over an idle window.
    std::thread::sleep(std::time::Duration::from_millis(100));
    let before = handle.stats();
    std::thread::sleep(std::time::Duration::from_millis(400));
    let after = handle.stats();
    assert_eq!(after.reads, before.reads, "an idle server must not touch its sockets");
    assert_eq!(after.wakeups, before.wakeups, "an idle server must not leave epoll_wait");

    // The connections are all still live, not silently dropped.
    for c in &mut clients {
        assert!(c.query(QueryRequest::SinglePair { i: 2, j: 3 }).is_ok());
    }
    handle.shutdown();
    join.join().unwrap();
}

/// A slowloris peer — trickling one byte per 100ms so every read makes
/// "progress" — is still dropped: the deadline is per *frame*, armed when
/// the frame starts and not reset by trickled bytes.
#[test]
fn slowloris_trickle_is_dropped_at_io_timeout() {
    let cw = local_walker();
    let cfg = ServerConfig {
        io_timeout: std::time::Duration::from_millis(300),
        ..ServerConfig::default()
    };
    let (addr, handle, join) = spawn_server(Arc::clone(cw) as _, cfg);

    // Handshake at full speed: the attack starts inside the session.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&Envelope::hello().to_bytes()).unwrap();
    s.read_exact(&mut [0u8; HEADER_LEN + 8]).unwrap();

    let frame = Envelope::request(1, &QueryRequest::SinglePair { i: 1, j: 2 }).to_bytes();
    let started = std::time::Instant::now();
    let mut sent = 0usize;
    for byte in &frame {
        if s.write_all(std::slice::from_ref(byte)).is_err() {
            break; // the server already cut us off
        }
        sent += 1;
        std::thread::sleep(std::time::Duration::from_millis(100));
        if started.elapsed() > std::time::Duration::from_secs(2) {
            break;
        }
    }
    assert!(sent < frame.len(), "the full frame must never get through at this rate");
    assert!(read_to_close(&mut s).is_empty(), "no answer for a slowloris frame");
    let waited = started.elapsed();
    assert!(waited < std::time::Duration::from_secs(2), "dropped near io_timeout, not eventually");
    assert!(handle.stats().timeouts >= 1, "the drop must be the deadline's doing");

    // The event loop is unharmed.
    let mut client = PascoClient::connect(addr).unwrap();
    assert!(client.query(QueryRequest::SinglePair { i: 0, j: 1 }).is_ok());
    client.shutdown_server().unwrap();
    join.join().unwrap();
}

/// Disconnecting mid-frame — header half-sent, payload truncated, or a
/// vanishing handshake — must never wedge the event loop: each partial
/// conversation ends in a dropped connection and the next client is
/// served normally.
#[test]
fn mid_frame_disconnects_never_wedge_the_loop() {
    let cw = local_walker();
    let (addr, handle, join) = spawn_server(Arc::clone(cw) as _, ServerConfig::default());

    let hello = Envelope::hello().to_bytes();
    let request = Envelope::request(7, &QueryRequest::Cohort { v: 3 }).to_bytes();
    for cut in [1, HEADER_LEN / 2, HEADER_LEN, HEADER_LEN + 2] {
        // Half a handshake, gone.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&hello[..cut.min(hello.len())]).unwrap();
        drop(s);

        // Full handshake, then a truncated request, gone.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&hello).unwrap();
        s.read_exact(&mut [0u8; HEADER_LEN + 8]).unwrap();
        s.write_all(&request[..cut]).unwrap();
        drop(s);

        // The loop still answers a well-behaved client immediately.
        let mut client = PascoClient::connect(addr).unwrap();
        assert_eq!(
            client.query(QueryRequest::SinglePair { i: 0, j: 1 }).unwrap(),
            QueryResponse::Score(cw.single_pair(0, 1))
        );
    }
    handle.shutdown();
    join.join().unwrap();
}

/// A `QueryService` whose `Cohort` answers stall until released — the
/// "expensive" request the overtaking test pits a cheap one against.
struct StallCohorts {
    inner: Arc<CloudWalker>,
    gate: std::sync::Mutex<std::sync::mpsc::Receiver<()>>,
}

impl QueryService for StallCohorts {
    fn execute(&self, req: QueryRequest) -> Result<QueryResponse, QueryError> {
        if matches!(req, QueryRequest::Cohort { .. }) {
            let gate = self.gate.lock().unwrap();
            let _ = gate.recv_timeout(std::time::Duration::from_secs(10));
        }
        self.inner.execute(req)
    }
    fn node_count(&self) -> u32 {
        self.inner.node_count()
    }
}

/// Completion-order pipelining on one connection: a cheap query sent
/// *after* an expensive one comes back *before* it — observed on the raw
/// byte stream, so the ordering claim is about the server, not about
/// client-side buffering.
#[test]
fn cheap_query_overtakes_expensive_on_one_connection() {
    let cw = local_walker();
    let (gate_tx, gate_rx) = std::sync::mpsc::channel();
    let svc: Arc<dyn QueryService> =
        Arc::new(StallCohorts { inner: Arc::clone(cw), gate: std::sync::Mutex::new(gate_rx) });
    let (addr, handle, join) =
        spawn_server(svc, ServerConfig { workers: 2, ..ServerConfig::default() });

    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&Envelope::hello().to_bytes()).unwrap();
    s.read_exact(&mut [0u8; HEADER_LEN + 8]).unwrap();

    // Expensive first (id 1, stalled on the gate), cheap second (id 2).
    s.write_all(&Envelope::request(1, &QueryRequest::Cohort { v: 3 }).to_bytes()).unwrap();
    s.write_all(&Envelope::request(2, &QueryRequest::SinglePair { i: 0, j: 1 }).to_bytes())
        .unwrap();

    // First frame off the wire must be the *cheap* answer, while the
    // expensive one is still parked in the pool.
    let mut head = [0u8; HEADER_LEN];
    s.read_exact(&mut head).unwrap();
    let first_id = u64::from_le_bytes(head[8..16].try_into().unwrap());
    assert_eq!(first_id, 2, "completion order, not request order");
    let len = u32::from_le_bytes(head[16..20].try_into().unwrap()) as usize;
    s.read_exact(&mut vec![0u8; len]).unwrap();

    // Release the stalled cohort; its answer (id 1) follows.
    gate_tx.send(()).unwrap();
    s.read_exact(&mut head).unwrap();
    assert_eq!(u64::from_le_bytes(head[8..16].try_into().unwrap()), 1);
    let len = u32::from_le_bytes(head[16..20].try_into().unwrap()) as usize;
    s.read_exact(&mut vec![0u8; len]).unwrap();

    drop(s);
    handle.shutdown();
    join.join().unwrap();
}

/// 256 concurrent connections, every answer bit-identical to a direct
/// `execute` on the same engine — the reactor serves a crowd without
/// mixing anybody's frames up.
#[test]
fn answers_stay_bit_identical_across_256_concurrent_clients() {
    let cw = local_walker();
    let (addr, handle, join) = spawn_server(Arc::clone(cw) as _, ServerConfig::default());

    std::thread::scope(|scope| {
        for c in 0..256u32 {
            let cw = Arc::clone(cw);
            scope.spawn(move || {
                let mut client = PascoClient::connect(addr).unwrap();
                let (i, j) = (c % NODES, (c * 7 + 1) % NODES);
                let reqs = [
                    QueryRequest::SinglePair { i, j },
                    QueryRequest::SingleSourceTopK { i, k: 4 },
                    QueryRequest::Cohort { v: j },
                ];
                // Pipelined, collected in reverse: the out-of-order
                // buffer and completion-order writes both in play.
                let ids: Vec<u64> = reqs.iter().map(|r| client.send(r).unwrap()).collect();
                for (id, req) in ids.iter().zip(&reqs).rev() {
                    let got = client.wait(*id).unwrap().unwrap();
                    assert_eq!(got, cw.execute(req.clone()).unwrap(), "client {c}: {req:?}");
                }
            });
        }
    });
    assert_eq!(handle.stats().accepted, 256);
    assert_eq!(handle.stats().requests, 256 * 3);
    handle.shutdown();
    join.join().unwrap();
}

/// Reads one response frame off a raw stream, returning `(id, payload)`.
fn read_response(s: &mut TcpStream) -> (u64, Vec<u8>) {
    let mut head = [0u8; HEADER_LEN];
    s.read_exact(&mut head).unwrap();
    assert_eq!(head[..4], MAGIC);
    assert_eq!(head[6], 3, "expected a Response frame");
    let id = u64::from_le_bytes(head[8..16].try_into().unwrap());
    let len = u32::from_le_bytes(head[16..20].try_into().unwrap()) as usize;
    let mut payload = vec![0u8; len];
    s.read_exact(&mut payload).unwrap();
    (id, payload)
}

/// One write(2) carrying 3x the pipelining cap (`workers * 4`, floored
/// at 8): the reactor reads the whole burst in one gulp, pauses the
/// connection at the cap, and must *stash* the already-consumed tail —
/// not discard it on the theory it "stays in the kernel buffer" (it
/// does not; `read` took it). Every request gets exactly one answer.
#[test]
fn pipelining_past_the_cap_in_one_write_loses_no_requests() {
    let cw = local_walker();
    let (addr, handle, join) =
        spawn_server(Arc::clone(cw) as _, ServerConfig { workers: 2, ..ServerConfig::default() });

    const BURST: u64 = 24; // cap = max(8, 2 * 4) = 8; three times past it
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&Envelope::hello().to_bytes()).unwrap();
    s.read_exact(&mut [0u8; HEADER_LEN + 8]).unwrap();

    let pair = |id: u64| ((id % NODES as u64) as u32, ((id * 5 + 2) % NODES as u64) as u32);
    let mut burst = Vec::new();
    for id in 1..=BURST {
        let (i, j) = pair(id);
        burst.extend_from_slice(
            &Envelope::request(id, &QueryRequest::SinglePair { i, j }).to_bytes(),
        );
    }
    s.write_all(&burst).unwrap();

    // Answers arrive in completion order; collect and match by id.
    let mut seen = std::collections::HashSet::new();
    for _ in 0..BURST {
        let (id, payload) = read_response(&mut s);
        assert!(seen.insert(id), "request {id} answered twice");
        let (i, j) = pair(id);
        assert_eq!(payload[0], 0, "Score tag");
        assert_eq!(payload[1..], cw.single_pair(i, j).to_le_bytes(), "request {id}");
    }
    assert_eq!(handle.stats().requests, BURST, "every pipelined request reached the pool");
    drop(s);
    handle.shutdown();
    join.join().unwrap();
}

/// A client that bursts past the cap, half-closes its write side, and
/// waits must still collect every answer: neither the RDHUP on the
/// paused connection nor the EOF read afterwards may be mistaken for a
/// dead peer while responses are owed.
#[test]
fn half_close_after_a_burst_still_delivers_every_answer() {
    let cw = local_walker();
    let (addr, handle, join) =
        spawn_server(Arc::clone(cw) as _, ServerConfig { workers: 2, ..ServerConfig::default() });

    const BURST: u64 = 24;
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&Envelope::hello().to_bytes()).unwrap();
    s.read_exact(&mut [0u8; HEADER_LEN + 8]).unwrap();
    let mut burst = Vec::new();
    for id in 1..=BURST {
        burst.extend_from_slice(
            &Envelope::request(id, &QueryRequest::SinglePair { i: 1, j: 2 }).to_bytes(),
        );
    }
    s.write_all(&burst).unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();

    let mut seen = std::collections::HashSet::new();
    for _ in 0..BURST {
        let (id, payload) = read_response(&mut s);
        assert!(seen.insert(id), "request {id} answered twice");
        assert_eq!(payload[1..], cw.single_pair(1, 2).to_le_bytes(), "request {id}");
    }
    // After the last owed byte the server closes the connection cleanly.
    assert!(read_to_close(&mut s).is_empty(), "nothing after the final answer");
    assert_eq!(handle.stats().requests, BURST);
    handle.shutdown();
    join.join().unwrap();
}

/// The handshake puts real numbers in `ServerInfo` — the figures a
/// client needs for client-side validation.
#[test]
fn handshake_advertises_node_count_and_frame_limit() {
    let cw = local_walker();
    let session: Arc<dyn QueryService> = Arc::new(QuerySession::new(Arc::clone(cw), 8));
    assert_eq!(session.node_count(), NODES);
    let cfg = ServerConfig { max_frame_bytes: 12345, ..ServerConfig::default() };
    let (addr, _, join) = spawn_server(session, cfg);
    let client = PascoClient::connect(addr).unwrap();
    assert_eq!(client.server_info().node_count, NODES);
    assert_eq!(client.server_info().max_frame_bytes, 12345);
    // Envelope encoding sanity straight from the shared codec: the ack
    // payload is the 8-byte ServerInfo.
    assert_eq!(client.server_info().encoded_len(), 8);
    client.shutdown_server().unwrap();
    join.join().unwrap();
}
