//! The paper's two Spark execution models, side by side, on the simulated
//! cluster: Broadcasting (fast, memory-bound) vs RDD (shuffling, scalable)
//! — including the broadcast failure when the graph outgrows a worker's
//! memory budget. Then the same workload once more on the **real**
//! cluster substrate: `pasco_worker` processes on loopback TCP, actual
//! bytes on an actual wire, bit-identical answers.
//!
//! ```text
//! cargo run --release --example cluster_modes
//! ```

use pasco::cluster::ClusterConfig;
use pasco::graph::generators::{self, RmatParams};
use pasco::simrank::{CloudWalker, ExecMode, SimRankConfig, SimRankError};
use pasco::worker::{PascoWorker, WorkerConfig};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let graph = Arc::new(generators::rmat(15, 250_000, RmatParams::default(), 3));
    println!(
        "graph: {} nodes, {} edges, {:.1} MB\n",
        graph.node_count(),
        graph.edge_count(),
        graph.memory_bytes() as f64 / 1e6
    );
    let cfg = SimRankConfig::default_paper().with_r(50).with_r_query(2_000);
    let cluster = ClusterConfig::local(4);

    for (name, mode) in
        [("broadcast", ExecMode::Broadcast(cluster)), ("rdd", ExecMode::Rdd(cluster))]
    {
        let t0 = Instant::now();
        let (cw, stats) = CloudWalker::build_with_stats(Arc::clone(&graph), cfg, mode).unwrap();
        let d_time = t0.elapsed();
        let t0 = Instant::now();
        let s = cw.single_pair(17, 912);
        let q_time = t0.elapsed();
        let report = cw.cluster_report().unwrap();
        println!("[{name}]");
        println!("  D built in {d_time:?} ({} stages)", report.stages);
        println!("  s(17, 912) = {s:.4} in {q_time:?}");
        println!(
            "  shuffled: {:.1} MB / {} records across {} shuffles",
            report.shuffle_bytes as f64 / 1e6,
            report.shuffle_records,
            report.shuffles
        );
        if let Some(bytes) = cw.max_partition_bytes() {
            println!(
                "  per-worker memory: {:.1} MB (vs {:.1} MB full graph)",
                bytes as f64 / 1e6,
                graph.memory_bytes() as f64 / 1e6
            );
        }
        let _ = stats;
        println!();
    }

    // The broadcast memory wall, reproduced deliberately: a worker budget
    // below the graph size turns Broadcasting mode into the paper's N/A.
    let tiny = ClusterConfig::local(4).with_memory_per_worker(graph.memory_bytes() / 2);
    match CloudWalker::build(Arc::clone(&graph), cfg, ExecMode::Broadcast(tiny)) {
        Err(SimRankError::Cluster(e)) => {
            println!("[broadcast, small workers] fails as the paper's clue-web row did:");
            println!("  {e}");
        }
        _ => unreachable!("broadcast must fail under the reduced budget"),
    }
    match CloudWalker::build(Arc::clone(&graph), cfg, ExecMode::Rdd(tiny)) {
        Ok(cw) => println!(
            "[rdd, same small workers] still works: max partition {:.1} MB",
            cw.max_partition_bytes().unwrap() as f64 / 1e6
        ),
        Err(e) => panic!("RDD mode must not need full-graph memory: {e}"),
    }

    // ---- The real thing: worker processes behind actual sockets --------
    //
    // Two SimRank workers on ephemeral loopback ports (in one process
    // here; `pasco worker --addr` runs the same server standalone), a
    // coordinator that ships partitions and routes queries, and cluster
    // accounting counting real encoded frames instead of estimates.
    println!("\n[distributed] two real workers over loopback TCP");
    let mut addrs = Vec::new();
    let mut handles = Vec::new();
    let mut joins = Vec::new();
    for _ in 0..2 {
        let worker = PascoWorker::bind("127.0.0.1:0", WorkerConfig::default()).unwrap();
        addrs.push(worker.local_addr().to_string());
        handles.push(worker.handle());
        joins.push(std::thread::spawn(move || worker.run().unwrap()));
    }
    let t0 = Instant::now();
    let dist = CloudWalker::build(
        Arc::clone(&graph),
        cfg,
        ExecMode::Distributed { workers: addrs.clone() },
    )
    .unwrap();
    println!("  D built in {:?} across {}", t0.elapsed(), addrs.join(" + "));
    let t0 = Instant::now();
    let s = dist.single_pair(17, 912);
    println!("  s(17, 912) = {s:.4} in {:?} (routed to the owner of node 17)", t0.elapsed());
    let local = CloudWalker::from_index(Arc::clone(&graph), cfg, dist.diagonal().clone()).unwrap();
    assert_eq!(dist.single_source_topk(17, 5), local.single_source_topk(17, 5));
    println!("  top-5 of node 17 bit-identical to local serving of the same index");
    let report = dist.cluster_report().unwrap();
    println!(
        "  wire: {:.1} MB in {} messages (real encoded frames, not simulated)",
        report.shuffle_bytes as f64 / 1e6,
        report.shuffle_records
    );
    for s in dist.worker_stats().unwrap() {
        let s = s.expect("both workers alive");
        println!(
            "  worker {}: owns {} nodes ({:.1} MB of {:.1} MB resident), {} queries served",
            s.owned_part,
            s.owned_nodes,
            s.owned_bytes as f64 / 1e6,
            s.resident_bytes as f64 / 1e6,
            s.queries + s.topk_queries
        );
    }
    drop(dist);
    for handle in &handles {
        handle.shutdown();
    }
    for join in joins {
        join.join().unwrap();
    }
    println!("  workers drained");
}
