//! Quickstart: index a graph, ask the three query types — directly and
//! through the typed [`QueryService`] API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pasco::graph::generators;
use pasco::simrank::api::{QueryRequest, QueryResponse, QueryService};
use pasco::simrank::{CloudWalker, ExecMode, SimRankConfig};

fn main() {
    // 1. A graph. Any directed edge list works; here, a small scale-free
    //    network like the paper's wiki-vote.
    let graph = generators::barabasi_albert(2_000, 5, 42);
    println!("graph: {} nodes, {} edges", graph.node_count(), graph.edge_count());

    // 2. Offline indexing: estimate the diagonal correction matrix D with
    //    the paper's default parameters (c=0.6, T=10, L=3, R=100).
    let cfg = SimRankConfig::default_paper().with_r_query(2_000);
    let (cw, stats) = CloudWalker::build_with_stats(graph.into(), cfg, ExecMode::Local).unwrap();
    println!(
        "indexed in {:?} (strategy {:?}, final Jacobi residual {:.2e})",
        stats.wall,
        stats.strategy,
        stats.jacobi_residuals.last().copied().unwrap_or(0.0),
    );

    // 3a. Single-pair query (MCSP): how similar are nodes 10 and 11?
    let s = cw.single_pair(10, 11);
    println!("s(10, 11) = {s:.4}");

    // 3b. Single-source query (MCSS): the most similar nodes to node 10.
    let scores = cw.single_source(10);
    let mut top: Vec<(u32, f64)> = scores.iter().enumerate().map(|(i, &v)| (i as u32, v)).collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top-5 similar to node 10:");
    for &(v, s) in top.iter().filter(|&&(v, _)| v != 10).take(5) {
        println!("  node {v:>5}  s = {s:.4}");
    }

    // 3c. All-pairs (MCAP): top-3 lists for every node (small graphs only).
    let all = cw.all_pairs_topk(3);
    println!("node 0's top-3: {:?}", all[0]);

    // 4. The same queries as typed requests through the QueryService
    //    front door — the shape a network front-end would speak (the
    //    requests also serialize: see pasco::simrank::api::wire).
    let svc: &dyn QueryService = &cw;
    let resp = svc
        .execute(QueryRequest::Batch(vec![
            QueryRequest::SinglePair { i: 10, j: 11 },
            QueryRequest::SingleSourceTopK { i: 10, k: 5 },
        ]))
        .expect("nodes 10 and 11 exist");
    if let QueryResponse::Batch(items) = resp {
        if let [QueryResponse::Score(s2), QueryResponse::Ranked(top5)] = items.as_slice() {
            assert_eq!(*s2, s, "typed API answers match the direct calls");
            println!("via QueryService: s(10, 11) = {s2:.4}, top-5 = {top5:?}");
        }
    }
    // Malformed requests are typed errors, not panics.
    let err = svc.execute(QueryRequest::SingleSource { i: 1_000_000 }).unwrap_err();
    println!("out-of-range query -> {err}");
}
