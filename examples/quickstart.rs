//! Quickstart: index a graph, ask the three query types.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pasco::graph::generators;
use pasco::simrank::{CloudWalker, ExecMode, SimRankConfig};

fn main() {
    // 1. A graph. Any directed edge list works; here, a small scale-free
    //    network like the paper's wiki-vote.
    let graph = generators::barabasi_albert(2_000, 5, 42);
    println!("graph: {} nodes, {} edges", graph.node_count(), graph.edge_count());

    // 2. Offline indexing: estimate the diagonal correction matrix D with
    //    the paper's default parameters (c=0.6, T=10, L=3, R=100).
    let cfg = SimRankConfig::default_paper().with_r_query(2_000);
    let (cw, stats) = CloudWalker::build_with_stats(graph.into(), cfg, ExecMode::Local).unwrap();
    println!(
        "indexed in {:?} (strategy {:?}, final Jacobi residual {:.2e})",
        stats.wall,
        stats.strategy,
        stats.jacobi_residuals.last().copied().unwrap_or(0.0),
    );

    // 3a. Single-pair query (MCSP): how similar are nodes 10 and 11?
    let s = cw.single_pair(10, 11);
    println!("s(10, 11) = {s:.4}");

    // 3b. Single-source query (MCSS): the most similar nodes to node 10.
    let scores = cw.single_source(10);
    let mut top: Vec<(u32, f64)> = scores.iter().enumerate().map(|(i, &v)| (i as u32, v)).collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("top-5 similar to node 10:");
    for &(v, s) in top.iter().filter(|&&(v, _)| v != 10).take(5) {
        println!("  node {v:>5}  s = {s:.4}");
    }

    // 3c. All-pairs (MCAP): top-3 lists for every node (small graphs only).
    let all = cw.all_pairs_topk(3);
    println!("node 0's top-3: {:?}", all[0]);
}
