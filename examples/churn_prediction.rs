//! Churn-prediction scenario from the paper's motivation: score subscribers
//! by their structural similarity to known churners.
//!
//! On a synthetic social network, a "churned" community is planted; each
//! remaining user's churn risk is their maximum SimRank similarity to any
//! churner (computed with a handful of MCSS queries from the churner side —
//! similarity is symmetric, so `s(churner, u)` read off the churner's
//! single-source vector is `s(u, churner)`).
//!
//! ```text
//! cargo run --release --example churn_prediction
//! ```

use pasco::graph::generators;
use pasco::simrank::{CloudWalker, ExecMode, SimRankConfig};

fn main() {
    // Community A (0..150) churned; community B (150..300) is healthy.
    // A few bridge users interact across.
    let n = 300u32;
    let graph = generators::two_communities(n, 1_800, 24, 11);
    let churned: Vec<u32> = (0..8).map(|k| k * 17 % 150).collect();
    println!(
        "social graph: {} users, {} edges; {} known churners (community A)",
        graph.node_count(),
        graph.edge_count(),
        churned.len()
    );

    let cfg = SimRankConfig::default_paper().with_r_query(4_000);
    let cw = CloudWalker::build(graph.into(), cfg, ExecMode::Local).unwrap();

    // Risk(u) = max over churners of s(churner, u).
    let mut risk = vec![0.0f64; n as usize];
    for &ch in &churned {
        let row = cw.single_source(ch);
        for (u, &s) in row.iter().enumerate() {
            if u as u32 != ch {
                risk[u] = risk[u].max(s);
            }
        }
    }

    let mut ranked: Vec<(u32, f64)> =
        risk.iter().enumerate().map(|(u, &r)| (u as u32, r)).collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\nhighest churn risk:");
    for &(u, r) in ranked.iter().take(10) {
        let comm = if u < 150 { "A (churned cohort)" } else { "B" };
        println!("  user {u:>4}  risk {r:.4}  community {comm}");
    }

    // Quantitative check: the at-risk cohort (A) must dominate the top
    // decile.
    let top30: Vec<u32> =
        ranked.iter().filter(|&&(u, _)| !churned.contains(&u)).take(30).map(|&(u, _)| u).collect();
    let in_a = top30.iter().filter(|&&u| u < 150).count();
    println!("\n{in_a}/30 of the highest-risk users are in the churned community");
    assert!(in_a >= 24, "churn risk should concentrate in community A");
}
