//! A serving-shaped workload: capacity planning with walk profiles, then
//! one shared, thread-safe query session answering a concurrent stream of
//! typed [`QueryRequest`]s through the [`QueryService`] front door.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use pasco::graph::generators;
use pasco::mc::stats::{profile_walks, sample_sources};
use pasco::mc::walks::WalkParams;
use pasco::simrank::api::{QueryRequest, QueryResponse, QueryService};
use pasco::simrank::{CloudWalker, ExecMode, QuerySession, SimRankConfig};
use std::sync::Arc;
use std::time::Instant;

/// Serves one single-pair request through the typed front door (what a
/// network handler would do with a decoded wire request).
fn serve_pair(svc: &dyn QueryService, i: u32, j: u32) -> f64 {
    match svc.execute(QueryRequest::SinglePair { i, j }) {
        Ok(QueryResponse::Score(s)) => s,
        Ok(other) => panic!("SinglePair answered with {other:?}"),
        Err(e) => panic!("in-range query refused: {e}"),
    }
}

fn main() {
    let graph = Arc::new(generators::rmat(14, 120_000, generators::RmatParams::default(), 9));
    let cfg = SimRankConfig::default_paper().with_r_query(4_000);

    // Capacity planning BEFORE the expensive build: how do walks behave?
    let probe = sample_sources(&graph, 32);
    let profile = profile_walks(&graph, &probe, WalkParams::new(cfg.t, cfg.r), cfg.seed);
    println!("walk profile over {} sampled sources:", profile.sampled_sources);
    println!(
        "  survival by step: {:?}",
        profile.survival.iter().map(|s| format!("{s:.2}")).collect::<Vec<_>>()
    );
    println!("  est. stored-row size: {} bytes/node", profile.estimated_row_bytes());
    if let Some(h) = profile.effective_horizon(0.05) {
        println!("  95% of walk mass is gone by step {h} — T beyond that buys little");
    }

    // Serve from the sharded substrate: the graph is range-partitioned
    // across 4 in-process shards, queries route to the shard owning their
    // source, and answers stay bit-identical to the local engine's.
    let cw = Arc::new(
        CloudWalker::build(Arc::clone(&graph), cfg, ExecMode::Sharded { shards: 4 }).unwrap(),
    );
    let fp = cw.memory_footprint();
    println!("\nengine: {} ({} bytes/worker)", cw.mode_name(), fp.per_worker_bytes);
    if let Some(per_shard) = cw.shard_footprints() {
        println!("per-shard bytes: {per_shard:?}");
    }

    // A query stream with a skewed working set (hot nodes repeat), served
    // through one shared caching session.
    let hot: Vec<u32> = (0..8).map(|i| i * 1000 + 3).collect();
    let session = Arc::new(QuerySession::new(Arc::clone(&cw), 64));
    let stream = |round: u32| {
        let i = hot[(round % 8) as usize];
        let j = hot[((round / 2 + 3) % 8) as usize];
        (i, j)
    };

    let t0 = Instant::now();
    let mut checksum = 0.0;
    for round in 0..50u32 {
        let (i, j) = stream(round);
        checksum += serve_pair(session.as_ref(), i, j);
    }
    let with_cache = t0.elapsed();
    println!(
        "\n50 pair queries over 8 hot nodes: {with_cache:?} (cache: {})",
        session.cache_stats()
    );

    // The same stream against the engine adapter: also a QueryService,
    // but with no cache — every cohort simulates fresh.
    let t0 = Instant::now();
    let mut checksum2 = 0.0;
    for round in 0..50u32 {
        let (i, j) = stream(round);
        checksum2 += serve_pair(cw.as_ref(), i, j);
    }
    let without = t0.elapsed();
    println!("same stream without caching:    {without:?}");
    assert!((checksum - checksum2).abs() < 1e-9, "caching must not change answers");

    // The same stream again, but from four concurrent clients sharing the
    // session — queries take &self, so this is just thread::scope + clones
    // of one Arc. Every client runs the identical stream, so all four
    // sums must equal the sequential checksum exactly.
    let t0 = Instant::now();
    let sums: Vec<f64> = std::thread::scope(|scope| {
        (0..4)
            .map(|_| {
                let session = Arc::clone(&session);
                scope.spawn(move || {
                    let mut sum = 0.0;
                    for round in 0..50u32 {
                        let (i, j) = stream(round);
                        sum += serve_pair(session.as_ref(), i, j);
                    }
                    sum
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    let concurrent = t0.elapsed();
    println!(
        "4 clients × 50 queries, one shared session: {concurrent:?} \
         (cache now: {}, sums {sums:?})",
        session.cache_stats()
    );
    assert!(
        sums.iter().all(|&s| (s - checksum).abs() < 1e-12),
        "shared session must not change answers"
    );

    // Batch APIs fan out over rayon: a pairwise matrix simulates each
    // distinct node once; a top-k batch runs sources in parallel.
    let m = session.pairs_matrix(&hot, &hot);
    println!("\npairwise matrix over the hot set (row 0): {:?}", m[0]);
    let top = session.single_source_topk_batch(&hot[..2], 5);
    for (src, ranked) in hot.iter().zip(&top) {
        println!("top-5 similar to node {src}: {ranked:?}");
    }
}
