//! A serving-shaped workload: capacity planning with walk profiles, then a
//! query session with cohort caching answering a stream of repeated
//! queries.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use pasco::graph::generators;
use pasco::mc::stats::{profile_walks, sample_sources};
use pasco::mc::walks::WalkParams;
use pasco::simrank::{CloudWalker, ExecMode, QuerySession, SimRankConfig};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let graph = Arc::new(generators::rmat(14, 120_000, generators::RmatParams::default(), 9));
    let cfg = SimRankConfig::default_paper().with_r_query(4_000);

    // Capacity planning BEFORE the expensive build: how do walks behave?
    let probe = sample_sources(&graph, 32);
    let profile = profile_walks(&graph, &probe, WalkParams::new(cfg.t, cfg.r), cfg.seed);
    println!("walk profile over {} sampled sources:", profile.sampled_sources);
    println!(
        "  survival by step: {:?}",
        profile.survival.iter().map(|s| format!("{s:.2}")).collect::<Vec<_>>()
    );
    println!("  est. stored-row size: {} bytes/node", profile.estimated_row_bytes());
    if let Some(h) = profile.effective_horizon(0.05) {
        println!("  95% of walk mass is gone by step {h} — T beyond that buys little");
    }

    let cw = CloudWalker::build(Arc::clone(&graph), cfg, ExecMode::Local).unwrap();

    // A query stream with a skewed working set (hot nodes repeat), served
    // through the caching session.
    let hot: Vec<u32> = (0..8).map(|i| i * 1000 + 3).collect();
    let mut session = QuerySession::new(&cw, 64);
    let t0 = Instant::now();
    let mut checksum = 0.0;
    for round in 0..50u32 {
        let i = hot[(round % 8) as usize];
        let j = hot[((round / 2 + 3) % 8) as usize];
        checksum += session.single_pair(i, j);
    }
    let with_cache = t0.elapsed();
    let (hits, misses) = session.cache_stats();
    println!("\n50 pair queries over 8 hot nodes: {with_cache:?} (cache: {hits} hits / {misses} misses)");

    let t0 = Instant::now();
    let mut checksum2 = 0.0;
    for round in 0..50u32 {
        let i = hot[(round % 8) as usize];
        let j = hot[((round / 2 + 3) % 8) as usize];
        checksum2 += cw.single_pair(i, j);
    }
    let without = t0.elapsed();
    println!("same stream without caching:    {without:?}");
    assert!((checksum - checksum2).abs() < 1e-9, "caching must not change answers");

    // Top-k retrieval without materialising a dense score vector.
    let top = cw.single_source_topk(hot[0], 5);
    println!("\ntop-5 similar to node {}: {:?}", hot[0], top);
}
