//! A serving-shaped workload, end to end over the network: capacity
//! planning with walk profiles, then a `PascoServer` on a loopback TCP
//! port serving one shared caching session, queried by real
//! `PascoClient`s — sequentially, pipelined, and from four concurrent
//! connections — with every answer checked against in-process serving.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use pasco::graph::generators;
use pasco::mc::stats::{profile_walks, sample_sources};
use pasco::mc::walks::WalkParams;
use pasco::server::{PascoClient, PascoServer, ServerConfig};
use pasco::simrank::api::{QueryRequest, QueryResponse, QueryService};
use pasco::simrank::{CloudWalker, ExecMode, QuerySession, SessionConfig, SimRankConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Serves one single-pair request through a network client (what any
/// real caller of the front door does).
fn serve_pair(client: &mut PascoClient, i: u32, j: u32) -> f64 {
    match client.query(QueryRequest::SinglePair { i, j }) {
        Ok(QueryResponse::Score(s)) => s,
        Ok(other) => panic!("SinglePair answered with {other:?}"),
        Err(e) => panic!("in-range query refused: {e}"),
    }
}

fn main() {
    let graph = Arc::new(generators::rmat(14, 120_000, generators::RmatParams::default(), 9));
    let cfg = SimRankConfig::default_paper().with_r_query(4_000);

    // Capacity planning BEFORE the expensive build: how do walks behave?
    let probe = sample_sources(&graph, 32);
    let profile = profile_walks(&graph, &probe, WalkParams::new(cfg.t, cfg.r), cfg.seed);
    println!("walk profile over {} sampled sources:", profile.sampled_sources);
    println!(
        "  survival by step: {:?}",
        profile.survival.iter().map(|s| format!("{s:.2}")).collect::<Vec<_>>()
    );
    println!("  est. stored-row size: {} bytes/node", profile.estimated_row_bytes());
    if let Some(h) = profile.effective_horizon(0.05) {
        println!("  95% of walk mass is gone by step {h} — T beyond that buys little");
    }

    // Serve from the sharded substrate: the graph is range-partitioned
    // across 4 in-process shards, queries route to the shard owning their
    // source, and answers stay bit-identical to the local engine's.
    let cw = Arc::new(
        CloudWalker::build(Arc::clone(&graph), cfg, ExecMode::Sharded { shards: 4 }).unwrap(),
    );
    let fp = cw.memory_footprint();
    println!("\nengine: {} ({} bytes/worker)", cw.mode_name(), fp.per_worker_bytes);
    if let Some(per_shard) = cw.shard_footprints() {
        println!("per-shard bytes: {per_shard:?}");
    }

    // One shared caching session behind the network front door: cohorts
    // expire after 10 minutes and residency is byte-bounded, the eviction
    // policy a long-running server wants.
    let session = Arc::new(QuerySession::with_config(
        Arc::clone(&cw),
        SessionConfig::new(64).with_ttl(Duration::from_secs(600)).with_max_bytes(64 << 20),
    ));
    let server = PascoServer::bind(
        "127.0.0.1:0",
        Arc::clone(&session) as Arc<dyn QueryService>,
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run().unwrap());
    println!("\nserving on {addr} (versioned envelope protocol over TCP)");

    // A query stream with a skewed working set (hot nodes repeat).
    let hot: Vec<u32> = (0..8).map(|i| i * 1000 + 3).collect();
    let stream = |round: u32| {
        let i = hot[(round % 8) as usize];
        let j = hot[((round / 2 + 3) % 8) as usize];
        (i, j)
    };

    let mut client = PascoClient::connect(addr).unwrap();
    println!(
        "handshake: {} nodes, {}-byte frame limit",
        client.server_info().node_count,
        client.server_info().max_frame_bytes
    );
    let t0 = Instant::now();
    let mut checksum = 0.0;
    for round in 0..50u32 {
        let (i, j) = stream(round);
        checksum += serve_pair(&mut client, i, j);
    }
    let over_wire = t0.elapsed();
    println!(
        "\n50 pair queries over 8 hot nodes, one TCP client: {over_wire:?} (cache: {})",
        session.cache_stats()
    );

    // The same stream served in process: the network layer must be pure
    // transport — bit-identical sums.
    let t0 = Instant::now();
    let mut checksum2 = 0.0;
    for round in 0..50u32 {
        let (i, j) = stream(round);
        match session.execute(QueryRequest::SinglePair { i, j }).unwrap() {
            QueryResponse::Score(s) => checksum2 += s,
            other => panic!("SinglePair answered with {other:?}"),
        }
    }
    println!("same stream in process:                     {:?}", t0.elapsed());
    assert!(checksum == checksum2, "the wire must not change answers");

    // Pipelining: put a whole batch on the wire before reading anything;
    // responses come back in completion order and match up by id.
    let reqs: Vec<QueryRequest> =
        hot.iter().map(|&i| QueryRequest::SingleSourceTopK { i, k: 5 }).collect();
    let t0 = Instant::now();
    let outcomes = client.query_batch(&reqs).unwrap();
    println!("\npipelined top-5 for all {} hot nodes: {:?}", hot.len(), t0.elapsed());
    for (src, outcome) in hot.iter().zip(&outcomes).take(2) {
        match outcome {
            Ok(QueryResponse::Ranked(ranked)) => {
                println!("top-5 similar to node {src}: {ranked:?}")
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    // Four concurrent connections hammering the shared session: every
    // client runs the identical stream, so all four sums must equal the
    // sequential checksum exactly.
    let t0 = Instant::now();
    let sums: Vec<f64> = std::thread::scope(|scope| {
        (0..4)
            .map(|_| {
                scope.spawn(move || {
                    let mut c = PascoClient::connect(addr).unwrap();
                    let mut sum = 0.0;
                    for round in 0..50u32 {
                        let (i, j) = stream(round);
                        sum += serve_pair(&mut c, i, j);
                    }
                    sum
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    println!(
        "4 TCP clients × 50 queries, one shared session: {:?} (cache now: {}, sums {sums:?})",
        t0.elapsed(),
        session.cache_stats()
    );
    assert!(sums.iter().all(|&s| s == checksum), "shared serving must not change answers");

    // Typed errors cross the wire without closing anything.
    let err = client
        .query(QueryRequest::SingleSource { i: graph.node_count() + 1 })
        .expect_err("out of range");
    println!("\nout-of-range over the wire: {err}");
    assert!(client.is_open(), "typed errors leave the connection usable");

    // Drain: the shutdown frame finishes in-flight work, answers
    // goodbye, and `run()` returns.
    client.shutdown_server().unwrap();
    server_thread.join().unwrap();
    println!("server drained cleanly");
}
