//! Information-retrieval scenario from the paper's motivation: "find pages
//! similar to this page" on a hyperlink graph.
//!
//! A synthetic web crawl (R-MAT, heavy-tailed like real link graphs) is
//! indexed once; then related-page queries run in milliseconds via MCSS,
//! and the index round-trips through disk the way the offline/online split
//! of a deployment would.
//!
//! ```text
//! cargo run --release --example web_search
//! ```

use pasco::graph::generators::{self, RmatParams};
use pasco::simrank::{persist, CloudWalker, DiagonalIndex, ExecMode, SimRankConfig};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // A synthetic "web crawl": 65k pages, heavy-tailed in-degrees (hubs).
    let web = Arc::new(generators::rmat(16, 400_000, RmatParams::default(), 0xB0B));
    println!("crawl: {} pages, {} links", web.node_count(), web.edge_count());

    // Offline phase (runs on the "cluster", ships an index file).
    let cfg = SimRankConfig::default_paper().with_r_query(5_000);
    let t0 = Instant::now();
    let cw = CloudWalker::build(Arc::clone(&web), cfg, ExecMode::Local).unwrap();
    println!("offline indexing: {:?}", t0.elapsed());

    let index_path = std::env::temp_dir().join("pasco_web_search.idx");
    persist::save_index(cw.diagonal(), &index_path).unwrap();
    println!(
        "index saved: {} ({} bytes)",
        index_path.display(),
        std::fs::metadata(&index_path).unwrap().len()
    );

    // Online phase: a fresh query server loads graph + index only.
    let loaded: DiagonalIndex = persist::load_index(&index_path).unwrap();
    let server = CloudWalker::from_index(web, cfg, loaded).unwrap();

    // "Related pages" for a few seeds.
    for seed in [42u32, 4_000, 30_000] {
        let t0 = Instant::now();
        let scores = server.single_source(seed);
        let latency = t0.elapsed();
        let mut ranked: Vec<(u32, f64)> = scores
            .iter()
            .enumerate()
            .filter(|&(i, _)| i as u32 != seed)
            .map(|(i, &s)| (i as u32, s))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        println!("\nrelated to page {seed} ({latency:?}):");
        for &(page, score) in ranked.iter().take(5) {
            println!("  page {page:>6}  s = {score:.4}");
        }
    }
}
