//! Recommender-system scenario from the paper's motivation: "users who
//! interacted with similar items".
//!
//! Items form two product communities with a few cross-links (think
//! cameras vs. laptops with some accessories in both worlds). SimRank on
//! the co-interaction graph should rank same-community items far above
//! cross-community ones — which this example verifies quantitatively.
//!
//! ```text
//! cargo run --release --example recommender
//! ```

use pasco::graph::generators;
use pasco::simrank::api::{QueryRequest, QueryResponse, QueryService};
use pasco::simrank::{CloudWalker, ExecMode, QuerySession, SimRankConfig};
use std::sync::Arc;

fn main() {
    let n = 400u32;
    let graph = generators::two_communities(n, 2_400, 30, 7);
    println!(
        "item graph: {} items, {} interactions, 30 cross-community links",
        graph.node_count(),
        graph.edge_count()
    );

    let cfg = SimRankConfig::default_paper().with_r_query(4_000);
    let cw = Arc::new(CloudWalker::build(graph.into(), cfg, ExecMode::Local).unwrap());

    // Recommend for one item per community, served as one typed batch
    // request through the QueryService front door (one MCSS per item).
    let session = QuerySession::new(Arc::clone(&cw), 32);
    let half = n / 2;
    let items = [10u32, half + 10];
    let batch =
        QueryRequest::Batch(items.iter().map(|&i| QueryRequest::SingleSource { i }).collect());
    let QueryResponse::Batch(responses) = session.execute(batch).expect("items exist") else {
        panic!("Batch answers with Batch");
    };
    let rows: Vec<Vec<f64>> = responses
        .into_iter()
        .map(|r| match r {
            QueryResponse::Scores(row) => row,
            other => panic!("SingleSource answered with {other:?}"),
        })
        .collect();
    for (&item, scores) in items.iter().zip(&rows) {
        let mut ranked: Vec<(u32, f64)> = scores
            .iter()
            .enumerate()
            .filter(|&(i, _)| i as u32 != item)
            .map(|(i, &s)| (i as u32, s))
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        let community = if item < half { "A" } else { "B" };
        println!("\nrecommendations for item {item} (community {community}):");
        let mut same = 0;
        for &(other, s) in ranked.iter().take(10) {
            let oc = if other < half { "A" } else { "B" };
            if oc == community {
                same += 1;
            }
            println!("  item {other:>4} [{oc}]  s = {s:.4}");
        }
        println!("  -> {same}/10 recommendations stay in the community");
        assert!(same >= 8, "similarity should respect community structure");
    }

    // Aggregate check: mean within- vs cross-community similarity.
    let probe = cw.single_source(10);
    let (mut within, mut cross, mut wn, mut cn) = (0.0, 0.0, 0, 0);
    for (i, &s) in probe.iter().enumerate() {
        if i as u32 == 10 {
            continue;
        }
        if (i as u32) < half {
            within += s;
            wn += 1;
        } else {
            cross += s;
            cn += 1;
        }
    }
    println!(
        "\nmean similarity to item 10: within community {:.5}, across {:.5}",
        within / wn as f64,
        cross / cn as f64
    );
}
