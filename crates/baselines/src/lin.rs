//! LIN — SimRank via linearization (Maehara et al., CoRR'14),
//! reimplemented.
//!
//! LIN uses the same decomposition as CloudWalker —
//! `S = Σ_t cᵗ (Pᵗ)ᵀ D Pᵗ` — but computes everything *exactly*:
//!
//! * **Preprocessing** materialises each row `aᵢ` by propagating `eᵢ`
//!   through `Pᵗ` with sparse pushes (pruned at [`LinConfig::prune_eps`])
//!   and solves `A x = 1` by Gauss–Seidel. Per-node cost grows with the
//!   `t`-hop in-neighbourhood, which explodes on large/skewed graphs — the
//!   scaling wall the paper's table shows (LIN prep: 187 ms on wiki-vote,
//!   14 376 s on twitter-2010). [`LinConfig::work_budget`] turns "hours of
//!   exact pushes" into an honest `N/A`.
//! * **Queries** evaluate the truncated series with exact pushes — no
//!   sampling noise, but per-query cost grows with the push frontier
//!   instead of staying `O(T·R')` like CloudWalker's.

use crate::error::BaselineError;
use pasco_graph::{CsrGraph, NodeId};
use pasco_mc::forward::{push_measure, reverse_push_measure};
use pasco_simrank::ai::ai_row_exact;
use pasco_simrank::diag::DiagonalIndex;
use pasco_solver::gauss_seidel::{self, GaussSeidelConfig};
use pasco_solver::jacobi::DenseRows;
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// LIN parameters.
#[derive(Clone, Copy, Debug)]
pub struct LinConfig {
    /// Decay factor `c`.
    pub c: f64,
    /// Series truncation `T`.
    pub t: usize,
    /// Gauss–Seidel sweep cap.
    pub gs_sweeps: usize,
    /// Frontier pruning threshold during exact propagation (`0.0` = exact).
    pub prune_eps: f64,
    /// Preprocessing work budget in pushed entries.
    pub work_budget: u64,
}

impl LinConfig {
    /// Paper-like defaults: `c = 0.6`, `T = 10`, converged Gauss–Seidel,
    /// light pruning, and a work budget that admits small graphs only.
    pub fn default_paper() -> Self {
        Self { c: 0.6, t: 10, gs_sweeps: 30, prune_eps: 1e-6, work_budget: 2_000_000_000 }
    }
}

/// The LIN engine: exact diagonal plus exact query evaluation.
pub struct Lin {
    graph: Arc<CsrGraph>,
    cfg: LinConfig,
    diag: DiagonalIndex,
    /// Work units actually spent during preprocessing.
    prep_work: u64,
}

impl Lin {
    /// Runs LIN preprocessing: exact rows, Gauss–Seidel solve.
    ///
    /// # Errors
    /// [`BaselineError::WorkBudget`] once cumulative pushed entries exceed
    /// the budget — preprocessing is abandoned (the `N/A` of the paper's
    /// table, reached honestly instead of after hours of wall time).
    pub fn build(graph: Arc<CsrGraph>, cfg: LinConfig) -> Result<Self, BaselineError> {
        let n = graph.node_count();
        let work = AtomicU64::new(0);
        let abandoned = AtomicBool::new(false);
        let rows: Vec<Vec<(u32, f64)>> = (0..n)
            .into_par_iter()
            .map(|i| {
                if abandoned.load(Ordering::Relaxed) {
                    return Vec::new();
                }
                let row = exact_row_pruned(&graph, i, &cfg);
                let spent = work.fetch_add(row.1, Ordering::Relaxed) + row.1;
                if spent > cfg.work_budget {
                    abandoned.store(true, Ordering::Relaxed);
                }
                row.0
            })
            .collect();
        let spent = work.load(Ordering::Relaxed);
        if abandoned.load(Ordering::Relaxed) {
            return Err(BaselineError::WorkBudget { spent, budget: cfg.work_budget });
        }
        let rows = DenseRows::new(rows);
        let b = vec![1.0; n as usize];
        let x0 = vec![1.0 - cfg.c; n as usize];
        let result = gauss_seidel::solve(
            &rows,
            &b,
            &x0,
            &GaussSeidelConfig { iterations: cfg.gs_sweeps, tolerance: Some(1e-10) },
        );
        Ok(Self { graph, cfg, diag: DiagonalIndex::new(result.x), prep_work: spent })
    }

    /// The exact diagonal LIN solved for.
    pub fn diagonal(&self) -> &DiagonalIndex {
        &self.diag
    }

    /// Work units spent in preprocessing (pushed entries).
    pub fn prep_work(&self) -> u64 {
        self.prep_work
    }

    /// Exact single-pair query:
    /// `Σ_t cᵗ (Pᵗeᵢ)ᵀ D (Pᵗeⱼ)` with sparse propagation.
    pub fn single_pair(&self, i: NodeId, j: NodeId) -> f64 {
        if i == j {
            return 1.0;
        }
        let mut u: Vec<(u32, f64)> = vec![(i, 1.0)];
        let mut v: Vec<(u32, f64)> = vec![(j, 1.0)];
        let x = self.diag.as_slice();
        let mut score = 0.0;
        let mut ct = 1.0;
        for t in 0..=self.cfg.t {
            if t > 0 {
                u = self.step(&u);
                v = self.step(&v);
                if u.is_empty() || v.is_empty() {
                    break;
                }
                ct *= self.cfg.c;
            }
            score += ct * weighted_dot(&u, &v, x);
        }
        score
    }

    /// Exact single-source query:
    /// `sᵢ = Σ_t cᵗ (Pᵀ)ᵗ (D Pᵗeᵢ)` with sparse pushes both ways.
    pub fn single_source(&self, i: NodeId) -> Vec<f64> {
        let n = self.graph.node_count() as usize;
        let x = self.diag.as_slice();
        let mut out = vec![0.0f64; n];
        let mut u: Vec<(u32, f64)> = vec![(i, 1.0)];
        let mut ct = 1.0;
        for t in 0..=self.cfg.t {
            if t > 0 {
                u = self.step(&u);
                if u.is_empty() {
                    break;
                }
                ct *= self.cfg.c;
            }
            // y = D u, then z = (Pᵀ)ᵗ y by forward pushes.
            let mut z: Vec<(u32, f64)> = u.iter().map(|&(k, p)| (k, x[k as usize] * p)).collect();
            for _ in 0..t {
                z = push_measure(&self.graph, &z);
            }
            for &(k, m) in &z {
                out[k as usize] += ct * m;
            }
        }
        out[i as usize] = 1.0;
        out
    }

    fn step(&self, u: &[(u32, f64)]) -> Vec<(u32, f64)> {
        let mut next = reverse_push_measure(&self.graph, u);
        if self.cfg.prune_eps > 0.0 {
            next.retain(|&(_, p)| p >= self.cfg.prune_eps);
        }
        next
    }
}

/// Exact pruned row plus the work (pushed entries) it cost.
fn exact_row_pruned(graph: &CsrGraph, i: NodeId, cfg: &LinConfig) -> (Vec<(u32, f64)>, u64) {
    if cfg.prune_eps == 0.0 {
        let row = ai_row_exact(graph, i, cfg.c, cfg.t);
        let work = row.len() as u64 * cfg.t as u64;
        return (row, work);
    }
    let mut acc = pasco_mc::counts::MassMap::with_capacity(64);
    let mut u: Vec<(NodeId, f64)> = vec![(i, 1.0)];
    let mut ct = 1.0;
    let mut work = 0u64;
    for _ in 0..=cfg.t {
        for &(node, p) in &u {
            acc.add(node, ct * p * p);
        }
        work += u.len() as u64;
        ct *= cfg.c;
        let mut next = reverse_push_measure(graph, &u);
        work += next.len() as u64;
        next.retain(|&(_, p)| p >= cfg.prune_eps);
        u = next;
        if u.is_empty() {
            break;
        }
    }
    (acc.into_sorted_vec(), work)
}

fn weighted_dot(u: &[(u32, f64)], v: &[(u32, f64)], x: &[f64]) -> f64 {
    let (mut a, mut b) = (u.iter().peekable(), v.iter().peekable());
    let mut acc = 0.0;
    while let (Some(&&(ka, pa)), Some(&&(kb, pb))) = (a.peek(), b.peek()) {
        match ka.cmp(&kb) {
            std::cmp::Ordering::Less => {
                a.next();
            }
            std::cmp::Ordering::Greater => {
                b.next();
            }
            std::cmp::Ordering::Equal => {
                acc += pa * pb * x[ka as usize];
                a.next();
                b.next();
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasco_graph::generators;
    use pasco_simrank::exact::ExactSimRank;

    fn build(g: CsrGraph) -> Lin {
        Lin::build(Arc::new(g), LinConfig::default_paper()).unwrap()
    }

    #[test]
    fn shared_parent_pair_is_exactly_c() {
        let g = CsrGraph::from_edges(3, &[(2, 0), (2, 1)]);
        let lin = build(g);
        assert!((lin.single_pair(0, 1) - 0.6).abs() < 1e-9);
    }

    #[test]
    fn lin_matches_exact_simrank_closely() {
        // LIN's only error sources are series truncation (cᵀ ≈ 0.006) and
        // pruning; it should track the exact matrix far more tightly than
        // any Monte-Carlo method.
        let g = generators::barabasi_albert(80, 3, 6);
        let exact = ExactSimRank::compute(&g, 0.6, 25);
        let lin = build(g);
        for &(i, j) in &[(0u32, 1u32), (5, 44), (12, 70), (33, 34)] {
            let err = (lin.single_pair(i, j) - exact.get(i, j)).abs();
            assert!(err < 0.012, "({i},{j}): err {err}");
        }
        let row = lin.single_source(5);
        let mean: f64 =
            row.iter().zip(exact.row(5)).map(|(a, b)| (a - b).abs()).sum::<f64>() / 80.0;
        assert!(mean < 0.005, "mean SS error {mean}");
    }

    #[test]
    fn lin_diagonal_matches_exact_diagonal() {
        let g = generators::barabasi_albert(60, 3, 2);
        let lin = Lin::build(Arc::new(g.clone()), LinConfig::default_paper()).unwrap();
        let exact = pasco_simrank::exact::exact_diagonal(&g, 0.6, 10, 100);
        let worst = lin
            .diagonal()
            .as_slice()
            .iter()
            .zip(exact.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(worst < 1e-3, "worst diagonal error {worst}");
    }

    #[test]
    fn work_budget_aborts_large_graphs() {
        let g = Arc::new(generators::rmat(12, 40_000, generators::RmatParams::default(), 3));
        let cfg = LinConfig { work_budget: 10_000, ..LinConfig::default_paper() };
        match Lin::build(g, cfg) {
            Err(BaselineError::WorkBudget { spent, budget }) => {
                assert!(spent > budget);
            }
            other => panic!("expected work budget error, got ok={}", other.is_ok()),
        }
    }

    #[test]
    fn prep_work_is_reported() {
        let g = generators::barabasi_albert(50, 2, 1);
        let lin = build(g);
        assert!(lin.prep_work() > 0);
    }
}
