//! FMT — Fogaras & Rácz fingerprint trees (WWW'05), reimplemented.
//!
//! SimRank admits the random-surfer view `s(i,j) = E[c^τ]`, where `τ` is
//! the first time two lock-step reverse walks from `i` and `j` meet. FMT
//! precomputes `R` *coupled* walks ("fingerprints") per node: at step `t`
//! of fingerprint `r`, **every** walker standing on node `v` moves to the
//! same sampled in-neighbour `σ_{r,t}(v)` — so walks coalesce once they
//! meet, and first-meeting times can be read off stored fingerprints
//! without any fresh sampling at query time.
//!
//! The price is the fingerprint store: `n·R·T` positions. The paper's
//! comparison table shows FMT `N/A` beyond wiki-vote for exactly this
//! reason; [`FmtConfig::memory_budget`] reproduces that wall honestly.

use crate::error::BaselineError;
use pasco_graph::{CsrGraph, NodeId};
use pasco_mc::rng::mix;
use pasco_mc::walks::pick;
use rayon::prelude::*;
use std::sync::Arc;

/// FMT parameters.
#[derive(Clone, Copy, Debug)]
pub struct FmtConfig {
    /// Decay factor `c`.
    pub c: f64,
    /// Walk length `T`.
    pub t: usize,
    /// Fingerprints per node `R`.
    pub r: u32,
    /// Seed for the coupled step functions `σ_{r,t}`.
    pub seed: u64,
    /// Fingerprint-store budget in bytes; construction fails beyond it.
    pub memory_budget: u64,
}

impl FmtConfig {
    /// Paper-like defaults (`c = 0.6, T = 10, R = 100`) with a budget that
    /// admits only wiki-vote-scale graphs — the same cut-off as the paper's
    /// table.
    pub fn default_paper() -> Self {
        Self { c: 0.6, t: 10, r: 100, seed: 0xf17, memory_budget: 100 << 20 }
    }
}

/// The coupled in-neighbour choice `σ_{r,t}(v)`: a pure function of
/// `(seed, r, t, v)` — walkers at the same node at the same step move
/// together, which is what makes the first-meeting estimator work.
#[inline]
fn coupled_step(graph: &CsrGraph, seed: u64, r: u32, t: usize, v: NodeId) -> Option<NodeId> {
    let ins = graph.in_neighbors(v);
    if ins.is_empty() {
        None
    } else {
        let u = mix(&[seed, r as u64, t as u64, v as u64]);
        Some(ins[pick(u, ins.len())])
    }
}

/// The FMT index: all fingerprints, `fingerprints[r]` holding the length-`T`
/// path of every node, flattened (`path of node v` =
/// `[v·T .. v·T + T]`, `u32::MAX` marking a dead walker).
pub struct Fmt {
    graph: Arc<CsrGraph>,
    cfg: FmtConfig,
    fingerprints: Vec<Vec<u32>>,
}

const DEAD: u32 = u32::MAX;

impl Fmt {
    /// Precomputes fingerprints.
    ///
    /// # Errors
    /// [`BaselineError::MemoryBudget`] when `n·R·T·4` bytes exceed the
    /// configured budget — FMT's `N/A` condition.
    pub fn build(graph: Arc<CsrGraph>, cfg: FmtConfig) -> Result<Self, BaselineError> {
        let n = graph.node_count() as u64;
        let needed = n * cfg.r as u64 * cfg.t as u64 * 4;
        if needed > cfg.memory_budget {
            return Err(BaselineError::MemoryBudget { needed, budget: cfg.memory_budget });
        }
        let fingerprints: Vec<Vec<u32>> = (0..cfg.r)
            .into_par_iter()
            .map(|r| {
                let mut paths = vec![DEAD; (n as usize) * cfg.t];
                for v in 0..graph.node_count() {
                    let mut pos = v;
                    for t in 1..=cfg.t {
                        match coupled_step(&graph, cfg.seed, r, t, pos) {
                            Some(next) => {
                                pos = next;
                                paths[(v as usize) * cfg.t + (t - 1)] = pos;
                            }
                            None => break,
                        }
                    }
                }
                paths
            })
            .collect();
        Ok(Self { graph, cfg, fingerprints })
    }

    /// Bytes held by the fingerprint store.
    pub fn memory_bytes(&self) -> u64 {
        self.fingerprints.iter().map(|f| f.len() as u64 * 4).sum()
    }

    /// The configuration in use.
    pub fn config(&self) -> &FmtConfig {
        &self.cfg
    }

    #[inline]
    fn path(&self, r: u32, v: NodeId) -> &[u32] {
        let t = self.cfg.t;
        &self.fingerprints[r as usize][(v as usize) * t..(v as usize) * t + t]
    }

    /// First-meeting time of the coupled walks of `i` and `j` on
    /// fingerprint `r` (`None` if they never meet within `T`).
    fn first_meeting(&self, r: u32, i: NodeId, j: NodeId) -> Option<usize> {
        if i == j {
            return Some(0);
        }
        let pi = self.path(r, i);
        let pj = self.path(r, j);
        for t in 0..self.cfg.t {
            let (a, b) = (pi[t], pj[t]);
            if a == DEAD || b == DEAD {
                return None; // coupled walks can no longer meet
            }
            if a == b {
                return Some(t + 1);
            }
        }
        None
    }

    /// Single-pair similarity: `(1/R) Σ_r c^{τ_r}` over fingerprints where
    /// the walks meet.
    pub fn single_pair(&self, i: NodeId, j: NodeId) -> f64 {
        if i == j {
            return 1.0;
        }
        let mut acc = 0.0;
        for r in 0..self.cfg.r {
            if let Some(tau) = self.first_meeting(r, i, j) {
                acc += self.cfg.c.powi(tau as i32);
            }
        }
        acc / self.cfg.r as f64
    }

    /// Single-source similarity: scans every node's fingerprints against
    /// `i`'s — `O(n·R·T)` per query, the cost that makes FMT's SS column so
    /// much slower than its SP column in the paper's table.
    pub fn single_source(&self, i: NodeId) -> Vec<f64> {
        let n = self.graph.node_count();
        let mut out: Vec<f64> = (0..n)
            .into_par_iter()
            .map(|j| if j == i { 0.0 } else { self.single_pair_scan(i, j) })
            .collect();
        out[i as usize] = 1.0;
        out
    }

    #[inline]
    fn single_pair_scan(&self, i: NodeId, j: NodeId) -> f64 {
        let mut acc = 0.0;
        for r in 0..self.cfg.r {
            if let Some(tau) = self.first_meeting(r, i, j) {
                acc += self.cfg.c.powi(tau as i32);
            }
        }
        acc / self.cfg.r as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasco_graph::generators;
    use pasco_simrank::exact::ExactSimRank;

    fn build(g: CsrGraph, r: u32) -> Fmt {
        let cfg = FmtConfig { r, ..FmtConfig::default_paper() };
        Fmt::build(Arc::new(g), cfg).unwrap()
    }

    #[test]
    fn identical_nodes_score_one() {
        let fmt = build(generators::cycle(6), 20);
        assert_eq!(fmt.single_pair(2, 2), 1.0);
    }

    #[test]
    fn cycle_walks_never_meet() {
        // Deterministic disjoint orbits: reverse walks from distinct nodes
        // on a cycle stay the same distance apart forever.
        let fmt = build(generators::cycle(8), 50);
        assert_eq!(fmt.single_pair(0, 3), 0.0);
    }

    #[test]
    fn shared_parent_estimates_c() {
        // 2 -> 0, 2 -> 1: both walks jump straight to node 2 ⇒ τ = 1 always
        // ⇒ estimate = c exactly.
        let g = CsrGraph::from_edges(3, &[(2, 0), (2, 1)]);
        let fmt = build(g, 64);
        assert!((fmt.single_pair(0, 1) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn fmt_approximates_exact_simrank() {
        let g = generators::barabasi_albert(70, 3, 5);
        let exact = ExactSimRank::compute(&g, 0.6, 20);
        let fmt = build(g, 3000);
        let mut worst = 0.0f64;
        for &(i, j) in &[(0u32, 1u32), (4, 30), (10, 60), (20, 21)] {
            worst = worst.max((fmt.single_pair(i, j) - exact.get(i, j)).abs());
        }
        // First-meeting on coupled walks is a slightly different estimator
        // than the truncated series; allow a loose but meaningful bound.
        assert!(worst < 0.08, "worst error {worst}");
    }

    #[test]
    fn single_source_matches_pairwise() {
        let g = generators::barabasi_albert(50, 3, 7);
        let fmt = build(g, 200);
        let row = fmt.single_source(3);
        assert_eq!(row[3], 1.0);
        for j in [0u32, 10, 49] {
            if j != 3 {
                assert_eq!(row[j as usize], fmt.single_pair(3, j));
            }
        }
    }

    #[test]
    fn memory_budget_enforced() {
        let g = Arc::new(generators::barabasi_albert(5_000, 3, 1));
        let cfg = FmtConfig { memory_budget: 1 << 20, ..FmtConfig::default_paper() };
        match Fmt::build(g, cfg) {
            Err(BaselineError::MemoryBudget { needed, budget }) => {
                assert!(needed > budget);
            }
            other => panic!("expected memory budget error, got {:?}", other.is_ok()),
        }
    }

    #[test]
    fn coupling_makes_walks_coalesce() {
        // Two nodes with the same single parent walk identically after
        // meeting: their paths are equal from the meeting point onwards.
        let g = CsrGraph::from_edges(
            4,
            &[(2, 0), (2, 1), (3, 2), (2, 3)], // 0,1 <- 2 <-> 3
        );
        let fmt = build(g, 30);
        for r in 0..30 {
            let p0 = fmt.path(r, 0).to_vec();
            let p1 = fmt.path(r, 1).to_vec();
            // both walk to 2 at t=1 and must stay together afterwards
            assert_eq!(p0, p1);
        }
    }
}
