#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Baseline SimRank systems the paper compares CloudWalker against.
//!
//! * [`fmt`] — **FMT** (Fogaras & Rácz, WWW'05): precomputed coupled
//!   *fingerprint* walks, similarity from first-meeting times. Preprocessing
//!   stores `n·R·T` positions, which is why the paper's comparison table
//!   shows it `N/A` beyond the smallest graph — reproduced here with an
//!   explicit memory budget.
//! * [`lin`] — **LIN** (Maehara et al., CoRR'14): the same linearisation as
//!   CloudWalker but computed *exactly* — sparse propagation instead of
//!   Monte Carlo for both the diagonal solve and the queries. Fast and
//!   accurate on small graphs; preprocessing cost explodes with graph
//!   size/skew, which an explicit work budget makes visible instead of
//!   letting the harness run for hours.
//!
//! Both baselines share [`BaselineError`] so the comparison harness can
//! render honest `N/A` cells when a method cannot run — the same structure
//! as the paper's table.

pub mod error;
pub mod fmt;
pub mod lin;

pub use error::BaselineError;
pub use fmt::{Fmt, FmtConfig};
pub use lin::{Lin, LinConfig};
