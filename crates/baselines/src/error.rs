//! Failure modes shared by the baseline implementations.

use std::fmt;

/// Why a baseline could not produce an answer — these map to the `N/A`
/// cells of the paper's comparison table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The method's precomputed structures exceed the memory budget
    /// (FMT's fingerprint store).
    MemoryBudget {
        /// Bytes the method would need.
        needed: u64,
        /// The configured budget.
        budget: u64,
    },
    /// The method's preprocessing exceeds the work budget (LIN's exact
    /// propagation on large/skewed graphs).
    WorkBudget {
        /// Units of work (pushed entries) at the point of abandonment.
        spent: u64,
        /// The configured budget.
        budget: u64,
    },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::MemoryBudget { needed, budget } => {
                write!(f, "needs {needed} bytes, budget is {budget} (N/A in the table)")
            }
            BaselineError::WorkBudget { spent, budget } => {
                write!(f, "abandoned after {spent} work units, budget is {budget} (N/A)")
            }
        }
    }
}

impl std::error::Error for BaselineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_include_numbers() {
        let e = BaselineError::MemoryBudget { needed: 100, budget: 10 };
        assert!(e.to_string().contains("100"));
        let e = BaselineError::WorkBudget { spent: 5, budget: 4 };
        assert!(e.to_string().contains("N/A"));
    }
}
