//! Mass-carrying forward walks: the Monte-Carlo estimator of `(Pᵀ)ᵗ y`
//! used by single-source queries.
//!
//! `Pᵀ` is row-stochastic, so `z = (Pᵀ)ᵗ y` can be read as propagating the
//! *measure* `y` forward through `P`: mass at node `k` flows to out-neighbour
//! `j` with weight `1/|In(j)|`, total outflow `W_k = Σ_{j∈Out(k)} 1/|In(j)|`.
//! A walker therefore samples `j ∝ 1/|In(j)|` from the precomputed
//! [`ReverseChainIndex`] (one binary search — the `log d` in the paper's
//! `O(T²R′ log d)` bound) and multiplies its mass by `W_k`. Walkers whose
//! node has no out-edges drop their mass, matching the exact operator
//! (`(Pᵀ)ᵗ y` assigns nothing through missing edges).

use crate::counts::MassMap;
use crate::rng::SplitMix64;
use pasco_graph::{CsrGraph, ForwardSampler, GraphSampler, NodeId, ReverseChainIndex};

/// The uniform in `[0, 1)` consumed by a forward walker at its `step`-th
/// move — a pure function of `(key, step)`, so a walk can be resumed on any
/// executor (the RDD engine shuffles walkers mid-walk).
#[inline]
pub fn forward_step_r(key: u64, step: u32) -> f64 {
    let u = SplitMix64::new(key ^ (step as u64).wrapping_mul(0xa076_1d64_78bd_642f)).next_u64();
    (u >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Runs one mass-carrying walker for `steps` steps from `start` with
/// initial `mass`. Returns the final `(node, mass)` or `None` if the walker
/// fell off the graph. Randomness is a pure function of `(key, step)`.
#[inline]
pub fn forward_walk(
    graph: &CsrGraph,
    index: &ReverseChainIndex,
    start: NodeId,
    mass: f64,
    steps: usize,
    key: u64,
) -> Option<(NodeId, f64)> {
    forward_walk_on(&GraphSampler::new(graph, index), start, mass, steps, key)
}

/// [`forward_walk`] generic over the sampling source — the one kernel
/// behind the resident-graph engines *and* the sharded engine's routed
/// [`pasco_graph::partitioned::PartitionedView`].
#[inline]
pub fn forward_walk_on<S: ForwardSampler>(
    sampler: &S,
    start: NodeId,
    mass: f64,
    steps: usize,
    key: u64,
) -> Option<(NodeId, f64)> {
    let mut pos = start;
    let mut m = mass;
    for t in 1..=steps {
        let w = sampler.outflow(pos);
        if w == 0.0 {
            return None;
        }
        let r = forward_step_r(key, t as u32);
        // `outflow(pos) > 0` (checked above) implies at least one
        // out-edge, so the sample always lands; an error return here
        // would put a branch in the per-step hot loop for a state the
        // sampler contract rules out.
        // pasco-lint: allow(panic-reachable-in-serving)
        pos = sampler.sample_out(pos, r).expect("outflow > 0 implies out-edges");
        m *= w;
    }
    Some((pos, m))
}

/// Estimates `z = (Pᵀ)ᵗ y` for a sparse measure `y`, spending `walkers`
/// walkers *per support entry* (entry `(k, y_k)` launches walkers of initial
/// mass `y_k / walkers`). Deterministic in `seed`.
///
/// The returned vector is sorted by node id.
pub fn propagate_measure(
    graph: &CsrGraph,
    index: &ReverseChainIndex,
    y: &[(NodeId, f64)],
    steps: usize,
    walkers: u32,
    seed: u64,
) -> Vec<(NodeId, f64)> {
    assert!(walkers > 0);
    if steps == 0 {
        return y.to_vec();
    }
    let mut acc = MassMap::with_capacity(y.len() * walkers as usize / 4 + 16);
    for &(k, yk) in y {
        if yk == 0.0 {
            continue;
        }
        let per = yk / walkers as f64;
        for w in 0..walkers {
            let key = crate::rng::mix(&[seed, k as u64, w as u64, steps as u64]);
            if let Some((node, mass)) = forward_walk(graph, index, k, per, steps, key) {
                acc.add(node, mass);
            }
        }
    }
    acc.into_sorted_vec()
}

/// Exact one-step push of a measure through `P` (`zᵀ = yᵀP`): mass at `k`
/// adds `y_k / |In(j)|` to every out-neighbour `j`. The deterministic
/// alternative to [`propagate_measure`]; cost grows with the frontier's
/// out-degree sum, which is what the ablation A1 measures.
pub fn push_measure(graph: &CsrGraph, y: &[(NodeId, f64)]) -> Vec<(NodeId, f64)> {
    let mut acc = MassMap::with_capacity(y.len() * 4 + 16);
    for &(k, yk) in y {
        if yk == 0.0 {
            continue;
        }
        for &j in graph.out_neighbors(k) {
            acc.add(j, yk / graph.in_degree(j) as f64);
        }
    }
    acc.into_sorted_vec()
}

/// Exact one-step *reverse-walk distribution* update `u′ = P u`: probability
/// mass at node `j` splits equally over `In(j)`, i.e. `u′(k) += u(j)/|In(j)|`
/// for every `k ∈ In(j)`. This is the deterministic counterpart of one
/// reverse walk step; the exact baselines (LIN) and the exact diagonal use
/// it to propagate `eᵢ` through `Pᵗ` without sampling.
pub fn reverse_push_measure(graph: &CsrGraph, u: &[(NodeId, f64)]) -> Vec<(NodeId, f64)> {
    let mut acc = MassMap::with_capacity(u.len() * 4 + 16);
    for &(j, uj) in u {
        if uj == 0.0 {
            continue;
        }
        let ins = graph.in_neighbors(j);
        if ins.is_empty() {
            continue; // walkers at dangling nodes die: mass is lost
        }
        let share = uj / ins.len() as f64;
        for &k in ins {
            acc.add(k, share);
        }
    }
    acc.into_sorted_vec()
}

/// Applies [`reverse_push_measure`] `steps` times: `u = Pˢ u₀` exactly.
pub fn reverse_push_measure_steps(
    graph: &CsrGraph,
    u0: &[(NodeId, f64)],
    steps: usize,
) -> Vec<(NodeId, f64)> {
    let mut u = u0.to_vec();
    for _ in 0..steps {
        u = reverse_push_measure(graph, &u);
    }
    u
}

/// Applies [`push_measure`] `steps` times.
pub fn push_measure_steps(
    graph: &CsrGraph,
    y: &[(NodeId, f64)],
    steps: usize,
) -> Vec<(NodeId, f64)> {
    let mut z = y.to_vec();
    for _ in 0..steps {
        z = push_measure(graph, &z);
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasco_graph::generators;

    fn total(v: &[(NodeId, f64)]) -> f64 {
        v.iter().map(|&(_, m)| m).sum()
    }

    #[test]
    fn push_matches_hand_computation() {
        // diamond: 0->1, 0->2, 1->3, 2->3. in-degs: 1:1, 2:1, 3:2.
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let z = push_measure(&g, &[(0, 1.0)]);
        assert_eq!(z, vec![(1, 1.0), (2, 1.0)]);
        let z2 = push_measure(&g, &z);
        assert_eq!(z2.len(), 1);
        assert_eq!(z2[0].0, 3);
        assert!((z2[0].1 - 1.0).abs() < 1e-12); // 1.0/2 + 1.0/2
    }

    #[test]
    fn push_equals_transpose_matvec_on_cycle() {
        let g = generators::cycle(5);
        // On a cycle all in-degrees are 1; pushing a unit at k moves it to k+1.
        let z = push_measure_steps(&g, &[(2, 1.0)], 3);
        assert_eq!(z, vec![(0, 1.0)]);
    }

    #[test]
    fn mc_propagation_is_unbiased_on_cycle() {
        // Deterministic chain: MC must be exact regardless of walker count.
        let g = generators::cycle(6);
        let idx = ReverseChainIndex::build(&g);
        let z = propagate_measure(&g, &idx, &[(1, 0.5), (4, 0.25)], 2, 3, 9);
        assert_eq!(z, vec![(0, 0.25), (3, 0.5)]);
    }

    #[test]
    fn mc_propagation_approximates_exact_push() {
        let g = generators::barabasi_albert(300, 4, 3);
        let idx = ReverseChainIndex::build(&g);
        let y = vec![(5u32, 1.0)];
        let exact = push_measure_steps(&g, &y, 3);
        let approx = propagate_measure(&g, &idx, &y, 3, 20_000, 77);
        // Compare total mass and a few heavy coordinates.
        assert!((total(&exact) - total(&approx)).abs() < 0.05 * total(&exact).max(1e-9));
        let exact_max =
            exact.iter().cloned().fold((0u32, 0.0f64), |a, b| if b.1 > a.1 { b } else { a });
        let approx_at: f64 =
            approx.iter().find(|&&(n, _)| n == exact_max.0).map(|&(_, m)| m).unwrap_or(0.0);
        assert!(
            (approx_at - exact_max.1).abs() < 0.1 * exact_max.1.max(1e-9),
            "exact {exact_max:?} vs approx {approx_at}"
        );
    }

    #[test]
    fn walkers_drop_mass_at_sinks() {
        // Path graph: node n-1 has no out-edges, so all mass eventually
        // drains once it walks off the end.
        let g = generators::path(3); // 0 -> 1 -> 2
        let idx = ReverseChainIndex::build(&g);
        let z = propagate_measure(&g, &idx, &[(2, 1.0)], 1, 10, 4);
        assert!(z.is_empty());
        let z = propagate_measure(&g, &idx, &[(0, 1.0)], 2, 10, 4);
        assert_eq!(z.len(), 1);
        assert_eq!(z[0].0, 2);
        assert!((z[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reverse_push_matches_walk_expectation() {
        // diamond: 0->1, 0->2, 1->3, 2->3. From node 3 a reverse walker goes
        // to 1 or 2 with probability 1/2 each, then to 0 with probability 1.
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let u1 = reverse_push_measure(&g, &[(3, 1.0)]);
        assert_eq!(u1, vec![(1, 0.5), (2, 0.5)]);
        let u2 = reverse_push_measure(&g, &u1);
        assert_eq!(u2.len(), 1);
        assert_eq!(u2[0].0, 0);
        assert!((u2[0].1 - 1.0).abs() < 1e-12);
        // Node 0 is dangling: all mass dies at the next step.
        assert!(reverse_push_measure(&g, &u2).is_empty());
    }

    #[test]
    fn reverse_push_steps_composes() {
        let g = generators::cycle(5);
        let u = reverse_push_measure_steps(&g, &[(0, 1.0)], 3);
        assert_eq!(u, vec![(2, 1.0)]); // (0 - 3) mod 5
    }

    #[test]
    fn zero_steps_returns_input() {
        let g = generators::cycle(4);
        let idx = ReverseChainIndex::build(&g);
        let y = vec![(1u32, 0.7)];
        assert_eq!(propagate_measure(&g, &idx, &y, 0, 5, 1), y);
    }

    #[test]
    fn propagation_is_deterministic_in_seed() {
        let g = generators::rmat(8, 2000, generators::RmatParams::default(), 5);
        let idx = ReverseChainIndex::build(&g);
        let y = vec![(3u32, 1.0), (100, 2.0)];
        let a = propagate_measure(&g, &idx, &y, 4, 50, 123);
        let b = propagate_measure(&g, &idx, &y, 4, 50, 123);
        assert_eq!(a, b);
    }
}
