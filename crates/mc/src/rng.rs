//! Deterministic, counter-seedable random number generation.
//!
//! The hot loops of CloudWalker draw billions of uniforms; the engine needs
//! (a) speed, (b) the ability to derive a statistically independent stream
//! for every `(node, walker, purpose)` triple so that results do not depend
//! on which thread or cluster partition executes the walk. [`SplitMix64`]
//! provides the key-derivation step (it is a bijective mixer, so distinct
//! inputs give distinct, decorrelated outputs) and [`Xoshiro256pp`] the
//! long-period stream.

/// SplitMix64: Steele, Lea & Flood's 64-bit mixer. One multiply-xor chain
/// per output; used here both as a tiny RNG and as the seed-derivation
/// function for [`Xoshiro256pp`].
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator at `seed`.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Mixes several keys into one 64-bit seed. Used to derive per-walker
/// streams: `mix(&[master, node, walker])`.
#[inline]
pub fn mix(keys: &[u64]) -> u64 {
    let mut acc = 0x243f_6a88_85a3_08d3u64; // pi digits: arbitrary non-zero
    for &k in keys {
        let mut sm = SplitMix64::new(acc ^ k);
        acc = sm.next_u64();
    }
    acc
}

/// xoshiro256++ (Blackman & Vigna): 4×64-bit state, period 2²⁵⁶−1,
/// passes BigCrush; ~1 ns per draw.
#[derive(Clone, Debug)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the full state through SplitMix64, per the reference
    /// implementation's recommendation (never all-zero).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    /// Derives a stream for a keyed entity, e.g. `for_keys(&[seed, node, w])`.
    pub fn for_keys(keys: &[u64]) -> Self {
        Self::seed_from_u64(mix(keys))
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` by Lemire's multiply-shift (no
    /// modulo bias worth caring about at walk scales, no division).
    ///
    /// # Panics
    /// Panics when `bound == 0`, in release builds too: a zero bound means
    /// the caller sampled from an empty set (e.g. a walk step taken from a
    /// node with no neighbours), and silently returning 0 — what the old
    /// `debug_assert!` allowed in release — would mask that bug.
    #[inline]
    pub fn next_below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "next_below: bound must be positive");
        (((self.next_u64() >> 32) * bound as u64) >> 32) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain C code.
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(a, sm2.next_u64());
        assert_eq!(b, sm2.next_u64());
    }

    #[test]
    fn xoshiro_streams_are_deterministic_and_distinct() {
        let mut r1 = Xoshiro256pp::for_keys(&[42, 7, 0]);
        let mut r2 = Xoshiro256pp::for_keys(&[42, 7, 0]);
        let mut r3 = Xoshiro256pp::for_keys(&[42, 7, 1]);
        let v1: Vec<u64> = (0..8).map(|_| r1.next_u64()).collect();
        let v2: Vec<u64> = (0..8).map(|_| r2.next_u64()).collect();
        let v3: Vec<u64> = (0..8).map(|_| r3.next_u64()).collect();
        assert_eq!(v1, v2);
        assert_ne!(v1, v3);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean={mean}");
    }

    #[test]
    fn next_below_is_in_range_and_balanced() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[rng.next_below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 600, "{counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_bound_panics_in_every_profile() {
        // Regression: this was a debug_assert!, so release builds silently
        // returned 0 for an empty sampling set. The contract must hold in
        // release too — CI's release-mode test job exercises this.
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let _ = rng.next_below(0);
    }

    #[test]
    fn mix_depends_on_every_key() {
        assert_ne!(mix(&[1, 2, 3]), mix(&[1, 2, 4]));
        assert_ne!(mix(&[1, 2, 3]), mix(&[2, 2, 3]));
        assert_ne!(mix(&[1, 2, 3]), mix(&[1, 3, 2]));
        assert_eq!(mix(&[1, 2, 3]), mix(&[1, 2, 3]));
    }

    #[test]
    fn mix_of_zero_keys_is_not_degenerate() {
        // All-zero keys must still seed a usable stream.
        let mut r = Xoshiro256pp::for_keys(&[0, 0, 0]);
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
