//! Walk diagnostics: survival, spread and support statistics.
//!
//! Operators sizing `T`, `R` and memory budgets need to know how walks
//! behave on *their* graph: how fast mass dies on dangling nodes (bounds
//! useful `T`), how wide the per-step support spreads (bounds row storage
//! under the `Store` strategy and shuffle volume in RDD mode). These
//! summaries are cheap to compute from sampled cohorts and feed capacity
//! planning before an expensive full index build.

use crate::walks::{reverse_walk_distributions, WalkParams};
use pasco_graph::{CsrGraph, NodeId};
use rayon::prelude::*;

/// Per-step aggregates over a sample of cohorts.
#[derive(Clone, Debug, PartialEq)]
pub struct WalkProfile {
    /// Walk parameters the profile was measured with.
    pub params: WalkParams,
    /// Number of sampled source nodes.
    pub sampled_sources: usize,
    /// Mean surviving mass per step (`survival[t] ∈ [0, 1]`, index 0 = 1).
    pub survival: Vec<f64>,
    /// Mean distinct-node support per step.
    pub support: Vec<f64>,
    /// Largest observed per-step support across samples.
    pub max_support: usize,
}

impl WalkProfile {
    /// Estimated bytes per stored `aᵢ` row (12 bytes per support entry),
    /// from the measured mean total support.
    pub fn estimated_row_bytes(&self) -> u64 {
        let total: f64 = self.support.iter().sum();
        (total * 12.0).ceil() as u64 + 24
    }

    /// The first step at which mean survival drops below `threshold`
    /// (`None` if it never does within the profiled horizon). A `T` beyond
    /// this point buys little: the series terms carry almost no mass.
    pub fn effective_horizon(&self, threshold: f64) -> Option<usize> {
        self.survival.iter().position(|&s| s < threshold)
    }
}

/// Profiles reverse walks from `sources` (deterministic in `seed`).
pub fn profile_walks(
    graph: &CsrGraph,
    sources: &[NodeId],
    params: WalkParams,
    seed: u64,
) -> WalkProfile {
    assert!(!sources.is_empty(), "need at least one source");
    let per_source: Vec<(Vec<f64>, Vec<usize>)> = sources
        .par_iter()
        .map(|&s| {
            let d = reverse_walk_distributions(graph, s, params, seed);
            let mass: Vec<f64> = (0..=params.steps).map(|t| d.mass(t)).collect();
            let support: Vec<usize> = d.counts.iter().map(Vec::len).collect();
            (mass, support)
        })
        .collect();
    let steps = params.steps + 1;
    let mut survival = vec![0.0; steps];
    let mut support = vec![0.0; steps];
    let mut max_support = 0;
    for (mass, sup) in &per_source {
        for t in 0..steps {
            survival[t] += mass[t];
            support[t] += sup[t] as f64;
            max_support = max_support.max(sup[t]);
        }
    }
    let k = sources.len() as f64;
    for t in 0..steps {
        survival[t] /= k;
        support[t] /= k;
    }
    WalkProfile { params, sampled_sources: sources.len(), survival, support, max_support }
}

/// Evenly spaced sample of `count` node ids (for profiling without bias
/// toward any id range).
pub fn sample_sources(graph: &CsrGraph, count: usize) -> Vec<NodeId> {
    let n = graph.node_count();
    assert!(n > 0, "empty graph");
    let count = count.min(n as usize).max(1);
    (0..count).map(|i| ((i as u64 * n as u64) / count as u64) as NodeId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasco_graph::generators;

    #[test]
    fn cycle_profile_is_lossless_and_point_supported() {
        let g = generators::cycle(20);
        let p = profile_walks(&g, &[0, 5, 10], WalkParams::new(6, 8), 3);
        assert!(p.survival.iter().all(|&s| (s - 1.0).abs() < 1e-12));
        assert!(p.support.iter().all(|&s| (s - 1.0).abs() < 1e-12));
        assert_eq!(p.max_support, 1);
        assert_eq!(p.effective_horizon(0.5), None);
    }

    #[test]
    fn path_profile_shows_mass_death() {
        // 0 -> 1 -> 2: from node 2 walkers die after two steps.
        let g = generators::path(3);
        let p = profile_walks(&g, &[2], WalkParams::new(4, 10), 1);
        assert_eq!(p.survival[0], 1.0);
        assert_eq!(p.survival[2], 1.0);
        assert_eq!(p.survival[3], 0.0);
        assert_eq!(p.effective_horizon(0.5), Some(3));
    }

    #[test]
    fn support_grows_then_saturates_on_scale_free_graphs() {
        let g = generators::barabasi_albert(500, 4, 9);
        let sources = sample_sources(&g, 20);
        let p = profile_walks(&g, &sources, WalkParams::new(8, 64), 5);
        // Support at step 1 exceeds the single source node of step 0.
        assert!(p.support[1] > p.support[0]);
        assert!(p.max_support <= 64);
        assert!(p.estimated_row_bytes() > 24);
    }

    #[test]
    fn sample_sources_spans_the_id_range() {
        let g = generators::cycle(100);
        let s = sample_sources(&g, 10);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], 0);
        assert!(*s.last().unwrap() >= 90);
        // Monotone and unique.
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn profile_is_deterministic() {
        let g = generators::rmat(8, 1200, generators::RmatParams::default(), 2);
        let sources = sample_sources(&g, 5);
        let a = profile_walks(&g, &sources, WalkParams::new(5, 32), 7);
        let b = profile_walks(&g, &sources, WalkParams::new(5, 32), 7);
        assert_eq!(a, b);
    }
}
