#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Monte-Carlo random-walk engine for PASCO / CloudWalker.
//!
//! Everything CloudWalker computes reduces to simulating walks on the
//! SimRank chain and aggregating per-step visit counts:
//!
//! * offline indexing places `R` walkers on every node and needs the
//!   per-step empirical distributions `ûₜ ≈ Pᵗ eᵢ` ([`walks`]);
//! * MCSP runs two walker cohorts and intersects their step distributions;
//! * MCSS additionally propagates mass *forward* through the reverse chain
//!   with importance weights ([`forward`]).
//!
//! Determinism is a design requirement (tests compare Local, Broadcast and
//! RDD execution bit-for-bit), so all randomness flows from [`rng`]'s
//! counter-seeded generators: the walk of walker `w` from node `v` depends
//! only on `(master_seed, v, w)`, never on thread scheduling.

pub mod counts;
pub mod forward;
pub mod parallel;
pub mod rng;
pub mod stats;
pub mod walks;

pub use counts::CountMap;
pub use rng::{SplitMix64, Xoshiro256pp};
pub use walks::{StepDistributions, WalkParams};
