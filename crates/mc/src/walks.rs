//! Reverse random walks along in-links — the SimRank chain.
//!
//! A walker at node `v` steps to a uniformly random in-neighbour; if `v` has
//! no in-neighbours the walker **dies** (the empirical distribution loses
//! mass, matching the sub-stochastic truncated series `Pᵗeᵢ`).
//!
//! Randomness is *stateless per step*: the uniform used by walker `w` from
//! source `s` at step `t` is a pure function of `(master_seed, s, w, t)`
//! (see [`step_u64`]). Walks therefore take identical trajectories whether
//! they are simulated locally, on a broadcast worker pool, or shuffled
//! across RDD partitions step by step — the property the cross-mode equality
//! tests rely on.

use crate::counts::CountMap;
use crate::rng::{mix, SplitMix64};
use pasco_graph::{CsrGraph, NodeId, WalkAdjacency};

/// Walk-cohort parameters: `steps` is the paper's `T`, `walkers` its `R`
/// (indexing) or `R'` (queries).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkParams {
    /// Number of steps `T` each walker takes.
    pub steps: usize,
    /// Cohort size (`R` / `R'`).
    pub walkers: u32,
}

impl WalkParams {
    /// Convenience constructor.
    pub fn new(steps: usize, walkers: u32) -> Self {
        assert!(walkers > 0, "need at least one walker");
        Self { steps, walkers }
    }
}

/// The per-walker RNG key; combine with a step index via [`step_u64`].
#[inline]
pub fn walker_key(seed: u64, source: NodeId, walker: u32) -> u64 {
    mix(&[seed, source as u64, walker as u64])
}

/// The 64 uniform bits consumed by one walk step — a pure function of the
/// walker key and step index, independent of where the step executes.
#[inline]
pub fn step_u64(walker_key: u64, t: u32) -> u64 {
    SplitMix64::new(walker_key ^ (t as u64).wrapping_mul(0xd1b5_4a32_d192_ed03)).next_u64()
}

/// Picks index `< len` from 64 uniform bits (Lemire multiply-shift).
#[inline]
pub fn pick(u: u64, len: usize) -> usize {
    (((u >> 32) * len as u64) >> 32) as usize
}

/// One reverse-walk step from `pos`; `None` when `pos` is dangling.
#[inline]
pub fn reverse_step(graph: &CsrGraph, pos: NodeId, key: u64, t: u32) -> Option<NodeId> {
    let ins = graph.in_neighbors(pos);
    if ins.is_empty() {
        None
    } else {
        Some(ins[pick(step_u64(key, t), ins.len())])
    }
}

/// Empirical per-step distributions of a walker cohort from one source:
/// `counts[t]` is the visit histogram at step `t` (sorted by node id),
/// normalising by `walkers` estimates `Pᵗ e_source`.
#[derive(Clone, Debug, PartialEq)]
pub struct StepDistributions {
    /// The source node all walkers started from.
    pub source: NodeId,
    /// Cohort size used for normalisation.
    pub walkers: u32,
    /// `counts[t]` for `t = 0..=steps`; `counts[0] = [(source, walkers)]`.
    pub counts: Vec<Vec<(NodeId, u64)>>,
}

impl StepDistributions {
    /// Number of steps simulated (`T`).
    pub fn steps(&self) -> usize {
        self.counts.len() - 1
    }

    /// The estimated probability `P̂ᵗe_s(v) = count / walkers` at step `t`.
    pub fn prob(&self, t: usize, v: NodeId) -> f64 {
        match self.counts[t].binary_search_by_key(&v, |&(k, _)| k) {
            Ok(i) => self.counts[t][i].1 as f64 / self.walkers as f64,
            Err(_) => 0.0,
        }
    }

    /// Surviving mass at step `t` (≤ 1; < 1 once walkers hit dangling nodes).
    pub fn mass(&self, t: usize) -> f64 {
        let total: u64 = self.counts[t].iter().map(|&(_, c)| c).sum();
        total as f64 / self.walkers as f64
    }
}

/// Simulates the full cohort from `source` and records every step's
/// distribution. This is the building block of offline indexing (`R`
/// walkers per node) and of MCSP/MCSS (`R'` walkers per query node).
pub fn reverse_walk_distributions(
    graph: &CsrGraph,
    source: NodeId,
    params: WalkParams,
    seed: u64,
) -> StepDistributions {
    reverse_walk_distributions_on(graph, source, params, seed)
}

/// [`reverse_walk_distributions`] generic over the adjacency source —
/// the one kernel behind the resident-graph engines *and* the sharded
/// engine's routed [`pasco_graph::partitioned::PartitionedView`], so
/// cross-engine bit-equality is structural, not merely test-enforced.
pub fn reverse_walk_distributions_on<G: WalkAdjacency>(
    graph: &G,
    source: NodeId,
    params: WalkParams,
    seed: u64,
) -> StepDistributions {
    assert!(source < graph.node_count(), "source out of range");
    let mut maps: Vec<CountMap> =
        (0..params.steps).map(|_| CountMap::with_capacity(params.walkers as usize)).collect();
    for w in 0..params.walkers {
        let key = walker_key(seed, source, w);
        let mut pos = source;
        for t in 1..=params.steps {
            let ins = graph.in_neighbors(pos);
            if ins.is_empty() {
                break;
            }
            pos = ins[pick(step_u64(key, t as u32), ins.len())];
            maps[t - 1].add(pos, 1);
        }
    }
    let mut counts = Vec::with_capacity(params.steps + 1);
    counts.push(vec![(source, params.walkers as u64)]);
    counts.extend(maps.into_iter().map(|m| m.into_sorted_vec()));
    StepDistributions { source, walkers: params.walkers, counts }
}

/// The full trajectory of a single walker (positions after steps `1..=steps`;
/// shorter if the walker dies). Used by tests and by the FMT baseline's
/// fingerprint construction.
pub fn reverse_walk_path(
    graph: &CsrGraph,
    source: NodeId,
    walker: u32,
    steps: usize,
    seed: u64,
) -> Vec<NodeId> {
    let key = walker_key(seed, source, walker);
    let mut path = Vec::with_capacity(steps);
    let mut pos = source;
    for t in 1..=steps {
        match reverse_step(graph, pos, key, t as u32) {
            Some(next) => {
                pos = next;
                path.push(pos);
            }
            None => break,
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasco_graph::generators;

    #[test]
    fn cycle_walks_are_deterministic_shifts() {
        // On a directed cycle every node has exactly one in-neighbour, so
        // the reverse walk is deterministic: position after t steps from s
        // is (s - t) mod n.
        let g = generators::cycle(7);
        let d = reverse_walk_distributions(&g, 3, WalkParams::new(5, 10), 42);
        for t in 0..=5 {
            let expected = ((3 + 7 - (t as u32 % 7)) % 7) as NodeId;
            assert_eq!(d.counts[t], vec![(expected, 10)], "step {t}");
            assert!((d.mass(t) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn walkers_die_on_dangling_nodes() {
        // Path 0 -> 1 -> 2: reverse walk from 2 reaches 0 at t=2 and dies
        // at t=3 (node 0 has no in-neighbours).
        let g = generators::path(3);
        let d = reverse_walk_distributions(&g, 2, WalkParams::new(4, 8), 1);
        assert_eq!(d.counts[1], vec![(1, 8)]);
        assert_eq!(d.counts[2], vec![(0, 8)]);
        assert!(d.counts[3].is_empty());
        assert!(d.counts[4].is_empty());
        assert_eq!(d.mass(3), 0.0);
    }

    #[test]
    fn distributions_are_seed_deterministic() {
        let g = generators::barabasi_albert(200, 3, 9);
        let a = reverse_walk_distributions(&g, 17, WalkParams::new(6, 50), 5);
        let b = reverse_walk_distributions(&g, 17, WalkParams::new(6, 50), 5);
        assert_eq!(a, b);
        let c = reverse_walk_distributions(&g, 17, WalkParams::new(6, 50), 6);
        assert_ne!(a, c);
    }

    #[test]
    fn step_uniform_is_stateless() {
        let key = walker_key(3, 14, 2);
        assert_eq!(step_u64(key, 5), step_u64(key, 5));
        assert_ne!(step_u64(key, 5), step_u64(key, 6));
    }

    #[test]
    fn path_matches_distributions_for_single_walker() {
        let g = generators::barabasi_albert(100, 3, 4);
        let params = WalkParams::new(8, 1);
        let d = reverse_walk_distributions(&g, 30, params, 11);
        let p = reverse_walk_path(&g, 30, 0, 8, 11);
        for (t, &node) in p.iter().enumerate() {
            assert_eq!(d.counts[t + 1], vec![(node, 1)]);
        }
    }

    #[test]
    fn complete_graph_distribution_approaches_uniform() {
        // On K_n the reverse-walk distribution after any t >= 1 step is
        // uniform over the other n-1 nodes... in expectation. With many
        // walkers the empirical distribution should be close.
        let g = generators::complete(10);
        let d = reverse_walk_distributions(&g, 0, WalkParams::new(3, 20_000), 7);
        for &(node, c) in &d.counts[1] {
            assert_ne!(node, 0, "step away from source on K_n");
            let p = c as f64 / 20_000.0;
            assert!((p - 1.0 / 9.0).abs() < 0.01, "node {node}: {p}");
        }
    }

    #[test]
    fn prob_lookup_matches_counts() {
        let g = generators::complete(5);
        let d = reverse_walk_distributions(&g, 2, WalkParams::new(2, 100), 3);
        let total: f64 = (0..5).map(|v| d.prob(1, v)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(d.prob(0, 2), 1.0);
        assert_eq!(d.prob(0, 3), 0.0);
    }
}
