//! Fast sparse accumulation keyed by node id.
//!
//! Per-step walker distributions are sparse maps `node → count` with at most
//! `R` (or `R'`) entries, rebuilt millions of times. The standard library
//! `HashMap` with SipHash is measurably too slow in the walk loop (the perf
//! guide recommends a cheap integer hash for exactly this case), so
//! [`OpenMap`] is a small open-addressing table with Fibonacci hashing and
//! linear probing, tuned for `u32` keys and dense reuse. [`CountMap`]
//! accumulates walker counts, [`MassMap`] accumulates floating-point mass
//! for the forward-walk estimator.

use pasco_graph::NodeId;

const EMPTY: u32 = u32::MAX;

/// Values an [`OpenMap`] can accumulate.
pub trait Accumulate: Copy + Default + PartialEq {
    /// `self += other`.
    fn accumulate(&mut self, other: Self);
}

impl Accumulate for u64 {
    #[inline]
    fn accumulate(&mut self, other: Self) {
        *self += other;
    }
}

impl Accumulate for f64 {
    #[inline]
    fn accumulate(&mut self, other: Self) {
        *self += other;
    }
}

/// Open-addressing `NodeId → V` accumulator with linear probing.
///
/// Capacity is a power of two and grows at 7/8 load. `u32::MAX` is reserved
/// as the empty marker; node ids are bounded by the graph's node count so
/// the reservation never collides (checked in debug builds).
#[derive(Clone, Debug)]
pub struct OpenMap<V> {
    keys: Vec<u32>,
    vals: Vec<V>,
    len: usize,
    mask: usize,
}

/// Walker visit counter: `node → number of walkers`.
pub type CountMap = OpenMap<u64>;
/// Mass accumulator for the MCSS forward-walk estimator: `node → mass`.
pub type MassMap = OpenMap<f64>;

impl<V: Accumulate> OpenMap<V> {
    /// An empty map sized for `expected` distinct keys.
    pub fn with_capacity(expected: usize) -> Self {
        let cap = (expected.max(4) * 8 / 7).next_power_of_two();
        Self { keys: vec![EMPTY; cap], vals: vec![V::default(); cap], len: 0, mask: cap - 1 }
    }

    /// Number of distinct keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no key has been added.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn slot_of(&self, key: u32) -> usize {
        debug_assert_ne!(key, EMPTY, "u32::MAX is reserved");
        let h = (key as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        ((h >> 32) as usize) & self.mask
    }

    /// Accumulates `delta` into `key`'s value.
    #[inline]
    pub fn add(&mut self, key: NodeId, delta: V) {
        if self.len * 8 >= (self.mask + 1) * 7 {
            self.grow();
        }
        let mut slot = self.slot_of(key);
        loop {
            let k = self.keys[slot];
            if k == key {
                self.vals[slot].accumulate(delta);
                return;
            }
            if k == EMPTY {
                self.keys[slot] = key;
                self.vals[slot] = delta;
                self.len += 1;
                return;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Current value for `key` (default if absent).
    #[inline]
    pub fn get(&self, key: NodeId) -> V {
        let mut slot = self.slot_of(key);
        loop {
            let k = self.keys[slot];
            if k == key {
                return self.vals[slot];
            }
            if k == EMPTY {
                return V::default();
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Iterates `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, V)> + '_ {
        self.keys.iter().zip(self.vals.iter()).filter(|(&k, _)| k != EMPTY).map(|(&k, &v)| (k, v))
    }

    /// Drains into a `(key, value)` vector sorted by key. Sorting makes
    /// downstream dot products and cross-mode equality tests deterministic.
    pub fn into_sorted_vec(self) -> Vec<(NodeId, V)> {
        let mut out: Vec<(NodeId, V)> = self.iter().collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    /// Clears all entries, keeping capacity — the "workhorse collection"
    /// pattern for reuse across steps.
    pub fn clear(&mut self) {
        self.keys.fill(EMPTY);
        self.vals.fill(V::default());
        self.len = 0;
    }

    #[cold]
    fn grow(&mut self) {
        let new_cap = (self.mask + 1) * 2;
        let mut bigger = OpenMap::<V> {
            keys: vec![EMPTY; new_cap],
            vals: vec![V::default(); new_cap],
            len: 0,
            mask: new_cap - 1,
        };
        for (k, v) in self.iter() {
            bigger.add(k, v);
        }
        *self = bigger;
    }
}

impl CountMap {
    /// Sum of all counts.
    pub fn total(&self) -> u64 {
        self.iter().map(|(_, v)| v).sum()
    }
}

impl MassMap {
    /// Sum of all mass.
    pub fn total_mass(&self) -> f64 {
        self.iter().map(|(_, v)| v).sum()
    }
}

impl<V: Accumulate> Default for OpenMap<V> {
    fn default() -> Self {
        Self::with_capacity(16)
    }
}

impl<V: Accumulate> FromIterator<(NodeId, V)> for OpenMap<V> {
    fn from_iter<I: IntoIterator<Item = (NodeId, V)>>(iter: I) -> Self {
        let mut m = OpenMap::default();
        for (k, v) in iter {
            m.add(k, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut m = CountMap::with_capacity(4);
        m.add(10, 1);
        m.add(10, 2);
        m.add(7, 5);
        assert_eq!(m.get(10), 3);
        assert_eq!(m.get(7), 5);
        assert_eq!(m.get(99), 0);
        assert_eq!(m.len(), 2);
        assert_eq!(m.total(), 8);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m = CountMap::with_capacity(2);
        for k in 0..1000 {
            m.add(k, k as u64 + 1);
        }
        assert_eq!(m.len(), 1000);
        for k in 0..1000 {
            assert_eq!(m.get(k), k as u64 + 1);
        }
    }

    #[test]
    fn sorted_vec_is_sorted_and_complete() {
        let mut m = CountMap::default();
        for &k in &[5u32, 1, 9, 3] {
            m.add(k, k as u64);
        }
        let v = m.into_sorted_vec();
        assert_eq!(v, vec![(1, 1), (3, 3), (5, 5), (9, 9)]);
    }

    #[test]
    fn clear_retains_capacity_and_empties() {
        let mut m = CountMap::with_capacity(8);
        for k in 0..100 {
            m.add(k, 1);
        }
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(5), 0);
        m.add(5, 2);
        assert_eq!(m.get(5), 2);
    }

    #[test]
    fn colliding_keys_probe_correctly() {
        // Keys engineered to collide under the fib hash with tiny capacity.
        let mut m = CountMap::with_capacity(4);
        for k in [0u32, 8, 16, 24, 32, 40] {
            m.add(k, (k + 1) as u64);
        }
        for k in [0u32, 8, 16, 24, 32, 40] {
            assert_eq!(m.get(k), (k + 1) as u64, "key {k}");
        }
    }

    #[test]
    fn from_iterator_collects() {
        let m: CountMap = vec![(1u32, 2u64), (3, 4), (1, 1)].into_iter().collect();
        assert_eq!(m.get(1), 3);
        assert_eq!(m.get(3), 4);
    }

    #[test]
    fn mass_map_accumulates_floats() {
        let mut m = MassMap::default();
        m.add(3, 0.25);
        m.add(3, 0.5);
        m.add(8, 1.0);
        assert!((m.get(3) - 0.75).abs() < 1e-12);
        assert!((m.total_mass() - 1.75).abs() < 1e-12);
    }
}
