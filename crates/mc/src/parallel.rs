//! Embarrassingly parallel batch drivers for walk simulation.
//!
//! The offline phase simulates a cohort from *every* node — the "generate
//! `aᵢ` by Monte Carlo simulation, in parallel" step of the paper. Work is
//! data-parallel over source nodes; determinism is preserved because each
//! cohort's randomness is keyed by `(seed, source, walker, step)` and never
//! by the executing thread.

use crate::walks::{reverse_walk_distributions, StepDistributions, WalkParams};
use pasco_graph::{CsrGraph, NodeId};
use rayon::prelude::*;

/// Simulates cohorts from every node in `sources`, in parallel.
pub fn batch_distributions(
    graph: &CsrGraph,
    sources: &[NodeId],
    params: WalkParams,
    seed: u64,
) -> Vec<StepDistributions> {
    sources.par_iter().map(|&s| reverse_walk_distributions(graph, s, params, seed)).collect()
}

/// Applies `f` to the cohort of every node `0..n` in parallel, collecting
/// the per-node results in node order. Streaming (`fold`-style) alternative
/// to materialising all [`StepDistributions`] at once: the distributions for
/// node `v` live only as long as `f`'s activation.
pub fn map_all_nodes<R, F>(graph: &CsrGraph, params: WalkParams, seed: u64, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(NodeId, StepDistributions) -> R + Sync,
{
    (0..graph.node_count())
        .into_par_iter()
        .map(|v| f(v, reverse_walk_distributions(graph, v, params, seed)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasco_graph::generators;

    #[test]
    fn batch_matches_individual_runs() {
        let g = generators::barabasi_albert(120, 3, 2);
        let params = WalkParams::new(5, 20);
        let batch = batch_distributions(&g, &[3, 50, 99], params, 8);
        for (i, &s) in [3u32, 50, 99].iter().enumerate() {
            let solo = reverse_walk_distributions(&g, s, params, 8);
            assert_eq!(batch[i], solo, "source {s}");
        }
    }

    #[test]
    fn map_all_nodes_is_in_node_order_and_deterministic() {
        let g = generators::cycle(50);
        let params = WalkParams::new(3, 4);
        let ends: Vec<NodeId> = map_all_nodes(&g, params, 1, |_, d| d.counts[3][0].0);
        // Cycle reverse walk: after 3 steps from v you are at (v - 3) mod n.
        for (v, &e) in ends.iter().enumerate() {
            assert_eq!(e, ((v as u32) + 50 - 3) % 50);
        }
        let again: Vec<NodeId> = map_all_nodes(&g, params, 1, |_, d| d.counts[3][0].0);
        assert_eq!(ends, again);
    }
}
