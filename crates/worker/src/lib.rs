#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! **The PASCO SimRank worker**: the process half of the distributed
//! substrate (`ExecMode::Distributed`).
//!
//! A worker is a small TCP server speaking the versioned envelope
//! protocol's worker-control frames. Its life is three phases:
//!
//! 1. **Load** — the coordinator ships the full partition set
//!    (`LoadPartition` frames; adjacency replicates because walkers
//!    cross partition boundaries) and names the one partition this
//!    worker *owns*.
//! 2. **Build** — on `BuildShard`, the worker walks an `R`-walker
//!    cohort for each owned source and returns the materialised rows of
//!    its slice of the linear system.
//! 3. **Serve** — `ShardQuery` / `ShardTopK` frames arrive for sources
//!    this worker owns; answers are bit-identical to the local engine
//!    because the compute core ([`ShardWorkerCore`]) runs the same
//!    generic walk kernels over the same routed view as the in-process
//!    sharded engine.
//!
//! All protocol semantics live in
//! [`pasco_simrank::api`]: frames in [`envelope`], payloads in
//! [`worker`], frame I/O in [`transport`], and the compute core in
//! `pasco_simrank::engine::distributed`. This crate only owns the
//! process shell: the listener, per-connection threads, the drain on a
//! `Shutdown` frame, and a [`WorkerHandle`] for programmatic stop/kill
//! (tests use `kill` to simulate a worker dying mid-protocol).
//!
//! ```no_run
//! use pasco_worker::{PascoWorker, WorkerConfig};
//!
//! let worker = PascoWorker::bind("127.0.0.1:0", WorkerConfig::default()).unwrap();
//! println!("worker listening on {}", worker.local_addr());
//! worker.run().unwrap(); // returns once a Shutdown frame drains it
//! ```
//!
//! [`envelope`]: pasco_simrank::api::envelope
//! [`worker`]: pasco_simrank::api::worker
//! [`transport`]: pasco_simrank::api::transport

use pasco_simrank::api::envelope::{Envelope, FrameKind, ServerInfo, DEFAULT_MAX_FRAME};
use pasco_simrank::api::transport::{poll_envelope, write_envelope};
use pasco_simrank::api::wire::WireCodec;
use pasco_simrank::api::worker::{
    BuildShard, Empty, LoadPartition, LoadStore, ShardQuery, ShardTopK,
};
use pasco_simrank::engine::distributed::ShardWorkerCore;
use pasco_simrank::QueryError;
use std::io::BufReader;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Tunables of a [`PascoWorker`].
#[derive(Clone, Copy, Debug)]
pub struct WorkerConfig {
    /// Largest frame payload accepted (and advertised in the
    /// handshake). `LoadPartition` frames carry whole partitions, so on
    /// very large graphs this may need to exceed the protocol default.
    pub max_frame_bytes: u32,
    /// How often an idle connection checks for a worker stop.
    pub poll_interval: Duration,
    /// Once a frame has started, each read must make progress within
    /// this long; a peer stalling mid-frame is dropped.
    pub io_timeout: Duration,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        Self {
            max_frame_bytes: DEFAULT_MAX_FRAME,
            poll_interval: Duration::from_millis(25),
            io_timeout: Duration::from_secs(10),
        }
    }
}

/// A clonable remote control for a running worker.
#[derive(Clone)]
pub struct WorkerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<ConnRegistry>>,
}

/// Live connection sockets, keyed so a finished connection can
/// deregister itself (a registered clone would otherwise hold the fd
/// open past the connection's end and the peer would never see EOF).
#[derive(Default)]
struct ConnRegistry {
    next: u64,
    live: Vec<(u64, TcpStream)>,
}

impl ConnRegistry {
    fn register(&mut self, stream: TcpStream) -> u64 {
        self.next += 1;
        self.live.push((self.next, stream));
        self.next
    }

    fn deregister(&mut self, id: u64) {
        self.live.retain(|(key, _)| *key != id);
    }
}

impl WorkerHandle {
    /// The address the worker accepts on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful stop: idle connections say goodbye and close, the
    /// accept loop ends, [`PascoWorker::run`] returns. In-flight
    /// requests finish first.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        self.wake_accept();
    }

    /// Hard kill, for fault-injection tests: stop *and* tear down every
    /// live connection socket, so a coordinator blocked on this worker
    /// sees an immediate transport fault instead of a drained goodbye —
    /// the wire-visible signature of a worker process dying.
    pub fn kill(&self) {
        self.stop.store(true, Ordering::Release);
        self.sever_connections();
        self.wake_accept();
    }

    /// Tears down every live connection socket while the worker keeps
    /// running and its loaded state stays resident — the wire-visible
    /// signature of a network blip, for testing coordinator reconnects.
    pub fn sever_connections(&self) {
        for (_, conn) in
            self.conns.lock().unwrap_or_else(std::sync::PoisonError::into_inner).live.iter()
        {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }

    fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Unblocks the accept loop (wildcard-safe, never blocks the caller
    /// on an unresponsive route) — same trick as the query server.
    fn wake_accept(&self) {
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match self.addr {
                SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect_timeout(&wake, Duration::from_secs(1));
    }
}

/// A bound, not-yet-running SimRank worker.
pub struct PascoWorker {
    listener: TcpListener,
    cfg: WorkerConfig,
    handle: WorkerHandle,
    state: Arc<Mutex<ShardWorkerCore>>,
}

impl PascoWorker {
    /// Binds `addr` (port 0 for ephemeral; read it back with
    /// [`PascoWorker::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs, cfg: WorkerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let handle = WorkerHandle {
            addr: listener.local_addr()?,
            stop: Arc::new(AtomicBool::new(false)),
            conns: Arc::new(Mutex::new(ConnRegistry::default())),
        };
        Ok(PascoWorker {
            listener,
            cfg,
            handle,
            state: Arc::new(Mutex::new(ShardWorkerCore::new())),
        })
    }

    /// The address the worker accepts on.
    pub fn local_addr(&self) -> SocketAddr {
        self.handle.addr
    }

    /// A remote control for this worker.
    pub fn handle(&self) -> WorkerHandle {
        self.handle.clone()
    }

    /// Serves until stopped: a `Shutdown` frame from any peer (or
    /// [`WorkerHandle::shutdown`] / [`WorkerHandle::kill`]) ends the
    /// accept loop and closes every connection out. Loaded partitions
    /// and the diagonal cache survive *reconnects* but not the process:
    /// a restarted worker is empty and must be re-loaded.
    pub fn run(self) -> std::io::Result<()> {
        let mut conns = Vec::new();
        for stream in self.listener.incoming() {
            if self.handle.is_stopping() {
                break;
            }
            let Ok(stream) = stream else { continue };
            let state = Arc::clone(&self.state);
            let handle = self.handle.clone();
            let cfg = self.cfg;
            conns.push(thread::spawn(move || handle_conn(stream, &state, &handle, cfg)));
        }
        for conn in conns {
            let _ = conn.join();
        }
        Ok(())
    }
}

/// Serves one coordinator connection, then takes the socket down and
/// deregisters it — the kill registry's clone must not keep a finished
/// connection's fd alive (the peer would never see EOF).
fn handle_conn(
    stream: TcpStream,
    state: &Mutex<ShardWorkerCore>,
    handle: &WorkerHandle,
    cfg: WorkerConfig,
) {
    let Ok(registered) = stream.try_clone() else { return };
    let id =
        handle.conns.lock().unwrap_or_else(std::sync::PoisonError::into_inner).register(registered);
    serve_conn(stream, state, handle, cfg);
    let mut conns = handle.conns.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some((_, conn)) = conns.live.iter().find(|(key, _)| *key == id) {
        let _ = conn.shutdown(std::net::Shutdown::Both);
    }
    conns.deregister(id);
}

/// The connection's protocol loop: handshake, then strictly in-order
/// request/reply (the coordinator's link never pipelines, and in-order
/// replies are what lets it match by the next frame).
fn serve_conn(
    stream: TcpStream,
    state: &Mutex<ShardWorkerCore>,
    handle: &WorkerHandle,
    cfg: WorkerConfig,
) {
    let _ = stream.set_nodelay(true);
    let Ok(mut writer) = stream.try_clone() else { return };
    let _ = writer.set_write_timeout(Some(cfg.io_timeout));
    let mut reader = BufReader::new(stream);

    // Handshake: first frame must be a Hello within the I/O deadline.
    let deadline = std::time::Instant::now() + cfg.io_timeout;
    let hello = loop {
        match poll_envelope(&mut reader, cfg.max_frame_bytes, cfg.poll_interval, cfg.io_timeout) {
            Ok(None) => {
                if handle.is_stopping() || std::time::Instant::now() >= deadline {
                    return;
                }
            }
            Ok(Some(env)) => break env,
            Err(_) => return,
        }
    };
    if hello.kind != FrameKind::Hello {
        return;
    }
    let info = ServerInfo {
        node_count: state.lock().unwrap_or_else(std::sync::PoisonError::into_inner).node_count(),
        max_frame_bytes: cfg.max_frame_bytes,
    };
    if write_envelope(&mut writer, &Envelope::hello_ack(&info)).is_err() {
        return;
    }

    loop {
        let env = match poll_envelope(
            &mut reader,
            cfg.max_frame_bytes,
            cfg.poll_interval,
            cfg.io_timeout,
        ) {
            Ok(None) => {
                if handle.is_stopping() {
                    let _ = write_envelope(&mut writer, &Envelope::goodbye());
                    return;
                }
                continue;
            }
            Ok(Some(env)) => env,
            // Transport fault or protocol violation: the stream cannot
            // be trusted to resynchronise — close without ceremony.
            Err(_) => return,
        };
        let id = env.request_id;
        let reply = match env.kind {
            FrameKind::LoadPartition => {
                serve(state, id, env, cfg.max_frame_bytes, |core, msg: LoadPartition| {
                    core.load_partition(msg)
                })
            }
            FrameKind::LoadStore => {
                serve(state, id, env, cfg.max_frame_bytes, |core, msg: LoadStore| {
                    core.load_store(msg)
                })
            }
            FrameKind::BuildShard => {
                serve(state, id, env, cfg.max_frame_bytes, |core, msg: BuildShard| {
                    core.build(&msg.cfg)
                })
            }
            FrameKind::ShardQuery => {
                serve(state, id, env, cfg.max_frame_bytes, |core, msg: ShardQuery| core.query(msg))
            }
            FrameKind::ShardTopK => {
                serve(state, id, env, cfg.max_frame_bytes, |core, msg: ShardTopK| core.topk(msg))
            }
            FrameKind::WorkerStats => {
                serve(state, id, env, cfg.max_frame_bytes, |core, _: Empty| {
                    Ok::<_, QueryError>(core.stats())
                })
            }
            FrameKind::Shutdown => {
                let _ = write_envelope(&mut writer, &Envelope::goodbye());
                handle.shutdown();
                return;
            }
            // Coordinators send only worker-control frames and Shutdown
            // after the handshake.
            _ => return,
        };
        let Some(reply) = reply else { return };
        if write_envelope(&mut writer, &reply).is_err() {
            return;
        }
        if handle.is_stopping() {
            let _ = write_envelope(&mut writer, &Envelope::goodbye());
            return;
        }
    }
}

/// Decodes the request payload, runs `f` on the locked compute core,
/// and shapes the outcome: a reply frame of the same kind, an error
/// frame for a typed [`QueryError`], or `None` (drop the connection)
/// when the payload itself is garbage — an undecodable frame is a
/// protocol violation, not a query failure.
fn serve<M: WireCodec, R: WireCodec>(
    state: &Mutex<ShardWorkerCore>,
    id: u64,
    env: Envelope,
    max_frame: u32,
    f: impl FnOnce(&mut ShardWorkerCore, M) -> Result<R, QueryError>,
) -> Option<Envelope> {
    let Ok(msg) = M::from_bytes(&env.payload) else { return None };
    let mut core = state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut reply = match f(&mut core, msg) {
        Ok(reply) => Envelope::worker(env.kind, id, &reply),
        Err(err) => Envelope::error(id, &err),
    };
    // The limit the worker advertises binds its own frames too: an
    // answer that would not fit (the coordinator reads with this limit
    // and would kill the link on it) degrades into a typed error —
    // same contract as the query server's ResponseTooLarge guard.
    if reply.payload.len() as u64 > u64::from(max_frame) {
        let err = QueryError::ResponseTooLarge { bytes: reply.payload.len() as u64, max_frame };
        reply = Envelope::error(id, &err);
    }
    Some(reply)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasco_simrank::api::transport::read_envelope;
    use pasco_simrank::api::worker::WorkerStats;

    fn spawn_worker() -> (SocketAddr, WorkerHandle, thread::JoinHandle<()>) {
        let worker = PascoWorker::bind("127.0.0.1:0", WorkerConfig::default()).unwrap();
        let (addr, handle) = (worker.local_addr(), worker.handle());
        let join = thread::spawn(move || worker.run().unwrap());
        (addr, handle, join)
    }

    /// Raw-socket handshake + stats round trip: the worker speaks the
    /// envelope protocol byte-for-byte.
    #[test]
    fn handshake_and_stats_over_raw_socket() {
        let (addr, handle, join) = spawn_worker();
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        write_envelope(&mut stream, &Envelope::hello()).unwrap();
        let ack = read_envelope(&mut reader, DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(ack.kind, FrameKind::HelloAck);
        let info = ack.decode_server_info().unwrap();
        assert_eq!(info.node_count, 0, "nothing loaded yet");

        write_envelope(&mut stream, &Envelope::worker(FrameKind::WorkerStats, 7, &Empty)).unwrap();
        let reply = read_envelope(&mut reader, DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(reply.kind, FrameKind::WorkerStats);
        assert_eq!(reply.request_id, 7);
        let stats = WorkerStats::from_bytes(&reply.payload).unwrap();
        assert_eq!(stats, WorkerStats::default());

        // A build before any load is a typed error frame, not a hang.
        let msg = BuildShard { cfg: pasco_simrank::SimRankConfig::fast() };
        write_envelope(&mut stream, &Envelope::worker(FrameKind::BuildShard, 8, &msg)).unwrap();
        let reply = read_envelope(&mut reader, DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(reply.kind, FrameKind::Error);
        assert_eq!(reply.request_id, 8);
        assert!(matches!(reply.decode_error().unwrap(), QueryError::WorkerUnavailable { .. }));

        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn shutdown_frame_drains_the_worker() {
        let (addr, _handle, join) = spawn_worker();
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        write_envelope(&mut stream, &Envelope::hello()).unwrap();
        let _ = read_envelope(&mut reader, DEFAULT_MAX_FRAME).unwrap();
        write_envelope(&mut stream, &Envelope::shutdown()).unwrap();
        let goodbye = read_envelope(&mut reader, DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(goodbye.kind, FrameKind::Goodbye);
        join.join().unwrap();
    }

    #[test]
    fn garbage_first_byte_drops_the_connection_not_the_worker() {
        use std::io::{Read, Write};
        let (addr, handle, join) = spawn_worker();
        let mut garbage = TcpStream::connect(addr).unwrap();
        garbage.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(garbage.read(&mut buf).unwrap(), 0, "dropped without a reply");
        // The worker still serves a real peer afterwards.
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        write_envelope(&mut stream, &Envelope::hello()).unwrap();
        assert_eq!(
            read_envelope(&mut reader, DEFAULT_MAX_FRAME).unwrap().kind,
            FrameKind::HelloAck
        );
        handle.shutdown();
        join.join().unwrap();
    }
}
