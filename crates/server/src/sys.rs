//! A thin `extern "C"` shim over the three Linux syscalls the reactor
//! needs — `epoll_create1` / `epoll_ctl` / `epoll_wait` plus `eventfd` —
//! bound directly against the libc std already links, so the event loop
//! costs no crates.io dependency.
//!
//! This is the only module in the crate allowed to use `unsafe`, and the
//! unsafety is confined to the raw calls: everything is wrapped in owned
//! types ([`Epoll`], [`WakeFd`]) that close their descriptors on drop and
//! expose a safe, `io::Result`-shaped surface. Events are copied out of
//! the kernel's (possibly packed) `epoll_event` layout into the plain
//! [`Event`] struct before anyone touches them, so no unaligned
//! references escape.

#[cfg(not(target_os = "linux"))]
compile_error!(
    "pasco_server's reactor is built on epoll and requires Linux \
     (the workspace's deployment and CI target)"
);

use std::fs::File;
use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::raw::{c_int, c_uint};
use std::sync::Arc;
use std::time::Duration;

/// Readability (`EPOLLIN`).
pub const EVENT_IN: u32 = 0x001;
/// Writability (`EPOLLOUT`).
pub const EVENT_OUT: u32 = 0x004;
/// Error condition (`EPOLLERR`) — always reported, never requested.
pub const EVENT_ERR: u32 = 0x008;
/// Hangup (`EPOLLHUP`) — always reported, never requested.
pub const EVENT_HUP: u32 = 0x010;
/// Peer closed its write half (`EPOLLRDHUP`); lets the reactor notice a
/// dead connection it has stopped reading from.
pub const EVENT_RDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// The kernel's event record. x86-64 packs it to 12 bytes; other Linux
/// architectures use natural alignment — mirror the kernel ABI exactly.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct RawEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut RawEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut RawEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// One readiness notification, copied out of the kernel layout: which
/// registered token fired and with which [`EVENT_IN`]-style bits.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Bitmask of `EVENT_*` flags that are ready.
    pub events: u32,
    /// The token the descriptor was registered under.
    pub token: u64,
}

/// An owned epoll instance.
pub struct Epoll {
    fd: OwnedFd,
    /// Reused kernel-layout buffer for [`Epoll::wait`].
    raw: Vec<RawEvent>,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Self> {
        // SAFETY: epoll_create1 takes no pointers; a valid fd (or -1) is
        // the only effect.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        // SAFETY: the fd was just returned by the kernel and is owned by
        // nobody else.
        let fd = unsafe { OwnedFd::from_raw_fd(fd) };
        Ok(Epoll { fd, raw: vec![RawEvent { events: 0, data: 0 }; 256] })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = RawEvent { events, data: token };
        // SAFETY: `ev` is a live, correctly-laid-out epoll_event for the
        // duration of the call; fds are valid by the caller's contract.
        cvt(unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) })?;
        Ok(())
    }

    /// Starts watching `fd` for `events`, tagging notifications `token`.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the interest set (and token) of a watched descriptor.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Stops watching `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until readiness (or `timeout`, `None` = forever), appending
    /// fired events to `out`. A signal interruption returns cleanly with
    /// no events — the caller's loop re-enters naturally.
    pub fn wait(&mut self, timeout: Option<Duration>, out: &mut Vec<Event>) -> io::Result<()> {
        let timeout_ms: c_int = match timeout {
            // Round *up* so a 100µs deadline does not spin at timeout 0.
            Some(t) => t.as_millis().saturating_add(1).min(i32::MAX as u128) as c_int,
            None => -1,
        };
        let n = {
            // SAFETY: `raw` is a live buffer of `len` kernel-layout
            // records; the kernel writes at most `len` of them.
            let ret = unsafe {
                epoll_wait(
                    self.fd.as_raw_fd(),
                    self.raw.as_mut_ptr(),
                    self.raw.len() as c_int,
                    timeout_ms,
                )
            };
            match cvt(ret) {
                Ok(n) => n as usize,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
                Err(e) => return Err(e),
            }
        };
        for raw in &self.raw[..n] {
            // Copy fields out of the packed struct before use.
            let (events, token) = (raw.events, raw.data);
            out.push(Event { events, token });
        }
        Ok(())
    }
}

/// A clonable wake handle over a nonblocking `eventfd`: any thread may
/// [`WakeFd::wake`] the reactor out of `epoll_wait`; the reactor
/// [`WakeFd::drain`]s the counter when it services the wakeup. This
/// replaces the old self-connect loopback hack — waking is one 8-byte
/// write, works on wildcard binds, and cannot be confused with a client.
#[derive(Clone)]
pub struct WakeFd {
    file: Arc<File>,
}

impl WakeFd {
    /// Creates the eventfd (nonblocking, close-on-exec).
    pub fn new() -> io::Result<Self> {
        // SAFETY: eventfd takes no pointers; a valid fd (or -1) is the
        // only effect.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        // SAFETY: freshly returned by the kernel, owned by nobody else;
        // File takes ownership and closes it on drop.
        let file = unsafe { File::from_raw_fd(fd) };
        Ok(WakeFd { file: Arc::new(file) })
    }

    /// The descriptor to register with [`Epoll::add`].
    pub fn raw_fd(&self) -> RawFd {
        self.file.as_raw_fd()
    }

    /// Makes the next (or current) `epoll_wait` report this fd readable.
    /// Never blocks; an already-pending wake is simply coalesced.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&*self.file).write(&1u64.to_ne_bytes());
    }

    /// Consumes pending wakes so the fd reads as quiet again.
    pub fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 8];
        let _ = (&*self.file).read(&mut buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The wake fd must round-trip through epoll: quiet until woken,
    /// readable after, quiet again once drained.
    #[test]
    fn wake_fd_rouses_epoll_and_drains_quiet() {
        let mut ep = Epoll::new().unwrap();
        let wake = WakeFd::new().unwrap();
        ep.add(wake.raw_fd(), EVENT_IN, 7).unwrap();

        let mut events = Vec::new();
        ep.wait(Some(Duration::from_millis(10)), &mut events).unwrap();
        assert!(events.is_empty(), "nothing woke it yet");

        let remote = wake.clone();
        std::thread::spawn(move || remote.wake()).join().unwrap();
        ep.wait(Some(Duration::from_secs(5)), &mut events).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].events & EVENT_IN != 0);

        wake.drain();
        events.clear();
        ep.wait(Some(Duration::from_millis(10)), &mut events).unwrap();
        assert!(events.is_empty(), "drained: quiet again");
    }

    /// Level-triggered add/modify/delete on a real socket pair.
    #[test]
    fn epoll_reports_socket_readability() {
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        b.set_nonblocking(true).unwrap();

        let mut ep = Epoll::new().unwrap();
        ep.add(b.as_raw_fd(), EVENT_IN | EVENT_RDHUP, 42).unwrap();
        let mut events = Vec::new();
        ep.wait(Some(Duration::from_millis(10)), &mut events).unwrap();
        assert!(events.is_empty());

        a.write_all(b"ping").unwrap();
        ep.wait(Some(Duration::from_secs(5)), &mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.events & EVENT_IN != 0));

        // Peer close surfaces as RDHUP/HUP (with IN for the EOF read).
        drop(a);
        events.clear();
        ep.wait(Some(Duration::from_secs(5)), &mut events).unwrap();
        assert!(events.iter().any(|e| e.events & (EVENT_RDHUP | EVENT_HUP) != 0));

        ep.delete(b.as_raw_fd()).unwrap();
    }
}
