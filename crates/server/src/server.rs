//! [`PascoServer`]: the TCP front door over any [`QueryService`].
//!
//! Architecture per the crate docs: one accept loop, one reader thread
//! per connection (frames in), one writer thread per connection (frames
//! out), and a single bounded worker pool shared by every connection for
//! query execution. The pool is the concurrency limit — a flood of
//! connections cannot oversubscribe the engine — and its queue provides
//! backpressure: when it is full, readers stop pulling requests off
//! their sockets.
//!
//! Responses carry the id of the request they answer and are written in
//! *completion* order, not arrival order: a cheap query overtakes an
//! expensive one on the same connection, and the client matches them
//! back up by id.

use crate::transport::{poll_envelope, write_envelope, TransportError};
use pasco_simrank::api::envelope::{Envelope, FrameKind, ServerInfo, DEFAULT_MAX_FRAME};
use pasco_simrank::{QueryError, QueryRequest, QueryService};
use std::io::{BufReader, BufWriter, Write as _};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// Tunables of a [`PascoServer`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Size of the shared query-execution pool: at most this many
    /// queries run concurrently across *all* connections.
    pub workers: usize,
    /// Largest frame payload accepted (and advertised in the
    /// handshake). Frames announcing more are rejected before any
    /// allocation and the offending connection is closed.
    pub max_frame_bytes: u32,
    /// How often an idle connection checks for a server drain.
    pub poll_interval: Duration,
    /// Once a frame has started, each read must make progress within
    /// this long; a peer stalling mid-frame is dropped instead of
    /// pinning a connection thread forever.
    pub io_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            max_frame_bytes: DEFAULT_MAX_FRAME,
            poll_interval: Duration::from_millis(25),
            io_timeout: Duration::from_secs(10),
        }
    }
}

/// One unit of pool work: a decoded request plus the route back to its
/// connection's writer.
struct Job {
    id: u64,
    req: QueryRequest,
    out: Sender<Envelope>,
    progress: Arc<Progress>,
}

/// Counts completed jobs of one connection so its reader can drain
/// before acknowledging a shutdown.
#[derive(Default)]
struct Progress {
    done: Mutex<u64>,
    changed: Condvar,
}

impl Progress {
    fn complete(&self) {
        *self.done.lock().expect("progress poisoned") += 1;
        self.changed.notify_all();
    }

    /// Blocks until `issued` jobs have completed.
    fn wait_for(&self, issued: u64) {
        let mut done = self.done.lock().expect("progress poisoned");
        while *done < issued {
            done = self.changed.wait(done).expect("progress poisoned");
        }
    }
}

/// A clonable remote control for a running server: its bound address and
/// a way to stop it programmatically (the wire equivalent is a client
/// [`FrameKind::Shutdown`] frame).
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The address the server accepts on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a drain: in-flight queries finish, connected clients get
    /// a goodbye frame, the accept loop stops, and
    /// [`PascoServer::run`] returns.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop; the no-op connection is discarded by
        // the stop check at the top of the loop. A wildcard bind
        // (0.0.0.0 / ::) is not connectable everywhere, so wake through
        // loopback on the bound port — and never block the caller on an
        // unresponsive route.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match self.addr {
                SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect_timeout(&wake, Duration::from_secs(1));
    }

    fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

/// Why a connection's read loop ended; decides the close-out behaviour.
enum ConnEnd {
    /// The client asked the whole server to drain: goodbye after the
    /// drain, then stop accepting.
    ClientShutdown,
    /// Another connection (or [`ServerHandle::shutdown`]) is draining
    /// the server: goodbye after the drain.
    ServerStopping,
    /// The client went away or broke protocol: close without ceremony.
    Dropped,
}

/// A bound, not-yet-running TCP server over one [`QueryService`].
pub struct PascoServer {
    listener: TcpListener,
    svc: Arc<dyn QueryService>,
    cfg: ServerConfig,
    handle: ServerHandle,
}

impl PascoServer {
    /// Binds `addr` (use port 0 for an ephemeral port; read it back with
    /// [`PascoServer::local_addr`]). The listener is live immediately —
    /// connections queue in the OS backlog until [`PascoServer::run`].
    pub fn bind(
        addr: impl ToSocketAddrs,
        svc: Arc<dyn QueryService>,
        cfg: ServerConfig,
    ) -> std::io::Result<Self> {
        assert!(cfg.workers > 0, "need at least one worker");
        let listener = TcpListener::bind(addr)?;
        let handle =
            ServerHandle { addr: listener.local_addr()?, stop: Arc::new(AtomicBool::new(false)) };
        Ok(PascoServer { listener, svc, cfg, handle })
    }

    /// The address the server accepts on.
    pub fn local_addr(&self) -> SocketAddr {
        self.handle.addr
    }

    /// A remote control for this server (clonable, sendable to the
    /// thread that will stop it).
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Serves until drained: accepts connections, runs their queries on
    /// the shared pool, and returns once a shutdown frame (or
    /// [`ServerHandle::shutdown`]) has stopped the accept loop and every
    /// connection has closed out.
    pub fn run(self) -> std::io::Result<()> {
        let info = ServerInfo {
            node_count: self.svc.node_count(),
            max_frame_bytes: self.cfg.max_frame_bytes,
        };
        // The bounded job queue all readers feed and all workers drain.
        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(self.cfg.workers.saturating_mul(4));
        let job_rx = Arc::new(Mutex::new(job_rx));
        let workers: Vec<_> = (0..self.cfg.workers)
            .map(|_| {
                let rx = Arc::clone(&job_rx);
                let svc = Arc::clone(&self.svc);
                let max_frame = self.cfg.max_frame_bytes;
                thread::spawn(move || worker_loop(&rx, svc.as_ref(), max_frame))
            })
            .collect();

        let mut conns = Vec::new();
        for stream in self.listener.incoming() {
            if self.handle.is_stopping() {
                break;
            }
            let Ok(stream) = stream else { continue };
            let jobs = job_tx.clone();
            let handle = self.handle.clone();
            let cfg = self.cfg;
            conns.push(thread::spawn(move || handle_conn(stream, info, &jobs, &handle, cfg)));
        }
        // Readers drain their in-flight work before exiting; workers exit
        // once every job sender (one per connection, plus ours) is gone.
        for conn in conns {
            let _ = conn.join();
        }
        drop(job_tx);
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, svc: &dyn QueryService, max_frame: u32) {
    loop {
        // Standard pool pickup: the mutex serialises only the dequeue,
        // execution runs unlocked and in parallel.
        let job = match rx.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        let Ok(Job { id, req, out, progress }) = job else { return };
        let mut env = match svc.execute(req) {
            Ok(resp) => Envelope::response(id, &resp),
            // A typed failure is an answer, not a fault: it travels back
            // as an error frame on the same connection.
            Err(err) => Envelope::error(id, &err),
        };
        // The limit the server advertises binds its own frames too: an
        // answer that would not fit (the client reads with this limit
        // and would poison itself) degrades into a typed error the
        // caller can act on. Error frames are a few bytes, always under
        // any sane limit.
        if env.payload.len() as u64 > u64::from(max_frame) {
            let err = QueryError::ResponseTooLarge { bytes: env.payload.len() as u64, max_frame };
            env = Envelope::error(id, &err);
        }
        // The connection may have closed while we computed; that loses
        // the response, never the server.
        let _ = out.send(env);
        progress.complete();
    }
}

/// Serves one connection: handshake, then the read loop. Returns when
/// the connection is fully closed out.
fn handle_conn(
    stream: TcpStream,
    info: ServerInfo,
    jobs: &SyncSender<Job>,
    handle: &ServerHandle,
    cfg: ServerConfig,
) {
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else { return };
    // The write side gets the same progress deadline as the read side: a
    // peer that stops reading (full kernel send buffer) kills its writer
    // thread after io_timeout instead of pinning it — and with it the
    // drain — forever.
    let _ = write_half.set_write_timeout(Some(cfg.io_timeout));
    let mut reader = BufReader::new(stream);

    // Handshake: the first frame must be a Hello of our protocol version
    // (the header check enforces the version), and it must arrive within
    // the I/O deadline — a peer that connects and sends nothing would
    // otherwise pin this thread and its socket until server shutdown.
    // Anything else — including bytes that are not a frame at all —
    // closes the connection.
    let deadline = std::time::Instant::now() + cfg.io_timeout;
    let hello = loop {
        match poll_envelope(&mut reader, cfg.max_frame_bytes, cfg.poll_interval, cfg.io_timeout) {
            Ok(None) => {
                if handle.is_stopping() || std::time::Instant::now() >= deadline {
                    return;
                }
            }
            Ok(Some(env)) => break env,
            Err(_) => return,
        }
    };
    if hello.kind != FrameKind::Hello {
        return;
    }

    // Writer thread: the single owner of the write half. Everything the
    // connection sends — handshake ack, responses (in completion order),
    // errors, goodbye — funnels through this channel.
    let (out_tx, out_rx) = mpsc::channel::<Envelope>();
    let writer = thread::spawn(move || {
        let mut w = BufWriter::new(write_half);
        while let Ok(env) = out_rx.recv() {
            if write_envelope(&mut w, &env).is_err() {
                break;
            }
        }
        // Whether this is a clean close-out or a dead peer (write error /
        // timeout), take the socket down with the writer: the reader gets
        // EOF instead of serving a connection whose answers can no longer
        // be delivered, and the peer gets a close instead of a hang.
        let _ = w.flush();
        let _ = w.get_ref().shutdown(std::net::Shutdown::Both);
    });
    if out_tx.send(Envelope::hello_ack(&info)).is_err() {
        return;
    }

    let progress = Arc::new(Progress::default());
    let mut issued: u64 = 0;
    let end = loop {
        match poll_envelope(&mut reader, cfg.max_frame_bytes, cfg.poll_interval, cfg.io_timeout) {
            Ok(None) => {
                if handle.is_stopping() {
                    break ConnEnd::ServerStopping;
                }
            }
            Ok(Some(env)) => match env.kind {
                FrameKind::Request => match env.decode_request() {
                    Ok(req) => {
                        let job = Job {
                            id: env.request_id,
                            req,
                            out: out_tx.clone(),
                            progress: Arc::clone(&progress),
                        };
                        if jobs.send(job).is_err() {
                            break ConnEnd::ServerStopping;
                        }
                        issued += 1;
                        // Re-check after every accepted frame, not just on
                        // idle ticks: a client streaming back-to-back
                        // requests must not be able to outrun a drain and
                        // keep the server alive indefinitely.
                        if handle.is_stopping() {
                            break ConnEnd::ServerStopping;
                        }
                    }
                    // A valid envelope around an undecodable request is a
                    // protocol violation, not a query error: close.
                    Err(_) => break ConnEnd::Dropped,
                },
                FrameKind::Shutdown => break ConnEnd::ClientShutdown,
                // Clients may only send Hello (already consumed),
                // requests, and shutdown.
                _ => break ConnEnd::Dropped,
            },
            Err(TransportError::Closed) => break ConnEnd::Dropped,
            Err(_) => break ConnEnd::Dropped,
        }
    };

    // Drain: every request this connection put in flight gets its
    // response (or error frame) written before any goodbye or close.
    progress.wait_for(issued);
    match end {
        ConnEnd::ClientShutdown => {
            let _ = out_tx.send(Envelope::goodbye());
            handle.shutdown();
        }
        ConnEnd::ServerStopping => {
            let _ = out_tx.send(Envelope::goodbye());
        }
        ConnEnd::Dropped => {}
    }
    drop(out_tx);
    let _ = writer.join();
}
