//! [`PascoServer`]: the TCP front door over any [`QueryService`], built
//! on a readiness-driven epoll reactor.
//!
//! One event loop owns every connection socket in nonblocking mode:
//! accepts, handshakes, frame reassembly (via the shared resumable
//! [`FrameDecoder`]), response flushing (via [`WriteQueue`]), per-frame
//! I/O deadlines (a timer wheel — armed only while a connection is
//! mid-handshake, mid-frame, or has unflushed output, so an idle server
//! sleeps in `epoll_wait` indefinitely: zero wakeups, zero reads), and
//! drain orchestration. Query execution stays on a bounded worker pool:
//! the reactor hands decoded requests to the pool and the pool hands
//! completed envelopes back through a completion queue plus an eventfd
//! wake, so responses are written in *completion* order — a cheap query
//! overtakes an expensive one on the same connection, and the client
//! matches answers by request id, exactly as before.
//!
//! Backpressure is per connection: a client may keep at most
//! `workers * 4` requests in flight; past that the reactor parks the
//! connection's read interest until completions drain it, so a flood of
//! pipelined requests cannot oversubscribe memory while the pool bounds
//! engine concurrency globally. Bytes a `read(2)` already pulled past
//! the cap are stashed and replayed through the decoder on unpause —
//! nothing a client pipelines is ever lost to the pause.
//!
//! Shutdown — a client [`FrameKind::Shutdown`] frame or
//! [`ServerHandle::shutdown`] — stops accepting, finishes every in-flight
//! request, writes each connection its answers and a goodbye, and returns
//! from [`PascoServer::run`]. The handle wakes the loop through the
//! eventfd, which works identically on wildcard binds (the old
//! implementation had to fake a client over loopback).

use crate::sys::{Epoll, Event, WakeFd, EVENT_ERR, EVENT_HUP, EVENT_IN, EVENT_OUT, EVENT_RDHUP};
use crate::wheel::{Deadline, TimerWheel};
use pasco_simrank::api::envelope::{Envelope, FrameKind, ServerInfo, DEFAULT_MAX_FRAME};
use pasco_simrank::api::transport::{FrameDecoder, WriteQueue};
use pasco_simrank::{QueryError, QueryRequest, QueryService};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Tunables of a [`PascoServer`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Size of the shared query-execution pool: at most this many
    /// queries run concurrently across *all* connections.
    pub workers: usize,
    /// Largest frame payload accepted (and advertised in the
    /// handshake). Frames announcing more are rejected before any
    /// allocation and the offending connection is closed.
    pub max_frame_bytes: u32,
    /// Per-frame progress deadline: a handshake, an inbound frame, or a
    /// queued response that does not complete within this long gets its
    /// connection dropped — a slowloris peer costs one timer slot, not a
    /// thread.
    pub io_timeout: Duration,
    /// Most connections served at once; an accept beyond this is closed
    /// immediately (counted in [`ServerStats::refused`]) instead of
    /// degrading everyone.
    pub max_conns: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            max_frame_bytes: DEFAULT_MAX_FRAME,
            io_timeout: Duration::from_secs(10),
            max_conns: 1024,
        }
    }
}

/// Monotonic counters of a running server, readable from any thread via
/// [`ServerHandle::stats`]. Zero-cost observability for tests and ops:
/// the idle-wakeup guarantee ("no reads between requests") is asserted
/// against exactly these numbers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections refused at the `max_conns` cap.
    pub refused: u64,
    /// `read(2)` calls issued on connection sockets (including ones that
    /// returned would-block). An idle server adds zero.
    pub reads: u64,
    /// Request frames decoded and handed to the pool.
    pub requests: u64,
    /// Response/error envelopes queued back to clients.
    pub responses: u64,
    /// Connections dropped on a missed per-frame deadline.
    pub timeouts: u64,
    /// Times the event loop woke from `epoll_wait`.
    pub wakeups: u64,
}

#[derive(Default)]
struct StatCells {
    accepted: AtomicU64,
    refused: AtomicU64,
    reads: AtomicU64,
    requests: AtomicU64,
    responses: AtomicU64,
    timeouts: AtomicU64,
    wakeups: AtomicU64,
}

impl StatCells {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
        }
    }
}

/// A clonable remote control for a running server: its bound address, its
/// live counters, and a way to stop it programmatically (the wire
/// equivalent is a client [`FrameKind::Shutdown`] frame).
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    waker: WakeFd,
    stats: Arc<StatCells>,
}

impl ServerHandle {
    /// The address the server accepts on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a drain: in-flight queries finish, connected clients get
    /// their answers and a goodbye frame, the accept loop stops, and
    /// [`PascoServer::run`] returns. Wakes the reactor through its
    /// eventfd — no connection is made, so this works identically on
    /// wildcard (`0.0.0.0` / `::`) binds.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        self.waker.wake();
    }

    /// A snapshot of the server's monotonic counters.
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot()
    }

    fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

/// A bound, not-yet-running TCP server over one [`QueryService`].
pub struct PascoServer {
    listener: TcpListener,
    svc: Arc<dyn QueryService>,
    cfg: ServerConfig,
    handle: ServerHandle,
}

impl PascoServer {
    /// Binds `addr` (use port 0 for an ephemeral port; read it back with
    /// [`PascoServer::local_addr`]). The listener is live immediately —
    /// connections queue in the OS backlog until [`PascoServer::run`].
    pub fn bind(
        addr: impl ToSocketAddrs,
        svc: Arc<dyn QueryService>,
        cfg: ServerConfig,
    ) -> io::Result<Self> {
        assert!(cfg.workers > 0, "need at least one worker");
        assert!(cfg.max_conns > 0, "need room for at least one connection");
        assert!(!cfg.io_timeout.is_zero(), "io_timeout must be positive");
        let listener = TcpListener::bind(addr)?;
        let handle = ServerHandle {
            addr: listener.local_addr()?,
            stop: Arc::new(AtomicBool::new(false)),
            waker: WakeFd::new()?,
            stats: Arc::new(StatCells::default()),
        };
        Ok(PascoServer { listener, svc, cfg, handle })
    }

    /// The address the server accepts on.
    pub fn local_addr(&self) -> SocketAddr {
        self.handle.addr
    }

    /// A remote control for this server (clonable, sendable to the
    /// thread that will stop it).
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Serves until drained: runs the reactor, executing queries on the
    /// shared pool, and returns once a shutdown frame (or
    /// [`ServerHandle::shutdown`]) has drained every connection.
    pub fn run(self) -> io::Result<()> {
        let info = ServerInfo {
            node_count: self.svc.node_count(),
            max_frame_bytes: self.cfg.max_frame_bytes,
        };
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let completions: Arc<Mutex<Vec<Completion>>> = Arc::default();
        let workers: Vec<_> = (0..self.cfg.workers)
            .map(|_| {
                let rx = Arc::clone(&job_rx);
                let svc = Arc::clone(&self.svc);
                let done = Arc::clone(&completions);
                let waker = self.handle.waker.clone();
                let max_frame = self.cfg.max_frame_bytes;
                thread::spawn(move || worker_loop(&rx, svc.as_ref(), &done, &waker, max_frame))
            })
            .collect();

        let result =
            Reactor::new(self.listener, info, self.cfg, self.handle.clone(), job_tx, completions)
                .and_then(Reactor::run);

        // With the reactor gone its job sender is dropped: workers finish
        // what is queued, see the disconnect, and exit.
        for worker in workers {
            let _ = worker.join();
        }
        result
    }
}

/// One unit of pool work: a decoded request plus the connection slot
/// (and its epoch, so an answer for a closed-and-reused slot is
/// discarded rather than misdelivered).
struct Job {
    token: usize,
    epoch: u32,
    id: u64,
    req: QueryRequest,
}

/// A finished query on its way back to the reactor.
struct Completion {
    token: usize,
    epoch: u32,
    env: Envelope,
}

fn worker_loop(
    rx: &Mutex<Receiver<Job>>,
    svc: &dyn QueryService,
    done: &Mutex<Vec<Completion>>,
    waker: &WakeFd,
    max_frame: u32,
) {
    loop {
        // Standard pool pickup: the mutex serialises only the dequeue,
        // execution runs unlocked and in parallel.
        let job = match rx.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return,
        };
        let Ok(Job { token, epoch, id, req }) = job else { return };
        let mut env = match svc.execute(req) {
            Ok(resp) => Envelope::response(id, &resp),
            // A typed failure is an answer, not a fault: it travels back
            // as an error frame on the same connection.
            Err(err) => Envelope::error(id, &err),
        };
        // The limit the server advertises binds its own frames too: an
        // answer that would not fit (the client reads with this limit
        // and would poison itself) degrades into a typed error the
        // caller can act on. Error frames are a few bytes, always under
        // any sane limit.
        if env.payload.len() as u64 > u64::from(max_frame) {
            let err = QueryError::ResponseTooLarge { bytes: env.payload.len() as u64, max_frame };
            env = Envelope::error(id, &err);
        }
        let first = match done.lock() {
            Ok(mut done) => {
                let first = done.is_empty();
                done.push(Completion { token, epoch, env });
                first
            }
            Err(_) => return,
        };
        // One wake per queue transition, not per completion: the reactor
        // drains the whole queue each time it services the eventfd, so
        // completions that pile up behind an unserviced wake need none of
        // their own. Under load this coalesces most wake syscalls away.
        if first {
            waker.wake();
        }
    }
}

/// Where a connection is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ConnState {
    /// Waiting for the opening Hello (deadline armed from accept).
    Handshake,
    /// Normal operation: requests in, responses out.
    Serving,
    /// No more reads; once `in_flight` hits zero a goodbye is queued and
    /// the connection closes after its output flushes.
    Draining,
}

struct Conn {
    stream: TcpStream,
    epoch: u32,
    state: ConnState,
    decoder: FrameDecoder,
    out: WriteQueue,
    /// Requests handed to the pool whose answers have not yet been
    /// queued onto `out`.
    in_flight: usize,
    /// The epoll interest currently registered for this socket.
    interest: u32,
    /// Reads parked by the per-connection pipelining cap.
    paused: bool,
    /// Bytes `read(2)` already consumed from the kernel when the
    /// pipelining cap paused the connection mid-buffer; replayed through
    /// the decoder, in order, when completions unpause it.
    pending: Vec<u8>,
    /// Peer EOF observed: no more requests will ever arrive, but answers
    /// still owed are delivered before the connection closes.
    eof: bool,
    /// The peer's half-close was noted while we were not reading; RDHUP
    /// interest is dropped so the level-triggered event cannot spin.
    rdhup: bool,
    /// Whether the progress deadline is armed (and its wheel slot).
    deadline: Option<usize>,
    deadline_gen: u64,
    goodbye_queued: bool,
}

/// Epoll token of the listener.
const TOK_LISTENER: u64 = u64::MAX;
/// Epoll token of the wake eventfd.
const TOK_WAKER: u64 = u64::MAX - 1;

fn conn_token(idx: usize, epoch: u32) -> u64 {
    (idx as u64) | (u64::from(epoch) << 32)
}

/// The event loop: owns every socket, the timer wheel, and the slab of
/// connection state machines.
struct Reactor {
    epoll: Epoll,
    listener: TcpListener,
    info: ServerInfo,
    cfg: ServerConfig,
    handle: ServerHandle,
    job_tx: Sender<Job>,
    completions: Arc<Mutex<Vec<Completion>>>,
    wheel: TimerWheel,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    epochs: Vec<u32>,
    alive: usize,
    /// Set once a drain begins (handle or Shutdown frame); accepts stop
    /// and every connection moves to [`ConnState::Draining`].
    stopping: bool,
    /// Max requests one connection may keep in flight before its reads
    /// are parked.
    pipeline_cap: usize,
}

impl Reactor {
    fn new(
        listener: TcpListener,
        info: ServerInfo,
        cfg: ServerConfig,
        handle: ServerHandle,
        job_tx: Sender<Job>,
        completions: Arc<Mutex<Vec<Completion>>>,
    ) -> io::Result<Self> {
        listener.set_nonblocking(true)?;
        let epoll = Epoll::new()?;
        epoll.add(listener.as_raw_fd(), EVENT_IN, TOK_LISTENER)?;
        epoll.add(handle.waker.raw_fd(), EVENT_IN, TOK_WAKER)?;
        // Deadline resolution: coarse enough that arming is cheap, fine
        // enough that a 150ms test timeout is honoured promptly.
        let tick = (cfg.io_timeout / 8).clamp(Duration::from_millis(5), Duration::from_millis(500));
        Ok(Reactor {
            epoll,
            listener,
            info,
            cfg,
            handle,
            job_tx,
            completions,
            wheel: TimerWheel::new(tick, 256),
            conns: Vec::new(),
            free: Vec::new(),
            epochs: Vec::new(),
            alive: 0,
            stopping: false,
            pipeline_cap: (cfg.workers * 4).max(8),
        })
    }

    fn run(mut self) -> io::Result<()> {
        let mut events: Vec<Event> = Vec::new();
        let mut fired: Vec<Deadline> = Vec::new();
        let mut scratch = vec![0u8; 64 * 1024];
        loop {
            let timeout = self.wheel.next_timeout(Instant::now());
            events.clear();
            self.epoll.wait(timeout, &mut events)?;
            self.handle.stats.wakeups.fetch_add(1, Ordering::Relaxed);

            for ev in &events {
                match ev.token {
                    TOK_LISTENER => self.accept_ready(),
                    TOK_WAKER => self.handle.waker.drain(),
                    token => {
                        let (idx, epoch) = ((token & 0xffff_ffff) as usize, (token >> 32) as u32);
                        self.conn_event(idx, epoch, ev.events, &mut scratch);
                    }
                }
            }
            if !self.stopping && self.handle.is_stopping() {
                self.begin_drain();
            }
            self.drain_completions();

            fired.clear();
            self.wheel.expire(Instant::now(), &mut fired);
            for d in &fired {
                let stale = self.conns[d.token]
                    .as_ref()
                    .is_none_or(|c| c.deadline.is_none() || c.deadline_gen != d.generation);
                if !stale {
                    self.handle.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                    self.drop_conn(d.token);
                }
            }

            if self.stopping && self.alive == 0 {
                return Ok(());
            }
        }
    }

    // ---- accept path --------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.stopping || self.alive >= self.cfg.max_conns {
                        self.handle.stats.refused.fetch_add(1, Ordering::Relaxed);
                        continue; // dropped: refused before any protocol state
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.handle.stats.accepted.fetch_add(1, Ordering::Relaxed);
                    self.insert_conn(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient per-connection accept faults (reset in the
                // backlog): skip, keep accepting.
                Err(_) => break,
            }
        }
    }

    fn insert_conn(&mut self, stream: TcpStream) {
        let idx = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.epochs.push(0);
            self.conns.len() - 1
        });
        self.epochs[idx] = self.epochs[idx].wrapping_add(1);
        let epoch = self.epochs[idx];
        let interest = EVENT_IN | EVENT_RDHUP;
        if self.epoll.add(stream.as_raw_fd(), interest, conn_token(idx, epoch)).is_err() {
            self.free.push(idx);
            return;
        }
        let conn = Conn {
            stream,
            epoch,
            state: ConnState::Handshake,
            decoder: FrameDecoder::new(self.cfg.max_frame_bytes),
            out: WriteQueue::new(),
            in_flight: 0,
            interest,
            paused: false,
            pending: Vec::new(),
            eof: false,
            rdhup: false,
            deadline: None,
            deadline_gen: 0,
            goodbye_queued: false,
        };
        self.conns[idx] = Some(conn);
        self.alive += 1;
        self.refresh_deadline(idx);
    }

    // ---- event dispatch ------------------------------------------------

    fn conn_event(&mut self, idx: usize, epoch: u32, events: u32, scratch: &mut [u8]) {
        // The slot may have been freed (or even reused) by an earlier
        // event in this same batch; the epoch makes that detectable.
        let live = self.conns.get(idx).and_then(Option::as_ref).is_some_and(|c| c.epoch == epoch);
        if !live {
            return;
        }
        if events & (EVENT_ERR | EVENT_HUP) != 0 {
            self.drop_conn(idx);
            return;
        }
        if events & EVENT_OUT != 0 && !self.flush(idx) {
            return;
        }
        if events & EVENT_IN != 0 {
            self.conn_readable(idx, scratch);
            return; // conn may be gone; nothing below
        }
        // RDHUP with no IN interest: the peer closed its write half while
        // we were not reading. A draining conn's peer is treated as gone,
        // as is one owed nothing; but a *paused* serving connection still
        // holds answers the peer is waiting to read (a client may burst,
        // `shutdown(SHUT_WR)`, and collect) — it keeps delivering. Only
        // the RDHUP interest is dropped (the level-triggered event would
        // spin otherwise); the EOF itself resurfaces on the read path
        // once completions unpause the connection.
        if events & EVENT_RDHUP != 0 {
            let Some(conn) = self.conns[idx].as_mut() else { return };
            if conn.interest & EVENT_IN != 0 {
                return; // the read path observes the EOF itself
            }
            let owes = conn.in_flight > 0 || !conn.out.is_empty() || !conn.pending.is_empty();
            if conn.state == ConnState::Draining || !owes {
                self.drop_conn(idx);
            } else {
                conn.rdhup = true;
                self.update_interest(idx);
            }
        }
    }

    /// Reads and processes everything the socket has. Returns with the
    /// connection either consistent or dropped.
    fn conn_readable(&mut self, idx: usize, scratch: &mut [u8]) {
        loop {
            let Some(conn) = self.conns[idx].as_mut() else { return };
            if conn.state == ConnState::Draining || conn.paused || conn.eof {
                return;
            }
            let n = {
                self.handle.stats.reads.fetch_add(1, Ordering::Relaxed);
                match conn.stream.read(scratch) {
                    Ok(0) => {
                        self.conn_eof(idx);
                        return;
                    }
                    Ok(n) => n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        self.refresh_deadline(idx);
                        return;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.drop_conn(idx);
                        return;
                    }
                }
            };
            if !self.decode_chunk(idx, &scratch[..n]) {
                return;
            }
            // A paused connection must not keep draining the socket.
            let paused = self.conns[idx].as_ref().is_some_and(|c| c.paused);
            if n < scratch.len() || paused {
                self.refresh_deadline(idx);
                self.update_interest(idx);
                return;
            }
        }
    }

    /// Feeds `buf` through the connection's decoder, dispatching every
    /// complete frame. A drain discards the remainder (a draining conn
    /// never processes input); the pipelining cap instead *stashes* the
    /// unprocessed tail in `conn.pending` — `read(2)` already consumed
    /// those bytes from the kernel, so dropping them would silently lose
    /// requests (or desync the stream mid-frame). Returns false when the
    /// connection was dropped.
    fn decode_chunk(&mut self, idx: usize, buf: &[u8]) -> bool {
        let mut off = 0;
        while off < buf.len() {
            let Some(conn) = self.conns[idx].as_mut() else { return false };
            if conn.state == ConnState::Draining {
                return true;
            }
            if conn.paused {
                conn.pending.extend_from_slice(&buf[off..]);
                return true;
            }
            match conn.decoder.feed(&buf[off..]) {
                Ok((used, Some(env))) => {
                    off += used;
                    if !self.on_frame(idx, env) {
                        return false;
                    }
                }
                Ok((used, None)) => {
                    off += used;
                    debug_assert!(off == buf.len(), "decoder stalls only at buffer end");
                }
                Err(_) => {
                    self.drop_conn(idx);
                    return false;
                }
            }
        }
        true
    }

    /// Peer EOF: the read side is finished for good. A peer that quit
    /// mid-frame, or one owed nothing, is dropped on the spot; one that
    /// half-closed after a burst of requests still gets every answer —
    /// the connection stops reading and closes once the last owed byte
    /// flushes (see [`Reactor::flush`]).
    fn conn_eof(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].as_mut() else { return };
        let owes = conn.in_flight > 0 || !conn.out.is_empty() || !conn.pending.is_empty();
        if conn.decoder.mid_frame() || !owes {
            self.drop_conn(idx);
            return;
        }
        conn.eof = true;
        // The half-close already happened; stop watching for RDHUP so
        // the level-triggered event cannot spin while answers drain.
        conn.rdhup = true;
        self.refresh_deadline(idx);
        self.update_interest(idx);
    }

    /// Handles one complete inbound frame. Returns false when the
    /// connection was dropped.
    fn on_frame(&mut self, idx: usize, env: Envelope) -> bool {
        let Some(conn) = self.conns[idx].as_mut() else { return false };
        match (conn.state, env.kind) {
            (ConnState::Handshake, FrameKind::Hello) => {
                conn.state = ConnState::Serving;
                let ack = Envelope::hello_ack(&self.info);
                conn.out.push(&ack);
                self.flush(idx)
            }
            (ConnState::Serving, FrameKind::Request) => match env.decode_request() {
                Ok(req) => {
                    conn.in_flight += 1;
                    if conn.in_flight >= self.pipeline_cap {
                        conn.paused = true;
                    }
                    self.handle.stats.requests.fetch_add(1, Ordering::Relaxed);
                    let job = Job { token: idx, epoch: conn.epoch, id: env.request_id, req };
                    if self.job_tx.send(job).is_err() {
                        self.drop_conn(idx);
                        return false;
                    }
                    true
                }
                // A valid envelope around an undecodable request is a
                // protocol violation, not a query error: close.
                Err(_) => {
                    self.drop_conn(idx);
                    false
                }
            },
            (ConnState::Serving, FrameKind::Shutdown) => {
                // Drain the whole server; this connection gets its
                // in-flight answers, then the goodbye.
                self.begin_drain();
                true
            }
            // Clients may only send Hello (first), requests, shutdown.
            _ => {
                self.drop_conn(idx);
                false
            }
        }
    }

    // ---- pool hand-back ------------------------------------------------

    fn drain_completions(&mut self) {
        let done = match self.completions.lock() {
            Ok(mut done) => std::mem::take(&mut *done),
            Err(_) => return,
        };
        for Completion { token, epoch, env } in done {
            let live =
                self.conns.get(token).and_then(Option::as_ref).is_some_and(|c| c.epoch == epoch);
            if !live {
                continue; // the connection went away while we computed
            }
            self.handle.stats.responses.fetch_add(1, Ordering::Relaxed);
            // The liveness check above proved the slot occupied; a bare
            // re-check keeps this panic-free without a second epoch load.
            let Some(conn) = self.conns.get_mut(token).and_then(Option::as_mut) else { continue };
            conn.out.push(&env);
            conn.in_flight -= 1;
            let mut replay = Vec::new();
            if conn.paused && conn.in_flight < self.pipeline_cap {
                conn.paused = false;
                replay = std::mem::take(&mut conn.pending);
            }
            // Bytes stashed at the pause point replay before any new
            // socket read, keeping frames in arrival order (the replay
            // may itself re-pause, re-stashing its own tail).
            if !replay.is_empty() && !self.decode_chunk(token, &replay) {
                continue; // the connection dropped mid-replay
            }
            self.try_finish_drain(token);
            if self.flush(token) {
                self.update_interest(token);
            }
        }
    }

    // ---- drain orchestration -------------------------------------------

    /// Starts (or continues) a whole-server drain: stop accepting, stop
    /// reading, answer what is in flight, say goodbye everywhere.
    fn begin_drain(&mut self) {
        if self.stopping {
            return;
        }
        self.stopping = true;
        let _ = self.epoll.delete(self.listener.as_raw_fd());
        for idx in 0..self.conns.len() {
            let Some(conn) = self.conns[idx].as_mut() else { continue };
            match conn.state {
                // A peer that never finished its handshake gets a plain
                // close, as before.
                ConnState::Handshake => {
                    self.drop_conn(idx);
                }
                ConnState::Serving => {
                    conn.state = ConnState::Draining;
                    self.try_finish_drain(idx);
                    if self.flush(idx) {
                        self.update_interest(idx);
                    }
                }
                ConnState::Draining => {}
            }
        }
    }

    /// On a draining connection with nothing left in flight, queue the
    /// goodbye. The close happens once the output flushes.
    fn try_finish_drain(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].as_mut() else { return };
        if conn.state == ConnState::Draining && conn.in_flight == 0 && !conn.goodbye_queued {
            conn.out.push(&Envelope::goodbye());
            conn.goodbye_queued = true;
        }
    }

    // ---- write path ----------------------------------------------------

    /// Flushes as much queued output as the socket accepts. Returns false
    /// when the connection was dropped (write fault, or a completed
    /// drain). On a would-block the residue stays queued and EPOLLOUT
    /// interest plus the progress deadline keep it moving.
    fn flush(&mut self, idx: usize) -> bool {
        let Some(conn) = self.conns[idx].as_mut() else { return false };
        match conn.out.write_to(&mut conn.stream) {
            Ok(true) => {
                // Everything queued is on the wire. A drained conn
                // (goodbye sent) is done; so is a half-closed peer that
                // is owed nothing more.
                let finished = conn.goodbye_queued
                    || (conn.eof && conn.in_flight == 0 && conn.pending.is_empty());
                if finished {
                    self.drop_conn(idx);
                    return false;
                }
                self.refresh_deadline(idx);
                true
            }
            Ok(false) => {
                self.refresh_deadline(idx);
                self.update_interest(idx);
                true
            }
            Err(_) => {
                self.drop_conn(idx);
                false
            }
        }
    }

    // ---- bookkeeping ---------------------------------------------------

    /// Recomputes the epoll interest set from the connection's state.
    fn update_interest(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].as_mut() else { return };
        let mut want = if conn.rdhup { 0 } else { EVENT_RDHUP };
        let reading = conn.state != ConnState::Draining && !conn.paused && !conn.eof;
        if reading {
            want |= EVENT_IN;
        }
        if !conn.out.is_empty() {
            want |= EVENT_OUT;
        }
        if want != conn.interest {
            conn.interest = want;
            let token = conn_token(idx, conn.epoch);
            let _ = self.epoll.modify(conn.stream.as_raw_fd(), want, token);
        }
    }

    /// Arms or clears the per-frame progress deadline. Armed exactly
    /// while the connection owes progress (handshake pending, a frame
    /// partially received, or output unflushed); an armed deadline is
    /// *not* refreshed by trickled progress — a frame must complete
    /// within `io_timeout` of starting, which is what defeats slowloris.
    fn refresh_deadline(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].as_mut() else { return };
        let need =
            conn.state == ConnState::Handshake || conn.decoder.mid_frame() || !conn.out.is_empty();
        match (need, conn.deadline) {
            (true, None) => {
                conn.deadline_gen += 1;
                let d = Deadline { token: idx, generation: conn.deadline_gen };
                let slot = self.wheel.arm(Instant::now() + self.cfg.io_timeout, d);
                conn.deadline = Some(slot);
            }
            (false, Some(slot)) => {
                self.wheel.cancel_at(idx, slot);
                conn.deadline = None;
            }
            _ => {}
        }
    }

    /// Closes and forgets a connection: deregister, disarm, free the
    /// slot. Pool answers still in flight for it are discarded by the
    /// epoch check when they complete.
    fn drop_conn(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].take() else { return };
        let _ = self.epoll.delete(conn.stream.as_raw_fd());
        if let Some(slot) = conn.deadline {
            self.wheel.cancel_at(idx, slot);
        }
        self.free.push(idx);
        self.alive -= 1;
        // `conn.stream` drops here: the socket closes.
    }
}
