//! Frame I/O over blocking streams — re-exported from
//! [`pasco_simrank::api::transport`], where it moved so the query server,
//! the typed client, the SimRank worker runtime and the distributed
//! coordinator all read and write frames through one implementation.
//! Existing `pasco_server::transport::*` paths keep working.

pub use pasco_simrank::api::transport::{
    poll_envelope, read_envelope, write_envelope, TransportError,
};
