//! [`PascoClient`]: a blocking, pipelining-capable client for the PASCO
//! envelope protocol.
//!
//! The client separates the two failure planes the protocol separates:
//!
//! * a **typed query failure** ([`pasco_simrank::QueryError`], e.g. an
//!   out-of-range node) arrives as an error frame, surfaces as
//!   [`ClientError::Query`], and leaves the connection fully usable;
//! * a **transport fault** (socket error, protocol violation, server
//!   goodbye) poisons the client — every later call returns
//!   [`ClientError::Poisoned`] instead of writing onto a stream whose
//!   framing can no longer be trusted. Recovery is explicit:
//!   [`PascoClient::connect`] a fresh client.
//!
//! Pipelining is first-class: [`PascoClient::send`] puts a request on
//! the wire and returns its id immediately; [`PascoClient::wait`]
//! collects a specific id, buffering any other responses that arrive
//! first (the server answers in completion order, not request order).
//! [`PascoClient::query_batch`] pipelines a whole slice this way in one
//! round trip.

use crate::transport::{read_envelope, write_envelope, TransportError};
use pasco_simrank::api::envelope::{
    Envelope, FrameError, FrameKind, ServerInfo, DEFAULT_MAX_FRAME,
};
use pasco_simrank::{QueryError, QueryRequest, QueryResponse};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io::{self, BufReader};
use std::net::{TcpStream, ToSocketAddrs};

/// A client-side failure. Only [`ClientError::Query`] leaves the
/// connection usable; everything else poisons the client until it is
/// reconnected.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed.
    Io(io::Error),
    /// The server broke protocol (bad frame, unexpected kind, payload
    /// that would not decode).
    Protocol(FrameError),
    /// The server answered with a typed query error. The connection
    /// stays usable.
    Query(QueryError),
    /// The server said goodbye (drain) or closed the stream.
    Closed,
    /// A previous transport fault left this client unusable; reconnect
    /// with [`PascoClient::connect`].
    Poisoned,
    /// [`PascoClient::wait`] was given an id this client never issued
    /// (or already delivered) — waiting on it would block forever.
    UnknownId {
        /// The id that matches no in-flight request.
        id: u64,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(e) => write!(f, "server broke protocol: {e}"),
            ClientError::Query(e) => write!(f, "query failed: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::Poisoned => {
                write!(f, "connection unusable after an earlier fault; reconnect")
            }
            ClientError::UnknownId { id } => {
                write!(f, "request id {id} is not in flight on this connection")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<TransportError> for ClientError {
    fn from(e: TransportError) -> Self {
        match e {
            TransportError::Io(e) => ClientError::Io(e),
            TransportError::Frame(e) => ClientError::Protocol(e),
            TransportError::Closed => ClientError::Closed,
        }
    }
}

/// A blocking connection to a [`PascoServer`](crate::PascoServer).
pub struct PascoClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    info: ServerInfo,
    next_id: u64,
    /// Responses that arrived while waiting for a different id — the
    /// out-of-order buffer pipelining requires.
    pending: HashMap<u64, Result<QueryResponse, QueryError>>,
    /// Ids sent but not yet delivered to the caller: the set a
    /// [`PascoClient::wait`] id must belong to, so waiting on a bogus
    /// (or already-collected) id fails fast instead of blocking forever.
    in_flight: HashSet<u64>,
    open: bool,
}

impl PascoClient {
    /// Connects and completes the handshake: sends the protocol-version
    /// hello, receives the server's [`ServerInfo`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let writer = TcpStream::connect(addr).map_err(ClientError::Io)?;
        let _ = writer.set_nodelay(true);
        let reader_half = writer.try_clone().map_err(ClientError::Io)?;
        let mut client = PascoClient {
            writer,
            reader: BufReader::new(reader_half),
            info: ServerInfo { node_count: 0, max_frame_bytes: 0 },
            next_id: 1,
            pending: HashMap::new(),
            in_flight: HashSet::new(),
            open: true,
        };
        write_envelope(&mut client.writer, &Envelope::hello()).map_err(ClientError::Io)?;
        // The server's limit is not known yet, so the handshake read is
        // bounded by the protocol default — a rogue endpoint announcing
        // a u32::MAX payload must not make us allocate gigabytes.
        let ack = read_envelope(&mut client.reader, DEFAULT_MAX_FRAME)?;
        if ack.kind != FrameKind::HelloAck {
            return Err(ClientError::Protocol(FrameError::UnexpectedKind {
                got: ack.kind,
                expected: "HelloAck",
            }));
        }
        client.info = ack.decode_server_info().map_err(ClientError::Protocol)?;
        Ok(client)
    }

    /// Bounds every blocking socket read and write on this connection:
    /// a server that stalls past `timeout` surfaces as
    /// [`ClientError::Io`] (kind `WouldBlock`/`TimedOut`) instead of
    /// hanging the caller forever. `None` — the default — blocks
    /// indefinitely. The timeout is a property of the underlying socket,
    /// so it covers reads and writes alike.
    pub fn set_io_timeout(
        &mut self,
        timeout: Option<std::time::Duration>,
    ) -> Result<(), ClientError> {
        self.writer.set_read_timeout(timeout).map_err(ClientError::Io)?;
        self.writer.set_write_timeout(timeout).map_err(ClientError::Io)
    }

    /// What the server announced in its handshake: graph size (for
    /// client-side validation) and its frame-size limit.
    pub fn server_info(&self) -> ServerInfo {
        self.info
    }

    /// Whether the connection is still usable (no transport fault, no
    /// goodbye seen).
    pub fn is_open(&self) -> bool {
        self.open
    }

    fn guard_open(&self) -> Result<(), ClientError> {
        if self.open {
            Ok(())
        } else {
            Err(ClientError::Poisoned)
        }
    }

    /// Marks the connection unusable and returns the fault.
    fn poison<T>(&mut self, err: ClientError) -> Result<T, ClientError> {
        self.open = false;
        Err(err)
    }

    /// Puts one request on the wire without waiting, returning the id to
    /// [`wait`](PascoClient::wait) on. The send respects the server's
    /// advertised frame limit — an over-large request fails here, client
    /// side, instead of getting the connection closed on it.
    pub fn send(&mut self, req: &QueryRequest) -> Result<u64, ClientError> {
        self.guard_open()?;
        let id = self.next_id;
        let env = Envelope::request(id, req);
        if env.payload.len() as u64 > u64::from(self.info.max_frame_bytes) {
            // The connection carried nothing: no need to poison it.
            return Err(ClientError::Protocol(FrameError::Oversize {
                len: env.payload.len().min(u32::MAX as usize) as u32,
                max: self.info.max_frame_bytes,
            }));
        }
        self.next_id += 1;
        match write_envelope(&mut self.writer, &env) {
            Ok(()) => {
                self.in_flight.insert(id);
                Ok(id)
            }
            Err(e) => self.poison(ClientError::Io(e)),
        }
    }

    /// Collects the answer to request `id`, buffering responses to other
    /// in-flight ids as they arrive. The inner result is the request's
    /// own outcome: a typed [`QueryError`] is a *delivered answer* and
    /// leaves the connection open.
    pub fn wait(&mut self, id: u64) -> Result<Result<QueryResponse, QueryError>, ClientError> {
        self.guard_open()?;
        if !self.in_flight.contains(&id) && !self.pending.contains_key(&id) {
            // Never issued, or already delivered: blocking on it would
            // wait for a frame the server will never send.
            return Err(ClientError::UnknownId { id });
        }
        loop {
            if let Some(result) = self.pending.remove(&id) {
                return Ok(result);
            }
            let env = match read_envelope(&mut self.reader, self.info.max_frame_bytes) {
                Ok(env) => env,
                Err(TransportError::Closed) => return self.poison(ClientError::Closed),
                Err(e) => return self.poison(e.into()),
            };
            // An answer must consume exactly one in-flight id (it moves
            // to the pending buffer until the caller collects it). An
            // unsolicited or duplicate id is a protocol fault, not
            // something to buffer: a hostile server could otherwise grow
            // `pending` without bound or overwrite a buffered answer.
            if matches!(env.kind, FrameKind::Response | FrameKind::Error)
                && !self.in_flight.remove(&env.request_id)
            {
                return self.poison(ClientError::Protocol(FrameError::UnexpectedKind {
                    got: env.kind,
                    expected: "a frame for an in-flight request id",
                }));
            }
            match env.kind {
                FrameKind::Response => match env.decode_response() {
                    Ok(resp) => {
                        self.pending.insert(env.request_id, Ok(resp));
                    }
                    Err(e) => return self.poison(ClientError::Protocol(e)),
                },
                FrameKind::Error => match env.decode_error() {
                    Ok(err) => {
                        self.pending.insert(env.request_id, Err(err));
                    }
                    Err(e) => return self.poison(ClientError::Protocol(e)),
                },
                FrameKind::Goodbye => return self.poison(ClientError::Closed),
                other => {
                    return self.poison(ClientError::Protocol(FrameError::UnexpectedKind {
                        got: other,
                        expected: "Response, Error or Goodbye",
                    }))
                }
            }
        }
    }

    /// One request, one answer: [`send`](PascoClient::send) then
    /// [`wait`](PascoClient::wait), with the typed error flattened into
    /// [`ClientError::Query`].
    pub fn query(&mut self, req: QueryRequest) -> Result<QueryResponse, ClientError> {
        let id = self.send(&req)?;
        self.wait(id)?.map_err(ClientError::Query)
    }

    /// Pipelines every request before collecting any answer: one wire
    /// round trip for the whole slice, with per-request typed outcomes
    /// (one failing request does not fail its neighbours).
    pub fn query_batch(
        &mut self,
        reqs: &[QueryRequest],
    ) -> Result<Vec<Result<QueryResponse, QueryError>>, ClientError> {
        let ids = reqs.iter().map(|req| self.send(req)).collect::<Result<Vec<_>, _>>()?;
        ids.into_iter().map(|id| self.wait(id)).collect()
    }

    /// Asks the server to drain and stop, consuming the client: returns
    /// once the server's goodbye (written after every in-flight response
    /// on this connection) has arrived.
    pub fn shutdown_server(mut self) -> Result<(), ClientError> {
        self.guard_open()?;
        write_envelope(&mut self.writer, &Envelope::shutdown()).map_err(ClientError::Io)?;
        loop {
            match read_envelope(&mut self.reader, self.info.max_frame_bytes) {
                // In-flight responses the caller never waited on may
                // still be draining; discard them.
                Ok(env) if env.kind == FrameKind::Response || env.kind == FrameKind::Error => {}
                Ok(env) if env.kind == FrameKind::Goodbye => return Ok(()),
                Ok(env) => {
                    return Err(ClientError::Protocol(FrameError::UnexpectedKind {
                        got: env.kind,
                        expected: "Goodbye",
                    }))
                }
                // A close without goodbye still means the server is gone.
                Err(TransportError::Closed) => return Ok(()),
                Err(e) => return Err(e.into()),
            }
        }
    }
}
