#![deny(unsafe_code)]
#![warn(missing_docs)]
//! **The PASCO network front door**: an event-driven TCP server and a
//! blocking client speaking the versioned envelope protocol
//! ([`pasco_simrank::api::envelope`]) over any
//! [`QueryService`](pasco_simrank::QueryService).
//!
//! The paper's end state is SimRank *served* at scale: single-source and
//! top-`k` similarity as an online query service. This crate is that
//! service boundary:
//!
//! * [`PascoServer`] — an epoll reactor (built on a thin syscall shim,
//!   no external dependencies) that owns every connection socket in
//!   nonblocking mode. One event loop runs accepts, handshakes,
//!   resumable frame reassembly, response flushing, per-frame I/O
//!   deadlines on a timer wheel, and drain orchestration; query
//!   execution runs on a bounded worker pool shared by all connections,
//!   and responses are written as they finish — possibly out of request
//!   order, matched by request id. The wire protocol is byte-identical
//!   to the original thread-per-connection server, but 256 idle
//!   connections cost zero threads and zero wakeups, and a slowloris
//!   peer costs one timer slot. `BENCH_serving.json` at the repo root
//!   holds the measured before/after.
//! * [`PascoClient`] — a blocking client with typed
//!   [`query`](PascoClient::query) / [`query_batch`](PascoClient::query_batch)
//!   entry points, explicit [`send`](PascoClient::send) /
//!   [`wait`](PascoClient::wait) pipelining primitives, and a
//!   reconnect-safe error surface: a typed
//!   [`QueryError`](pasco_simrank::QueryError) leaves the connection
//!   usable, while transport faults poison the client until it is
//!   reconnected.
//! * [`transport`] — the shared frame I/O (header-validated reads that
//!   never allocate for an oversize or malformed frame), including the
//!   resumable [`FrameDecoder`](transport::FrameDecoder) /
//!   [`WriteQueue`](transport::WriteQueue) pair the reactor's
//!   nonblocking state machines are built on.
//!
//! Protocol violations — bad magic, an unsupported version, a payload
//! over the negotiated limit, an undecodable payload — close the
//! connection: after a framing fault the byte stream cannot be trusted
//! to resynchronise. Typed query failures never do; they travel back as
//! error frames.
//!
//! ```no_run
//! use pasco_server::{PascoClient, PascoServer, ServerConfig};
//! use pasco_simrank::{CloudWalker, ExecMode, SimRankConfig, QueryRequest, QueryResponse};
//! use std::sync::Arc;
//!
//! let g = Arc::new(pasco_graph::generators::barabasi_albert(1000, 4, 7));
//! let cw = Arc::new(CloudWalker::build(g, SimRankConfig::fast(), ExecMode::Local).unwrap());
//! let server = PascoServer::bind("127.0.0.1:0", cw, ServerConfig::default()).unwrap();
//! let addr = server.local_addr();
//! std::thread::spawn(move || server.run().unwrap());
//!
//! let mut client = PascoClient::connect(addr).unwrap();
//! match client.query(QueryRequest::SinglePair { i: 3, j: 4 }).unwrap() {
//!     QueryResponse::Score(s) => println!("s(3,4) = {s}"),
//!     other => panic!("unexpected {other:?}"),
//! }
//! client.shutdown_server().unwrap();
//! ```

pub mod client;
pub mod server;
#[allow(unsafe_code)]
mod sys;
mod wheel;

/// Frame I/O — re-exported from [`pasco_simrank::api::transport`], where
/// it lives so the query server, the typed client, the SimRank worker
/// runtime and the distributed coordinator all read and write frames
/// through one implementation. Existing `pasco_server::transport::*`
/// paths keep working.
pub mod transport {
    pub use pasco_simrank::api::transport::{
        poll_envelope, read_envelope, write_envelope, FrameDecoder, TransportError, WriteQueue,
    };
}

pub use client::{ClientError, PascoClient};
pub use server::{PascoServer, ServerConfig, ServerHandle, ServerStats};
pub use transport::TransportError;
