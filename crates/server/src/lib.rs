#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! **The PASCO network front door**: a blocking TCP server and client
//! speaking the versioned envelope protocol
//! ([`pasco_simrank::api::envelope`]) over any
//! [`QueryService`](pasco_simrank::QueryService).
//!
//! The paper's end state is SimRank *served* at scale: single-source and
//! top-`k` similarity as an online query service. This crate is that
//! service boundary:
//!
//! * [`PascoServer`] — binds a `std::net::TcpListener` and serves any
//!   `Arc<dyn QueryService>`, so the caching `QuerySession`, a bare
//!   `CloudWalker`, and the sharded engine all plug in unchanged. Each
//!   connection gets a framed read loop and a dedicated writer thread;
//!   query execution runs on a bounded worker pool shared by all
//!   connections, and responses are written as they finish — possibly
//!   out of request order, matched by request id.
//! * [`PascoClient`] — a blocking client with typed
//!   [`query`](PascoClient::query) / [`query_batch`](PascoClient::query_batch)
//!   entry points, explicit [`send`](PascoClient::send) /
//!   [`wait`](PascoClient::wait) pipelining primitives, and a
//!   reconnect-safe error surface: a typed
//!   [`QueryError`](pasco_simrank::QueryError) leaves the connection
//!   usable, while transport faults poison the client until it is
//!   reconnected.
//! * [`transport`] — the shared frame I/O (header-validated reads that
//!   never allocate for an oversize or malformed frame).
//!
//! Protocol violations — bad magic, an unsupported version, a payload
//! over the negotiated limit, an undecodable payload — close the
//! connection: after a framing fault the byte stream cannot be trusted
//! to resynchronise. Typed query failures never do; they travel back as
//! error frames.
//!
//! ```no_run
//! use pasco_server::{PascoClient, PascoServer, ServerConfig};
//! use pasco_simrank::{CloudWalker, ExecMode, SimRankConfig, QueryRequest, QueryResponse};
//! use std::sync::Arc;
//!
//! let g = Arc::new(pasco_graph::generators::barabasi_albert(1000, 4, 7));
//! let cw = Arc::new(CloudWalker::build(g, SimRankConfig::fast(), ExecMode::Local).unwrap());
//! let server = PascoServer::bind("127.0.0.1:0", cw, ServerConfig::default()).unwrap();
//! let addr = server.local_addr();
//! std::thread::spawn(move || server.run().unwrap());
//!
//! let mut client = PascoClient::connect(addr).unwrap();
//! match client.query(QueryRequest::SinglePair { i: 3, j: 4 }).unwrap() {
//!     QueryResponse::Score(s) => println!("s(3,4) = {s}"),
//!     other => panic!("unexpected {other:?}"),
//! }
//! client.shutdown_server().unwrap();
//! ```

pub mod client;
pub mod server;
pub mod transport;

pub use client::{ClientError, PascoClient};
pub use server::{PascoServer, ServerConfig, ServerHandle};
pub use transport::TransportError;
