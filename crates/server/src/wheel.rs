//! A hashed timer wheel for the reactor's per-frame I/O deadlines.
//!
//! Deadlines here are coarse by design — "did this peer make progress
//! within `io_timeout`?" — so a wheel with a fixed tick is the right
//! shape: arm/cancel are O(1)-ish (cancel scans one slot), expiry sweeps
//! only the slots the clock actually crossed, and when nothing is armed
//! the reactor's `epoll_wait` can sleep forever. The wheel never wakes an
//! idle server: a timer exists only while a connection is mid-handshake,
//! mid-frame, or has unflushed output.
//!
//! Timers carry a `(token, generation)` pair. Cancellation is exact
//! (the entry is removed from its slot), and the generation lets the
//! reactor discard a fired timer that was re-armed concurrently with the
//! sweep — a token alone could outlive its connection slot.

use std::time::{Duration, Instant};

/// One armed deadline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Deadline {
    /// The connection slot this deadline belongs to.
    pub token: usize,
    /// The arming generation; stale generations are the reactor's cue to
    /// ignore a fire.
    pub generation: u64,
}

struct Timer {
    deadline: Deadline,
    /// Absolute tick this timer fires at (ticks may wrap the wheel many
    /// times; the slot only narrows the search).
    due_tick: u64,
}

/// The wheel. `slots.len()` is a power of two so the slot index is a
/// mask, and `tick` is the resolution every deadline is rounded up to.
pub(crate) struct TimerWheel {
    slots: Vec<Vec<Timer>>,
    tick: Duration,
    start: Instant,
    /// First tick not yet swept by [`TimerWheel::expire`].
    cursor: u64,
    armed: usize,
}

impl TimerWheel {
    pub fn new(tick: Duration, slot_count: usize) -> Self {
        assert!(slot_count.is_power_of_two(), "slot count must be a power of two");
        assert!(!tick.is_zero(), "tick must be positive");
        TimerWheel {
            slots: (0..slot_count).map(|_| Vec::new()).collect(),
            tick,
            start: Instant::now(),
            cursor: 0,
            armed: 0,
        }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let since = at.saturating_duration_since(self.start);
        // Round up: a deadline must never fire early.
        (since.as_nanos() / self.tick.as_nanos()) as u64 + 1
    }

    fn slot(&self, tick: u64) -> usize {
        (tick as usize) & (self.slots.len() - 1)
    }

    /// Arms `deadline` to fire at or just after `at`, returning the slot
    /// it landed in (hand it back to [`TimerWheel::cancel_at`] for O(1)
    /// disarming).
    pub fn arm(&mut self, at: Instant, deadline: Deadline) -> usize {
        let due_tick = self.tick_of(at).max(self.cursor);
        let slot = self.slot(due_tick);
        self.slots[slot].push(Timer { deadline, due_tick });
        self.armed += 1;
        slot
    }

    /// Disarms every timer of `token` in `slot` (the index
    /// [`TimerWheel::arm`] returned). Exact removal — a cancelled timer
    /// never fires and never counts as armed.
    pub fn cancel_at(&mut self, token: usize, slot: usize) {
        let bucket = &mut self.slots[slot];
        let before = bucket.len();
        bucket.retain(|t| t.deadline.token != token);
        self.armed -= before - bucket.len();
    }

    /// How long `epoll_wait` may sleep: `None` when nothing is armed
    /// (sleep forever — the wheel guarantees zero idle wakeups), else the
    /// time to the earliest armed deadline (zero if already due).
    pub fn next_timeout(&self, now: Instant) -> Option<Duration> {
        if self.armed == 0 {
            return None;
        }
        // `armed > 0` (checked above) guarantees at least one occupied
        // slot; the `?` is belt-and-braces for a broken count (an empty
        // wheel sleeping forever is the correct degraded behaviour).
        let earliest = self.slots.iter().flatten().map(|t| t.due_tick).min()?;
        // Full-width tick arithmetic: a u32 cast here once wrapped after
        // 2^32 ticks and made an armed wheel busy-wake forever.
        let due = self.start
            + Duration::from_nanos((self.tick.as_nanos() as u64).saturating_mul(earliest));
        Some(due.saturating_duration_since(now))
    }

    /// Sweeps every tick up to `now`, appending fired deadlines to `out`.
    pub fn expire(&mut self, now: Instant, out: &mut Vec<Deadline>) {
        // Ticks fully elapsed by `now`.
        let now_tick = self.tick_of(now).saturating_sub(1);
        // Sweep at most one full revolution: past that, every slot has
        // been visited and due_tick filtering has caught everything.
        let sweep = (now_tick.saturating_sub(self.cursor) + 1).min(self.slots.len() as u64);
        for tick in self.cursor..self.cursor + sweep {
            let slot = self.slot(tick);
            let mut i = 0;
            while i < self.slots[slot].len() {
                if self.slots[slot][i].due_tick <= now_tick {
                    out.push(self.slots[slot].swap_remove(i).deadline);
                    self.armed -= 1;
                } else {
                    i += 1;
                }
            }
        }
        self.cursor = self.cursor.max(now_tick + 1);
    }

    /// Number of currently armed timers (idle server ⇒ 0 ⇒ no wakeups).
    #[cfg(test)]
    pub fn armed(&self) -> usize {
        self.armed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wheel() -> TimerWheel {
        TimerWheel::new(Duration::from_millis(1), 64)
    }

    #[test]
    fn empty_wheel_sleeps_forever() {
        let w = wheel();
        assert_eq!(w.next_timeout(Instant::now()), None);
    }

    #[test]
    fn deadlines_fire_after_their_instant_not_before() {
        let mut w = wheel();
        let now = Instant::now();
        w.arm(now + Duration::from_millis(20), Deadline { token: 1, generation: 0 });
        let mut fired = Vec::new();
        w.expire(now + Duration::from_millis(5), &mut fired);
        assert!(fired.is_empty(), "5ms in: a 20ms deadline must not fire");
        assert!(w.next_timeout(now).is_some());
        w.expire(now + Duration::from_millis(40), &mut fired);
        assert_eq!(fired, vec![Deadline { token: 1, generation: 0 }]);
        assert_eq!(w.armed(), 0);
        assert_eq!(w.next_timeout(now), None, "fired wheel is idle again");
    }

    #[test]
    fn cancel_removes_exactly_that_token() {
        let mut w = wheel();
        let now = Instant::now();
        let slot = w.arm(now + Duration::from_millis(3), Deadline { token: 1, generation: 0 });
        w.arm(now + Duration::from_millis(3), Deadline { token: 2, generation: 5 });
        w.cancel_at(1, slot);
        assert_eq!(w.armed(), 1);
        let mut fired = Vec::new();
        w.expire(now + Duration::from_millis(10), &mut fired);
        assert_eq!(fired, vec![Deadline { token: 2, generation: 5 }]);
    }

    /// Deadlines far beyond one wheel revolution hash into occupied slots
    /// but must not fire until actually due.
    #[test]
    fn far_deadlines_survive_wheel_wraparound() {
        let mut w = wheel();
        let now = Instant::now();
        w.arm(now + Duration::from_millis(200), Deadline { token: 9, generation: 1 });
        let mut fired = Vec::new();
        // Sweep in 64 steps of ~2ms (two revolutions' worth of ticks).
        for step in 1..=64u64 {
            w.expire(now + Duration::from_millis(2 * step), &mut fired);
            if 2 * step < 200 {
                assert!(fired.is_empty(), "{}ms: not due yet", 2 * step);
            }
        }
        assert!(fired.is_empty());
        w.expire(now + Duration::from_millis(260), &mut fired);
        assert_eq!(fired.len(), 1, "due after 200ms");
    }

    #[test]
    fn many_timers_one_sweep() {
        let mut w = wheel();
        let now = Instant::now();
        for token in 0..100 {
            w.arm(
                now + Duration::from_millis(1 + token as u64 % 7),
                Deadline { token, generation: 0 },
            );
        }
        let mut fired = Vec::new();
        w.expire(now + Duration::from_millis(50), &mut fired);
        assert_eq!(fired.len(), 100);
        assert_eq!(w.armed(), 0);
    }
}
