//! `BENCH_store.json` — restart economics of the out-of-core store.
//!
//! The claim under measurement is the tentpole's: reopening a saved
//! shard store is **O(1) in the graph's edge volume** (header + offset
//! spines), while every resident restart path pays O(E) — either the
//! full offline rebuild or a graph-binary + index reload — and the
//! price of querying through the mapping is a first-touch page-in, not
//! a throughput collapse.
//!
//! Four restart paths on the same graph, same config, same machine:
//!
//! * `rebuild`   — `CloudWalker::build`: offline walks + solver, O(n·r).
//! * `warm-load` — graph binary read + persisted index + `from_index`:
//!   the resident serving restart, O(E) decode plus index rebuild.
//! * `store-open` — `CloudWalker::open_store`: mmap every shard,
//!   validate headers and spines. No payload I/O.
//! * `store-open-small` — the same open on a ~25× smaller graph; its
//!   similarity to `store-open` is the O(1) evidence.
//!
//! Plus first-touch latency (the page-in cost the mapped path defers to
//! the first query) and sustained single-pair throughput resident vs
//! mapped.
//!
//! ```text
//! cargo run --release -p pasco_bench --bin bench_store -- [out.json]
//!     [--smoke]    # CI mode: small graph, sanity thresholds only
//! ```

use pasco_graph::{generators, io};
use pasco_simrank::persist;
use pasco_simrank::{CloudWalker, ExecMode, SimRankConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

const PARTS: u32 = 4;
/// Sustained-throughput sample size (single-pair queries).
const QUERIES: u32 = 400;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pasco_bench_store_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

fn dir_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|rd| rd.flatten().filter_map(|e| e.metadata().ok()).map(|m| m.len()).sum())
        .unwrap_or(0)
}

/// Times `queries` single-pair queries and returns (qps, first_us).
fn pair_load(cw: &CloudWalker, n: u32, queries: u32) -> (f64, f64) {
    let t_first = Instant::now();
    let _ = cw.single_pair(1 % n, 2 % n);
    let first_us = t_first.elapsed().as_secs_f64() * 1e6;
    let t0 = Instant::now();
    for q in 0..queries {
        let i = (q * 13 + 1) % n;
        let j = (q * 29 + 7) % n;
        let _ = cw.single_pair(i, j);
    }
    let qps = queries as f64 / t0.elapsed().as_secs_f64();
    (qps, first_us)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args.iter().find(|a| !a.starts_with("--")).cloned();

    // ~131k nodes / 1M edges full, ~4k nodes / 40k edges smoke. The
    // small graph doubles as the O(1)-open comparison point.
    let (scale, edges) = if smoke { (13, 60_000) } else { (17, 1_000_000) };
    let g = Arc::new(generators::rmat(scale, edges, generators::RmatParams::default(), 0x570E));
    let g_small = Arc::new(generators::rmat(
        scale - 4,
        edges / 25,
        generators::RmatParams::default(),
        0x570E,
    ));
    let n = g.node_count();
    let cfg = SimRankConfig::fast().with_r(16).with_r_query(512).with_seed(7);
    eprintln!("graph: {} nodes, {} edges (smoke={smoke})", n, g.edge_count());

    // Resident build — also the `rebuild` restart path.
    let t0 = Instant::now();
    let resident = CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Local).unwrap();
    let rebuild_ms = ms(t0);
    eprintln!("rebuild (offline build): {rebuild_ms:.1} ms");

    // Persist all resident artifacts.
    let art = scratch("artifacts");
    io::write_binary(&g, art.join("graph.bin")).unwrap();
    persist::save_index(resident.diagonal(), art.join("d.idx")).unwrap();
    let store_dir = scratch("store");
    let t0 = Instant::now();
    resident.save_store(&store_dir, PARTS).unwrap();
    let save_ms = ms(t0);
    let store_bytes = dir_bytes(&store_dir);
    let small_store = scratch("store_small");
    {
        let cw = CloudWalker::build(Arc::clone(&g_small), cfg, ExecMode::Local).unwrap();
        cw.save_store(&small_store, PARTS).unwrap();
    }

    // Restart path 2: resident warm load from the persisted artifacts.
    let t0 = Instant::now();
    let g2 = Arc::new(io::read_binary(art.join("graph.bin")).unwrap());
    let idx = persist::load_index(art.join("d.idx")).unwrap();
    let warm = CloudWalker::from_index(g2, cfg, idx).unwrap();
    let warm_load_ms = ms(t0);
    eprintln!("warm-load (graph bin + index): {warm_load_ms:.1} ms");

    // Restart path 3: the mapped open. O(headers + spines).
    let t0 = Instant::now();
    let mapped = CloudWalker::open_store(&store_dir, cfg).unwrap();
    let open_ms = ms(t0);
    let t0 = Instant::now();
    let mapped_small = CloudWalker::open_store(&small_store, cfg).unwrap();
    let open_small_ms = ms(t0);
    eprintln!("store-open: {open_ms:.2} ms ({} bytes mapped)", store_bytes);
    eprintln!("store-open-small (~25x fewer edges): {open_small_ms:.2} ms");
    drop(mapped_small);

    // First-touch + sustained throughput, mapped vs resident.
    let (mapped_qps, mapped_first_us) = pair_load(&mapped, n, QUERIES);
    let (resident_qps, resident_first_us) = pair_load(&warm, n, QUERIES);
    eprintln!("first touch: mapped {mapped_first_us:.0} us, resident {resident_first_us:.0} us");
    eprintln!("sustained:   mapped {mapped_qps:.0} qps, resident {resident_qps:.0} qps");

    // The acceptance gates. Open must beat every O(E) restart by a wide
    // margin, and stay within the same ballpark as the 25x-smaller
    // open; the mapped substrate must hold a usable fraction of
    // resident throughput once pages are in. On the smoke graph the
    // warm load itself is sub-millisecond, so the 5x margin against it
    // is noise — smoke only requires open to not *lose* to warm load;
    // the real margin is gated on the full-size run.
    let open_speedup = warm_load_ms / open_ms.max(1e-3);
    let warm_margin = if smoke { 1.0 } else { 5.0 };
    assert!(
        open_ms < warm_load_ms / warm_margin,
        "store open ({open_ms:.2} ms) is not clearly below warm load ({warm_load_ms:.1} ms)"
    );
    assert!(
        open_ms < rebuild_ms / 20.0,
        "store open ({open_ms:.2} ms) is not clearly below rebuild ({rebuild_ms:.1} ms)"
    );

    let json = format!(
        "{{\n  \"nodes\": {n},\n  \"edges\": {},\n  \"parts\": {PARTS},\n  \
         \"smoke\": {smoke},\n  \"store_bytes\": {store_bytes},\n  \"queries\": {QUERIES},\n  \
         \"restart_ms\": {{\n    \"rebuild\": {rebuild_ms:.1},\n    \
         \"warm_load\": {warm_load_ms:.1},\n    \"store_open\": {open_ms:.2},\n    \
         \"store_open_small\": {open_small_ms:.2},\n    \"store_save\": {save_ms:.1}\n  }},\n  \
         \"open_speedup_vs_warm_load\": {open_speedup:.0},\n  \
         \"first_touch_us\": {{\n    \"mapped\": {mapped_first_us:.0},\n    \
         \"resident\": {resident_first_us:.0}\n  }},\n  \
         \"single_pair_qps\": {{\n    \"mapped\": {mapped_qps:.0},\n    \
         \"resident\": {resident_qps:.0}\n  }}\n}}\n",
        g.edge_count(),
    );
    match out {
        Some(path) => {
            std::fs::write(&path, &json).unwrap();
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
}
