//! `BENCH_serving.json` — the front door's connection-scalability
//! snapshot: a closed-loop load harness driving `PascoServer` with N
//! concurrent clients (N ∈ {1, 8, 64, 256}) over a fixed request mix
//! (sp / ss / topk / cohort round-robin) and reporting QPS plus
//! p50/p99/p999 latency per N. The emitted JSON also carries the
//! thread-per-connection numbers measured at the seed commit, so the
//! reactor's jump stays a visible, committed delta.
//!
//! ```text
//! cargo run --release -p pasco_bench --bin bench_serving -- [out.json]
//!     [--smoke]               # CI mode: 64 clients, small graph, short run
//!     [--baseline FILE]       # fail (exit 1) if smoke p99 regresses >3x
//!     [--label NAME]          # row label for this run (default "reactor")
//! ```
//!
//! Closed loop means every client waits for its answer before sending
//! the next request: measured latency includes queueing, and QPS is the
//! service rate the server actually sustains at that concurrency.

use pasco_graph::generators;
use pasco_server::{PascoClient, PascoServer, ServerConfig};
use pasco_simrank::{
    CloudWalker, ExecMode, QueryRequest, QueryService, QuerySession, SimRankConfig,
};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Concurrency ladder of the full run.
const CLIENT_COUNTS: &[usize] = &[1, 8, 64, 256];
/// Measured seconds per concurrency level (after warmup).
const RUN_SECS: f64 = 1.5;
const WARMUP_SECS: f64 = 0.4;

/// The thread-per-connection server's numbers, measured at the seed
/// commit on the same graph/mix/machine family before the reactor
/// replaced it (PR 6). Kept as literal rows so `BENCH_serving.json`
/// always shows the before/after even though the old core is gone.
const SEED_BASELINE: &[(usize, f64, f64, f64, f64)] = &[
    // (clients, qps, p50_us, p99_us, p999_us)
    (1, 2340.7, 79.0, 1691.0, 3637.0),
    (8, 2818.7, 2529.0, 8248.0, 9409.0),
    (64, 2722.0, 23503.0, 48810.0, 54389.0),
    (256, 2710.0, 92925.0, 283720.0, 303932.0),
];

/// Phases of the run, shared with every client thread.
const PHASE_WARMUP: u8 = 0;
const PHASE_MEASURE: u8 = 1;

struct Load {
    phase: AtomicU8,
    stop: AtomicBool,
}

/// Client `c`'s deterministic request mix: sp / ss / topk / cohort
/// round-robin over a hot set the cohort cache can actually serve.
fn mix(c: u32, q: u32, n: u32) -> QueryRequest {
    let i = (c * 13 + q * 7) % n.min(512);
    let j = (c * 29 + q * 11 + 1) % n.min(512);
    match q % 4 {
        0 => QueryRequest::SinglePair { i, j },
        1 => QueryRequest::SingleSource { i },
        2 => QueryRequest::SingleSourceTopK { i, k: 10 },
        _ => QueryRequest::Cohort { v: i },
    }
}

struct Row {
    server: String,
    clients: usize,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
    requests: u64,
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx] as f64
}

/// One closed-loop run: `clients` threads hammer the server at `addr`
/// until the deadline, recording per-request microseconds during the
/// measurement phase only (the warmup fills the cohort cache).
fn run_load(addr: std::net::SocketAddr, clients: usize, n: u32, label: &str) -> Row {
    let load = Arc::new(Load { phase: AtomicU8::new(PHASE_WARMUP), stop: AtomicBool::new(false) });
    let lats: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let joins: Vec<_> = (0..clients)
            .map(|c| {
                let load = Arc::clone(&load);
                scope.spawn(move || {
                    let mut client = PascoClient::connect(addr).expect("connect");
                    let mut lat = Vec::with_capacity(1 << 14);
                    let mut q = 0u32;
                    while !load.stop.load(Ordering::Relaxed) {
                        let req = mix(c as u32, q, n);
                        q += 1;
                        let measuring = load.phase.load(Ordering::Relaxed) == PHASE_MEASURE;
                        let t0 = Instant::now();
                        client.query(req).expect("query");
                        if measuring {
                            lat.push(t0.elapsed().as_micros() as u64);
                        }
                    }
                    lat
                })
            })
            .collect();
        std::thread::sleep(Duration::from_secs_f64(WARMUP_SECS));
        load.phase.store(PHASE_MEASURE, Ordering::Relaxed);
        std::thread::sleep(Duration::from_secs_f64(RUN_SECS));
        load.stop.store(true, Ordering::Relaxed);
        joins.into_iter().map(|j| j.join().expect("client thread")).collect()
    });

    let mut all: Vec<u64> = lats.into_iter().flatten().collect();
    all.sort_unstable();
    let requests = all.len() as u64;
    Row {
        server: label.to_string(),
        clients,
        qps: requests as f64 / RUN_SECS,
        p50_us: percentile(&all, 0.50),
        p99_us: percentile(&all, 0.99),
        p999_us: percentile(&all, 0.999),
        requests,
    }
}

fn write_json(path: &str, nodes: u32, edges: u64, smoke: bool, rows: &[Row]) {
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"nodes\": {nodes},\n  \"edges\": {edges},\n  \"run_secs\": {RUN_SECS},\n  \
         \"smoke\": {smoke},\n  \"mix\": \"sp/ss/topk/cohort round-robin\",\n  \"rows\": [\n"
    ));
    for (idx, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"server\": \"{}\", \"clients\": {}, \"qps\": {:.1}, \"p50_us\": {:.1}, \
             \"p99_us\": {:.1}, \"p999_us\": {:.1}, \"requests\": {}}}{}\n",
            row.server,
            row.clients,
            row.qps,
            row.p50_us,
            row.p99_us,
            row.p999_us,
            row.requests,
            if idx + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(path, &json).unwrap();
}

/// Pulls the committed smoke row's p99 out of a previous
/// `BENCH_serving.json` (the one committed to the repo) without a JSON
/// dependency: finds the first `"server": "<label>"` row and reads its
/// `"p99_us"` field.
fn committed_p99(path: &str, label: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let needle = format!("\"server\": \"{label}\"");
    let row_start = text.find(&needle)?;
    let row = &text[row_start..text[row_start..].find('}').map(|e| row_start + e)?];
    let field = row.find("\"p99_us\": ")?;
    let rest = &row[field + "\"p99_us\": ".len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let label = args
        .iter()
        .position(|a| a == "--label")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| if smoke { "reactor-smoke".into() } else { "reactor".into() });
    let baseline =
        args.iter().position(|a| a == "--baseline").and_then(|i| args.get(i + 1)).cloned();
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .filter(|a| {
            let flagged = |f: &str| {
                args.iter().position(|x| x == f).is_some_and(|i| args.get(i + 1) == Some(a))
            };
            !flagged("--label") && !flagged("--baseline")
        })
        .cloned()
        .unwrap_or_else(|| "BENCH_serving.json".to_string());

    let (nodes, counts): (u32, &[usize]) =
        if smoke { (1_000, &[64]) } else { (1_000, CLIENT_COUNTS) };
    let g = Arc::new(generators::barabasi_albert(nodes, 8, 0x5E11));
    let edges = g.edge_count() as u64;
    let cfg = SimRankConfig::fast().with_r(32).with_r_query(16).with_seed(11);
    let cw = CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Local).unwrap();
    let session = Arc::new(QuerySession::new(Arc::new(cw), 2048));

    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    let server_cfg = ServerConfig { workers: threads.min(8), ..ServerConfig::default() };
    let server =
        PascoServer::bind("127.0.0.1:0", session as Arc<dyn QueryService>, server_cfg).unwrap();
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().unwrap());
    println!(
        "serving bench: |V|={nodes}, |E|={edges}, {}s/level closed loop, label \"{label}\"",
        RUN_SECS
    );

    let mut rows = Vec::new();
    if !smoke {
        for &(clients, qps, p50, p99, p999) in SEED_BASELINE {
            rows.push(Row {
                server: "threaded-seed".to_string(),
                clients,
                qps,
                p50_us: p50,
                p99_us: p99,
                p999_us: p999,
                requests: 0,
            });
        }
    }
    for &clients in counts {
        let row = run_load(addr, clients, nodes, &label);
        println!(
            "{:<14} {:>4} clients  {:>10.0} qps  p50 {:>8.1}us  p99 {:>8.1}us  p999 {:>8.1}us",
            row.server, row.clients, row.qps, row.p50_us, row.p99_us, row.p999_us
        );
        rows.push(row);
    }
    handle.shutdown();
    join.join().unwrap();

    write_json(&out_path, nodes, edges, smoke, &rows);
    println!("wrote {out_path}");

    if let Some(baseline_path) = baseline {
        let fresh = rows.last().expect("at least one row");
        match committed_p99(&baseline_path, &label) {
            Some(committed) => {
                // 3x the committed p99, with a small absolute floor so
                // CI-runner jitter on a sub-millisecond baseline does not
                // page anyone.
                let limit = (committed * 3.0).max(2_000.0);
                println!(
                    "regression gate: fresh p99 {:.1}us vs committed {:.1}us (limit {:.1}us)",
                    fresh.p99_us, committed, limit
                );
                if fresh.p99_us > limit {
                    eprintln!("p99 regression: {:.1}us > {limit:.1}us", fresh.p99_us);
                    std::process::exit(1);
                }
            }
            None => {
                eprintln!("no committed \"{label}\" row in {baseline_path}; gate skipped");
            }
        }
    }
}
