//! A1–A3 — ablations of CloudWalker's design choices (DESIGN.md §6).
//!
//! Usage: `ablations [mcss|ai|walkers|all]` (default `all`).

use pasco_bench::{datasets, fmt_duration, table::Table, time};
use pasco_graph::ReverseChainIndex;
use pasco_simrank::engine::local;
use pasco_simrank::exact::ExactSimRank;
use pasco_simrank::{metrics, queries, AiStrategy, SimRankConfig};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    if which == "mcss" || which == "all" {
        mcss_ablation();
    }
    if which == "ai" || which == "all" {
        ai_ablation();
    }
    if which == "walkers" || which == "all" {
        walker_ablation();
    }
}

/// A1: MCSS estimator — mass-carrying forward walks (paper) vs exact
/// sparse push, accuracy and latency.
fn mcss_ablation() {
    let ds = datasets::load("wiki-vote-sim");
    let g = &ds.graph;
    let cfg = SimRankConfig::default_paper();
    println!("A1: MCSS estimator on {}\n", ds.spec.name);
    let out = local::build_diagonal(g, &cfg);
    let diag = out.diag.as_slice();
    let rci = ReverseChainIndex::build(g);
    let exact = ExactSimRank::compute(g, cfg.c, 15);

    let mut t = Table::new(&["estimator", "latency", "mean err", "NDCG@20"]);
    let sources = [3u32, 777, 2048, 5000];
    for (name, f) in [
        (
            "forward walks",
            Box::new(|s: u32| queries::single_source(g, &rci, diag, &cfg, s))
                as Box<dyn Fn(u32) -> Vec<f64>>,
        ),
        ("exact push", Box::new(|s: u32| queries::single_source_push(g, diag, &cfg, s))),
    ] {
        let mut lat = std::time::Duration::ZERO;
        let mut err = 0.0;
        let mut ndcg = 0.0;
        for &s in &sources {
            let (est, d) = time(|| f(s));
            lat += d;
            err += metrics::mean_abs_diff(&est, exact.row(s));
            let ranking: Vec<u32> =
                metrics::top_k(&est, 20, Some(s)).into_iter().map(|(i, _)| i).collect();
            ndcg += metrics::ndcg_at_k(exact.row(s), &ranking, 20, Some(s));
        }
        let k = sources.len() as f64;
        t.row(vec![
            name.into(),
            fmt_duration(lat / sources.len() as u32),
            format!("{:.5}", err / k),
            format!("{:.4}", ndcg / k),
        ]);
    }
    t.print();
    println!("\nTrade-off: the push variant removes forward-walk variance but its cost\ngrows with the push frontier; walks keep latency bounded by T²R'log d.\n");
}

/// A2: row strategy — Store vs Recompute (identical output, memory/time
/// trade).
fn ai_ablation() {
    let ds = datasets::load("wiki-talk-sim");
    let g = &ds.graph;
    let cfg = SimRankConfig::default_paper();
    println!("A2: aᵢ row strategy on {}\n", ds.spec.name);
    let mut t = Table::new(&["strategy", "D wall", "row memory", "identical x?"]);
    let (store, d_store) = time(|| local::build_diagonal_with_strategy(g, &cfg, AiStrategy::Store));
    let (recompute, d_rec) =
        time(|| local::build_diagonal_with_strategy(g, &cfg, AiStrategy::Recompute));
    let same = store.diag == recompute.diag;
    t.row(vec![
        "Store".into(),
        fmt_duration(d_store),
        format!("{:.1}MB", store.rows_bytes.unwrap_or(0) as f64 / 1e6),
        same.to_string(),
    ]);
    t.row(vec!["Recompute".into(), fmt_duration(d_rec), "O(n) only".into(), same.to_string()]);
    t.print();
    println!("\nSeed-replayed walks make the two strategies bit-identical, so the choice\nis purely memory vs (L+1)x walk time.\n");
}

/// A3: walker budgets — error vs R (indexing) and R' (queries).
fn walker_ablation() {
    let ds = datasets::load("wiki-vote-sim");
    let g = &ds.graph;
    let base = SimRankConfig::default_paper();
    println!("A3: query walker budget R' on {}\n", ds.spec.name);
    let out = local::build_diagonal(g, &base);
    let diag = out.diag.as_slice();
    let exact = ExactSimRank::compute(g, base.c, 15);
    let pairs = [(1u32, 2u32), (10, 400), (55, 56), (800, 4001)];
    let mut t = Table::new(&["R'", "MCSP latency", "pair max err"]);
    for rq in [100u32, 500, 2_000, 10_000, 40_000] {
        let cfg = base.with_r_query(rq);
        let mut worst = 0.0f64;
        let mut lat = std::time::Duration::ZERO;
        for &(i, j) in &pairs {
            let (est, d) = time(|| queries::single_pair(g, diag, &cfg, i, j));
            lat += d;
            worst = worst.max((est - exact.get(i, j)).abs());
        }
        t.row(vec![rq.to_string(), fmt_duration(lat / pairs.len() as u32), format!("{worst:.4}")]);
    }
    t.print();
    println!("\nError shrinks ~1/sqrt(R') while latency grows linearly — R' = 10,000 is the\npaper's accuracy/latency sweet spot.");
}
