//! E6 — the paper's state-of-the-art comparison: FMT \[2\] vs LIN \[3\] vs
//! CloudWalker (preprocessing, single-pair, single-source).
//!
//! Paper values:
//! ```text
//! dataset      FMT prep/SP/SS         LIN prep/SP/SS          CloudWalker prep/SP/SS
//! wiki-vote    43.4s/30.4ms/42.5s     187ms/0.61ms/5.3ms      7s/4ms/42ms
//! wiki-talk    N/A                    N/A                     59s/46ms/180ms
//! twitter      -                      14376s/3.17s/11.9s      975s/49ms/281ms
//! uk-union     -                      8291s/9.42s/21.7s       3323s/25ms/291ms
//! clue-web     -                      -                       110.2h/64.0s/188s
//! ```
//! FMT dies on memory (fingerprint store), LIN's prep explodes with graph
//! size; CloudWalker's queries stay near-constant. Our budgets reproduce
//! the N/A structure honestly (see `pasco-baselines`).

use pasco_baselines::{Fmt, FmtConfig, Lin, LinConfig};
use pasco_bench::{datasets, fmt_duration, table::Table, time, Scale};
use pasco_simrank::{CloudWalker, ExecMode, SimRankConfig};
use std::sync::Arc;
use std::time::Duration;

struct MethodCells {
    prep: String,
    sp: String,
    ss: String,
}

fn na() -> MethodCells {
    MethodCells { prep: "N/A".into(), sp: "N/A".into(), ss: "N/A".into() }
}

fn main() {
    let scale = Scale::from_env();
    let cfg = SimRankConfig::default_paper().with_r_query(scale.r_query());
    println!("E6: FMT vs LIN vs CloudWalker (PASCO_SCALE={scale:?})\n");

    let mut t = Table::new(&[
        "Dataset", "FMT prep", "FMT SP", "FMT SS", "LIN prep", "LIN SP", "LIN SS", "CW prep",
        "CW SP", "CW SS",
    ]);
    for ds in datasets::load_first(scale.dataset_count()) {
        let g = Arc::clone(&ds.graph);
        let n = g.node_count();
        // Representative query nodes: the heaviest hub and a median-degree
        // connected node (arbitrary ids often land on dangling nodes).
        let qi = (0..n).max_by_key(|&v| g.in_degree(v)).unwrap_or(0);
        let qj = {
            let mut connected: Vec<u32> = (0..n).filter(|&v| g.in_degree(v) > 0).collect();
            connected.sort_by_key(|&v| g.in_degree(v));
            connected.get(connected.len() / 2).copied().unwrap_or(0)
        };
        eprintln!("[{}] running three methods...", ds.spec.name);

        let fmt_cells = match time(|| Fmt::build(Arc::clone(&g), FmtConfig::default_paper())) {
            (Ok(fmt), prep) => {
                let (_, sp) = time(|| std::hint::black_box(fmt.single_pair(qi, qj)));
                let (_, ss) = time(|| std::hint::black_box(fmt.single_source(qi)));
                MethodCells { prep: fmt_duration(prep), sp: fmt_duration(sp), ss: fmt_duration(ss) }
            }
            (Err(e), _) => {
                eprintln!("[{}] FMT: {e}", ds.spec.name);
                na()
            }
        };

        let lin_cells = match time(|| Lin::build(Arc::clone(&g), LinConfig::default_paper())) {
            (Ok(lin), prep) => {
                let (_, sp) = time(|| std::hint::black_box(lin.single_pair(qi, qj)));
                let (_, ss) = time(|| std::hint::black_box(lin.single_source(qi)));
                MethodCells { prep: fmt_duration(prep), sp: fmt_duration(sp), ss: fmt_duration(ss) }
            }
            (Err(e), spent) => {
                eprintln!("[{}] LIN: {e} (abandoned after {})", ds.spec.name, fmt_duration(spent));
                na()
            }
        };

        // CloudWalker runs locally here — the comparison isolates the
        // algorithms; the cluster models are compared in E4/E5/E8.
        let cw_cells = {
            let (built, prep) = time(|| CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Local));
            match built {
                Ok(cw) => {
                    let (_, sp) = time(|| std::hint::black_box(cw.single_pair(qi, qj)));
                    let (_, ss) = time(|| std::hint::black_box(cw.single_source(qi)));
                    MethodCells {
                        prep: fmt_duration(prep),
                        sp: fmt_duration(sp),
                        ss: fmt_duration(ss),
                    }
                }
                Err(e) => panic!("CloudWalker failed on {}: {e}", ds.spec.name),
            }
        };

        t.row(vec![
            ds.spec.paper_name.to_string(),
            fmt_cells.prep,
            fmt_cells.sp,
            fmt_cells.ss,
            lin_cells.prep,
            lin_cells.sp,
            lin_cells.ss,
            cw_cells.prep,
            cw_cells.sp,
            cw_cells.ss,
        ]);
    }
    t.print();
    println!(
        "\nShape check (paper): FMT only answers the smallest dataset; LIN has the\n\
         cheapest prep on tiny graphs but its prep explodes with size while its query\n\
         latency grows; CloudWalker's query latency stays near-constant throughout."
    );
    let _ = Duration::ZERO;
}
