//! E4 / E5 — the paper's per-dataset timing tables: preprocessing (`D`) and
//! online query (MCSP, MCSS) times, in the Broadcasting model (E4) or the
//! RDD model (E5).
//!
//! Usage: `table_prep_query [--mode broadcast|rdd|local]` (default
//! broadcast).
//!
//! Paper values (Broadcasting): wiki-vote 7s/0.004s/0.042s · wiki-talk
//! 59s/0.046s/0.179s · twitter-2010 975s/0.049s/0.281s · uk-union
//! 3323s/0.025s/0.292s · clue-web N/A (401 GB > 377 GB RAM).
//! Paper values (RDD): wiki-vote 50s/2.7s/2.9s · wiki-talk 620s/8.5s/13.9s
//! · twitter 8424s/11.8s/22.3s · uk-union 6.4h/13.1s/27.2s · clue-web
//! 110.2h/64.0s/188.1s.

use pasco_bench::{datasets, fmt_duration, table::Table, time, Scale};
use pasco_cluster::ClusterConfig;
use pasco_simrank::{CloudWalker, ExecMode, SimRankConfig, SimRankError};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mode_name = args
        .iter()
        .position(|a| a == "--mode")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("broadcast")
        .to_string();
    let scale = Scale::from_env();
    let cfg = SimRankConfig::default_paper().with_r_query(scale.r_query());
    println!("E4/E5: D + MCSP + MCSS per dataset — mode={mode_name}, PASCO_SCALE={scale:?}");
    println!("params: c={}, T={}, L={}, R={}, R'={}\n", cfg.c, cfg.t, cfg.l, cfg.r, cfg.r_query);

    let mut t =
        Table::new(&["Dataset", "D", "MCSP", "MCSS", "paper D", "paper MCSP", "paper MCSS"]);
    let paper: &[(&str, &str, &str)] = match mode_name.as_str() {
        "rdd" => &[
            ("50s", "2.7s", "2.9s"),
            ("620s", "8.5s", "13.9s"),
            ("8424s", "11.8s", "22.3s"),
            ("6.4h", "13.1s", "27.2s"),
            ("110.2h", "64.0s", "188.1s"),
        ],
        _ => &[
            ("7s", "0.004s", "0.042s"),
            ("59s", "0.046s", "0.179s"),
            ("975s", "0.049s", "0.281s"),
            ("3323s", "0.025s", "0.292s"),
            ("N/A", "N/A", "N/A"),
        ],
    };

    for (idx, ds) in datasets::load_first(scale.dataset_count()).into_iter().enumerate() {
        let g = ds.graph;
        let n = g.node_count();
        let mode = match mode_name.as_str() {
            "local" => ExecMode::Local,
            "rdd" => ExecMode::Rdd(ClusterConfig::paper_like()),
            _ => ExecMode::Broadcast(ClusterConfig::paper_like()),
        };
        let pv = paper.get(idx).copied().unwrap_or(("-", "-", "-"));
        eprintln!("[{}] building D ({} nodes)...", ds.spec.name, n);
        // Query nodes must be representative: many stand-in nodes are
        // dangling (in-degree 0) and their cohorts die instantly, so pick
        // the heaviest hub and a median-degree connected node.
        let qi = (0..n).max_by_key(|&v| g.in_degree(v)).unwrap_or(0);
        let qj = {
            let mut connected: Vec<u32> = (0..n).filter(|&v| g.in_degree(v) > 0).collect();
            connected.sort_by_key(|&v| g.in_degree(v));
            connected.get(connected.len() / 2).copied().unwrap_or(0)
        };
        match CloudWalker::build_with_stats(g, cfg, mode) {
            Ok((cw, stats)) => {
                let (_, sp) = time(|| {
                    for _ in 0..3 {
                        std::hint::black_box(cw.single_pair(qi, qj));
                    }
                });
                let (_, ss) = time(|| {
                    for _ in 0..3 {
                        std::hint::black_box(cw.single_source(qi));
                    }
                });
                t.row(vec![
                    ds.spec.paper_name.to_string(),
                    fmt_duration(stats.wall),
                    fmt_duration(sp / 3),
                    fmt_duration(ss / 3),
                    pv.0.into(),
                    pv.1.into(),
                    pv.2.into(),
                ]);
            }
            Err(SimRankError::Cluster(e)) => {
                eprintln!("[{}] {}", ds.spec.name, e);
                t.row(vec![
                    ds.spec.paper_name.to_string(),
                    "N/A".into(),
                    "N/A".into(),
                    "N/A".into(),
                    pv.0.into(),
                    pv.1.into(),
                    pv.2.into(),
                ]);
            }
            Err(e) => panic!("unexpected failure on {}: {e}", ds.spec.name),
        }
    }
    t.print();
    match mode_name.as_str() {
        "rdd" => println!(
            "\nShape check (paper): every dataset completes, but all columns are roughly an\n\
             order of magnitude slower than the Broadcasting table."
        ),
        _ => println!(
            "\nShape check (paper): query times stay near-constant as graphs grow, and the\n\
             largest dataset is N/A because the graph exceeds per-worker memory."
        ),
    }
}
