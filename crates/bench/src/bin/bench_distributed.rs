//! `BENCH_distributed.json` — the distributed substrate's latency
//! snapshot: offline build, MCSP, and sparse top-`k` at 1/2/4 real
//! loopback workers, against the in-process Sharded engine (same
//! partition plan, no wire) and Local (the reference). CI runs this and
//! archives the JSON so routing/serialisation regressions show up as
//! numbers, not vibes.
//!
//! ```text
//! cargo run --release -p pasco_bench --bin bench_distributed [out.json]
//! ```

use pasco_graph::generators;
use pasco_simrank::{CloudWalker, ExecMode, SimRankConfig};
use pasco_worker::{PascoWorker, WorkerConfig, WorkerHandle};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

const MCSP_QUERIES: u32 = 50;
const TOPK_QUERIES: u32 = 20;

struct Fleet {
    addrs: Vec<String>,
    handles: Vec<WorkerHandle>,
    joins: Vec<JoinHandle<()>>,
}

fn spawn_fleet(count: usize) -> Fleet {
    let mut fleet = Fleet { addrs: Vec::new(), handles: Vec::new(), joins: Vec::new() };
    for _ in 0..count {
        let worker = PascoWorker::bind("127.0.0.1:0", WorkerConfig::default()).unwrap();
        fleet.addrs.push(worker.local_addr().to_string());
        fleet.handles.push(worker.handle());
        fleet.joins.push(std::thread::spawn(move || worker.run().unwrap()));
    }
    fleet
}

impl Fleet {
    fn stop(self) {
        for handle in &self.handles {
            handle.shutdown();
        }
        for join in self.joins {
            let _ = join.join();
        }
    }
}

struct Snapshot {
    mode: String,
    workers: usize,
    build_ms: f64,
    mcsp_us: f64,
    topk_us: f64,
    wire_bytes: u64,
}

fn measure(g: &Arc<pasco_graph::CsrGraph>, cfg: SimRankConfig, mode: ExecMode) -> Snapshot {
    let (label, workers) = match &mode {
        ExecMode::Local => ("local".to_string(), 1),
        ExecMode::Sharded { shards } => ("sharded".to_string(), *shards as usize),
        ExecMode::Distributed { workers } => ("distributed".to_string(), workers.len()),
        other => (format!("{other:?}"), 1),
    };
    let t0 = Instant::now();
    let cw = CloudWalker::build(Arc::clone(g), cfg, mode).unwrap();
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    let n = g.node_count();
    let t0 = Instant::now();
    for q in 0..MCSP_QUERIES {
        std::hint::black_box(cw.single_pair(q * 37 % n, (q * 101 + 7) % n));
    }
    let mcsp_us = t0.elapsed().as_secs_f64() * 1e6 / f64::from(MCSP_QUERIES);

    let t0 = Instant::now();
    for q in 0..TOPK_QUERIES {
        std::hint::black_box(cw.single_source_topk(q * 53 % n, 10));
    }
    let topk_us = t0.elapsed().as_secs_f64() * 1e6 / f64::from(TOPK_QUERIES);

    let wire_bytes = cw.cluster_report().map_or(0, |r| r.shuffle_bytes);
    Snapshot { mode: label, workers, build_ms, mcsp_us, topk_us, wire_bytes }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_distributed.json".to_string());
    let g = Arc::new(generators::barabasi_albert(5_000, 8, 0xD157));
    let cfg = SimRankConfig::fast().with_r(32).with_r_query(1_000).with_seed(11);
    println!(
        "distributed bench: |V|={}, |E|={}, {} MCSP + {} top-k queries per mode",
        g.node_count(),
        g.edge_count(),
        MCSP_QUERIES,
        TOPK_QUERIES
    );

    let mut rows = Vec::new();
    rows.push(measure(&g, cfg, ExecMode::Local));
    rows.push(measure(&g, cfg, ExecMode::Sharded { shards: 4 }));
    for workers in [1usize, 2, 4] {
        let fleet = spawn_fleet(workers);
        rows.push(measure(&g, cfg, ExecMode::Distributed { workers: fleet.addrs.clone() }));
        fleet.stop();
    }

    // The engines must agree before the numbers mean anything.
    let reference = CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Local).unwrap();
    let fleet = spawn_fleet(2);
    let dist = CloudWalker::build(
        Arc::clone(&g),
        cfg,
        ExecMode::Distributed { workers: fleet.addrs.clone() },
    )
    .unwrap();
    assert_eq!(reference.diagonal(), dist.diagonal(), "engines diverged; bench void");
    assert_eq!(reference.single_source_topk(3, 10), dist.single_source_topk(3, 10));
    fleet.stop();

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"nodes\": {},\n  \"edges\": {},\n  \"mcsp_queries\": {MCSP_QUERIES},\n  \"topk_queries\": {TOPK_QUERIES},\n  \"rows\": [\n",
        g.node_count(),
        g.edge_count()
    ));
    for (idx, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"workers\": {}, \"build_ms\": {:.3}, \"mcsp_us\": {:.1}, \"topk_us\": {:.1}, \"wire_bytes\": {}}}{}\n",
            row.mode,
            row.workers,
            row.build_ms,
            row.mcsp_us,
            row.topk_us,
            row.wire_bytes,
            if idx + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).unwrap();

    println!(
        "{:<14} {:>7} {:>12} {:>10} {:>10} {:>12}",
        "mode", "workers", "build ms", "mcsp us", "topk us", "wire bytes"
    );
    for row in &rows {
        println!(
            "{:<14} {:>7} {:>12.2} {:>10.1} {:>10.1} {:>12}",
            row.mode, row.workers, row.build_ms, row.mcsp_us, row.topk_us, row.wire_bytes
        );
    }
    println!("wrote {out_path}");
}
