//! E7 — scalability: indexing time vs worker count and vs graph size.
//!
//! The paper's headline claim is scale (1 B nodes / 43 B edges on 10×16
//! cores). On a small host, real wall time saturates at the physical core
//! count, so this figure reports *both* real wall time and the virtual
//! cluster's estimated makespan (task times scheduled onto `workers ×
//! cores`; see `pasco_cluster::metrics`) — the latter shows the near-linear
//! scaling the paper claims.

use pasco_bench::{datasets, fmt_duration, table::Table, time};
use pasco_cluster::ClusterConfig;
use pasco_graph::generators::{self, RmatParams};
use pasco_simrank::{CloudWalker, ExecMode, SimRankConfig};
use std::sync::Arc;

fn main() {
    let cfg = SimRankConfig::default_paper();
    println!("E7: scalability (params: T={}, L={}, R={})\n", cfg.t, cfg.l, cfg.r);

    // (a) Speedup in workers on a fixed graph.
    let ds = datasets::load("wiki-talk-sim");
    println!("(a) indexing {} (|V|={}) vs virtual workers:\n", ds.spec.name, ds.graph.node_count());
    let mut t = Table::new(&["workers", "wall", "sim makespan", "sim speedup"]);
    let mut base_sim = None;
    for workers in [1usize, 2, 4, 8, 16] {
        let cluster = ClusterConfig::local(workers);
        let (built, wall) = time(|| {
            CloudWalker::build_with_stats(Arc::clone(&ds.graph), cfg, ExecMode::Broadcast(cluster))
                .unwrap()
        });
        let report = built.1.cluster.unwrap();
        let sim = report.total_sim;
        let base = *base_sim.get_or_insert(sim);
        t.row(vec![
            workers.to_string(),
            fmt_duration(wall),
            fmt_duration(sim),
            format!("{:.2}x", base.as_secs_f64() / sim.as_secs_f64().max(1e-12)),
        ]);
    }
    t.print();
    println!(
        "\nShape check: estimated makespan scales near-linearly in workers; real wall\n\
         time flattens at the host's physical cores (documented DESIGN.md §4/E7).\n"
    );

    // (b) Indexing time vs graph size at fixed average degree.
    println!("(b) indexing time vs |V| at fixed degree (R-MAT, deg ≈ 8):\n");
    let mut t = Table::new(&["|V|", "|E|", "D wall", "wall / node"]);
    for scale_exp in [13u32, 14, 15, 16, 17] {
        let n: u64 = 1 << scale_exp;
        let g = Arc::new(generators::rmat(
            scale_exp,
            n * 8,
            RmatParams::default(),
            0x5ca1e + scale_exp as u64,
        ));
        let (out, wall) =
            time(|| CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Local).unwrap());
        let per_node = wall.as_secs_f64() * 1e6 / g.node_count() as f64;
        t.row(vec![
            g.node_count().to_string(),
            g.edge_count().to_string(),
            fmt_duration(wall),
            format!("{per_node:.2}us"),
        ]);
        drop(out);
    }
    t.print();
    println!(
        "\nShape check: wall/node stays ~flat — indexing is O(n·T·R), the linear\n\
         scaling that lets the paper reach 10^9 nodes by adding machines."
    );
}
