//! E1 — the paper's datasets table, with the stand-ins next to the real
//! graphs they substitute (DESIGN.md §5).
//!
//! Paper values: wiki-vote 7.1K/103K/476.8KB · wiki-talk 2.4M/5M/45.6MB ·
//! twitter-2010 42M/1.5B/11.4GB · uk-union 131M/5.5B/48.3GB ·
//! clue-web 1B/42.6B/401.1GB.

use pasco_bench::{datasets, table::Table, Scale};
use pasco_graph::stats::{degree_stats, human_bytes, Direction};

fn main() {
    let scale = Scale::from_env();
    println!("E1: dataset stand-ins (PASCO_SCALE={scale:?})\n");
    let mut t = Table::new(&[
        "Dataset",
        "Paper |V|",
        "Paper |E|",
        "Paper size",
        "Ours |V|",
        "Ours |E|",
        "Ours size",
        "max in-deg",
        "dangling",
    ]);
    for ds in datasets::load_first(scale.dataset_count()) {
        let g = &ds.graph;
        let s = degree_stats(g, Direction::In);
        t.row(vec![
            ds.spec.paper_name.to_string(),
            fmt_count(ds.spec.paper_nodes),
            fmt_count(ds.spec.paper_edges),
            human_bytes(ds.spec.paper_bytes),
            fmt_count(g.node_count() as u64),
            fmt_count(g.edge_count()),
            human_bytes(g.memory_bytes()),
            s.max.to_string(),
            format!("{:.1}%", 100.0 * s.zeros as f64 / g.node_count() as f64),
        ]);
    }
    t.print();
    println!("\nShape check: sizes increase monotonically and degree skew is heavy-tailed,");
    println!("mirroring the paper's progression from wiki-vote to clue-web.");
}

fn fmt_count(x: u64) -> String {
    if x >= 1_000_000_000 {
        format!("{:.1}B", x as f64 / 1e9)
    } else if x >= 1_000_000 {
        format!("{:.1}M", x as f64 / 1e6)
    } else if x >= 1_000 {
        format!("{:.1}K", x as f64 / 1e3)
    } else {
        x.to_string()
    }
}
