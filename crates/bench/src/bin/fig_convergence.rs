//! E3 — the paper's effectiveness figure: "CloudWalker converges quickly".
//!
//! On the wiki-vote stand-in we sweep the Jacobi iteration count `L` and
//! report (a) the linear-system residual `‖Ax−1‖∞`, (b) the distance of the
//! iterate from the fully converged solution, (c) similarity error against
//! exact SimRank on the *highest-similarity* pairs (where the diagonal
//! actually matters), and (d) ranking quality (NDCG@20). The paper picks
//! `L = 3`; the figure's shape is a steep drop that flattens by the third
//! iteration. A second sweep varies the indexing walker count `R` to
//! separate sampling error from solver error.

use pasco_bench::{datasets, table::Table, time};
use pasco_graph::NodeId;
use pasco_graph::ReverseChainIndex;
use pasco_simrank::engine::local;
use pasco_simrank::exact::ExactSimRank;
use pasco_simrank::{metrics, queries, SimRankConfig};

fn main() {
    let ds = datasets::load("wiki-vote-sim");
    let g = &ds.graph;
    println!(
        "E3: convergence on {} (|V|={}, |E|={})\n",
        ds.spec.name,
        g.node_count(),
        g.edge_count()
    );

    let cfg = SimRankConfig::default_paper();
    let (exact, d_exact) = time(|| ExactSimRank::compute(g, cfg.c, 15));
    println!(
        "exact SimRank ground truth: {} iterations, {:.1}s\n",
        exact.iterations(),
        d_exact.as_secs_f64()
    );

    let rci = ReverseChainIndex::build(g);
    let sources: Vec<NodeId> = vec![1, 17, 101, 1001, 3000];
    // Evaluate on pairs that actually carry similarity mass: each source's
    // exact top-3 neighbours.
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
    for &s in &sources {
        for (j, _) in metrics::top_k(exact.row(s), 3, Some(s)) {
            pairs.push((s, j));
        }
    }

    // Fully converged reference solution for ‖x_L − x*‖∞.
    let (x_star, _) = local::solve_with_iterations(g, &cfg, 50);

    // Sweep L at the paper's R.
    let mut t =
        Table::new(&["L", "residual", "|x_L - x*|inf", "pair max-err", "SS mean-err", "NDCG@20"]);
    for l in 0..=6usize {
        let (diag, residuals) = local::solve_with_iterations(g, &cfg, l);
        let dist = metrics::max_abs_diff(diag.as_slice(), x_star.as_slice());
        let row = evaluate(g, &rci, &exact, diag.as_slice(), &cfg, &sources, &pairs);
        t.row(vec![
            l.to_string(),
            residuals.last().map(|r| format!("{r:.2e}")).unwrap_or_else(|| "-".into()),
            format!("{dist:.2e}"),
            format!("{:.2e}", row.0),
            format!("{:.2e}", row.1),
            format!("{:.4}", row.2),
        ]);
    }
    t.print();
    println!("\nPaper shape: the iterate and residual flatten by L = 3 (their default).\n");

    // Sweep R at L = 3, against the exact (MC-free) diagonal.
    let exact_diag = pasco_simrank::exact::exact_diagonal(g, cfg.c, cfg.t, 100);
    let mut t = Table::new(&["R", "|x - x_exact|inf", "pair max-err", "SS mean-err", "NDCG@20"]);
    for r in [10u32, 25, 50, 100, 200, 400] {
        let cfg_r = cfg.with_r(r);
        let out = local::build_diagonal(g, &cfg_r);
        let dist = metrics::max_abs_diff(out.diag.as_slice(), exact_diag.as_slice());
        let row = evaluate(g, &rci, &exact, out.diag.as_slice(), &cfg_r, &sources, &pairs);
        t.row(vec![
            r.to_string(),
            format!("{dist:.3}"),
            format!("{:.2e}", row.0),
            format!("{:.2e}", row.1),
            format!("{:.4}", row.2),
        ]);
    }
    t.print();
    println!("\nPaper shape: R = 100 suffices; returns diminish beyond it.");
}

/// (pair max error, single-source mean error, mean NDCG@20)
fn evaluate(
    g: &pasco_graph::CsrGraph,
    rci: &ReverseChainIndex,
    exact: &ExactSimRank,
    diag: &[f64],
    cfg: &SimRankConfig,
    sources: &[NodeId],
    pairs: &[(NodeId, NodeId)],
) -> (f64, f64, f64) {
    let mut pair_err = 0.0f64;
    for &(i, j) in pairs {
        let est = queries::single_pair(g, diag, cfg, i, j);
        pair_err = pair_err.max((est - exact.get(i, j)).abs());
    }
    let mut ss_err = 0.0;
    let mut ndcg = 0.0;
    for &s in sources {
        let est = queries::single_source(g, rci, diag, cfg, s);
        let truth = exact.row(s);
        ss_err += metrics::mean_abs_diff(&est, truth);
        let ranking: Vec<NodeId> =
            metrics::top_k(&est, 20, Some(s)).into_iter().map(|(i, _)| i).collect();
        ndcg += metrics::ndcg_at_k(truth, &ranking, 20, Some(s));
    }
    (pair_err, ss_err / sources.len() as f64, ndcg / sources.len() as f64)
}
