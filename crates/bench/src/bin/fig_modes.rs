//! E8 — "Broadcasting is more efficient, but RDD is more scalable".
//!
//! Quantifies the paper's two implementation models on one mid-size
//! dataset: wall time per phase, shuffle volume, and the per-worker memory
//! requirement that decides which graphs each model can even load.

use pasco_bench::{datasets, fmt_duration, table::Table, time};
use pasco_cluster::ClusterConfig;
use pasco_simrank::{CloudWalker, ExecMode, SimRankConfig};
use std::sync::Arc;

fn main() {
    let ds = datasets::load("wiki-talk-sim");
    let g = Arc::clone(&ds.graph);
    let cfg = SimRankConfig::default_paper().with_r_query(2_000);
    println!(
        "E8: broadcast vs RDD on {} (|V|={}, |E|={})\n",
        ds.spec.name,
        g.node_count(),
        g.edge_count()
    );

    let cluster = ClusterConfig::paper_like();
    let mut t = Table::new(&[
        "model",
        "D wall",
        "MCSP",
        "MCSS",
        "shuffled bytes",
        "shuffled records",
        "per-worker memory",
    ]);

    for mode_name in ["broadcast", "rdd"] {
        let mode = match mode_name {
            "rdd" => ExecMode::Rdd(cluster),
            _ => ExecMode::Broadcast(cluster),
        };
        let ((cw, stats), _) =
            time(|| CloudWalker::build_with_stats(Arc::clone(&g), cfg, mode).unwrap());
        let before = cw.cluster_report().unwrap();
        let (_, sp) = time(|| std::hint::black_box(cw.single_pair(11, 5000)));
        let (_, ss) = time(|| std::hint::black_box(cw.single_source(11)));
        let after = cw.cluster_report().unwrap();
        let mem = match mode_name {
            "rdd" => cw.max_partition_bytes().unwrap(),
            _ => g.memory_bytes(),
        };
        t.row(vec![
            mode_name.to_string(),
            fmt_duration(stats.wall),
            fmt_duration(sp),
            fmt_duration(ss),
            format!("{:.1}MB", after.shuffle_bytes as f64 / 1e6),
            after.shuffle_records.to_string(),
            format!("{:.1}MB", mem as f64 / 1e6),
        ]);
        let _ = before;
    }
    t.print();
    println!(
        "\nShape check (paper): the broadcast model is faster across the board and never\n\
         shuffles, but requires the whole graph per worker; the RDD model shuffles\n\
         heavily and is ~an order of magnitude slower, yet its per-worker footprint is\n\
         |G|/partitions — the model that reaches clue-web scale."
    );
}
