//! Aligned plain-text tables in the style of the paper's figures.

/// A simple column-aligned table printer.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row; must match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["Dataset", "D", "MCSP"]);
        t.row(vec!["wiki-vote".into(), "7s".into(), "0.004s".into()]);
        t.row(vec!["clue-web".into(), "110.2h".into(), "64.0s".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Dataset"));
        assert!(lines[2].contains("wiki-vote"));
        // Columns align: the "D" column (after "Dataset") starts at the
        // same offset in all rows.
        let off = lines[0].rfind("D ").unwrap();
        assert_eq!(&lines[2][off..off + 2], "7s");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        Table::new(&["a", "b"]).row(vec!["x".into()]);
    }
}
