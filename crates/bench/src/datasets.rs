//! Dataset loading with an on-disk cache.

use pasco_graph::datasets::{DatasetSpec, SPECS};
use pasco_graph::{io, CsrGraph};
use std::path::PathBuf;
use std::sync::Arc;

/// A generated (or cache-loaded) dataset stand-in.
pub struct LoadedDataset {
    /// The registry entry (paper sizes, seed).
    pub spec: &'static DatasetSpec,
    /// The stand-in graph.
    pub graph: Arc<CsrGraph>,
}

fn cache_dir() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    // Walk up to the workspace root if invoked from a crate directory.
    while !dir.join("Cargo.toml").exists() && dir.pop() {}
    dir.join("target").join("pasco-datasets")
}

/// Loads `name` (either registry name), generating and caching on first
/// use.
pub fn load(name: &str) -> LoadedDataset {
    let spec =
        pasco_graph::datasets::by_name(name).unwrap_or_else(|| panic!("unknown dataset {name}"));
    let dir = cache_dir();
    let path = dir.join(format!("{}.bin", spec.name));
    if path.exists() {
        if let Ok(graph) = io::read_binary(&path) {
            return LoadedDataset { spec, graph: Arc::new(graph) };
        }
        eprintln!("warning: cache for {} was unreadable; regenerating", spec.name);
    }
    let graph = spec.generate();
    if std::fs::create_dir_all(&dir).is_ok() {
        if let Err(e) = io::write_binary(&graph, &path) {
            eprintln!("warning: failed to cache {}: {e}", spec.name);
        }
    }
    LoadedDataset { spec, graph: Arc::new(graph) }
}

/// Loads the `count` smallest datasets in evaluation order.
pub fn load_first(count: usize) -> Vec<LoadedDataset> {
    SPECS.iter().take(count).map(|s| load(s.name)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_generates_and_caches() {
        let a = load("wiki-vote-sim");
        assert_eq!(a.graph.node_count(), 7_115);
        // Second load must come back identical (via cache or regeneration).
        let b = load("wiki-vote");
        assert_eq!(a.graph, b.graph);
    }
}
