//! Microbenchmarks: the simulated cluster's primitives — stage dispatch
//! overhead and shuffle throughput (the cost centre of RDD mode).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pasco_cluster::{Cluster, ClusterConfig, DistVec};
use std::hint::black_box;

fn bench_stage_overhead(c: &mut Criterion) {
    let cluster = Cluster::new(ClusterConfig::local(4));
    let mut group = c.benchmark_group("cluster/stage");
    group.bench_function("noop-8-tasks", |b| {
        b.iter(|| {
            black_box(cluster.run_stage("bench", vec![0u64; 8], |_, x| x + 1));
        });
    });
    group.finish();
}

fn bench_shuffle(c: &mut Criterion) {
    let cluster = Cluster::new(ClusterConfig::local(4));
    let mut group = c.benchmark_group("cluster/shuffle");
    group.sample_size(20);
    for &n in &[10_000usize, 100_000] {
        let items: Vec<(u64, u32, u32)> =
            (0..n).map(|i| (i as u64, i as u32, (i * 7) as u32)).collect();
        group.throughput(Throughput::Bytes((n * 16) as u64));
        group.bench_function(format!("walker-records-{n}"), |b| {
            b.iter(|| {
                let dv = DistVec::parallelize(items.clone(), 8);
                black_box(dv.shuffle(&cluster, "bench", 8, |&(_, _, pos)| (pos % 8) as usize).len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stage_overhead, bench_shuffle);
criterion_main!(benches);
