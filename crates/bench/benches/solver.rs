//! Microbenchmarks: the Jacobi sweep (offline phase's solve) and the exact
//! SimRank iteration (ground-truth generator).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pasco_graph::generators;
use pasco_mc::walks::WalkParams;
use pasco_simrank::ai::{ai_row, StoredRows};
use pasco_solver::jacobi::{self, JacobiConfig};
use std::hint::black_box;

fn bench_jacobi(c: &mut Criterion) {
    let g = generators::barabasi_albert(5_000, 6, 3);
    let params = WalkParams::new(10, 100);
    let rows: Vec<Vec<(u32, f64)>> = (0..g.node_count())
        .map(|i| ai_row(&pasco_mc::walks::reverse_walk_distributions(&g, i, params, 7), 0.6))
        .collect();
    let nnz: u64 = rows.iter().map(|r| r.len() as u64).sum();
    let rows = StoredRows::new(rows);
    let b_vec = vec![1.0; 5_000];
    let x0 = vec![0.4; 5_000];
    let mut group = c.benchmark_group("solver/jacobi");
    group.sample_size(20);
    group.throughput(Throughput::Elements(nnz * 3));
    group.bench_function("L3-n5000", |b| {
        b.iter(|| {
            black_box(jacobi::solve(
                &rows,
                &b_vec,
                &x0,
                &JacobiConfig { iterations: 3, tolerance: None, record_residuals: false },
            ))
        });
    });
    group.finish();
}

fn bench_exact_simrank(c: &mut Criterion) {
    let g = generators::barabasi_albert(400, 4, 9);
    let mut group = c.benchmark_group("solver/exact-simrank");
    group.sample_size(10);
    group.bench_function("n400-iter5", |b| {
        b.iter(|| black_box(pasco_simrank::exact::ExactSimRank::compute(&g, 0.6, 5)));
    });
    group.finish();
}

criterion_group!(benches, bench_jacobi, bench_exact_simrank);
criterion_main!(benches);
