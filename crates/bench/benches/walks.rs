//! Microbenchmarks: reverse-walk engine throughput (the kernel under both
//! offline indexing and every online query).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pasco_graph::generators;
use pasco_mc::walks::{reverse_walk_distributions, WalkParams};
use std::hint::black_box;

fn bench_cohorts(c: &mut Criterion) {
    let g = generators::barabasi_albert(10_000, 8, 42);
    let mut group = c.benchmark_group("walks/cohort");
    group.sample_size(20);
    for &walkers in &[100u32, 1_000, 10_000] {
        let params = WalkParams::new(10, walkers);
        group.throughput(Throughput::Elements(walkers as u64 * 10));
        group.bench_with_input(BenchmarkId::from_parameter(walkers), &params, |b, &params| {
            b.iter(|| black_box(reverse_walk_distributions(&g, 7, params, 1)));
        });
    }
    group.finish();
}

fn bench_all_nodes(c: &mut Criterion) {
    let g = generators::rmat(12, 32_768, generators::RmatParams::default(), 7);
    let mut group = c.benchmark_group("walks/index-phase");
    group.sample_size(10);
    group.throughput(Throughput::Elements(g.node_count() as u64 * 10 * 10));
    group.bench_function("4096-nodes-R10-T10", |b| {
        let params = WalkParams::new(10, 10);
        b.iter(|| {
            black_box(pasco_mc::parallel::map_all_nodes(&g, params, 3, |_, d| d.counts.len()))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_cohorts, bench_all_nodes);
criterion_main!(benches);
