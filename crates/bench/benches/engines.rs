//! Engine-substrate comparison: offline build time and online query
//! latency/QPS for the Local engine vs the Sharded engine at several shard
//! counts — the datapoint behind the sharded-substrate PR. Results are
//! bit-identical across the swept engines, so every bar measures the same
//! work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pasco_graph::generators;
use pasco_simrank::{CloudWalker, ExecMode, SimRankConfig};
use std::hint::black_box;
use std::sync::Arc;

fn modes() -> Vec<(&'static str, ExecMode)> {
    vec![
        ("local", ExecMode::Local),
        ("sharded-1", ExecMode::Sharded { shards: 1 }),
        ("sharded-4", ExecMode::Sharded { shards: 4 }),
        ("sharded-8", ExecMode::Sharded { shards: 8 }),
    ]
}

fn bench_engines(c: &mut Criterion) {
    let g = Arc::new(generators::barabasi_albert(20_000, 10, 0xE17));
    let cfg = SimRankConfig::fast().with_r(16).with_r_query(1_000);

    // Offline build time per substrate.
    let mut group = c.benchmark_group("engines/build");
    group.sample_size(10);
    for (label, mode) in modes() {
        group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, mode| {
            b.iter(|| black_box(CloudWalker::build(Arc::clone(&g), cfg, mode.clone()).unwrap()));
        });
    }
    group.finish();

    // Online QPS: per-query latency of MCSP and sparse top-k on each
    // substrate (same seed, bit-identical answers).
    let engines: Vec<(&'static str, CloudWalker)> = modes()
        .into_iter()
        .map(|(label, mode)| (label, CloudWalker::build(Arc::clone(&g), cfg, mode).unwrap()))
        .collect();
    let mut group = c.benchmark_group("engines/mcsp");
    group.sample_size(20);
    for (label, cw) in &engines {
        group.bench_with_input(BenchmarkId::from_parameter(label), cw, |b, cw| {
            b.iter(|| black_box(cw.single_pair(17, 9_001)));
        });
    }
    group.finish();
    let mut group = c.benchmark_group("engines/topk");
    group.sample_size(20);
    for (label, cw) in &engines {
        group.bench_with_input(BenchmarkId::from_parameter(label), cw, |b, cw| {
            b.iter(|| black_box(cw.single_source_topk(17, 10)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
