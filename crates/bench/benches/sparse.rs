//! Microbenchmarks: sparse accumulation (A4 ablation — the open-addressing
//! count map against the standard library's hash map) and sparse-vector
//! kernels.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pasco_mc::counts::CountMap;
use pasco_solver::SparseVec;
use std::collections::HashMap;
use std::hint::black_box;

fn keys(n: usize) -> Vec<u32> {
    // Pseudorandom node ids with repetitions, like walker positions.
    let mut state = 0x2545f4914f6cdd1du64;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 5_000) as u32
        })
        .collect()
}

fn bench_count_maps(c: &mut Criterion) {
    let ks = keys(10_000);
    let mut group = c.benchmark_group("sparse/accumulate-10k");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("open-addressing", |b| {
        b.iter(|| {
            let mut m = CountMap::with_capacity(1_000);
            for &k in &ks {
                m.add(k, 1);
            }
            black_box(m.len())
        });
    });
    group.bench_function("std-hashmap", |b| {
        b.iter(|| {
            let mut m: HashMap<u32, u64> = HashMap::with_capacity(1_000);
            for &k in &ks {
                *m.entry(k).or_insert(0) += 1;
            }
            black_box(m.len())
        });
    });
    group.finish();
}

fn bench_sparse_vec(c: &mut Criterion) {
    let a = SparseVec::from_unsorted(keys(2_000).into_iter().map(|k| (k, 0.5)).collect());
    let b_vec = SparseVec::from_unsorted(keys(2_000).into_iter().map(|k| (k + 1, 0.25)).collect());
    let weights = vec![1.0; 6_000];
    let mut group = c.benchmark_group("sparse/vec");
    group.bench_function("dot_sparse", |bch| {
        bch.iter(|| black_box(a.dot_sparse(&b_vec)));
    });
    group.bench_function("dot_sparse_weighted", |bch| {
        bch.iter(|| black_box(a.dot_sparse_weighted(&b_vec, &weights)));
    });
    group.bench_function("add_scaled", |bch| {
        bch.iter(|| black_box(a.add_scaled(&b_vec, 0.6)));
    });
    group.finish();
}

criterion_group!(benches, bench_count_maps, bench_sparse_vec);
criterion_main!(benches);
