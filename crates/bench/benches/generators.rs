//! Microbenchmarks: synthetic graph generation (dataset stand-ins) and CSR
//! assembly.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pasco_graph::{generators, GraphBuilder, ReverseChainIndex};
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("erdos-renyi-100k-edges", |b| {
        b.iter(|| black_box(generators::erdos_renyi(20_000, 100_000, 1)));
    });
    group.bench_function("barabasi-albert-100k-edges", |b| {
        b.iter(|| black_box(generators::barabasi_albert(25_000, 4, 1)));
    });
    group.bench_function("rmat-100k-edges", |b| {
        b.iter(|| black_box(generators::rmat(15, 100_000, generators::RmatParams::default(), 1)));
    });
    group.finish();
}

fn bench_csr_build(c: &mut Criterion) {
    let g = generators::rmat(15, 200_000, generators::RmatParams::default(), 2);
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let mut group = c.benchmark_group("graph");
    group.sample_size(10);
    group.throughput(Throughput::Elements(edges.len() as u64));
    group.bench_function("csr-build-200k", |b| {
        b.iter(|| {
            let mut builder = GraphBuilder::with_capacity(g.node_count(), edges.len());
            for &(u, v) in &edges {
                builder.add_edge(u, v);
            }
            black_box(builder.build())
        });
    });
    group.bench_function("reverse-chain-index", |b| {
        b.iter(|| black_box(ReverseChainIndex::build(&g)));
    });
    group.finish();
}

criterion_group!(benches, bench_generators, bench_csr_build);
criterion_main!(benches);
