//! Microbenchmarks: online query latency (MCSP, MCSS, MCSS-push) — the
//! "instant response" half of the paper's headline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pasco_graph::{generators, ReverseChainIndex};
use pasco_simrank::engine::local;
use pasco_simrank::{queries, SimRankConfig};
use std::hint::black_box;

fn bench_queries(c: &mut Criterion) {
    let g = generators::barabasi_albert(7_115, 15, 0xB0A710AD);
    let cfg = SimRankConfig::default_paper().with_r_query(2_000);
    let out = local::build_diagonal(&g, &cfg);
    let diag = out.diag.as_slice();
    let rci = ReverseChainIndex::build(&g);

    let mut group = c.benchmark_group("queries");
    group.sample_size(20);
    group.bench_function("mcsp", |b| {
        b.iter(|| black_box(queries::single_pair(&g, diag, &cfg, 17, 3_000)));
    });
    group.bench_function("mcss-walks", |b| {
        b.iter(|| black_box(queries::single_source(&g, &rci, diag, &cfg, 17)));
    });
    group.bench_function("mcss-push", |b| {
        b.iter(|| black_box(queries::single_source_push(&g, diag, &cfg, 17)));
    });
    group.finish();

    // MCSP latency must stay flat as the graph grows (constant-time claim).
    let mut group = c.benchmark_group("queries/mcsp-vs-n");
    group.sample_size(20);
    for scale in [12u32, 14, 16] {
        let g = generators::rmat(scale, (1u64 << scale) * 8, generators::RmatParams::default(), 5);
        let out = local::build_diagonal(&g, &cfg.with_r(20));
        let diag = out.diag.as_slice().to_vec();
        group.bench_with_input(BenchmarkId::from_parameter(1u64 << scale), &g, |b, g| {
            b.iter(|| black_box(queries::single_pair(g, &diag, &cfg, 3, 999)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
