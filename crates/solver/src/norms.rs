//! Vector norms and error summaries shared by solvers and experiments.

/// `‖a − b‖∞`.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

/// Mean absolute difference `‖a − b‖₁ / n`.
pub fn mean_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 0.0;
    }
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
}

/// Euclidean norm.
pub fn l2(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Root-mean-square error between two vectors.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 0.0;
    }
    (a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_on_known_vectors() {
        let a = [1.0, 2.0, 2.0];
        let b = [1.0, 0.0, 0.0];
        assert_eq!(max_abs_diff(&a, &b), 2.0);
        assert!((mean_abs_diff(&a, &b) - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(l2(&a), 3.0);
        assert!((rmse(&a, &b) - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_vectors_are_zero_error() {
        assert_eq!(mean_abs_diff(&[], &[]), 0.0);
        assert_eq!(rmse(&[], &[]), 0.0);
    }
}
