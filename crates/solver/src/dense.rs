//! Small dense matrices for the exact-SimRank ground truth.
//!
//! Exact SimRank materialises `S ∈ ℝ^{n×n}` — only viable on the smallest
//! dataset, which is precisely how the paper uses it (effectiveness is
//! evaluated on wiki-vote). Row-major storage; row-parallel helpers.

use rayon::prelude::*;

/// Row-major dense `rows × cols` matrix of `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity (square).
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Parallel iterator over `(row_index, row_slice)` pairs for in-place
    /// row-wise computation.
    pub fn par_rows_mut(&mut self) -> impl IndexedParallelIterator<Item = (usize, &mut [f64])> {
        self.data.par_chunks_mut(self.cols).enumerate()
    }

    /// Sets every diagonal element to `v` (square matrices).
    pub fn fill_diagonal(&mut self, v: f64) {
        assert_eq!(self.rows, self.cols, "diagonal of non-square matrix");
        for i in 0..self.rows {
            self.set(i, i, v);
        }
    }

    /// `max_{r,c} |self − other|` — the convergence metric between SimRank
    /// iterates.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .par_iter()
            .zip(other.data.par_iter())
            .map(|(a, b)| (a - b).abs())
            .reduce(|| 0.0, f64::max)
    }

    /// Largest absolute asymmetry `max |A[i][j] − A[j][i]|`; exact SimRank
    /// matrices must be symmetric, and the property tests check it here.
    pub fn max_asymmetry(&self) -> f64 {
        assert_eq!(self.rows, self.cols);
        let mut worst = 0.0f64;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self.get(i, j) - self.get(j, i)).abs());
            }
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_accessors() {
        let mut m = Matrix::identity(3);
        assert_eq!(m.get(1, 1), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
        m.set(0, 2, 5.0);
        assert_eq!(m.row(0), &[1.0, 0.0, 5.0]);
    }

    #[test]
    fn fill_diagonal_overwrites() {
        let mut m = Matrix::zeros(2, 2);
        m.set(0, 0, 9.0);
        m.fill_diagonal(1.0);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 1), 1.0);
    }

    #[test]
    fn diff_and_asymmetry() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 2);
        a.set(0, 1, 0.25);
        assert_eq!(a.max_abs_diff(&b), 0.25);
        assert_eq!(a.max_asymmetry(), 0.25);
        a.set(1, 0, 0.25);
        assert_eq!(a.max_asymmetry(), 0.0);
    }

    #[test]
    fn par_rows_mut_visits_every_row_once() {
        let mut m = Matrix::zeros(4, 3);
        m.par_rows_mut().for_each(|(r, row)| {
            for v in row.iter_mut() {
                *v = r as f64;
            }
        });
        for r in 0..4 {
            assert!(m.row(r).iter().all(|&v| v == r as f64));
        }
    }
}
