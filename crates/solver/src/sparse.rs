//! Sorted sparse vectors.

/// A sparse vector over `u32` indices: entries sorted by index, indices
/// unique, values finite. The invariants are established at construction
/// and relied upon by the merge-based operations.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SparseVec {
    entries: Vec<(u32, f64)>,
}

impl SparseVec {
    /// An empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from entries that are already sorted by index and unique.
    ///
    /// # Panics
    /// In debug builds, panics if the invariant does not hold.
    pub fn from_sorted(entries: Vec<(u32, f64)>) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "entries must be sorted and unique"
        );
        debug_assert!(entries.iter().all(|&(_, v)| v.is_finite()));
        Self { entries }
    }

    /// Builds from arbitrary entries: sorts and merges duplicate indices by
    /// summation.
    pub fn from_unsorted(mut entries: Vec<(u32, f64)>) -> Self {
        entries.sort_unstable_by_key(|&(i, _)| i);
        let mut out: Vec<(u32, f64)> = Vec::with_capacity(entries.len());
        for (i, v) in entries {
            match out.last_mut() {
                Some(last) if last.0 == i => last.1 += v,
                _ => out.push((i, v)),
            }
        }
        Self { entries: out }
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The sorted entry slice.
    pub fn entries(&self) -> &[(u32, f64)] {
        &self.entries
    }

    /// Value at `idx` (0 if absent); binary search.
    pub fn get(&self, idx: u32) -> f64 {
        match self.entries.binary_search_by_key(&idx, |&(i, _)| i) {
            Ok(p) => self.entries[p].1,
            Err(_) => 0.0,
        }
    }

    /// Dot product with a dense vector.
    pub fn dot_dense(&self, dense: &[f64]) -> f64 {
        self.entries.iter().map(|&(i, v)| v * dense[i as usize]).sum()
    }

    /// Dot product with another sparse vector (sorted merge).
    pub fn dot_sparse(&self, other: &SparseVec) -> f64 {
        let (mut a, mut b) = (self.entries.iter().peekable(), other.entries.iter().peekable());
        let mut acc = 0.0;
        while let (Some(&&(ia, va)), Some(&&(ib, vb))) = (a.peek(), b.peek()) {
            match ia.cmp(&ib) {
                std::cmp::Ordering::Less => {
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    b.next();
                }
                std::cmp::Ordering::Equal => {
                    acc += va * vb;
                    a.next();
                    b.next();
                }
            }
        }
        acc
    }

    /// Triple product `Σ_k self_k · other_k · weight_k` with a dense weight
    /// vector — the `ûᵀ D v̂` kernel of MCSP.
    pub fn dot_sparse_weighted(&self, other: &SparseVec, weights: &[f64]) -> f64 {
        let (mut a, mut b) = (self.entries.iter().peekable(), other.entries.iter().peekable());
        let mut acc = 0.0;
        while let (Some(&&(ia, va)), Some(&&(ib, vb))) = (a.peek(), b.peek()) {
            match ia.cmp(&ib) {
                std::cmp::Ordering::Less => {
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    b.next();
                }
                std::cmp::Ordering::Equal => {
                    acc += va * vb * weights[ia as usize];
                    a.next();
                    b.next();
                }
            }
        }
        acc
    }

    /// `self + scale · other`, returned as a new vector (sorted merge).
    pub fn add_scaled(&self, other: &SparseVec, scale: f64) -> SparseVec {
        let mut out = Vec::with_capacity(self.nnz() + other.nnz());
        let (mut a, mut b) = (self.entries.iter().peekable(), other.entries.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, va)), Some(&&(ib, vb))) => match ia.cmp(&ib) {
                    std::cmp::Ordering::Less => {
                        out.push((ia, va));
                        a.next();
                    }
                    std::cmp::Ordering::Greater => {
                        out.push((ib, scale * vb));
                        b.next();
                    }
                    std::cmp::Ordering::Equal => {
                        out.push((ia, va + scale * vb));
                        a.next();
                        b.next();
                    }
                },
                (Some(&&(ia, va)), None) => {
                    out.push((ia, va));
                    a.next();
                }
                (None, Some(&&(ib, vb))) => {
                    out.push((ib, scale * vb));
                    b.next();
                }
                (None, None) => break,
            }
        }
        SparseVec { entries: out }
    }

    /// Multiplies every value by `scale` in place.
    pub fn scale(&mut self, scale: f64) {
        for e in &mut self.entries {
            e.1 *= scale;
        }
    }

    /// Sum of values.
    pub fn sum(&self) -> f64 {
        self.entries.iter().map(|&(_, v)| v).sum()
    }

    /// Materialises into a dense vector of length `n`.
    pub fn to_dense(&self, n: usize) -> Vec<f64> {
        let mut out = vec![0.0; n];
        for &(i, v) in &self.entries {
            out[i as usize] = v;
        }
        out
    }

    /// Drops entries with `|value| < eps` in place; returns entries removed.
    /// Keeps the online frontier of sparse pushes from filling up with dust.
    pub fn prune(&mut self, eps: f64) -> usize {
        let before = self.entries.len();
        self.entries.retain(|&(_, v)| v.abs() >= eps);
        before - self.entries.len()
    }
}

impl From<Vec<(u32, f64)>> for SparseVec {
    /// Accepts arbitrary order (sorts and merges duplicates).
    fn from(entries: Vec<(u32, f64)>) -> Self {
        SparseVec::from_unsorted(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(entries: &[(u32, f64)]) -> SparseVec {
        SparseVec::from_unsorted(entries.to_vec())
    }

    #[test]
    fn from_unsorted_sorts_and_merges() {
        let v = sv(&[(5, 1.0), (1, 2.0), (5, 3.0)]);
        assert_eq!(v.entries(), &[(1, 2.0), (5, 4.0)]);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn get_and_sum() {
        let v = sv(&[(2, 0.5), (7, 1.5)]);
        assert_eq!(v.get(2), 0.5);
        assert_eq!(v.get(3), 0.0);
        assert!((v.sum() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dot_products_agree() {
        let a = sv(&[(0, 1.0), (2, 2.0), (5, 3.0)]);
        let b = sv(&[(2, 4.0), (3, 9.0), (5, 0.5)]);
        let dense_b = b.to_dense(6);
        assert!((a.dot_sparse(&b) - (2.0 * 4.0 + 3.0 * 0.5)).abs() < 1e-12);
        assert!((a.dot_dense(&dense_b) - a.dot_sparse(&b)).abs() < 1e-12);
    }

    #[test]
    fn weighted_dot_matches_manual() {
        let a = sv(&[(1, 2.0), (3, 1.0)]);
        let b = sv(&[(1, 0.5), (2, 9.0), (3, 2.0)]);
        let w = vec![0.0, 10.0, 0.0, 100.0];
        assert!(
            (a.dot_sparse_weighted(&b, &w) - (2.0 * 0.5 * 10.0 + 1.0 * 2.0 * 100.0)).abs() < 1e-12
        );
    }

    #[test]
    fn add_scaled_merges_all_cases() {
        let a = sv(&[(0, 1.0), (2, 1.0)]);
        let b = sv(&[(1, 1.0), (2, 2.0), (4, 4.0)]);
        let c = a.add_scaled(&b, 0.5);
        assert_eq!(c.entries(), &[(0, 1.0), (1, 0.5), (2, 2.0), (4, 2.0)]);
    }

    #[test]
    fn prune_drops_dust() {
        let mut v = sv(&[(0, 1e-12), (1, 0.5), (2, -1e-9)]);
        let removed = v.prune(1e-10);
        assert_eq!(removed, 1);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.get(0), 0.0);
        assert_eq!(v.get(2), -1e-9);
    }

    #[test]
    fn scale_in_place() {
        let mut v = sv(&[(3, 2.0)]);
        v.scale(-0.25);
        assert_eq!(v.get(3), -0.5);
    }
}
