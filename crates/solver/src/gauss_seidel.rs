//! Sequential Gauss–Seidel sweeps — the solver used by the LIN baseline.
//!
//! Gauss–Seidel consumes updates within the same sweep, so it usually needs
//! fewer sweeps than Jacobi but cannot be parallelised across rows — part of
//! why the paper's CloudWalker (parallel Jacobi) scales past LIN.

use crate::jacobi::{residual_inf, RowSource};

/// Gauss–Seidel knobs; same semantics as [`crate::JacobiConfig`].
#[derive(Clone, Copy, Debug)]
pub struct GaussSeidelConfig {
    /// Maximum number of sweeps.
    pub iterations: usize,
    /// Early-stop tolerance on `‖Ax − b‖∞`, checked after each sweep.
    pub tolerance: Option<f64>,
}

impl Default for GaussSeidelConfig {
    fn default() -> Self {
        Self { iterations: 20, tolerance: Some(1e-10) }
    }
}

/// Outcome of a Gauss–Seidel solve.
#[derive(Clone, Debug)]
pub struct GaussSeidelResult {
    /// The final iterate.
    pub x: Vec<f64>,
    /// Sweeps actually performed.
    pub iterations: usize,
    /// Final `‖Ax − b‖∞` (always computed once at the end).
    pub residual: f64,
}

/// Runs Gauss–Seidel on `A x = b` from `x0`.
///
/// # Panics
/// Panics on dimension mismatch or a zero diagonal entry.
pub fn solve(
    rows: &impl RowSource,
    b: &[f64],
    x0: &[f64],
    cfg: &GaussSeidelConfig,
) -> GaussSeidelResult {
    let n = rows.dim();
    assert_eq!(b.len(), n, "rhs length");
    assert_eq!(x0.len(), n, "initial guess length");
    let mut x = x0.to_vec();
    let mut row_buf: Vec<(u32, f64)> = Vec::new();
    let mut done = 0;
    for _ in 0..cfg.iterations {
        for i in 0..n as u32 {
            rows.row(i, &mut row_buf);
            let mut off = 0.0;
            let mut diag = 0.0;
            for &(j, a) in &row_buf {
                if j == i {
                    diag = a;
                } else {
                    off += a * x[j as usize];
                }
            }
            assert!(diag != 0.0, "zero diagonal at row {i}");
            x[i as usize] = (b[i as usize] - off) / diag;
        }
        done += 1;
        if let Some(tol) = cfg.tolerance {
            if residual_inf(rows, b, &x) < tol {
                break;
            }
        }
    }
    let residual = residual_inf(rows, b, &x);
    GaussSeidelResult { x, iterations: done, residual }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::DenseRows;

    #[test]
    fn converges_faster_than_jacobi_on_dominant_system() {
        let rows = DenseRows::new(vec![
            vec![(0, 4.0), (1, 1.0)],
            vec![(0, 1.0), (1, 5.0), (2, 2.0)],
            vec![(1, 2.0), (2, 6.0)],
        ]);
        let b = [3.0, 0.0, 10.0];
        let gs = solve(
            &rows,
            &b,
            &[0.0; 3],
            &GaussSeidelConfig { iterations: 100, tolerance: Some(1e-12) },
        );
        let jc = crate::jacobi::solve(
            &rows,
            &b,
            &[0.0; 3],
            &crate::JacobiConfig {
                iterations: 100,
                tolerance: Some(1e-12),
                record_residuals: false,
            },
        );
        assert!(gs.residual < 1e-12);
        assert!(
            gs.iterations <= jc.iterations,
            "GS {} sweeps vs Jacobi {}",
            gs.iterations,
            jc.iterations
        );
        for (a, e) in gs.x.iter().zip([1.0, -1.0, 2.0]) {
            assert!((a - e).abs() < 1e-9);
        }
    }

    #[test]
    fn respects_iteration_cap() {
        let rows = DenseRows::new(vec![vec![(0, 2.0), (1, 1.0)], vec![(0, 1.0), (1, 2.0)]]);
        let res = solve(
            &rows,
            &[1.0, 1.0],
            &[0.0, 0.0],
            &GaussSeidelConfig { iterations: 2, tolerance: None },
        );
        assert_eq!(res.iterations, 2);
    }
}
