//! Parallel Jacobi iteration over an implicit row-sparse system.
//!
//! CloudWalker solves `A x = 1` where row `aᵢ` has at most `T·R + 1`
//! non-zeros and is produced by Monte-Carlo simulation. `A` is strongly
//! diagonally dominant in practice (`aᵢᵢ ≥ 1` because all `R` walkers sit on
//! `i` at step 0, while off-diagonal mass is damped by `cᵗ` and split across
//! nodes), which is exactly the regime where Jacobi converges in a handful
//! of iterations — the paper uses `L = 3`.
//!
//! The update `xᵢ ← (bᵢ − Σ_{j≠i} aᵢⱼ xⱼ) / aᵢᵢ` reads only the previous
//! iterate, so all rows update in parallel — the "Update x In Parallel" box
//! on the paper's poster.

use rayon::prelude::*;

/// Produces rows of the implicit system. Implementations either replay
/// stored sparse rows or regenerate them from seeded walks.
pub trait RowSource: Sync {
    /// Dimension `n` of the square system.
    fn dim(&self) -> usize;

    /// Writes row `i` into `row` (cleared first), sorted by column index,
    /// including the diagonal entry.
    fn row(&self, i: u32, row: &mut Vec<(u32, f64)>);
}

/// A [`RowSource`] over fully materialised rows; the `Store` strategy and
/// the workhorse for tests.
#[derive(Clone, Debug)]
pub struct DenseRows {
    rows: Vec<Vec<(u32, f64)>>,
}

impl DenseRows {
    /// Wraps materialised rows (each sorted by column).
    pub fn new(rows: Vec<Vec<(u32, f64)>>) -> Self {
        debug_assert!(rows.iter().all(|r| r.windows(2).all(|w| w[0].0 < w[1].0)));
        Self { rows }
    }
}

impl RowSource for DenseRows {
    fn dim(&self) -> usize {
        self.rows.len()
    }

    fn row(&self, i: u32, row: &mut Vec<(u32, f64)>) {
        row.clear();
        row.extend_from_slice(&self.rows[i as usize]);
    }
}

/// Jacobi solver knobs.
#[derive(Clone, Copy, Debug)]
pub struct JacobiConfig {
    /// Number of sweeps `L`. The paper's default is 3.
    pub iterations: usize,
    /// If set, computes `‖Ax − b‖∞` after every sweep (one extra pass per
    /// sweep) and stops early once below the tolerance.
    pub tolerance: Option<f64>,
    /// Record the residual after each sweep even without a tolerance —
    /// feeds the convergence figure (E3).
    pub record_residuals: bool,
}

impl Default for JacobiConfig {
    fn default() -> Self {
        Self { iterations: 3, tolerance: None, record_residuals: false }
    }
}

/// Outcome of a Jacobi solve.
#[derive(Clone, Debug)]
pub struct JacobiResult {
    /// The final iterate.
    pub x: Vec<f64>,
    /// Sweeps actually performed.
    pub iterations: usize,
    /// `‖Ax − b‖∞` after each sweep, when requested.
    pub residuals: Vec<f64>,
}

/// Runs Jacobi on `A x = b` from initial guess `x0`.
///
/// # Panics
/// Panics if `b` or `x0` disagree with `rows.dim()`, or if a diagonal entry
/// is zero (the system is then not Jacobi-solvable; CloudWalker's rows
/// always carry `aᵢᵢ ≥ 1`).
pub fn solve(rows: &impl RowSource, b: &[f64], x0: &[f64], cfg: &JacobiConfig) -> JacobiResult {
    let n = rows.dim();
    assert_eq!(b.len(), n, "rhs length");
    assert_eq!(x0.len(), n, "initial guess length");
    let mut x = x0.to_vec();
    let mut residuals = Vec::new();
    let mut done = 0;
    for _ in 0..cfg.iterations {
        let next: Vec<f64> = (0..n as u32)
            .into_par_iter()
            .map_init(Vec::new, |row_buf, i| {
                rows.row(i, row_buf);
                let mut off = 0.0;
                let mut diag = 0.0;
                for &(j, a) in row_buf.iter() {
                    if j == i {
                        diag = a;
                    } else {
                        off += a * x[j as usize];
                    }
                }
                assert!(diag != 0.0, "zero diagonal at row {i}");
                (b[i as usize] - off) / diag
            })
            .collect();
        x = next;
        done += 1;
        if cfg.tolerance.is_some() || cfg.record_residuals {
            let r = residual_inf(rows, b, &x);
            residuals.push(r);
            if let Some(tol) = cfg.tolerance {
                if r < tol {
                    break;
                }
            }
        }
    }
    JacobiResult { x, iterations: done, residuals }
}

/// `‖Ax − b‖∞`, computed in parallel.
pub fn residual_inf(rows: &impl RowSource, b: &[f64], x: &[f64]) -> f64 {
    let n = rows.dim();
    (0..n as u32)
        .into_par_iter()
        .map_init(Vec::new, |row_buf, i| {
            rows.row(i, row_buf);
            let ax: f64 = row_buf.iter().map(|&(j, a)| a * x[j as usize]).sum();
            (ax - b[i as usize]).abs()
        })
        .reduce(|| 0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag_dominant_system() -> (DenseRows, Vec<f64>, Vec<f64>) {
        // A = [[4,1,0],[1,5,2],[0,2,6]], x* = [1, -1, 2]
        // b = A x* = [4-1, 1-5+4, -2+12] = [3, 0, 10]
        let rows = DenseRows::new(vec![
            vec![(0, 4.0), (1, 1.0)],
            vec![(0, 1.0), (1, 5.0), (2, 2.0)],
            vec![(1, 2.0), (2, 6.0)],
        ]);
        (rows, vec![3.0, 0.0, 10.0], vec![1.0, -1.0, 2.0])
    }

    #[test]
    fn converges_on_diagonally_dominant_system() {
        let (rows, b, x_star) = diag_dominant_system();
        let cfg = JacobiConfig { iterations: 60, tolerance: Some(1e-12), record_residuals: true };
        let res = solve(&rows, &b, &[0.0; 3], &cfg);
        for (xi, ti) in res.x.iter().zip(&x_star) {
            assert!((xi - ti).abs() < 1e-9, "{:?}", res.x);
        }
        assert!(res.iterations < 60, "early stop expected, took {}", res.iterations);
        // Residuals decrease monotonically for this system.
        for w in res.residuals.windows(2) {
            assert!(w[1] <= w[0] + 1e-15);
        }
    }

    #[test]
    fn identity_system_solves_in_one_sweep() {
        let rows = DenseRows::new(vec![vec![(0, 1.0)], vec![(1, 1.0)], vec![(2, 1.0)]]);
        let res = solve(
            &rows,
            &[5.0, -2.0, 0.5],
            &[0.0, 0.0, 0.0],
            &JacobiConfig { iterations: 1, ..Default::default() },
        );
        assert_eq!(res.x, vec![5.0, -2.0, 0.5]);
        assert_eq!(res.iterations, 1);
    }

    #[test]
    fn zero_iterations_returns_initial_guess() {
        let (rows, b, _) = diag_dominant_system();
        let res = solve(
            &rows,
            &b,
            &[9.0, 9.0, 9.0],
            &JacobiConfig { iterations: 0, ..Default::default() },
        );
        assert_eq!(res.x, vec![9.0, 9.0, 9.0]);
    }

    #[test]
    fn residual_measures_exact_solution_as_zero() {
        let (rows, b, x_star) = diag_dominant_system();
        assert!(residual_inf(&rows, &b, &x_star) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero diagonal")]
    fn zero_diagonal_panics() {
        let rows = DenseRows::new(vec![vec![(1, 1.0)], vec![(0, 1.0), (1, 1.0)]]);
        solve(&rows, &[1.0, 1.0], &[0.0, 0.0], &JacobiConfig::default());
    }

    #[test]
    fn parallel_and_reference_sequential_agree() {
        // Cross-check one sweep against a hand-rolled sequential update.
        let (rows, b, _) = diag_dominant_system();
        let x0 = vec![0.3, -0.7, 1.1];
        let res = solve(&rows, &b, &x0, &JacobiConfig { iterations: 1, ..Default::default() });
        let expected = [
            (3.0 - 1.0 * -0.7) / 4.0,
            (0.0 - (1.0 * 0.3 + 2.0 * 1.1)) / 5.0,
            (10.0 - 2.0 * -0.7) / 6.0,
        ];
        for (a, e) in res.x.iter().zip(expected) {
            assert!((a - e).abs() < 1e-14);
        }
    }
}
