#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Sparse vectors and parallel iterative solvers for PASCO / CloudWalker.
//!
//! The offline phase solves the `n × n` linear system `A x = 1` whose row
//! `aᵢ` is the (Monte-Carlo-estimated) truncated similarity series of node
//! `i`. `A` is never materialised — rows are produced on demand through the
//! [`jacobi::RowSource`] trait, either replayed from stored sparse vectors or
//! regenerated from seeded walks. The paper runs `L = 3` iterations of the
//! [`jacobi`] method, which parallelises over rows; the LIN baseline uses
//! sequential [`gauss_seidel`]. [`dense`] holds the small dense matrices of
//! the exact SimRank ground truth.

pub mod dense;
pub mod gauss_seidel;
pub mod jacobi;
pub mod norms;
pub mod sparse;

pub use dense::Matrix;
pub use jacobi::{JacobiConfig, JacobiResult, RowSource};
pub use sparse::SparseVec;
