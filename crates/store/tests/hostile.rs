//! Adversarial integration tests: hostile bytes against the store.
//!
//! The contract under attack is the one `format.rs` documents — a
//! corrupt, truncated, or deliberately forged shard file must produce a
//! typed [`StoreError`], and must never panic, read out of bounds, or
//! allocate memory sized by a forged header field. Each test corrupts a
//! *real* store on disk and re-opens it; the proptest block fuzzes the
//! header bytes and fields wholesale.

use pasco_store::{
    shard_file_name, write_store, MappedShard, MappedStore, Section, ShardHeader, StoreError,
    HEADER_LEN, SECTION_COUNT,
};
use proptest::prelude::*;

use pasco_graph::generators;
use std::path::{Path, PathBuf};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pasco_store_hostile_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes a small but non-trivial 2-shard store and returns its
/// directory; `shard_file_name(0)` inside it is the victim file.
fn victim_store(name: &str) -> PathBuf {
    let g = generators::barabasi_albert(150, 3, 11);
    let diag: Vec<f64> = (0..150).map(|v| 0.4 + (v as f64) / 400.0).collect();
    let dir = scratch(name);
    write_store(&dir, &g, &diag, 2).unwrap();
    dir
}

/// Re-encodes a forged header over the victim's first [`HEADER_LEN`]
/// bytes. `encode` recomputes the *header* checksum, so the forgery is
/// authenticated — exactly what an attacker controlling the file can
/// produce — and rejection has to come from structural validation, not
/// the checksum.
fn forge_header(dir: &Path, mutate: impl FnOnce(&mut ShardHeader)) {
    let path = dir.join(shard_file_name(0));
    let mut bytes = std::fs::read(&path).unwrap();
    let mut header = ShardHeader::from_bytes(&bytes).unwrap();
    mutate(&mut header);
    bytes[..HEADER_LEN].copy_from_slice(&header.encode());
    std::fs::write(&path, &bytes).unwrap();
}

fn open_shard(dir: &Path) -> Result<MappedShard, StoreError> {
    MappedShard::open(dir.join(shard_file_name(0)))
}

#[test]
fn every_truncation_point_is_a_typed_error() {
    let dir = victim_store("truncate");
    let path = dir.join(shard_file_name(0));
    let full = std::fs::read(&path).unwrap();
    // Representative cut points: empty, sub-header, exactly the header
    // (payload gone), mid-payload, and one byte short.
    for cut in [0, 1, 7, HEADER_LEN - 1, HEADER_LEN, HEADER_LEN + 9, full.len() - 1] {
        std::fs::write(&path, &full[..cut]).unwrap();
        match open_shard(&dir) {
            Err(StoreError::Truncated { .. } | StoreError::Io(_)) => {}
            other => panic!("cut at {cut}: expected Truncated, got {:?}", other.map(|_| ())),
        }
        // The directory-level open must refuse the same way, typed.
        assert!(MappedStore::open(&dir).is_err(), "cut at {cut}: store open must fail");
    }
}

#[test]
fn corrupt_magic_version_and_flags_are_distinct_errors() {
    let dir = victim_store("magic");
    let path = dir.join(shard_file_name(0));
    let good = std::fs::read(&path).unwrap();

    let mut bad = good.clone();
    bad[0..8].copy_from_slice(b"PASCOSH9");
    std::fs::write(&path, &bad).unwrap();
    assert!(matches!(open_shard(&dir), Err(StoreError::BadMagic(_))));

    // Version and flags live *under* the header checksum, so a blind
    // byte-patch trips the checksum; a re-encoded (authenticated) patch
    // must still be refused by the field checks. Patch the raw version
    // byte first: version is checked before the checksum on purpose, so
    // a future-format file reports "wrong version", not "corrupt".
    let mut bad = good.clone();
    bad[8] = 99;
    std::fs::write(&path, &bad).unwrap();
    assert!(matches!(open_shard(&dir), Err(StoreError::BadVersion(99))));

    let mut bad = good;
    bad[12] = 1; // flags
    std::fs::write(&path, &bad).unwrap();
    match open_shard(&dir) {
        Err(StoreError::Corrupt(_) | StoreError::Checksum { kind: "header", .. }) => {}
        other => panic!("expected flags rejection, got {:?}", other.map(|_| ())),
    }
}

#[test]
fn flipped_header_byte_fails_the_header_checksum() {
    let dir = victim_store("hdrsum");
    let path = dir.join(shard_file_name(0));
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[33] ^= 0x10; // node count, blind flip: not re-authenticated
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(open_shard(&dir), Err(StoreError::Checksum { kind: "header", .. })));
}

#[test]
fn forged_giant_counts_are_refused_without_allocating() {
    // Authenticated forgeries of the count fields. The refusal path
    // must be pure arithmetic — the format never allocates from header
    // counts, so even `u64::MAX` edges is just a Corrupt error.
    for (name, mutate) in [
        ("in_edges", (|h| h.in_edges = u64::MAX) as fn(&mut ShardHeader)),
        ("out_edges", |h| h.out_edges = u64::MAX / 2),
        ("n", |h| h.n = u64::MAX),
        ("end", |h| h.end = u32::MAX),
    ] {
        let dir = victim_store(&format!("giant_{name}"));
        forge_header(&dir, mutate);
        match open_shard(&dir) {
            Err(StoreError::Corrupt(_) | StoreError::Truncated { .. }) => {}
            other => panic!("forged {name}: expected Corrupt, got {:?}", other.map(|_| ())),
        }
    }
}

#[test]
fn forged_section_table_cannot_escape_the_file() {
    // Misalignment is its own error...
    let dir = victim_store("misalign");
    forge_header(&dir, |h| h.sections[1].offset += 4);
    assert!(matches!(open_shard(&dir), Err(StoreError::Misaligned { .. })));

    // ...an offset pointing past the end of the file is caught against
    // the real file size...
    let dir = victim_store("escape");
    forge_header(&dir, |h| h.sections[SECTION_COUNT - 1].offset = 1 << 40);
    match open_shard(&dir) {
        Err(StoreError::Corrupt(_) | StoreError::Truncated { .. }) => {}
        other => panic!("expected escape rejection, got {:?}", other.map(|_| ())),
    }

    // ...overlapping sections are refused...
    let dir = victim_store("overlap");
    forge_header(&dir, |h| h.sections[2].offset = h.sections[0].offset);
    assert!(matches!(open_shard(&dir), Err(StoreError::Corrupt(_))));

    // ...and so is a section length that disagrees with the counts.
    let dir = victim_store("length");
    forge_header(&dir, |h| h.sections[3].len += 8);
    assert!(matches!(open_shard(&dir), Err(StoreError::Corrupt(_))));
}

#[test]
fn corrupt_offset_spine_is_rejected_at_open() {
    // The spine check is open-time work: break monotonicity in the
    // in-offsets section (payload bytes, so fix no checksums — open
    // does not hash the payload, the spine check itself must catch it).
    let dir = victim_store("spine");
    let path = dir.join(shard_file_name(0));
    let mut bytes = std::fs::read(&path).unwrap();
    let header = ShardHeader::from_bytes(&bytes).unwrap();
    let spine: Section = header.sections[0];
    let at = (spine.offset + 8) as usize; // second entry
    bytes[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(open_shard(&dir), Err(StoreError::Corrupt(_))));
}

#[test]
fn payload_corruption_survives_open_but_fails_verify() {
    // Open is O(1) and deliberately does not hash the payload; deep
    // integrity is the explicit verify() pass.
    let dir = victim_store("payload");
    let path = dir.join(shard_file_name(0));
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff; // inside the diag section: no spine, no header
    std::fs::write(&path, &bytes).unwrap();
    let shard = open_shard(&dir).expect("lazy open must not read the diag payload");
    assert!(matches!(shard.verify(), Err(StoreError::Checksum { kind: "payload", .. })));
    // And the store-level verify sweeps every shard.
    let store = MappedStore::open(&dir).unwrap();
    assert!(matches!(store.verify(), Err(StoreError::Checksum { kind: "payload", .. })));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary byte mutations anywhere in the victim's header region:
    /// `open` never panics, and either refuses with a typed error or —
    /// when the mutation landed on bytes the format ignores — yields a
    /// shard that still answers queries totally.
    #[test]
    fn fuzzed_header_bytes_never_panic(at in 0usize..HEADER_LEN, x in 1u64..256) {
        let dir = victim_store("fuzzbyte");
        let path = dir.join(shard_file_name(0));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[at] ^= x as u8;
        std::fs::write(&path, &bytes).unwrap();
        if let Ok(shard) = open_shard(&dir) {
            // Survivable mutations still serve total, in-bounds queries.
            for v in 0..shard.end() {
                let _ = shard.in_neighbors(v);
                let _ = shard.sample_out(v, 0.37);
            }
        }
    }

    /// Authenticated field-level forgeries: re-encode a header with one
    /// field swapped for a hostile value. Validation either rejects with
    /// a typed error or the value was the original one.
    #[test]
    fn fuzzed_header_fields_never_panic(field in 0usize..8, value in 0u64..u64::MAX) {
        let dir = victim_store("fuzzfield");
        let original = ShardHeader::from_bytes(
            &std::fs::read(dir.join(shard_file_name(0))).unwrap()
        ).unwrap();
        forge_header(&dir, |h| match field {
            0 => h.part_index = value as u32,
            1 => h.parts = value as u32,
            2 => h.start = value as u32,
            3 => h.end = value as u32,
            4 => h.n = value,
            5 => h.in_edges = value,
            6 => h.out_edges = value,
            _ => {
                h.sections[(value % SECTION_COUNT as u64) as usize].offset = value;
            }
        });
        let path = dir.join(shard_file_name(0));
        let forged = ShardHeader::from_bytes(&std::fs::read(&path).unwrap()).unwrap();
        match open_shard(&dir) {
            Ok(shard) => {
                // A forgery that slips past per-shard validation (e.g. a
                // part_index still below `parts`) must still serve total,
                // in-bounds queries — and the *directory* open, which
                // cross-checks shards against the range partitioner,
                // must reject anything that is not the original header.
                for v in [0, shard.start(), shard.end().saturating_sub(1)] {
                    let _ = shard.in_neighbors(v);
                    let _ = shard.sample_out(v, 0.37);
                }
                if forged == original {
                    prop_assert!(MappedStore::open(&dir).is_ok());
                } else {
                    prop_assert!(
                        matches!(MappedStore::open(&dir), Err(StoreError::BadLayout(_))),
                        "store open must catch shard-survivable forgeries"
                    );
                }
            }
            Err(
                StoreError::Corrupt(_)
                | StoreError::Truncated { .. }
                | StoreError::Misaligned { .. },
            ) => {}
            Err(e) => prop_assert!(false, "untyped rejection: {e}"),
        }
    }

    /// Completely random 184-byte headers (plus a little payload):
    /// `from_bytes` overwhelmingly refuses (magic/checksum), and the
    /// full open path stays panic-free.
    #[test]
    fn random_header_bytes_never_panic(words in prop::collection::vec(0u64..u64::MAX, 23usize..24)) {
        let dir = scratch("fuzzrandom");
        let path = dir.join(shard_file_name(0));
        let mut bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        bytes.resize(HEADER_LEN + 64, 0xAB);
        std::fs::write(&path, &bytes).unwrap();
        prop_assert!(MappedShard::open(&path).is_err());
    }
}
