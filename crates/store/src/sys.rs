//! A thin `extern "C"` shim over the three Linux syscalls the store
//! needs — `mmap` / `munmap` / `madvise` — bound directly against the
//! libc std already links, so the out-of-core path costs no crates.io
//! dependency. This mirrors the epoll shim in `pasco_server::sys`: the
//! workspace's second (and only other) sanctioned `unsafe` module.
//!
//! The unsafety is confined to the raw calls plus the typed
//! reinterpretation of mapped bytes: everything is wrapped in an owned
//! [`Mmap`] that unmaps on drop and exposes a safe, checked surface.
//! The typed accessors ([`Mmap::u64_slice`] and friends) verify bounds
//! and alignment before any slice is fabricated, and every bit pattern
//! is a valid `u32`/`u64`/`f64`, so no accessor can mint an invalid
//! value — corrupt files yield garbage *numbers*, never undefined
//! behaviour.

#[cfg(not(target_os = "linux"))]
compile_error!(
    "pasco_store's zero-copy loader is built on mmap and requires Linux \
     (the workspace's deployment and CI target)"
);

#[cfg(not(target_endian = "little"))]
compile_error!(
    "the PASCOSH1 shard format is little-endian and is reinterpreted in \
     place; a big-endian host would need a byte-swapping loader"
);

use std::fs::File;
use std::io;
use std::os::fd::AsRawFd;
use std::os::raw::{c_int, c_void};

const PROT_READ: c_int = 0x1;
const MAP_PRIVATE: c_int = 0x02;
const MADV_RANDOM: c_int = 1;
const MADV_WILLNEED: c_int = 3;

extern "C" {
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, len: usize) -> c_int;
    fn madvise(addr: *mut c_void, len: usize, advice: c_int) -> c_int;
}

/// A read-only, private, file-backed memory mapping that unmaps on drop.
///
/// The mapping is `PROT_READ | MAP_PRIVATE`: nothing can write through
/// it, and writes to the file by other processes are not required to be
/// visible, so the byte slice it exposes is stable for the mapping's
/// lifetime (the standard mmap caveat applies: truncating the file
/// underneath a live mapping is an external-process fault the kernel
/// reports as `SIGBUS`, the same contract every mmap consumer accepts).
pub struct Mmap {
    /// Base address; never null for a non-empty mapping.
    ptr: *mut c_void,
    len: usize,
}

// SAFETY: the mapping is immutable (PROT_READ, private) for its whole
// lifetime, so shared references to it are valid from any thread.
unsafe impl Send for Mmap {}
// SAFETY: as above — &Mmap only ever reads.
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps the entire `file` read-only. An empty file maps to an empty
    /// (allocation-free) `Mmap`.
    pub fn map_readonly(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "file exceeds the address space",
            ));
        }
        let len = len as usize;
        if len == 0 {
            return Ok(Mmap { ptr: std::ptr::null_mut(), len: 0 });
        }
        // SAFETY: mmap with a null hint writes nothing through our
        // pointers; it returns MAP_FAILED (-1) or a fresh page-aligned
        // mapping of `len` bytes we then own exclusively.
        let ptr =
            unsafe { mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0) };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { ptr, len })
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The mapped file as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        if self.is_empty() {
            return &[];
        }
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
        // bytes for as long as `self` lives; u8 has no alignment or
        // validity requirements.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }

    /// Advises the kernel that access will be random (walk lookups), so
    /// readahead is not wasted on pages the walk never touches.
    pub fn advise_random(&self) {
        self.advise(MADV_RANDOM);
    }

    /// Advises the kernel to start paging the mapping in (a sequential
    /// verify or a full scan benefits from readahead).
    pub fn advise_willneed(&self) {
        self.advise(MADV_WILLNEED);
    }

    fn advise(&self, advice: c_int) {
        if self.len == 0 {
            return;
        }
        // SAFETY: `ptr`/`len` describe a live mapping we own; madvise is
        // a hint and cannot invalidate it. A failure is ignorable by
        // contract (the advice is an optimisation, not a correctness
        // requirement).
        let _ = unsafe { madvise(self.ptr, self.len, advice) };
    }

    /// A `u64` slice of `count` elements starting `offset` bytes into
    /// the mapping, or `None` when out of bounds or misaligned.
    pub fn u64_slice(&self, offset: usize, count: usize) -> Option<&[u64]> {
        self.typed::<u64>(offset, count)
    }

    /// A `u32` slice of `count` elements starting `offset` bytes into
    /// the mapping, or `None` when out of bounds or misaligned.
    pub fn u32_slice(&self, offset: usize, count: usize) -> Option<&[u32]> {
        self.typed::<u32>(offset, count)
    }

    /// An `f64` slice of `count` elements starting `offset` bytes into
    /// the mapping, or `None` when out of bounds or misaligned. Every
    /// bit pattern is a valid `f64` (NaNs included), so this cannot mint
    /// an invalid value from corrupt bytes.
    pub fn f64_slice(&self, offset: usize, count: usize) -> Option<&[f64]> {
        self.typed::<f64>(offset, count)
    }

    /// Bounds- and alignment-checked typed view. Private: the public
    /// monomorphic wrappers restrict `T` to plain-old-data types for
    /// which any bit pattern is valid.
    fn typed<T: Copy>(&self, offset: usize, count: usize) -> Option<&[T]> {
        let size = std::mem::size_of::<T>();
        let bytes = count.checked_mul(size)?;
        let end = offset.checked_add(bytes)?;
        if end > self.len {
            return None;
        }
        if count == 0 {
            return Some(&[]);
        }
        let base = self.ptr as usize + offset;
        if !base.is_multiple_of(std::mem::align_of::<T>()) {
            return None;
        }
        // SAFETY: the range [offset, offset+count*size) was just checked
        // to lie inside the live PROT_READ mapping, the base address is
        // aligned for T, and T is restricted by the public wrappers to
        // types for which every bit pattern is valid. The borrow is tied
        // to &self, which keeps the mapping alive.
        Some(unsafe { std::slice::from_raw_parts(base as *const T, count) })
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len == 0 {
            return;
        }
        // SAFETY: `ptr`/`len` describe the mapping created in
        // map_readonly and not yet unmapped; after this the struct is
        // gone, so no dangling access can follow.
        let _ = unsafe { munmap(self.ptr, self.len) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, contents: &[u8]) -> File {
        let path = std::env::temp_dir().join(format!("pasco_store_sys_{name}"));
        let mut f = File::create(&path).unwrap();
        f.write_all(contents).unwrap();
        f.flush().unwrap();
        File::open(&path).unwrap()
    }

    #[test]
    fn maps_a_real_file_and_reads_it_back() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(4096 + 17).collect();
        let f = temp_file("roundtrip", &payload);
        let m = Mmap::map_readonly(&f).unwrap();
        assert_eq!(m.len(), payload.len());
        assert_eq!(m.as_bytes(), &payload[..]);
        m.advise_random();
        m.advise_willneed();
    }

    #[test]
    fn empty_file_maps_empty() {
        let f = temp_file("empty", b"");
        let m = Mmap::map_readonly(&f).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.as_bytes(), b"");
        assert_eq!(m.u64_slice(0, 0), Some(&[][..]));
        assert_eq!(m.u64_slice(0, 1), None);
    }

    #[test]
    fn typed_views_decode_little_endian_values() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&0xdead_beef_u32.to_le_bytes());
        bytes.extend_from_slice(&7u32.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        bytes.extend_from_slice(&1.5f64.to_le_bytes());
        let f = temp_file("typed", &bytes);
        let m = Mmap::map_readonly(&f).unwrap();
        assert_eq!(m.u32_slice(0, 2), Some(&[0xdead_beef, 7][..]));
        assert_eq!(m.u64_slice(8, 1), Some(&[u64::MAX][..]));
        assert_eq!(m.f64_slice(16, 1), Some(&[1.5][..]));
    }

    #[test]
    fn typed_views_reject_out_of_bounds_and_misalignment() {
        let f = temp_file("bounds", &[0u8; 64]);
        let m = Mmap::map_readonly(&f).unwrap();
        // Out of bounds: length, offset, and overflowing combinations.
        assert!(m.u64_slice(0, 9).is_none());
        assert!(m.u64_slice(64, 1).is_none());
        assert!(m.u64_slice(usize::MAX, 1).is_none());
        assert!(m.u64_slice(8, usize::MAX).is_none());
        // Misaligned: mappings are page-aligned, so offset 4 breaks u64.
        assert!(m.u64_slice(4, 1).is_none());
        assert!(m.f64_slice(3, 1).is_none());
        assert!(m.u32_slice(2, 1).is_none());
        // Aligned, in-bounds views still work.
        assert!(m.u64_slice(8, 7).is_some());
        assert_eq!(m.u32_slice(4, 3), Some(&[0u32; 3][..]));
    }
}
