//! Writing a store directory: one `PASCOSH1` file per partition.
//!
//! [`StoreWriter`] streams each [`GraphPartition`]'s arrays through a
//! fixed-size chunk buffer (no second in-memory copy of the partition),
//! hashing the payload as it goes, then back-patches the finished
//! header. Files are written to a dot-temp name and renamed into place,
//! so a crashed save never leaves a half-written file that
//! [`crate::MappedStore::open`] could mistake for a shard.

use crate::format::{align_up, Fnv1a, Section, ShardHeader, StoreError, HEADER_LEN, SECTION_COUNT};
use pasco_graph::csr::CsrGraph;
use pasco_graph::partition::Partitioner;
use pasco_graph::partitioned::{partition_graph, GraphPartition};
use std::fs::File;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// The file name of shard `part_index` inside a store directory.
pub fn shard_file_name(part_index: u32) -> String {
    format!("shard-{part_index:05}.pasco")
}

/// Writes a complete store directory for `graph`: range-partitions it
/// into `parts` shards (the same [`Partitioner::range`] the sharded
/// engine uses, so every reader routes identically), slices `diag`
/// per-partition, and writes one shard file each.
pub fn write_store(
    dir: impl AsRef<Path>,
    graph: &CsrGraph,
    diag: &[f64],
    parts: u32,
) -> Result<(), StoreError> {
    let n = graph.node_count();
    if diag.len() != n as usize {
        return Err(StoreError::BadLayout(format!(
            "diagonal has {} entries for a {n}-node graph",
            diag.len()
        )));
    }
    let partitioner = Partitioner::range(n, parts);
    let partitions = partition_graph(graph, &partitioner);
    let mut writer = StoreWriter::create(dir, n, parts)?;
    for (p, part) in partitions.iter().enumerate() {
        let slice = &diag[part.start as usize..part.end as usize];
        writer.write_partition(p as u32, part, slice)?;
    }
    writer.finish()
}

/// Streams partitions into a store directory, one shard file per
/// partition. Every partition of the store must be written before
/// [`StoreWriter::finish`] — a reader requires the ranges to tile
/// `[0, n)` exactly.
pub struct StoreWriter {
    dir: PathBuf,
    n: u32,
    parts: u32,
    written: Vec<bool>,
}

impl StoreWriter {
    /// Prepares `dir` for a store of `parts` shards over an `n`-node
    /// graph: creates the directory and removes any stale shard files
    /// from a previous save (a partially overwritten store must never
    /// mix generations).
    pub fn create(dir: impl AsRef<Path>, n: u32, parts: u32) -> Result<Self, StoreError> {
        if parts == 0 {
            return Err(StoreError::BadLayout("a store needs at least one shard".into()));
        }
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("shard-") && name.ends_with(".pasco") {
                std::fs::remove_file(entry.path())?;
            }
        }
        Ok(StoreWriter { dir, n, parts, written: vec![false; parts as usize] })
    }

    /// Writes partition `part_index`. The partition's node range must be
    /// exactly what [`Partitioner::range`]`(n, parts)` assigns to that
    /// index (readers route lookups by recomputing the partitioner), and
    /// `diag` must hold one diagonal entry per owned node.
    pub fn write_partition(
        &mut self,
        part_index: u32,
        part: &GraphPartition,
        diag: &[f64],
    ) -> Result<PathBuf, StoreError> {
        if part_index >= self.parts {
            return Err(StoreError::BadLayout(format!(
                "part index {part_index} out of range (parts {})",
                self.parts
            )));
        }
        let partitioner = Partitioner::range(self.n, self.parts);
        let expected = partitioner.range_of(part_index).unwrap_or((0, 0));
        if (part.start, part.end) != expected {
            return Err(StoreError::BadLayout(format!(
                "partition {part_index} covers [{}, {}) but the range partitioner assigns [{}, {})",
                part.start, part.end, expected.0, expected.1
            )));
        }
        if diag.len() != part.len() as usize {
            return Err(StoreError::BadLayout(format!(
                "diagonal slice has {} entries for a {}-node partition",
                diag.len(),
                part.len()
            )));
        }
        let (in_offsets, in_sources, out_offsets, out_targets, out_cum, out_total) =
            part.raw_arrays();

        // Lay out the section table: cursor walks the file, aligning
        // each section start to 8 bytes.
        let byte_lens: [u64; SECTION_COUNT] = [
            in_offsets.len() as u64 * 8,
            in_sources.len() as u64 * 4,
            out_offsets.len() as u64 * 8,
            out_targets.len() as u64 * 4,
            out_cum.len() as u64 * 8,
            out_total.len() as u64 * 8,
            diag.len() as u64 * 8,
        ];
        let mut sections = [Section::default(); SECTION_COUNT];
        let mut cursor = HEADER_LEN as u64;
        for (i, len) in byte_lens.iter().enumerate() {
            cursor = align_up(cursor);
            sections[i] = Section { offset: cursor, len: *len };
            cursor += len;
        }

        let final_path = self.dir.join(shard_file_name(part_index));
        let tmp_path = self.dir.join(format!(".{}.tmp", shard_file_name(part_index)));
        let file = File::create(&tmp_path)?;
        let mut w = BufWriter::new(file);

        // Header placeholder; the real header is back-patched once the
        // payload checksum is known.
        w.write_all(&[0u8; HEADER_LEN])?;
        let mut hasher = Fnv1a::new();
        let mut at = HEADER_LEN as u64;
        let pad_to =
            |w: &mut BufWriter<File>, hasher: &mut Fnv1a, at: &mut u64| -> Result<(), StoreError> {
                let aligned = align_up(*at);
                if aligned > *at {
                    let pad = vec![0u8; (aligned - *at) as usize];
                    hasher.update(&pad);
                    w.write_all(&pad)?;
                    *at = aligned;
                }
                Ok(())
            };
        pad_to(&mut w, &mut hasher, &mut at)?;
        write_u64s(&mut w, &mut hasher, &mut at, in_offsets)?;
        pad_to(&mut w, &mut hasher, &mut at)?;
        write_u32s(&mut w, &mut hasher, &mut at, in_sources)?;
        pad_to(&mut w, &mut hasher, &mut at)?;
        write_u64s(&mut w, &mut hasher, &mut at, out_offsets)?;
        pad_to(&mut w, &mut hasher, &mut at)?;
        write_u32s(&mut w, &mut hasher, &mut at, out_targets)?;
        pad_to(&mut w, &mut hasher, &mut at)?;
        write_f64s(&mut w, &mut hasher, &mut at, out_cum)?;
        pad_to(&mut w, &mut hasher, &mut at)?;
        write_f64s(&mut w, &mut hasher, &mut at, out_total)?;
        pad_to(&mut w, &mut hasher, &mut at)?;
        write_f64s(&mut w, &mut hasher, &mut at, diag)?;
        debug_assert_eq!(at, cursor, "layout cursor and write cursor agree");

        let header = ShardHeader {
            part_index,
            parts: self.parts,
            start: part.start,
            end: part.end,
            n: self.n as u64,
            in_edges: in_sources.len() as u64,
            out_edges: out_targets.len() as u64,
            sections,
            payload_checksum: hasher.finish(),
        };
        w.flush()?;
        let mut file = w.into_inner().map_err(|e| StoreError::Io(e.into_error()))?;
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&header.encode())?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp_path, &final_path)?;
        self.written[part_index as usize] = true;
        Ok(final_path)
    }

    /// Completes the save, failing if any partition was never written.
    pub fn finish(self) -> Result<(), StoreError> {
        for (p, done) in self.written.iter().enumerate() {
            if !done {
                return Err(StoreError::BadLayout(format!("partition {p} was never written")));
            }
        }
        Ok(())
    }
}

/// Chunk size (in elements) for the streaming converters below.
const CHUNK: usize = 8192;

fn write_u64s(
    w: &mut impl Write,
    hasher: &mut Fnv1a,
    at: &mut u64,
    xs: &[u64],
) -> Result<(), StoreError> {
    let mut buf = Vec::with_capacity(8 * CHUNK.min(xs.len().max(1)));
    for chunk in xs.chunks(CHUNK) {
        buf.clear();
        for &x in chunk {
            buf.extend_from_slice(&x.to_le_bytes());
        }
        hasher.update(&buf);
        w.write_all(&buf)?;
        *at += buf.len() as u64;
    }
    Ok(())
}

fn write_u32s(
    w: &mut impl Write,
    hasher: &mut Fnv1a,
    at: &mut u64,
    xs: &[u32],
) -> Result<(), StoreError> {
    let mut buf = Vec::with_capacity(4 * CHUNK.min(xs.len().max(1)));
    for chunk in xs.chunks(CHUNK) {
        buf.clear();
        for &x in chunk {
            buf.extend_from_slice(&x.to_le_bytes());
        }
        hasher.update(&buf);
        w.write_all(&buf)?;
        *at += buf.len() as u64;
    }
    Ok(())
}

fn write_f64s(
    w: &mut impl Write,
    hasher: &mut Fnv1a,
    at: &mut u64,
    xs: &[f64],
) -> Result<(), StoreError> {
    let mut buf = Vec::with_capacity(8 * CHUNK.min(xs.len().max(1)));
    for chunk in xs.chunks(CHUNK) {
        buf.clear();
        for &x in chunk {
            buf.extend_from_slice(&x.to_le_bytes());
        }
        hasher.update(&buf);
        w.write_all(&buf)?;
        *at += buf.len() as u64;
    }
    Ok(())
}
