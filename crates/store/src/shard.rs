//! One mapped shard file, used in place.
//!
//! [`MappedShard::open`] maps the file, authenticates and validates the
//! header, and checks the two CSR offset *spines* (monotone, starting
//! at 0, ending at the edge counts) — `O(nodes-in-shard)` work that
//! makes every subsequent adjacency lookup provably in-bounds without
//! touching the `O(edges)` payload. The edge arrays themselves page in
//! lazily on first access, which is what makes restart O(1) in the
//! graph's edge volume. Full payload integrity (the FNV-1a checksum
//! over every section byte) is an explicit [`MappedShard::verify`] —
//! tests and the CI round-trip job run it; a serving restart does not
//! have to.
//!
//! Accessors mirror [`pasco_graph::partitioned::GraphPartition`]
//! operation for operation (same offsets, same cumulative-weight
//! `partition_point` sampling), which is what makes walks over a mapped
//! store bit-identical to walks over the resident graph.

use crate::format::{
    ShardHeader, StoreError, HEADER_LEN, SEC_DIAG, SEC_IN_OFFSETS, SEC_IN_SOURCES, SEC_OUT_CUM,
    SEC_OUT_OFFSETS, SEC_OUT_TARGETS, SEC_OUT_TOTAL,
};
use crate::sys::Mmap;
use pasco_graph::csr::NodeId;
use std::fs::File;
use std::path::Path;

/// A read-only graph partition served directly from a mapped file.
pub struct MappedShard {
    map: Mmap,
    header: ShardHeader,
}

impl MappedShard {
    /// Maps and validates the shard at `path`.
    ///
    /// Open cost is the fixed-size header plus the two offset spines
    /// (`O(owned nodes)`); the edge payload is not touched. Every
    /// corruption this can detect is a typed [`StoreError`].
    pub fn open(path: impl AsRef<Path>) -> Result<MappedShard, StoreError> {
        let file = File::open(path)?;
        let map = Mmap::map_readonly(&file)?;
        let header = ShardHeader::from_bytes(map.as_bytes())?;
        header.validate(map.len() as u64)?;
        let shard = MappedShard { map, header };
        shard.check_spine(SEC_IN_OFFSETS, shard.header.in_edges, "in")?;
        shard.check_spine(SEC_OUT_OFFSETS, shard.header.out_edges, "out")?;
        // Walk lookups jump around the partition; readahead would only
        // evict pages the walk still needs.
        shard.map.advise_random();
        Ok(shard)
    }

    /// An offset spine must start at 0, be monotone, and end at its
    /// adjacency section's element count — after this, slicing the
    /// adjacency arrays with spine values cannot go out of bounds.
    fn check_spine(&self, sec: usize, edges: u64, what: &str) -> Result<(), StoreError> {
        let spine = self.u64_section(sec);
        if spine.first() != Some(&0) {
            return Err(StoreError::Corrupt(format!("{what}-offsets spine does not start at 0")));
        }
        if spine.windows(2).any(|w| w[0] > w[1]) {
            return Err(StoreError::Corrupt(format!("{what}-offsets spine is not monotone")));
        }
        if spine.last() != Some(&edges) {
            return Err(StoreError::Corrupt(format!(
                "{what}-offsets spine ends at {:?}, expected the edge count {edges}",
                spine.last()
            )));
        }
        Ok(())
    }

    /// The validated header.
    pub fn header(&self) -> &ShardHeader {
        &self.header
    }

    /// First owned node id.
    pub fn start(&self) -> NodeId {
        self.header.start
    }

    /// One past the last owned node id.
    pub fn end(&self) -> NodeId {
        self.header.end
    }

    /// Number of owned nodes.
    pub fn len(&self) -> u32 {
        self.header.end - self.header.start
    }

    /// True when the shard owns no nodes.
    pub fn is_empty(&self) -> bool {
        self.header.start == self.header.end
    }

    /// True if this shard owns node `v`.
    #[inline]
    pub fn owns(&self, v: NodeId) -> bool {
        (self.header.start..self.header.end).contains(&v)
    }

    /// Bytes of file mapped (not resident memory — pages materialise
    /// only as queries touch them).
    pub fn mapped_bytes(&self) -> u64 {
        self.map.len() as u64
    }

    #[inline]
    fn local(&self, v: NodeId) -> Option<usize> {
        if self.owns(v) {
            Some((v - self.header.start) as usize)
        } else {
            None
        }
    }

    // Section accessors. The `(offset, len)` pairs were bounds- and
    // alignment-checked against the mapping in `ShardHeader::validate`,
    // so the fallbacks are unreachable; they keep the accessors total
    // (no panic path) instead of trusting that proof at a distance.
    #[inline]
    fn u64_section(&self, sec: usize) -> &[u64] {
        let s = self.header.sections[sec];
        self.map.u64_slice(s.offset as usize, (s.len / 8) as usize).unwrap_or(&[])
    }

    #[inline]
    fn u32_section(&self, sec: usize) -> &[u32] {
        let s = self.header.sections[sec];
        self.map.u32_slice(s.offset as usize, (s.len / 4) as usize).unwrap_or(&[])
    }

    #[inline]
    fn f64_section(&self, sec: usize) -> &[f64] {
        let s = self.header.sections[sec];
        self.map.f64_slice(s.offset as usize, (s.len / 8) as usize).unwrap_or(&[])
    }

    /// In-neighbours of owned node `v` (global ids); empty for nodes
    /// this shard does not own.
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let Some(l) = self.local(v) else { return &[] };
        let spine = self.u64_section(SEC_IN_OFFSETS);
        // In-bounds by the open-time spine check.
        &self.u32_section(SEC_IN_SOURCES)[spine[l] as usize..spine[l + 1] as usize]
    }

    /// Out-neighbours of owned node `v` (global ids); empty for nodes
    /// this shard does not own.
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        let Some(l) = self.local(v) else { return &[] };
        let spine = self.u64_section(SEC_OUT_OFFSETS);
        &self.u32_section(SEC_OUT_TARGETS)[spine[l] as usize..spine[l + 1] as usize]
    }

    /// Total reverse-chain outflow `W_v` of owned node `v`; 0 for nodes
    /// this shard does not own.
    #[inline]
    pub fn outflow(&self, v: NodeId) -> f64 {
        match self.local(v) {
            Some(l) => self.f64_section(SEC_OUT_TOTAL).get(l).copied().unwrap_or(0.0),
            None => 0.0,
        }
    }

    /// Samples an out-neighbour of owned `v` with probability
    /// `∝ 1/|In(j)|` given uniform `r ∈ [0,1)`; `None` when `v` has no
    /// out-edges (or is not owned). Bit-identical to
    /// [`pasco_graph::partitioned::GraphPartition::sample_out`]: same
    /// cumulative weights, same `partition_point`, same clamp.
    #[inline]
    pub fn sample_out(&self, v: NodeId, r: f64) -> Option<NodeId> {
        let l = self.local(v)?;
        let spine = self.u64_section(SEC_OUT_OFFSETS);
        let lo = spine[l] as usize;
        let hi = spine[l + 1] as usize;
        if lo == hi {
            return None;
        }
        let target = r * self.f64_section(SEC_OUT_TOTAL).get(l).copied().unwrap_or(0.0);
        let slice = &self.f64_section(SEC_OUT_CUM)[lo..hi];
        let idx = slice.partition_point(|&c| c <= target).min(slice.len() - 1);
        self.u32_section(SEC_OUT_TARGETS).get(lo + idx).copied()
    }

    /// The partition's diagonal-index slice (one entry per owned node).
    pub fn diag(&self) -> &[f64] {
        self.f64_section(SEC_DIAG)
    }

    /// Verifies the payload checksum over every byte after the header —
    /// `O(file)`, the deep-integrity pass that open deliberately skips.
    pub fn verify(&self) -> Result<(), StoreError> {
        self.map.advise_willneed();
        let bytes = self.map.as_bytes();
        // Validated: the file is at least HEADER_LEN long.
        let payload = bytes.get(HEADER_LEN..).unwrap_or(&[]);
        let actual = crate::format::fnv1a(payload);
        if actual != self.header.payload_checksum {
            return Err(StoreError::Checksum {
                kind: "payload",
                expected: self.header.payload_checksum,
                actual,
            });
        }
        Ok(())
    }
}

impl std::fmt::Debug for MappedShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedShard")
            .field("part_index", &self.header.part_index)
            .field("range", &(self.header.start..self.header.end))
            .field("mapped_bytes", &self.mapped_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{shard_file_name, StoreWriter};
    use pasco_graph::generators;
    use pasco_graph::partition::Partitioner;
    use pasco_graph::partitioned::partition_graph;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pasco_store_shard_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn mapped_shard_matches_the_partition_it_was_written_from() {
        let g = generators::barabasi_albert(300, 4, 7);
        let n = g.node_count();
        let p = Partitioner::range(n, 3);
        let parts = partition_graph(&g, &p);
        let diag: Vec<f64> = (0..n).map(|v| 0.5 + v as f64 / n as f64).collect();
        let dir = scratch("match");
        let mut w = StoreWriter::create(&dir, n, 3).unwrap();
        for (i, part) in parts.iter().enumerate() {
            w.write_partition(i as u32, part, &diag[part.start as usize..part.end as usize])
                .unwrap();
        }
        w.finish().unwrap();

        for (i, part) in parts.iter().enumerate() {
            let shard = MappedShard::open(dir.join(shard_file_name(i as u32))).unwrap();
            shard.verify().unwrap();
            assert_eq!((shard.start(), shard.end()), (part.start, part.end));
            assert_eq!(shard.diag(), &diag[part.start as usize..part.end as usize]);
            for v in part.start..part.end {
                assert_eq!(shard.in_neighbors(v), part.in_neighbors(v), "in {v}");
                assert_eq!(shard.out_neighbors(v), part.out_neighbors(v), "out {v}");
                assert_eq!(shard.outflow(v).to_bits(), part.outflow(v).to_bits(), "W {v}");
                for r in [0.0, 0.25, 0.63, 0.999] {
                    assert_eq!(shard.sample_out(v, r), part.sample_out(v, r), "sample {v} {r}");
                }
            }
            // Unowned nodes answer deterministically, never panic.
            let outside = if part.start > 0 { 0 } else { part.end };
            if outside < n {
                assert_eq!(shard.in_neighbors(outside), &[] as &[u32]);
                assert_eq!(shard.sample_out(outside, 0.5), None);
                assert_eq!(shard.outflow(outside), 0.0);
            }
        }
    }

    #[test]
    fn open_is_typed_error_on_missing_file() {
        let dir = scratch("missing");
        match MappedShard::open(dir.join("shard-00000.pasco")) {
            Err(StoreError::Io(_)) => {}
            other => panic!("expected Io error, got {:?}", other.map(|_| ())),
        }
    }
}
