#![deny(unsafe_code)]
#![warn(missing_docs)]
//! **Out-of-core shard storage for PASCO**: a versioned, zero-copy
//! on-disk format (`PASCOSH1`) holding one graph partition per file —
//! 8-byte-aligned little-endian CSR arrays, reverse-chain sampling
//! weights, and the partition's diagonal-index slice behind a validated,
//! checksummed header.
//!
//! The point of the format is that it is *usable in place*: a
//! [`MappedShard`] maps the file read-only and serves adjacency straight
//! out of the mapping, so
//!
//! * **restart is O(1)** in the graph's edge volume — open cost is the
//!   header plus the offset spines, and the `O(E)` payload pages in
//!   lazily at page-cache speed as queries touch it;
//! * **graphs larger than RAM serve** — the kernel pages shards in and
//!   out under memory pressure instead of the process OOMing; and
//! * **workers map only their partition** — a distributed worker opens
//!   one file instead of receiving its partition over the wire.
//!
//! [`MappedStore`] assembles a directory of shards into a routed view
//! implementing the [`pasco_graph::adjacency`] traits, so the generic
//! walk/MCSS kernels (and therefore every engine built on them) answer
//! **bit-identically** over a mapped store and the resident graph — the
//! same structural guarantee the sharded and distributed engines rely
//! on.
//!
//! Headers are untrusted input: every field is validated against the
//! real file size before use, corruption is a typed [`StoreError`]
//! (never a panic, never an allocation sized by a forged length), and
//! full payload integrity is an explicit [`MappedShard::verify`] pass
//! so open stays cheap.
//!
//! `unsafe` lives only in the `sys` mmap shim below — the workspace's
//! second sanctioned unsafe module after `pasco_server`'s epoll shim —
//! and `pasco-lint`'s `unsafe-confinement` rule enforces exactly that
//! allowlist.

mod format;
mod shard;
mod store;
#[allow(unsafe_code)]
mod sys;
mod writer;

pub use format::{
    fnv1a, Fnv1a, Section, ShardHeader, StoreError, HEADER_LEN, MAGIC, SECTION_ALIGN,
    SECTION_COUNT, SECTION_ELEM_BYTES, SECTION_NAMES, SEC_DIAG, SEC_IN_OFFSETS, SEC_IN_SOURCES,
    SEC_OUT_CUM, SEC_OUT_OFFSETS, SEC_OUT_TARGETS, SEC_OUT_TOTAL, VERSION,
};
pub use shard::MappedShard;
pub use store::MappedStore;
pub use writer::{shard_file_name, write_store, StoreWriter};
