//! The `PASCOSH1` on-disk shard format: a validated fixed-size header
//! followed by 8-byte-aligned little-endian sections.
//!
//! One file is one [`pasco_graph::partitioned::GraphPartition`] plus its
//! diagonal-index slice, laid out so the arrays can be used *in place*
//! through a read-only mapping — no decode, no copy, no allocation
//! proportional to the graph:
//!
//! | offset | field | bytes |
//! |-------:|-------|------:|
//! | 0   | magic `PASCOSH1`            | 8  |
//! | 8   | version (`=1`)              | 4  |
//! | 12  | flags (`=0`)                | 4  |
//! | 16  | part_index                  | 4  |
//! | 20  | parts                       | 4  |
//! | 24  | start node id               | 4  |
//! | 28  | end node id (exclusive)     | 4  |
//! | 32  | total node count `n`        | 8  |
//! | 40  | in-edge count               | 8  |
//! | 48  | out-edge count              | 8  |
//! | 56  | section table: 7 × (offset, byte length) | 112 |
//! | 168 | payload checksum (FNV-1a 64 of everything after the header) | 8 |
//! | 176 | header checksum (FNV-1a 64 of bytes 0..176) | 8 |
//!
//! The seven sections, in file order: `in_offsets` (u64), `in_sources`
//! (u32), `out_offsets` (u64), `out_targets` (u32), `out_cum` (f64),
//! `out_total` (f64), `diag` (f64). Every section offset is 8-byte
//! aligned (mappings are page-aligned, so aligned offsets give aligned
//! pointers), sections are in order and non-overlapping, and the file
//! ends exactly where the last section does.
//!
//! Header fields are **untrusted input**: a corrupt or hostile file must
//! produce a typed [`StoreError`], never a panic, an over-allocation, or
//! an out-of-bounds read. [`ShardHeader::validate`] is the choke point —
//! every field is range-checked against the actual file size (in checked
//! arithmetic) before anything derived from it touches the mapping.

use std::fmt;

/// File magic, first 8 bytes of every shard.
pub const MAGIC: [u8; 8] = *b"PASCOSH1";

/// Current format version.
pub const VERSION: u32 = 1;

/// Fixed header size in bytes; all sections start at or after this.
pub const HEADER_LEN: usize = 184;

/// Number of sections in the table.
pub const SECTION_COUNT: usize = 7;

/// Required alignment of every section offset.
pub const SECTION_ALIGN: u64 = 8;

/// Section indices into [`ShardHeader::sections`], in file order.
pub const SEC_IN_OFFSETS: usize = 0;
/// In-adjacency global source ids (u32).
pub const SEC_IN_SOURCES: usize = 1;
/// Out-adjacency local CSR offsets (u64).
pub const SEC_OUT_OFFSETS: usize = 2;
/// Out-adjacency global target ids (u32).
pub const SEC_OUT_TARGETS: usize = 3;
/// Per-out-edge cumulative reverse-chain weights (f64).
pub const SEC_OUT_CUM: usize = 4;
/// Per-owned-node total outflow `W_k` (f64).
pub const SEC_OUT_TOTAL: usize = 5;
/// The partition's diagonal-index slice (f64).
pub const SEC_DIAG: usize = 6;

/// Human-readable section names, indexed like the table.
pub const SECTION_NAMES: [&str; SECTION_COUNT] =
    ["in_offsets", "in_sources", "out_offsets", "out_targets", "out_cum", "out_total", "diag"];

/// Element size in bytes of each section, indexed like the table.
pub const SECTION_ELEM_BYTES: [u64; SECTION_COUNT] = [8, 4, 8, 4, 8, 8, 8];

/// Every way a shard file can be unusable, as a typed error. Corrupt or
/// hostile bytes must land in exactly one of these — never a panic and
/// never an allocation sized by an unvalidated header field.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem or mapping syscall failed.
    Io(std::io::Error),
    /// The file is shorter than a structure it claims to contain.
    Truncated {
        /// Bytes the structure needs.
        expected: u64,
        /// Bytes the file actually has.
        actual: u64,
    },
    /// The first 8 bytes are not [`MAGIC`].
    BadMagic([u8; 8]),
    /// The version field names a format this build does not speak.
    BadVersion(u32),
    /// A section offset violates the 8-byte alignment contract.
    Misaligned {
        /// Which section (from [`SECTION_NAMES`]).
        section: &'static str,
        /// The offending file offset.
        offset: u64,
    },
    /// A checksum mismatch: the bytes are not what was written.
    Checksum {
        /// `"header"` or `"payload"`.
        kind: &'static str,
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes actually present.
        actual: u64,
    },
    /// A structural inconsistency in the header or the offset spines
    /// (ranges, counts, section table, monotonicity).
    Corrupt(String),
    /// The store *directory* is malformed: missing shards, inconsistent
    /// shapes across files, or ranges that do not tile `[0, n)`.
    BadLayout(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Truncated { expected, actual } => {
                write!(f, "store file truncated: need {expected} bytes, have {actual}")
            }
            StoreError::BadMagic(m) => write!(f, "bad store magic {m:?}, expected {MAGIC:?}"),
            StoreError::BadVersion(v) => {
                write!(f, "unsupported store version {v}, expected {VERSION}")
            }
            StoreError::Misaligned { section, offset } => {
                write!(f, "section {section} at offset {offset} violates 8-byte alignment")
            }
            StoreError::Checksum { kind, expected, actual } => {
                write!(f, "{kind} checksum mismatch: header says {expected:#018x}, bytes hash to {actual:#018x}")
            }
            StoreError::Corrupt(msg) => write!(f, "corrupt store file: {msg}"),
            StoreError::BadLayout(msg) => write!(f, "malformed store directory: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// One entry of the section table: where a section's bytes live.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Section {
    /// Byte offset from the start of the file (8-aligned, ≥ header).
    pub offset: u64,
    /// Byte length (an exact multiple of the section's element size).
    pub len: u64,
}

/// The decoded fixed-size shard header. Every field came from the file
/// and is untrusted until [`ShardHeader::validate`] has accepted it
/// against the real file size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardHeader {
    /// This shard's index in `0..parts`.
    pub part_index: u32,
    /// Total number of shards in the store.
    pub parts: u32,
    /// First owned node id.
    pub start: u32,
    /// One past the last owned node id.
    pub end: u32,
    /// Total node count of the whole graph (all shards).
    pub n: u64,
    /// Number of in-edges stored in this shard.
    pub in_edges: u64,
    /// Number of out-edges stored in this shard.
    pub out_edges: u64,
    /// The section table, indexed by the `SEC_*` constants.
    pub sections: [Section; SECTION_COUNT],
    /// FNV-1a 64 of every byte after the header (sections + padding).
    pub payload_checksum: u64,
}

impl ShardHeader {
    /// Number of nodes this shard owns. Meaningful once `start <= end`
    /// has been validated; saturates instead of wrapping before that.
    pub fn count(&self) -> u64 {
        (self.end as u64).saturating_sub(self.start as u64)
    }

    /// The byte length each section must have, given the node and edge
    /// counts in this header, or an error when a count is so large the
    /// size computation itself would overflow.
    pub fn expected_section_bytes(&self) -> Result<[u64; SECTION_COUNT], StoreError> {
        let count = self.count();
        let spine = count
            .checked_add(1)
            .and_then(|c| c.checked_mul(8))
            .ok_or_else(|| StoreError::Corrupt("node count overflows section size".into()))?;
        let mul = |elems: u64, bytes: u64, what: &str| {
            elems
                .checked_mul(bytes)
                .ok_or_else(|| StoreError::Corrupt(format!("{what} count overflows section size")))
        };
        Ok([
            spine,
            mul(self.in_edges, 4, "in-edge")?,
            spine,
            mul(self.out_edges, 4, "out-edge")?,
            mul(self.out_edges, 8, "out-edge")?,
            mul(count, 8, "node")?,
            mul(count, 8, "node")?,
        ])
    }

    /// Encodes the header, computing and embedding the header checksum.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut buf = [0u8; HEADER_LEN];
        buf[0..8].copy_from_slice(&MAGIC);
        buf[8..12].copy_from_slice(&VERSION.to_le_bytes());
        buf[12..16].copy_from_slice(&0u32.to_le_bytes()); // flags
        buf[16..20].copy_from_slice(&self.part_index.to_le_bytes());
        buf[20..24].copy_from_slice(&self.parts.to_le_bytes());
        buf[24..28].copy_from_slice(&self.start.to_le_bytes());
        buf[28..32].copy_from_slice(&self.end.to_le_bytes());
        buf[32..40].copy_from_slice(&self.n.to_le_bytes());
        buf[40..48].copy_from_slice(&self.in_edges.to_le_bytes());
        buf[48..56].copy_from_slice(&self.out_edges.to_le_bytes());
        for (i, s) in self.sections.iter().enumerate() {
            let at = 56 + i * 16;
            buf[at..at + 8].copy_from_slice(&s.offset.to_le_bytes());
            buf[at + 8..at + 16].copy_from_slice(&s.len.to_le_bytes());
        }
        buf[168..176].copy_from_slice(&self.payload_checksum.to_le_bytes());
        let header_checksum = fnv1a(&buf[..176]);
        buf[176..184].copy_from_slice(&header_checksum.to_le_bytes());
        buf
    }

    /// Decodes and authenticates a header from the front of `buf`:
    /// length, magic, version, flags, and the header checksum. Field
    /// *values* are still untrusted — run [`ShardHeader::validate`]
    /// against the file size before deriving anything from them.
    pub fn from_bytes(buf: &[u8]) -> Result<ShardHeader, StoreError> {
        if buf.len() < HEADER_LEN {
            return Err(StoreError::Truncated {
                expected: HEADER_LEN as u64,
                actual: buf.len() as u64,
            });
        }
        let magic: [u8; 8] = buf[0..8].try_into().map_err(|_| StoreError::BadMagic([0; 8]))?;
        if magic != MAGIC {
            return Err(StoreError::BadMagic(magic));
        }
        let u32_at =
            |at: usize| u32::from_le_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]]);
        let u64_at = |at: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&buf[at..at + 8]);
            u64::from_le_bytes(b)
        };
        let version = u32_at(8);
        if version != VERSION {
            return Err(StoreError::BadVersion(version));
        }
        let flags = u32_at(12);
        if flags != 0 {
            return Err(StoreError::Corrupt(format!("unknown flags {flags:#010x}")));
        }
        let expected = u64_at(176);
        let actual = fnv1a(&buf[..176]);
        if expected != actual {
            return Err(StoreError::Checksum { kind: "header", expected, actual });
        }
        let mut sections = [Section::default(); SECTION_COUNT];
        for (i, s) in sections.iter_mut().enumerate() {
            s.offset = u64_at(56 + i * 16);
            s.len = u64_at(56 + i * 16 + 8);
        }
        Ok(ShardHeader {
            part_index: u32_at(16),
            parts: u32_at(20),
            start: u32_at(24),
            end: u32_at(28),
            n: u64_at(32),
            in_edges: u64_at(40),
            out_edges: u64_at(48),
            sections,
            payload_checksum: u64_at(168),
        })
    }

    /// Structural validation against the real `file_size`: ranges,
    /// counts, and the section table (alignment, order, bounds, exact
    /// lengths, and that the file ends where the last section does).
    /// After this returns `Ok`, every `(offset, len)` in the table is
    /// known to lie inside the file — slicing the mapping with them
    /// cannot go out of bounds.
    pub fn validate(&self, file_size: u64) -> Result<(), StoreError> {
        if self.parts == 0 {
            return Err(StoreError::Corrupt("zero shard count".into()));
        }
        if self.part_index >= self.parts {
            return Err(StoreError::Corrupt(format!(
                "part index {} out of range (parts {})",
                self.part_index, self.parts
            )));
        }
        if self.n > u32::MAX as u64 {
            return Err(StoreError::Corrupt(format!("node count {} exceeds u32", self.n)));
        }
        if self.start > self.end {
            return Err(StoreError::Corrupt(format!(
                "inverted node range [{}, {})",
                self.start, self.end
            )));
        }
        if (self.end as u64) > self.n {
            return Err(StoreError::Corrupt(format!(
                "node range end {} exceeds node count {}",
                self.end, self.n
            )));
        }
        let expected = self.expected_section_bytes()?;
        let mut cursor = HEADER_LEN as u64;
        for i in 0..SECTION_COUNT {
            let sec = self.sections[i];
            let name = SECTION_NAMES[i];
            if sec.len != expected[i] {
                return Err(StoreError::Corrupt(format!(
                    "section {name} length {} does not match the header counts (expected {})",
                    sec.len, expected[i]
                )));
            }
            if !sec.offset.is_multiple_of(SECTION_ALIGN) {
                return Err(StoreError::Misaligned { section: name, offset: sec.offset });
            }
            if sec.offset < cursor {
                return Err(StoreError::Corrupt(format!(
                    "section {name} at {} overlaps the previous section (ends {cursor})",
                    sec.offset
                )));
            }
            // Padding between sections is only ever alignment fill.
            if sec.offset - cursor >= SECTION_ALIGN {
                return Err(StoreError::Corrupt(format!(
                    "section {name} at {} leaves a {}-byte gap",
                    sec.offset,
                    sec.offset - cursor
                )));
            }
            let end = sec
                .offset
                .checked_add(sec.len)
                .ok_or_else(|| StoreError::Corrupt(format!("section {name} extent overflows")))?;
            if end > file_size {
                return Err(StoreError::Truncated { expected: end, actual: file_size });
            }
            cursor = end;
        }
        // The last section is 8-byte elements, so `cursor` is aligned;
        // trailing bytes would be invisible to the section table.
        if cursor != file_size {
            return Err(StoreError::Corrupt(format!(
                "file has {} trailing bytes after the last section",
                file_size - cursor
            )));
        }
        Ok(())
    }
}

/// Rounds `at` up to the next [`SECTION_ALIGN`] boundary.
pub fn align_up(at: u64) -> u64 {
    at.div_ceil(SECTION_ALIGN) * SECTION_ALIGN
}

/// FNV-1a 64 over `bytes` — dependency-free, deterministic, and fast
/// enough to hash a full shard at write and verify time.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// Streaming FNV-1a 64 state, for hashing a payload as it is written.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Feeds `bytes` into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }

    /// The digest of everything fed so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> ShardHeader {
        // A consistent 3-node shard: 2 in-edges, 2 out-edges.
        let mut sections = [Section::default(); SECTION_COUNT];
        let lens = [32u64, 8, 32, 8, 16, 24, 24];
        let mut cursor = HEADER_LEN as u64;
        for (i, len) in lens.iter().enumerate() {
            cursor = align_up(cursor);
            sections[i] = Section { offset: cursor, len: *len };
            cursor += len;
        }
        ShardHeader {
            part_index: 0,
            parts: 2,
            start: 0,
            end: 3,
            n: 6,
            in_edges: 2,
            out_edges: 2,
            sections,
            payload_checksum: 0x1234,
        }
    }

    fn file_size(h: &ShardHeader) -> u64 {
        let last = h.sections[SECTION_COUNT - 1];
        last.offset + last.len
    }

    #[test]
    fn encode_decode_roundtrip() {
        let h = sample_header();
        let bytes = h.encode();
        let h2 = ShardHeader::from_bytes(&bytes).unwrap();
        assert_eq!(h, h2);
        h2.validate(file_size(&h)).unwrap();
    }

    #[test]
    fn fnv_matches_known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn header_checksum_detects_a_flipped_bit() {
        let mut bytes = sample_header().encode();
        bytes[17] ^= 0x40; // part_index, covered by the header checksum
        assert!(matches!(
            ShardHeader::from_bytes(&bytes),
            Err(StoreError::Checksum { kind: "header", .. })
        ));
    }

    #[test]
    fn rejects_magic_version_flags_and_truncation() {
        let good = sample_header().encode();
        let mut bad = good;
        bad[0] = b'X';
        assert!(matches!(ShardHeader::from_bytes(&bad), Err(StoreError::BadMagic(_))));
        let mut h = sample_header();
        h.payload_checksum = 9;
        let mut bytes = h.encode();
        bytes[8] = 99; // version (header checksum now stale, but version is checked first)
        assert!(matches!(ShardHeader::from_bytes(&bytes), Err(StoreError::BadVersion(99))));
        assert!(matches!(ShardHeader::from_bytes(&good[..100]), Err(StoreError::Truncated { .. })));
    }

    #[test]
    fn validate_rejects_bad_ranges_and_sections() {
        let size = file_size(&sample_header());
        let mut h = sample_header();
        h.parts = 0;
        assert!(matches!(h.validate(size), Err(StoreError::Corrupt(_))));
        let mut h = sample_header();
        h.part_index = 2;
        assert!(matches!(h.validate(size), Err(StoreError::Corrupt(_))));
        let mut h = sample_header();
        (h.start, h.end) = (3, 1);
        assert!(matches!(h.validate(size), Err(StoreError::Corrupt(_))));
        let mut h = sample_header();
        h.end = 7; // past n — and the section lengths no longer match
        assert!(matches!(h.validate(size), Err(StoreError::Corrupt(_))));
        // Misaligned section offset.
        let mut h = sample_header();
        h.sections[SEC_IN_SOURCES].offset += 4;
        assert!(matches!(
            h.validate(size),
            Err(StoreError::Misaligned { section: "in_sources", .. })
        ));
        // Section past the end of the file.
        let h = sample_header();
        assert!(matches!(h.validate(size - 8), Err(StoreError::Truncated { .. })));
        // Trailing bytes.
        assert!(matches!(h.validate(size + 8), Err(StoreError::Corrupt(_))));
        // Overlapping sections.
        let mut h = sample_header();
        h.sections[SEC_OUT_OFFSETS].offset = h.sections[SEC_IN_OFFSETS].offset;
        assert!(matches!(h.validate(size), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn expected_sizes_guard_against_overflow() {
        let mut h = sample_header();
        h.out_edges = u64::MAX / 2;
        assert!(matches!(h.expected_section_bytes(), Err(StoreError::Corrupt(_))));
    }
}
