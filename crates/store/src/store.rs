//! A whole store directory as one routed adjacency view.
//!
//! [`MappedStore::open`] maps every `shard-*.pasco` file in a
//! directory, checks that the shards agree on shape and tile `[0, n)`
//! exactly the way [`Partitioner::range`] would (readers recompute the
//! partitioner, so the tiling *is* the routing table), and then serves
//! the [`pasco_graph::adjacency`] traits by routing each lookup to the
//! owning shard — the mmap'd twin of
//! [`pasco_graph::partitioned::PartitionedView`]. Because the walk and
//! MCSS kernels are generic over those traits, an engine driven by a
//! `MappedStore` takes bit-identical trajectories to one driven by the
//! resident graph.

use crate::format::StoreError;
use crate::shard::MappedShard;
use crate::writer::shard_file_name;
use pasco_graph::adjacency::{ForwardSampler, WalkAdjacency};
use pasco_graph::csr::NodeId;
use pasco_graph::partition::Partitioner;
use std::path::{Path, PathBuf};

/// Every shard of a store directory, mapped and routed.
pub struct MappedStore {
    shards: Vec<MappedShard>,
    partitioner: Partitioner,
    n: u32,
    dir: PathBuf,
}

impl MappedStore {
    /// Maps every shard in `dir` and validates the directory as a
    /// whole: at least one shard, file names matching part indices, all
    /// headers agreeing on `(n, parts)`, and each shard covering
    /// exactly the node range [`Partitioner::range`] assigns its index.
    pub fn open(dir: impl AsRef<Path>) -> Result<MappedStore, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        let mut paths: Vec<PathBuf> = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("shard-") && name.ends_with(".pasco") {
                paths.push(entry.path());
            }
        }
        paths.sort();
        if paths.is_empty() {
            return Err(StoreError::BadLayout(format!(
                "no shard-*.pasco files in {}",
                dir.display()
            )));
        }
        let mut shards = Vec::with_capacity(paths.len());
        for path in &paths {
            shards.push(MappedShard::open(path)?);
        }
        let parts = shards[0].header().parts;
        let n64 = shards[0].header().n;
        if shards.len() != parts as usize {
            return Err(StoreError::BadLayout(format!(
                "directory holds {} shard files but headers declare {parts} parts",
                shards.len()
            )));
        }
        // Validated per-shard: n fits u32.
        let n = n64 as u32;
        let partitioner = Partitioner::range(n, parts);
        for (i, (shard, path)) in shards.iter().zip(&paths).enumerate() {
            let h = shard.header();
            if h.parts != parts || h.n != n64 {
                return Err(StoreError::BadLayout(format!(
                    "{} declares shape ({}, {} parts), other shards ({n64}, {parts} parts)",
                    path.display(),
                    h.n,
                    h.parts
                )));
            }
            if h.part_index != i as u32
                || path.file_name().map(|f| f.to_string_lossy().into_owned())
                    != Some(shard_file_name(i as u32))
            {
                return Err(StoreError::BadLayout(format!(
                    "{} holds part {} — shard files must be the contiguous set 0..parts",
                    path.display(),
                    h.part_index
                )));
            }
            let expected = partitioner.range_of(i as u32).unwrap_or((0, 0));
            if (h.start, h.end) != expected {
                return Err(StoreError::BadLayout(format!(
                    "part {i} covers [{}, {}) but range partitioning of {n} nodes into \
                     {parts} parts assigns [{}, {})",
                    h.start, h.end, expected.0, expected.1
                )));
            }
        }
        Ok(MappedStore { shards, partitioner, n, dir })
    }

    /// The directory this store was opened from.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total node count across all shards.
    pub fn node_count(&self) -> u32 {
        self.n
    }

    /// Number of shards (= partitions = files).
    pub fn parts(&self) -> u32 {
        self.partitioner.parts()
    }

    /// The shards, in partition order.
    pub fn shards(&self) -> &[MappedShard] {
        &self.shards
    }

    /// The partitioner that routes nodes to shards — identical to the
    /// one the in-memory sharded engine builds for the same `(n,
    /// parts)`.
    pub fn partitioner(&self) -> Partitioner {
        self.partitioner
    }

    /// The shard owning node `v`.
    #[inline]
    pub fn shard_of(&self, v: NodeId) -> &MappedShard {
        // Range owners are always < parts (the partitioner clamps), and
        // open checked one shard per slot.
        &self.shards[self.partitioner.owner(v) as usize]
    }

    /// Concatenates the per-shard diagonal slices back into the full
    /// diagonal index, in node order. Grows from the mapped slices
    /// themselves, so a forged header cannot pick the allocation size.
    pub fn compose_diag(&self) -> Vec<f64> {
        let mut diag = Vec::new();
        for shard in &self.shards {
            diag.extend_from_slice(shard.diag());
        }
        diag
    }

    /// Total bytes of file mapped across all shards (page in lazily).
    pub fn mapped_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.mapped_bytes()).sum()
    }

    /// Total out-edge count across all shards, as declared by the
    /// validated headers.
    pub fn edge_count(&self) -> u64 {
        self.shards.iter().map(|s| s.header().out_edges).sum()
    }

    /// Verifies every shard's payload checksum — `O(total file bytes)`.
    pub fn verify(&self) -> Result<(), StoreError> {
        for shard in &self.shards {
            shard.verify()?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for MappedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedStore")
            .field("dir", &self.dir)
            .field("nodes", &self.n)
            .field("parts", &self.parts())
            .field("mapped_bytes", &self.mapped_bytes())
            .finish()
    }
}

impl WalkAdjacency for MappedStore {
    #[inline]
    fn node_count(&self) -> u32 {
        self.n
    }

    #[inline]
    fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        self.shard_of(v).in_neighbors(v)
    }
}

impl ForwardSampler for MappedStore {
    #[inline]
    fn outflow(&self, v: NodeId) -> f64 {
        self.shard_of(v).outflow(v)
    }

    #[inline]
    fn sample_out(&self, v: NodeId, r: f64) -> Option<NodeId> {
        self.shard_of(v).sample_out(v, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::write_store;
    use pasco_graph::generators;
    use pasco_graph::partitioned::{partition_graph, PartitionedView};
    use std::sync::Arc;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pasco_store_dir_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn store_routes_identically_to_a_partitioned_view() {
        let g = generators::rmat(9, 4_000, generators::RmatParams::default(), 8);
        let n = g.node_count();
        let diag: Vec<f64> = (0..n).map(|v| 1.0 / (1.0 + v as f64)).collect();
        for parts in [1u32, 2, 4] {
            let dir = scratch(&format!("route_{parts}"));
            write_store(&dir, &g, &diag, parts).unwrap();
            let store = MappedStore::open(&dir).unwrap();
            store.verify().unwrap();
            assert_eq!(store.node_count(), n);
            assert_eq!(store.parts(), parts);
            let p = Partitioner::range(n, parts);
            let view = PartitionedView::new(Arc::new(partition_graph(&g, &p)), p);
            for v in (0..n).step_by(13) {
                assert_eq!(WalkAdjacency::in_neighbors(&store, v), view.in_neighbors(v), "in {v}");
                assert_eq!(
                    ForwardSampler::outflow(&store, v).to_bits(),
                    view.outflow(v).to_bits(),
                    "W {v}"
                );
                for r in [0.0, 0.42, 0.999] {
                    assert_eq!(
                        ForwardSampler::sample_out(&store, v, r),
                        view.sample_out(v, r),
                        "sample {v} {r}"
                    );
                }
            }
            assert_eq!(store.compose_diag(), diag);
            assert_eq!(ForwardSampler::sample_out(&store, v_out_of_range(n), 0.5), None);
            assert_eq!(ForwardSampler::outflow(&store, v_out_of_range(n)), 0.0);
        }
    }

    // Out-of-range lookups must stay total (routing clamps, shard
    // answers empty) — walkers can only reach valid ids on an intact
    // store, but a corrupt payload must degrade to garbage answers,
    // never a panic.
    fn v_out_of_range(n: u32) -> u32 {
        n.saturating_add(17)
    }

    #[test]
    fn open_rejects_empty_and_inconsistent_directories() {
        let dir = scratch("empty");
        assert!(matches!(MappedStore::open(&dir), Err(StoreError::BadLayout(_))));

        // A store written at 3 parts with one file deleted must fail
        // the contiguity check.
        let g = generators::barabasi_albert(120, 3, 5);
        let diag = vec![1.0; 120];
        let dir = scratch("holey");
        write_store(&dir, &g, &diag, 3).unwrap();
        std::fs::remove_file(dir.join(shard_file_name(1))).unwrap();
        assert!(matches!(MappedStore::open(&dir), Err(StoreError::BadLayout(_))));

        // Mixing shards from stores of different shapes must fail too.
        let dir_a = scratch("mix_a");
        let dir_b = scratch("mix_b");
        write_store(&dir_a, &g, &diag, 2).unwrap();
        write_store(&dir_b, &g, &diag, 3).unwrap();
        std::fs::copy(dir_b.join(shard_file_name(1)), dir_a.join(shard_file_name(1))).unwrap();
        assert!(matches!(MappedStore::open(&dir_a), Err(StoreError::BadLayout(_))));
    }

    #[test]
    fn single_shard_store_is_the_whole_graph() {
        let g = generators::cycle(64);
        let diag = vec![0.75; 64];
        let dir = scratch("single");
        write_store(&dir, &g, &diag, 1).unwrap();
        let store = MappedStore::open(&dir).unwrap();
        assert_eq!(store.parts(), 1);
        for v in 0..64 {
            assert_eq!(WalkAdjacency::in_neighbors(&store, v), g.in_neighbors(v));
        }
    }
}
