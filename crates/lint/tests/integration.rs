//! End-to-end tests for `pasco-lint`: each rule is exercised through the
//! public [`run_workspace`] entry point against a scratch workspace on
//! disk, exactly the way the CI gate runs it — bad fixture fires, clean
//! fixture stays silent, and a pragma round-trips the finding into the
//! suppressed bucket. The final test self-hosts: it lints the real
//! workspace at `HEAD` and asserts `--deny-all` would pass.

#![forbid(unsafe_code)]

use pasco_lint::{find_workspace_root, run_workspace, Report};
use std::fs;
use std::path::{Path, PathBuf};

/// Creates an empty scratch workspace (unique per test) and returns its
/// root. Re-runs wipe any leftover from a previous invocation.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pasco-lint-it-{}-{name}", std::process::id()));
    if dir.exists() {
        fs::remove_dir_all(&dir).unwrap();
    }
    fs::create_dir_all(&dir).unwrap();
    fs::write(dir.join("Cargo.toml"), "[workspace]\n").unwrap();
    dir
}

fn put(root: &Path, rel: &str, contents: &str) {
    let path = root.join(rel);
    fs::create_dir_all(path.parent().unwrap()).unwrap();
    fs::write(path, contents).unwrap();
}

/// A minimal wire-clean baseline: one frame kind, one error tag, a
/// matching manifest, and a golden fixture for the one kind. Every rule
/// test starts from this so only the seeded violation shows up.
fn seed_wire_baseline(root: &Path) {
    put(
        root,
        "crates/core/src/api/envelope.rs",
        "pub enum FrameKind { Hello = 0 }\n\
         pub const GOLDEN_HELLO: &str =\n    \
         \"50 53 43 4f 01 00 00 00 01 00 00 00 00 00 00 00 00 00 00 00\";\n",
    );
    put(root, "crates/core/src/api/wire.rs", "pub const ERR_A: u8 = 0;\n");
    put(root, "WIRE_TAGS.manifest", "framekind Hello 0\nqueryerror ERR_A 0\n");
}

fn lint(root: &Path) -> Report {
    run_workspace(root).unwrap()
}

fn rules_of(report: &Report) -> Vec<&'static str> {
    report.findings.iter().map(|f| f.rule).collect()
}

#[test]
fn wire_clean_baseline_is_clean() {
    let root = scratch("baseline");
    seed_wire_baseline(&root);
    let report = lint(&root);
    assert!(report.is_clean(), "{}", report.to_human());
    assert_eq!(report.files_scanned, 2);
}

// ---- nondeterministic-iteration ------------------------------------------

#[test]
fn hash_collection_in_determinism_crate_fires_and_pragma_silences() {
    let root = scratch("nondet");
    seed_wire_baseline(&root);
    put(&root, "crates/graph/src/gen.rs", "use std::collections::HashSet;\n");
    let report = lint(&root);
    assert_eq!(rules_of(&report), vec!["nondeterministic-iteration"]);
    assert_eq!(report.findings[0].file, "crates/graph/src/gen.rs");
    assert_eq!(report.findings[0].line, 1);

    // Same site with a trailing justification pragma: suppressed, not gone.
    put(
        &root,
        "crates/graph/src/gen.rs",
        "use std::collections::HashSet; // pasco-lint: allow(nondeterministic-iteration)\n",
    );
    let report = lint(&root);
    assert!(report.is_clean(), "{}", report.to_human());
    assert_eq!(report.suppressed.len(), 1);
}

#[test]
fn hash_collection_outside_determinism_crates_is_fine() {
    let root = scratch("nondet-scope");
    seed_wire_baseline(&root);
    put(&root, "crates/solver/src/x.rs", "use std::collections::HashMap;\n");
    assert!(lint(&root).is_clean());
}

// ---- float-ordering ------------------------------------------------------

#[test]
fn partial_cmp_fires_even_in_examples() {
    let root = scratch("float");
    seed_wire_baseline(&root);
    put(
        &root,
        "examples/rank.rs",
        "fn main() { let mut v = vec![1.0f64]; v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n",
    );
    let report = lint(&root);
    assert_eq!(rules_of(&report), vec!["float-ordering"]);

    put(
        &root,
        "examples/rank.rs",
        "fn main() { let mut v = vec![1.0f64]; v.sort_by(|a, b| a.total_cmp(b)); }\n",
    );
    assert!(lint(&root).is_clean());
}

// ---- unsafe-confinement --------------------------------------------------

#[test]
fn unsafe_outside_shim_fires_inside_shim_does_not() {
    let root = scratch("unsafe");
    seed_wire_baseline(&root);
    let body = "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    put(&root, "crates/worker/src/util.rs", body);
    let report = lint(&root);
    assert_eq!(rules_of(&report), vec!["unsafe-confinement"]);

    fs::remove_file(root.join("crates/worker/src/util.rs")).unwrap();
    put(&root, "crates/server/src/sys.rs", body);
    assert!(lint(&root).is_clean());

    // The mmap shim is the second sanctioned unsafe module...
    put(&root, "crates/store/src/sys.rs", body);
    assert!(lint(&root).is_clean());

    // ...and the sanction is the allowlist, not the file name: a third
    // `sys.rs` in an unsanctioned crate still fires.
    put(&root, "crates/worker/src/sys.rs", body);
    assert_eq!(rules_of(&lint(&root)), vec!["unsafe-confinement"]);
}

/// The store-header taint source, end to end through the engine: a
/// method on `ShardHeader` that allocates from a field without a
/// dominating check fires [`unvalidated-wire-length`]; the same
/// allocation behind a comparison is clean.
#[test]
fn store_header_fields_are_untrusted_in_every_method() {
    let root = scratch("store-header-taint");
    seed_wire_baseline(&root);
    put(
        &root,
        "crates/store/src/format.rs",
        "pub struct ShardHeader { pub n: u64 }\n\
         impl ShardHeader {\n\
             pub fn spine(&self) -> Vec<u64> {\n\
                 Vec::with_capacity(self.n as usize)\n\
             }\n\
         }\n",
    );
    let report = lint(&root);
    assert_eq!(rules_of(&report), vec!["unvalidated-wire-length"]);
    assert_eq!(report.findings[0].file, "crates/store/src/format.rs");
    assert_eq!(report.findings[0].line, 4);

    put(
        &root,
        "crates/store/src/format.rs",
        "pub struct ShardHeader { pub n: u64 }\n\
         impl ShardHeader {\n\
             pub fn spine(&self, cap: u64) -> Vec<u64> {\n\
                 if self.n > cap { return Vec::new(); }\n\
                 Vec::with_capacity(self.n as usize)\n\
             }\n\
         }\n",
    );
    assert!(lint(&root).is_clean());
}

#[test]
fn crate_root_without_deny_unsafe_fires() {
    let root = scratch("unsafe-root");
    seed_wire_baseline(&root);
    put(&root, "crates/worker/src/lib.rs", "pub fn f() {}\n");
    let report = lint(&root);
    assert_eq!(rules_of(&report), vec!["unsafe-confinement"]);

    put(&root, "crates/worker/src/lib.rs", "#![forbid(unsafe_code)]\npub fn f() {}\n");
    assert!(lint(&root).is_clean());
}

// ---- panic-reachable-in-serving ------------------------------------------

#[test]
fn panic_two_hops_below_serving_entrypoint_fires_and_pragma_suppresses() {
    let root = scratch("panic-reach");
    seed_wire_baseline(&root);
    put(
        &root,
        "crates/server/src/conn.rs",
        "pub fn serve(x: Option<u8>) -> u8 { inner(x) }\n\
         fn inner(x: Option<u8>) -> u8 { x.unwrap() }\n",
    );
    let report = lint(&root);
    assert_eq!(rules_of(&report), vec!["panic-reachable-in-serving"]);
    assert_eq!(report.findings[0].file, "crates/server/src/conn.rs");
    assert_eq!(report.findings[0].line, 2);
    // The message names the path in from the entrypoint.
    assert!(report.findings[0].message.contains("serve"), "{}", report.findings[0].message);

    // The own-line pragma form suppresses the next code line.
    put(
        &root,
        "crates/server/src/conn.rs",
        "pub fn serve(x: Option<u8>) -> u8 { inner(x) }\n\
         // Guaranteed Some by the caller.\n\
         // pasco-lint: allow(panic-reachable-in-serving)\n\
         fn inner(x: Option<u8>) -> u8 { x.unwrap() }\n",
    );
    let report = lint(&root);
    assert!(report.is_clean(), "{}", report.to_human());
    assert_eq!(report.suppressed.len(), 1);
}

#[test]
fn panic_reachable_only_via_trait_impl_fires() {
    let root = scratch("panic-trait");
    seed_wire_baseline(&root);
    put(
        &root,
        "crates/worker/src/svc.rs",
        "pub trait Svc { fn go(&self) -> u8; }\n\
         pub struct S;\n\
         impl Svc for S {\n\
             fn go(&self) -> u8 { Option::<u8>::None.unwrap() }\n\
         }\n\
         pub fn serve(s: &dyn Svc) -> u8 { s.go() }\n",
    );
    let report = lint(&root);
    assert_eq!(rules_of(&report), vec!["panic-reachable-in-serving"]);
    assert_eq!(report.findings[0].line, 4);
}

#[test]
fn unreachable_panic_and_test_panic_outside_serving_are_fine() {
    let root = scratch("panic-scope");
    seed_wire_baseline(&root);
    // Not reachable from any serving entrypoint: private fn, never called.
    put(&root, "crates/server/src/conn.rs", "fn dead(x: Option<u8>) -> u8 { x.unwrap() }\n");
    // Test code is exempt even in serving dirs.
    put(
        &root,
        "crates/server/src/util.rs",
        "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1u8).unwrap(); }\n}\n",
    );
    // Outside the serving dirs, pub fns are not entrypoints.
    put(&root, "crates/solver/src/x.rs", "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n");
    assert!(lint(&root).is_clean(), "{}", lint(&root).to_human());
}

// ---- blocking-in-reactor-transitive --------------------------------------

#[test]
fn blocking_two_hops_below_the_reactor_fires() {
    let root = scratch("reactor");
    seed_wire_baseline(&root);
    put(
        &root,
        "crates/server/src/server.rs",
        "pub struct Reactor;\n\
         impl Reactor {\n\
             pub fn run(&self) { self.step(); }\n\
             fn step(&self) { helper(); }\n\
         }\n\
         fn helper() { std::thread::sleep(std::time::Duration::from_secs(1)); }\n",
    );
    let report = lint(&root);
    assert_eq!(rules_of(&report), vec!["blocking-in-reactor-transitive"]);
    assert_eq!(report.findings[0].line, 6);
    let msg = &report.findings[0].message;
    assert!(msg.contains("Reactor::run") && msg.contains("step"), "{msg}");
}

#[test]
fn blocking_not_reachable_from_the_reactor_is_fine() {
    let root = scratch("reactor-scope");
    seed_wire_baseline(&root);
    // The same sleeping helper with no path from `Reactor::run`: the old
    // lexical rule flagged anything in the reactor file; the transitive
    // rule only flags what the event loop can actually reach.
    put(
        &root,
        "crates/server/src/server.rs",
        "pub struct Reactor;\n\
         impl Reactor {\n\
             pub fn run(&self) {}\n\
         }\n\
         pub fn offline_tool() { std::thread::sleep(std::time::Duration::from_secs(1)); }\n",
    );
    assert!(lint(&root).is_clean(), "{}", lint(&root).to_human());
}

// ---- lock-order-cycle ----------------------------------------------------

#[test]
fn ab_ba_lock_order_cycle_fires_across_two_methods() {
    let root = scratch("lock-cycle");
    seed_wire_baseline(&root);
    put(
        &root,
        "crates/solver/src/locks.rs",
        "use std::sync::Mutex;\n\
         pub struct A { pub v: u64 }\n\
         pub struct B { pub v: u64 }\n\
         pub struct S { a: Mutex<A>, b: Mutex<B> }\n\
         impl S {\n\
             pub fn ab(&self) -> u64 {\n\
                 let ga = self.a.lock().unwrap();\n\
                 let gb = self.b.lock().unwrap();\n\
                 ga.v + gb.v\n\
             }\n\
             pub fn ba(&self) -> u64 {\n\
                 let gb = self.b.lock().unwrap();\n\
                 let ga = self.a.lock().unwrap();\n\
                 ga.v + gb.v\n\
             }\n\
         }\n",
    );
    let report = lint(&root);
    assert_eq!(rules_of(&report), vec!["lock-order-cycle"]);
    let msg = &report.findings[0].message;
    assert!(msg.contains("`A`") && msg.contains("`B`"), "{msg}");

    // Consistent nesting order in both methods: no cycle.
    put(
        &root,
        "crates/solver/src/locks.rs",
        "use std::sync::Mutex;\n\
         pub struct A { pub v: u64 }\n\
         pub struct B { pub v: u64 }\n\
         pub struct S { a: Mutex<A>, b: Mutex<B> }\n\
         impl S {\n\
             pub fn ab(&self) -> u64 {\n\
                 let ga = self.a.lock().unwrap();\n\
                 let gb = self.b.lock().unwrap();\n\
                 ga.v + gb.v\n\
             }\n\
             pub fn ab2(&self) -> u64 {\n\
                 let ga = self.a.lock().unwrap();\n\
                 let gb = self.b.lock().unwrap();\n\
                 ga.v * gb.v\n\
             }\n\
         }\n",
    );
    assert!(lint(&root).is_clean(), "{}", lint(&root).to_human());
}

// ---- callgraph-baseline --------------------------------------------------

#[test]
fn unresolved_edges_over_committed_baseline_fire() {
    let root = scratch("cg-baseline");
    seed_wire_baseline(&root);
    // `v` has no resolvable type and two workspace impls define `frob`:
    // the call is recorded ambiguous, which the zero baseline rejects.
    put(
        &root,
        "crates/solver/src/amb.rs",
        "pub struct X;\n\
         impl X { pub fn frob(&self) {} }\n\
         pub struct Y;\n\
         impl Y { pub fn frob(&self) {} }\n\
         pub fn go() { let v = mystery(); v.frob(); }\n",
    );
    put(&root, "CALLGRAPH.baseline", "# unresolved-edge budget\n0\n");
    let report = lint(&root);
    assert_eq!(rules_of(&report), vec!["callgraph-baseline"]);
    assert!(report.findings[0].message.contains("baseline"), "{}", report.findings[0].message);

    // A budget covering the ambiguity passes.
    put(&root, "CALLGRAPH.baseline", "2\n");
    assert!(lint(&root).is_clean(), "{}", lint(&root).to_human());
}

// ---- bad-pragma ----------------------------------------------------------

#[test]
fn pragma_naming_unknown_rule_fires_bad_pragma() {
    let root = scratch("bad-pragma");
    seed_wire_baseline(&root);
    put(&root, "crates/solver/src/x.rs", "// pasco-lint: allow(no-such-rule)\nfn f() {}\n");
    let report = lint(&root);
    assert_eq!(rules_of(&report), vec!["bad-pragma"]);
}

// ---- wire-tag-discipline -------------------------------------------------

#[test]
fn renumbered_tag_against_manifest_fires() {
    let root = scratch("wire-renumber");
    seed_wire_baseline(&root);
    // Doctor the manifest: the committed registry says Hello was 1.
    put(&root, "WIRE_TAGS.manifest", "framekind Hello 1\nqueryerror ERR_A 0\n");
    let report = lint(&root);
    assert_eq!(rules_of(&report), vec!["wire-tag-discipline"]);
    assert!(report.findings[0].message.contains("renumbered"), "{}", report.findings[0].message);
}

#[test]
fn new_variant_not_appended_to_manifest_fires() {
    let root = scratch("wire-append");
    seed_wire_baseline(&root);
    put(
        &root,
        "crates/core/src/api/envelope.rs",
        "pub enum FrameKind { Hello = 0, Fresh = 1 }\n\
         pub const G0: &str = \"50 53 43 4f 01 00 00\";\n\
         pub const G1: &str = \"50 53 43 4f 01 00 01\";\n",
    );
    let report = lint(&root);
    assert_eq!(rules_of(&report), vec!["wire-tag-discipline"]);
    assert!(
        report.findings[0].message.contains("must be appended"),
        "{}",
        report.findings[0].message
    );
}

#[test]
fn frame_kind_without_golden_fixture_fires() {
    let root = scratch("wire-fixture");
    seed_wire_baseline(&root);
    // Drop the fixture string but keep the declaration and manifest.
    put(&root, "crates/core/src/api/envelope.rs", "pub enum FrameKind { Hello = 0 }\n");
    let report = lint(&root);
    assert_eq!(rules_of(&report), vec!["wire-tag-discipline"]);
    assert!(
        report.findings[0].message.contains("no golden-bytes fixture"),
        "{}",
        report.findings[0].message
    );
}

#[test]
fn missing_manifest_fires() {
    let root = scratch("wire-missing");
    seed_wire_baseline(&root);
    fs::remove_file(root.join("WIRE_TAGS.manifest")).unwrap();
    let report = lint(&root);
    assert_eq!(rules_of(&report), vec!["wire-tag-discipline"]);
    assert!(report.findings[0].file == "WIRE_TAGS.manifest");
}

// ---- unvalidated-wire-length ---------------------------------------------

#[test]
fn wire_length_reaching_alloc_unchecked_fires_and_pragma_suppresses() {
    let root = scratch("taint-len");
    seed_wire_baseline(&root);
    put(
        &root,
        "crates/solver/src/codec.rs",
        "pub fn decode_msg(bytes: &[u8]) -> Vec<u8> {\n\
             let len = bytes[0] as usize;\n\
             let v = Vec::with_capacity(len);\n\
             v\n\
         }\n",
    );
    let report = lint(&root);
    assert_eq!(rules_of(&report), vec!["unvalidated-wire-length"]);
    assert_eq!(report.findings[0].line, 3);

    put(
        &root,
        "crates/solver/src/codec.rs",
        "pub fn decode_msg(bytes: &[u8]) -> Vec<u8> {\n\
             let len = bytes[0] as usize;\n\
             // Bounded by the one-byte read above: max 255 elements.\n\
             // pasco-lint: allow(unvalidated-wire-length)\n\
             let v = Vec::with_capacity(len);\n\
             v\n\
         }\n",
    );
    let report = lint(&root);
    assert!(report.is_clean(), "{}", report.to_human());
    assert_eq!(report.suppressed.len(), 1);
}

#[test]
fn wire_length_behind_dominating_bounds_check_is_fine() {
    let root = scratch("taint-len-clean");
    seed_wire_baseline(&root);
    put(
        &root,
        "crates/solver/src/codec.rs",
        "pub fn decode_msg(bytes: &[u8], max: usize) -> Vec<u8> {\n\
             let len = bytes[0] as usize;\n\
             if len > max {\n\
                 return Vec::new();\n\
             }\n\
             let v = Vec::with_capacity(len);\n\
             v\n\
         }\n",
    );
    assert!(lint(&root).is_clean(), "{}", lint(&root).to_human());
}

// ---- tainted-cast-truncation ---------------------------------------------

#[test]
fn narrowing_cast_of_wire_value_fires_try_from_is_fine() {
    let root = scratch("taint-cast");
    seed_wire_baseline(&root);
    put(
        &root,
        "crates/solver/src/codec.rs",
        "pub fn decode_id(bytes: &[u8]) -> u16 {\n\
             let wide = bytes[0];\n\
             wide as u16\n\
         }\n",
    );
    let report = lint(&root);
    assert_eq!(rules_of(&report), vec!["tainted-cast-truncation"]);
    assert_eq!(report.findings[0].line, 3);

    put(
        &root,
        "crates/solver/src/codec.rs",
        "pub fn decode_id(bytes: &[u8]) -> u16 {\n\
             let wide = bytes[0];\n\
             u16::try_from(wide).unwrap_or(0)\n\
         }\n",
    );
    assert!(lint(&root).is_clean(), "{}", lint(&root).to_human());
}

// ---- fp-reduction-order --------------------------------------------------

#[test]
fn parallel_float_sum_fires_sequential_and_minmax_are_fine() {
    let root = scratch("fp-order");
    seed_wire_baseline(&root);
    put(
        &root,
        "crates/graph/src/score.rs",
        "pub fn total(xs: &[f64]) -> f64 {\n\
             xs.par_iter().map(|x| x * 2.0).sum()\n\
         }\n",
    );
    let report = lint(&root);
    assert_eq!(rules_of(&report), vec!["fp-reduction-order"]);
    assert_eq!(report.findings[0].line, 2);

    put(
        &root,
        "crates/graph/src/score.rs",
        "pub fn total(xs: &[f64]) -> f64 {\n\
             xs.iter().sum()\n\
         }\n\
         pub fn peak(xs: &[f64]) -> f64 {\n\
             xs.par_iter().copied().reduce(|| f64::MIN, f64::max)\n\
         }\n",
    );
    assert!(lint(&root).is_clean(), "{}", lint(&root).to_human());
}

// ---- self-hosting --------------------------------------------------------

/// The gate CI enforces: the workspace at `HEAD` must be `--deny-all`
/// clean. Every suppression present must be a deliberate pragma, so the
/// suppressed count is also pinned loosely (> 0 proves pragmas engage on
/// real code; a large jump should be a conscious review decision).
#[test]
fn real_workspace_is_deny_all_clean_at_head() {
    let start = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(start.parent().unwrap().parent().unwrap())
        .expect("workspace root above crates/lint");
    let (report, _, _, dataflow) =
        pasco_lint::engine::run_workspace_full(&root, pasco_lint::engine::Options::default())
            .unwrap();
    assert!(report.is_clean(), "workspace lint regressions:\n{}", report.to_human());
    assert!(report.files_scanned > 50, "walked only {} files", report.files_scanned);
    assert!(!report.suppressed.is_empty(), "expected at least one justified pragma in-tree");

    // The three dataflow rules are registered.
    let slugs = pasco_lint::rules::rule_slugs();
    for slug in ["unvalidated-wire-length", "tainted-cast-truncation", "fp-reduction-order"] {
        assert!(slugs.contains(&slug), "`{slug}` missing from the rule table");
    }

    // The marquee proof obligation: the frame-payload preallocation in
    // the transport (`Vec::with_capacity(header.payload_len as usize)`)
    // is *checked* — the sink is recorded, and the analysis proves the
    // oversize guard dominates it (tainted = false). A clean report
    // alone can't distinguish "proved safe" from "never looked".
    let payload_alloc = dataflow
        .sinks
        .iter()
        .find(|s| {
            s.file.contains("transport") && s.kind == "alloc" && s.expr.contains("payload_len")
        })
        .expect("transport payload_len alloc sink missing from the dataflow report");
    assert!(!payload_alloc.tainted, "transport payload alloc no longer proves clean");
    assert!(dataflow.fns_analyzed > 500, "dataflow walked only {} fns", dataflow.fns_analyzed);
}

/// Every `FrameKind` variant declared in the real envelope module is
/// pinned by a golden-bytes fixture somewhere in the real tree — the
/// self-run above would fail otherwise, but this asserts the positive
/// direction too: the fixture scan actually finds all committed kinds.
#[test]
fn real_workspace_golden_fixtures_cover_all_frame_kinds() {
    let start = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(start.parent().unwrap().parent().unwrap()).unwrap();
    let manifest = fs::read_to_string(root.join("WIRE_TAGS.manifest")).unwrap();
    let committed: Vec<&str> = manifest
        .lines()
        .filter(|l| l.starts_with("framekind "))
        .map(|l| l.split_whitespace().nth(1).unwrap())
        .collect();
    // The envelope declares 12 frame kinds as of this PR; the manifest
    // must list them all, and the lint run (clean, above) proves each has
    // a fixture. Appending new kinds should grow this list.
    assert!(committed.len() >= 12, "manifest lists only {} frame kinds", committed.len());
    for name in ["Hello", "LoadPartition", "BuildShard", "ShardQuery", "ShardTopK", "WorkerStats"] {
        assert!(committed.contains(&name), "`{name}` missing from manifest");
    }
}
