//! A lightweight item parser over the lexed token stream: stage one of
//! the interprocedural pass.
//!
//! The lexer gives rules a clean code view; this module gives them a
//! *structural* one. From each file's tokens it extracts:
//!
//! * `fn` items — name, enclosing `impl`/`trait` context, visibility,
//!   `async`ness, parameter and return types (as token text), and
//!   whether the item sits in test code;
//! * `struct` field types — the key that lets lock receivers resolve to
//!   a *lock class* (`self.inflight` → the `Mutex<InFlightIndex>` field
//!   → class `InFlightIndex`) instead of a spelling;
//! * per-function body summaries — every call expression (with a
//!   receiver hint and the set of lock classes held at the call site),
//!   every lock acquisition (`Mutex::lock`, `RwLock::read`/`write` with
//!   empty argument lists, which is what distinguishes them from
//!   `io::Read::read`), every panic site (`unwrap`/`expect`/panic-family
//!   macros/indexing), and every lexically blocking operation
//!   (`thread::sleep`, the blocking framed-I/O helpers, channel `recv`,
//!   condvar `wait`, thread `join`).
//!
//! It is a *heuristic* parser: no name resolution across `use` maps, no
//! real type inference. The compromises that matter are documented on
//! [`crate::callgraph`] (which consumes these summaries) and in
//! `README.md` §Static analysis. Guard lifetimes follow Rust's drop
//! rules approximately: a `let`-bound guard lives to the end of its
//! enclosing brace scope (or an explicit `drop(name)`); a temporary
//! guard (`x.lock().expect(..).get(v)`) lives to the end of its
//! statement. Calls inside a `spawn(...)` argument run on another
//! thread, so they inherit no held locks and are flagged
//! [`CallSite::spawned`].

use crate::lexer::{Lexed, Tok, Token};
use crate::source::SourceFile;

/// How a call site names its callee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Recv {
    /// `self.method(…)` or a typed field chain — `ty` is the resolved
    /// receiver type name when the chain resolved, else `None`.
    Method {
        /// Resolved receiver type (e.g. `LruShard` for
        /// `shard.lock().expect(..).get(v)`), when the chain resolved.
        ty: Option<String>,
    },
    /// `Type::assoc(…)` — `Self::…` is rewritten to the impl type.
    Path(String),
    /// A free call, `helper(…)`.
    Free,
}

/// One call expression inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// 1-based line.
    pub line: u32,
    /// Callee name (raw-identifier prefix stripped).
    pub name: String,
    /// Receiver hint for resolution.
    pub recv: Recv,
    /// Lock classes held when the call is made.
    pub held: Vec<String>,
    /// True when the call happens inside a `spawn(…)` argument: it runs
    /// on another thread, so blocking reachability must not follow it
    /// (panic reachability still does — a panicked pool thread is still
    /// a serving fault).
    pub spawned: bool,
}

/// One lock acquisition (`.lock()`, `.read()`, `.write()` with empty
/// argument lists).
#[derive(Clone, Debug)]
pub struct LockSite {
    /// 1-based line.
    pub line: u32,
    /// The lock class: the guarded type when the receiver resolved
    /// (`LruShard`), else the receiver spelling qualified by the
    /// enclosing type (`QuerySession::shard`).
    pub class: String,
    /// Lock classes already held when this one is acquired — the edges
    /// of the lock-order graph.
    pub held: Vec<String>,
    /// `lock`, `read`, or `write`.
    pub op: &'static str,
    /// True when acquired inside a `spawn(…)` argument (another
    /// thread's acquisition).
    pub spawned: bool,
}

/// What kind of panic a panic site is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()`.
    Unwrap,
    /// `.expect(…)`.
    Expect,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    Macro,
    /// `expr[…]` indexing or slicing — recorded in the symbol table and
    /// the callgraph dump; promoted to findings only under
    /// `--strict-indexing` (see `README.md` for why).
    Index,
}

/// One potential panic in a function body.
#[derive(Clone, Debug)]
pub struct PanicSite {
    /// 1-based line.
    pub line: u32,
    /// What panics.
    pub kind: PanicKind,
    /// Display text (`.unwrap()`, `panic!`, `[…]`, …).
    pub what: String,
}

/// One lexically blocking operation in a function body.
#[derive(Clone, Debug)]
pub struct BlockingSite {
    /// 1-based line.
    pub line: u32,
    /// Display text (`thread::sleep`, `read_envelope`, `.recv()`, …).
    pub what: String,
    /// Bare callee name (`sleep`, `recv`, `wait`, …) — the callgraph
    /// uses it to drop dotted candidates that actually resolve to a
    /// workspace method (`Epoll::wait` is an edge, not a `Condvar`).
    pub name: String,
    /// True when this came from a dotted method call (`.wait(…)`), so
    /// resolution may reclassify it; prefix forms (`thread::sleep`) and
    /// the framed-I/O helpers are unconditionally blocking.
    pub dotted: bool,
    /// Lock classes held at the site — a lock held across a blocking op
    /// makes that class *contended*.
    pub held: Vec<String>,
    /// True when inside a `spawn(…)` argument.
    pub spawned: bool,
}

/// One parsed function item with its body summary.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Function name (raw-identifier prefix stripped).
    pub name: String,
    /// Enclosing `impl` type (last path segment), if any.
    pub self_ty: Option<String>,
    /// Trait being implemented (`impl Trait for Type`) or declared
    /// (`trait Trait { fn … }`), if any.
    pub trait_name: Option<String>,
    /// True when the first parameter is `self`.
    pub is_method: bool,
    /// True for `pub`-prefixed items (any `pub(...)` restriction counts).
    pub is_pub: bool,
    /// True for `async fn`.
    pub is_async: bool,
    /// True when the item sits in test code (or a wholly-test file).
    pub is_test: bool,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// `(name, type text)` for simple typed parameters.
    pub params: Vec<(String, String)>,
    /// Return type text (empty when none).
    pub ret: String,
    /// Call expressions, in body order.
    pub calls: Vec<CallSite>,
    /// Lock acquisitions, in body order.
    pub acquires: Vec<LockSite>,
    /// Panic sites, in body order.
    pub panics: Vec<PanicSite>,
    /// Lexically blocking operations, in body order.
    pub blocking: Vec<BlockingSite>,
    /// Token span `[from, to)` of the body (inside the braces) in the
    /// file's token stream, for stage-three CFG construction. `None` for
    /// bodyless declarations (trait methods).
    pub body: Option<(usize, usize)>,
}

/// One parsed `struct` with named fields.
#[derive(Clone, Debug)]
pub struct StructItem {
    /// Struct name.
    pub name: String,
    /// `(field, type text)` pairs.
    pub fields: Vec<(String, String)>,
}

/// Everything stage one extracts from one file.
#[derive(Clone, Debug, Default)]
pub struct FileItems {
    /// Workspace-relative path.
    pub rel: String,
    /// Function items (test items included, flagged `is_test`).
    pub fns: Vec<FnItem>,
    /// Struct field tables.
    pub structs: Vec<StructItem>,
}

/// Blocking framed-I/O helpers and std blocking patterns: one of these
/// reachable from the reactor stalls every connection the loop owns.
pub const BLOCKING_IO_CALLS: &[&str] =
    &["read_envelope", "write_envelope", "poll_envelope", "read_exact", "read_to_end", "write_all"];

/// Common std/iterator method names that must not resolve into workspace
/// impls on an *untyped* receiver: `opt.map(…)` is `Option::map`, not
/// `DistVec::map`, even though the workspace defines a `map`. A typed
/// receiver still resolves precisely.
pub const COMMON_STD_METHODS: &[&str] = &[
    "map",
    "map_err",
    "filter",
    "filter_map",
    "flat_map",
    "and_then",
    "or_else",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok_or",
    "ok_or_else",
    "take",
    "replace",
    "insert",
    "remove",
    "get",
    "get_mut",
    "entry",
    "push",
    "pop",
    "len",
    "is_empty",
    "clear",
    "iter",
    "iter_mut",
    "into_iter",
    "collect",
    "clone",
    "to_owned",
    "to_string",
    "to_vec",
    "min",
    "max",
    "sum",
    "count",
    "find",
    "position",
    "retain",
    "extend",
    "next",
    "peekable",
    "peek",
    "contains",
    "contains_key",
    "starts_with",
    "ends_with",
    "split",
    "join",
    "trim",
    "parse",
    "as_ref",
    "as_mut",
    "as_slice",
    "as_str",
    "as_bytes",
    "flush",
    "read",
    "write",
    "send",
    "store",
    "load",
    "fetch_add",
    "fetch_sub",
    "swap",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "hash",
    "drop",
    "from",
    "into",
    "try_from",
    "try_into",
    "default",
    "min_by",
    "max_by",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "binary_search",
    "binary_search_by",
    "chain",
    "zip",
    "enumerate",
    "rev",
    "skip",
    "step_by",
    "windows",
    "chunks",
    "first",
    "last",
    "any",
    "all",
    "fold",
    "flatten",
    "copied",
    "cloned",
    "abs",
    "sqrt",
    "powi",
    "powf",
    "floor",
    "ceil",
    "round",
    "clamp",
    "saturating_sub",
    "saturating_add",
    "wrapping_add",
    "wrapping_mul",
    "checked_sub",
    "checked_add",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "ok",
    "err",
    "expect",
    "unwrap",
    "resize",
    "reserve",
    "truncate",
    "drain",
    "dedup",
    "keys",
    "values",
    "split_off",
    "extend_from_slice",
    "to_le_bytes",
    "from_le_bytes",
    "elapsed",
    "duration_since",
    "saturating_duration_since",
    "checked_duration_since",
    "as_nanos",
    "as_micros",
    "as_millis",
    "as_secs",
    "subsec_nanos",
    "is_zero",
];

const KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "return", "loop", "else", "move", "in", "as", "let", "mut",
    "ref", "break", "continue", "await", "dyn", "unsafe", "async", "fn", "impl", "trait", "struct",
    "enum", "mod", "use", "pub", "where", "const", "static", "type", "crate", "super", "box",
    "yield", "union", "macro",
];

fn is_keyword(w: &str) -> bool {
    KEYWORDS.contains(&w)
}

/// Strips a raw-identifier prefix: `r#fn` and `fn` name the same item.
fn norm_ident(w: &str) -> &str {
    w.strip_prefix("r#").unwrap_or(w)
}

/// Parses one lexed, classified file into its item table.
pub fn parse_file(file: &SourceFile) -> FileItems {
    Parser::new(&file.lexed, file, &[]).run(&file.rel)
}

/// Parses a file with a *workspace-wide* struct table available to
/// receiver typing, so `self.field.method()` resolves even when the
/// field's struct is declared in another file. The engine collects
/// `world` with a first pass of [`parse_file`] over every file.
pub fn parse_file_with(file: &SourceFile, world: &[StructItem]) -> FileItems {
    Parser::new(&file.lexed, file, world).run(&file.rel)
}

/// The enclosing `impl`/`trait` context of the current token position.
#[derive(Clone, Debug)]
struct Ctx {
    self_ty: Option<String>,
    trait_name: Option<String>,
    /// Brace depth *before* the context's `{` was entered; the context
    /// pops when depth returns to this value.
    close_depth: u32,
}

/// A function signature visible to body resolution: collected for the
/// whole file *before* any body is scanned, so a call to a helper
/// defined further down still types.
struct FnSig {
    name: String,
    self_ty: Option<String>,
    ret: String,
}

struct Parser<'a> {
    toks: &'a [Token],
    file: &'a SourceFile,
    /// Struct field tables from the whole workspace (may be empty):
    /// consulted by receiver typing after this file's own structs.
    world: &'a [StructItem],
    i: usize,
    depth: u32,
    ctx: Vec<Ctx>,
    out: FileItems,
    /// Headers parsed in pass one, with their body token spans; bodies
    /// are scanned in pass two against the complete signature table.
    pending: Vec<(FnItem, Option<(usize, usize)>)>,
}

impl<'a> Parser<'a> {
    fn new(lexed: &'a Lexed, file: &'a SourceFile, world: &'a [StructItem]) -> Self {
        Parser {
            toks: &lexed.tokens,
            file,
            world,
            i: 0,
            depth: 0,
            ctx: Vec::new(),
            out: FileItems::default(),
            pending: Vec::new(),
        }
    }

    fn word(&self, i: usize) -> Option<&str> {
        self.toks.get(i).and_then(Token::word)
    }

    fn punct(&self, i: usize, c: char) -> bool {
        self.toks.get(i).is_some_and(|t| t.is_punct(c))
    }

    fn line(&self, i: usize) -> u32 {
        self.toks.get(i).map_or(0, |t| t.line)
    }

    /// Advances past a balanced `(…)` / `[…]` / `{…}` group whose opener
    /// is at `i`; returns the index one past the closer.
    fn skip_balanced(&self, i: usize, open: char, close: char) -> usize {
        let mut depth = 0i64;
        let mut j = i;
        while j < self.toks.len() {
            if self.punct(j, open) {
                depth += 1;
            } else if self.punct(j, close) {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        j
    }

    /// Advances past a balanced generic-argument run whose `<` is at `i`.
    /// `->` and `=>` do not close angles; `>>` counts twice (two puncts).
    fn skip_angles(&self, i: usize) -> usize {
        let mut depth = 0i64;
        let mut j = i;
        while j < self.toks.len() {
            if self.punct(j, '<') {
                depth += 1;
            } else if self.punct(j, '>') {
                let arrow = j > 0 && (self.punct(j - 1, '-') || self.punct(j - 1, '='));
                if !arrow {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
            } else if self.punct(j, '(') {
                j = self.skip_balanced(j, '(', ')');
                continue;
            } else if self.punct(j, ';') || self.punct(j, '{') {
                // Unterminated (a stray `<` comparison): bail out.
                return i + 1;
            }
            j += 1;
        }
        j
    }

    /// The text of tokens `[from, to)`, space-free for types
    /// (`Mutex<InFlightIndex>`), used as resolvable type text.
    fn type_text(&self, from: usize, to: usize) -> String {
        let mut s = String::new();
        for t in &self.toks[from..to.min(self.toks.len())] {
            match &t.tok {
                Tok::Word(w) => {
                    if s.chars().last().is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
                        s.push(' ');
                    }
                    s.push_str(w);
                }
                Tok::Punct(p) => s.push(*p),
            }
        }
        s
    }

    fn run(mut self, rel: &str) -> FileItems {
        self.out.rel = rel.to_owned();
        while self.i < self.toks.len() {
            match self.word(self.i) {
                Some("impl") => self.enter_impl(),
                Some("trait") => self.enter_trait(),
                Some("struct") => self.parse_struct(),
                Some("fn") => self.parse_fn(),
                _ => {
                    if self.punct(self.i, '{') {
                        self.depth += 1;
                    } else if self.punct(self.i, '}') {
                        self.depth = self.depth.saturating_sub(1);
                        while self.ctx.last().is_some_and(|c| c.close_depth >= self.depth) {
                            self.ctx.pop();
                        }
                    }
                    self.i += 1;
                }
            }
        }
        // Pass two: scan bodies against the full header/struct tables,
        // so forward references (`self.shard_of(k).lock()` calling a
        // helper defined further down the file) still resolve.
        let pending = std::mem::take(&mut self.pending);
        let sigs: Vec<FnSig> = pending
            .iter()
            .map(|(f, _)| FnSig {
                name: f.name.clone(),
                self_ty: f.self_ty.clone(),
                ret: f.ret.clone(),
            })
            .collect();
        let mut fns = Vec::with_capacity(pending.len());
        for (mut item, span) in pending {
            item.body = span;
            if let Some((from, to)) = span {
                BodyScan::new(&self, &mut item, from, to, &sigs).run();
            }
            fns.push(item);
        }
        self.out.fns = fns;
        self.out
    }

    /// Reads a type path starting at `i`: `a::b::C<…>` — returns
    /// (index past it, last plain segment).
    fn read_type_path(&self, mut i: usize) -> (usize, Option<String>) {
        let mut last = None;
        loop {
            // Leading `&`, `dyn`, lifetime words pass through.
            while self.punct(i, '&') || self.punct(i, '\'') {
                i += 1;
            }
            match self.word(i) {
                Some("dyn" | "mut" | "const") => {
                    i += 1;
                    continue;
                }
                Some(w) => {
                    last = Some(norm_ident(w).to_owned());
                    i += 1;
                }
                None => return (i, last),
            }
            if self.punct(i, '<') {
                i = self.skip_angles(i);
            }
            if self.punct(i, ':') && self.punct(i + 1, ':') {
                i += 2;
                continue;
            }
            return (i, last);
        }
    }

    fn enter_impl(&mut self) {
        let mut j = self.i + 1;
        if self.punct(j, '<') {
            j = self.skip_angles(j);
        }
        let (after_a, path_a) = self.read_type_path(j);
        j = after_a;
        let (self_ty, trait_name) = if self.word(j) == Some("for") {
            let (after_b, path_b) = self.read_type_path(j + 1);
            j = after_b;
            (path_b, path_a)
        } else {
            (path_a, None)
        };
        // Skip a where clause to the body.
        while j < self.toks.len() && !self.punct(j, '{') && !self.punct(j, ';') {
            j += 1;
        }
        if self.punct(j, '{') {
            self.ctx.push(Ctx { self_ty, trait_name, close_depth: self.depth });
            self.depth += 1;
            self.i = j + 1;
        } else {
            self.i = j + 1;
        }
    }

    fn enter_trait(&mut self) {
        let name = self.word(self.i + 1).map(|w| norm_ident(w).to_owned());
        let mut j = self.i + 2;
        while j < self.toks.len() && !self.punct(j, '{') && !self.punct(j, ';') {
            if self.punct(j, '<') {
                j = self.skip_angles(j);
                continue;
            }
            j += 1;
        }
        if self.punct(j, '{') {
            self.ctx.push(Ctx { self_ty: None, trait_name: name, close_depth: self.depth });
            self.depth += 1;
            self.i = j + 1;
        } else {
            self.i = j + 1;
        }
    }

    fn parse_struct(&mut self) {
        let Some(name) = self.word(self.i + 1).map(|w| norm_ident(w).to_owned()) else {
            self.i += 1;
            return;
        };
        let mut j = self.i + 2;
        if self.punct(j, '<') {
            j = self.skip_angles(j);
        }
        while j < self.toks.len()
            && !self.punct(j, '{')
            && !self.punct(j, ';')
            && !self.punct(j, '(')
        {
            j += 1;
        }
        if !self.punct(j, '{') {
            // Tuple or unit struct: no named fields to record.
            self.i = j + 1;
            return;
        }
        let end = self.skip_balanced(j, '{', '}');
        let mut fields = Vec::new();
        let mut k = j + 1;
        while k < end - 1 {
            // Skip attributes and visibility.
            if self.punct(k, '#') && self.punct(k + 1, '[') {
                k = self.skip_balanced(k + 1, '[', ']');
                continue;
            }
            if self.word(k) == Some("pub") {
                k += 1;
                if self.punct(k, '(') {
                    k = self.skip_balanced(k, '(', ')');
                }
                continue;
            }
            let (Some(fname), true) = (self.word(k), self.punct(k + 1, ':')) else {
                k += 1;
                continue;
            };
            // Type runs to the next top-level `,` or the closing `}`.
            let ty_from = k + 2;
            let mut t = ty_from;
            while t < end - 1 {
                if self.punct(t, '<') {
                    t = self.skip_angles(t);
                    continue;
                }
                if self.punct(t, '(') {
                    t = self.skip_balanced(t, '(', ')');
                    continue;
                }
                if self.punct(t, '[') {
                    t = self.skip_balanced(t, '[', ']');
                    continue;
                }
                if self.punct(t, ',') {
                    break;
                }
                t += 1;
            }
            fields.push((norm_ident(fname).to_owned(), self.type_text(ty_from, t)));
            k = t + 1;
        }
        self.out.structs.push(StructItem { name, fields });
        self.i = end;
    }

    fn parse_fn(&mut self) {
        let fn_idx = self.i;
        let line = self.line(fn_idx);
        // Qualifiers behind the `fn` keyword.
        let mut is_pub = false;
        let mut is_async = false;
        let mut b = fn_idx;
        while b > 0 {
            b -= 1;
            match self.word(b) {
                Some("async") => is_async = true,
                Some("const" | "unsafe" | "extern") => {}
                Some("pub") => {
                    is_pub = true;
                    break;
                }
                Some("crate" | "super" | "in" | "self") => {}
                _ if self.punct(b, ')') || self.punct(b, '(') => {}
                _ => break,
            }
        }
        let Some(name) = self.word(fn_idx + 1).map(|w| norm_ident(w).to_owned()) else {
            self.i += 1;
            return;
        };
        let mut j = fn_idx + 2;
        if self.punct(j, '<') {
            j = self.skip_angles(j);
        }
        if !self.punct(j, '(') {
            self.i = j;
            return;
        }
        let params_end = self.skip_balanced(j, '(', ')');
        let (params, is_method) = self.parse_params(j + 1, params_end - 1);
        j = params_end;
        // Return type.
        let mut ret = String::new();
        if self.punct(j, '-') && self.punct(j + 1, '>') {
            let from = j + 2;
            let mut t = from;
            while t < self.toks.len() {
                if self.punct(t, '<') {
                    t = self.skip_angles(t);
                    continue;
                }
                if self.punct(t, '(') {
                    t = self.skip_balanced(t, '(', ')');
                    continue;
                }
                if self.punct(t, '{') || self.punct(t, ';') || self.word(t) == Some("where") {
                    break;
                }
                t += 1;
            }
            ret = self.type_text(from, t);
            j = t;
        }
        // Where clause.
        while j < self.toks.len() && !self.punct(j, '{') && !self.punct(j, ';') {
            if self.punct(j, '<') {
                j = self.skip_angles(j);
                continue;
            }
            j += 1;
        }
        let ctx = self.ctx.last().cloned();
        let item = FnItem {
            name,
            self_ty: ctx.as_ref().and_then(|c| c.self_ty.clone()),
            trait_name: ctx.as_ref().and_then(|c| c.trait_name.clone()),
            is_method,
            is_pub,
            is_async,
            is_test: self.file.is_test_line(line),
            line,
            params,
            ret,
            calls: Vec::new(),
            acquires: Vec::new(),
            panics: Vec::new(),
            blocking: Vec::new(),
            body: None,
        };
        if self.punct(j, '{') {
            let body_end = self.skip_balanced(j, '{', '}');
            self.pending.push((item, Some((j + 1, body_end.saturating_sub(1)))));
            self.i = body_end;
        } else {
            self.pending.push((item, None));
            self.i = j + 1;
        }
    }

    /// Parses a parameter list `[from, to)`: simple `name: Type` pairs
    /// plus whether a leading `self` makes this a method.
    fn parse_params(&self, from: usize, to: usize) -> (Vec<(String, String)>, bool) {
        let mut params = Vec::new();
        let mut is_method = false;
        let mut k = from;
        let mut first = true;
        while k < to {
            // One parameter: up to the next top-level `,`.
            let mut t = k;
            let mut colon = None;
            while t < to {
                if self.punct(t, '<') {
                    t = self.skip_angles(t);
                    continue;
                }
                if self.punct(t, '(') {
                    t = self.skip_balanced(t, '(', ')');
                    continue;
                }
                if self.punct(t, '[') {
                    t = self.skip_balanced(t, '[', ']');
                    continue;
                }
                if self.punct(t, ',') {
                    break;
                }
                if colon.is_none() && self.punct(t, ':') {
                    colon = Some(t);
                }
                t += 1;
            }
            if first {
                let mut s = k;
                while s < t && colon != Some(s) {
                    if self.word(s) == Some("self") {
                        is_method = true;
                        break;
                    }
                    s += 1;
                }
            }
            if let Some(c) = colon {
                // Simple `name: Type` (possibly `mut name: Type`).
                let pname = match (self.word(c.wrapping_sub(1)), c > k) {
                    (Some(w), true) if !is_keyword(w) || w == "self" => {
                        Some(norm_ident(w).to_owned())
                    }
                    _ => None,
                };
                if let Some(pname) = pname {
                    // Only a *simple* pattern: `name` or `mut name`.
                    let lead_ok = c - k <= 2 && (c - k == 1 || self.word(k) == Some("mut"));
                    if lead_ok {
                        params.push((pname, self.type_text(c + 1, t)));
                    }
                }
            }
            first = false;
            k = t + 1;
        }
        (params, is_method)
    }
}

/// One `let`-bound lock guard (name → class) living at a brace depth.
struct GuardBinding {
    name: String,
    class: String,
    depth: u32,
    /// Token index where the binding was created (for spawn filtering).
    at: usize,
}

/// Scans one function body for calls, locks, panics, and blocking ops.
struct BodyScan<'p, 'a> {
    p: &'p Parser<'a>,
    item: &'p mut FnItem,
    sigs: &'p [FnSig],
    from: usize,
    to: usize,
    depth: u32,
    guards: Vec<GuardBinding>,
    /// Statement-scoped temporary guards: `(class, token index)`.
    temps: Vec<(String, usize)>,
    /// Locals with a known type — ascribed (`let x: Ty = …`) or
    /// struct-literal (`let x = Ty { … }`) — as `(name, type, depth)`.
    locals: Vec<(String, String, u32)>,
    /// A `let` statement in progress: `Some(simple name)` once `let
    /// [mut] name =` was seen, consumed by the first lock acquisition in
    /// its initializer.
    pending_let: Option<String>,
    /// Stack of `(paren close index, entry token index)` for
    /// `spawn(…)` argument regions.
    spawns: Vec<(usize, usize)>,
}

impl<'p, 'a> BodyScan<'p, 'a> {
    fn new(
        p: &'p Parser<'a>,
        item: &'p mut FnItem,
        from: usize,
        to: usize,
        sigs: &'p [FnSig],
    ) -> Self {
        BodyScan {
            p,
            item,
            sigs,
            from,
            to,
            depth: 0,
            guards: Vec::new(),
            temps: Vec::new(),
            locals: Vec::new(),
            pending_let: None,
            spawns: Vec::new(),
        }
    }

    /// True when the expression after a `lock()/read()/write()` call
    /// (token index just past its `()`) still evaluates to the guard:
    /// the chain ends, or only `Result`-unwrapping adapters follow. In
    /// `….lock().unwrap_or_else(…).register(x)` the statement binds
    /// `register`'s return, so its `let` is *not* a guard binding.
    fn chain_yields_guard(&self, mut j: usize) -> bool {
        loop {
            if !self.p.punct(j, '.') {
                return true;
            }
            match self.p.word(j + 1) {
                Some("unwrap" | "expect" | "unwrap_or_else") if self.p.punct(j + 2, '(') => {
                    j = self.p.skip_balanced(j + 2, '(', ')');
                }
                _ => return false,
            }
        }
    }

    /// The spawn region the token index sits in, if any.
    fn spawn_region(&self, i: usize) -> Option<usize> {
        self.spawns.iter().rev().find(|&&(close, _)| i < close).map(|&(_, entry)| entry)
    }

    /// Lock classes held at token index `i`. Inside a spawn region only
    /// guards created inside that region count — the closure runs on
    /// another thread and inherits nothing.
    fn held_at(&self, i: usize) -> Vec<String> {
        let floor = self.spawn_region(i).unwrap_or(0);
        let mut held: Vec<String> = self
            .guards
            .iter()
            .filter(|g| g.at >= floor)
            .map(|g| g.class.clone())
            .chain(self.temps.iter().filter(|&&(_, at)| at >= floor).map(|(c, _)| c.clone()))
            .collect();
        held.dedup();
        held
    }

    fn run(mut self) {
        let mut i = self.from;
        while i < self.to {
            let t = &self.p.toks[i];
            match &t.tok {
                Tok::Punct('{') => {
                    self.depth += 1;
                    i += 1;
                }
                Tok::Punct('}') => {
                    self.depth = self.depth.saturating_sub(1);
                    let d = self.depth;
                    self.guards.retain(|g| g.depth <= d);
                    self.locals.retain(|(_, _, depth)| *depth <= d);
                    i += 1;
                }
                Tok::Punct(';') => {
                    self.temps.clear();
                    self.pending_let = None;
                    i += 1;
                }
                Tok::Punct('#') if self.p.punct(i + 1, '[') => {
                    i = self.p.skip_balanced(i + 1, '[', ']');
                }
                Tok::Punct('[') => {
                    // Indexing/slicing: `expr[…]` — previous token is a
                    // non-keyword word, `)`, or `]`.
                    let indexes = i > 0
                        && match &self.p.toks[i - 1].tok {
                            Tok::Word(w) => !is_keyword(w),
                            Tok::Punct(')' | ']') => true,
                            _ => false,
                        };
                    if indexes && !self.item.is_test {
                        self.item.panics.push(PanicSite {
                            line: t.line,
                            kind: PanicKind::Index,
                            what: "[…] indexing".to_owned(),
                        });
                    }
                    i += 1;
                }
                Tok::Word(w) => {
                    let w = w.clone();
                    i = self.on_word(i, &w);
                }
                _ => i += 1,
            }
        }
    }

    fn on_word(&mut self, i: usize, w: &str) -> usize {
        let line = self.p.line(i);
        // `let x = match rx.lock() { … }` binds `x` to the match
        // *result*, not the guard: control flow after `=` cancels the
        // pending binding, so the acquisition scopes as a statement
        // temporary instead.
        if matches!(w, "match" | "if" | "while" | "loop" | "for") {
            self.pending_let = None;
            return i + 1;
        }
        // `let [mut] name =` — remember the binding for guard scoping,
        // and type the local when the source spells the type out.
        if w == "let" {
            let mut j = i + 1;
            if self.p.word(j) == Some("mut") {
                j += 1;
            }
            if let Some(name) = self.p.word(j).filter(|n| !is_keyword(n)) {
                let name = norm_ident(name).to_owned();
                // `let name: Ty = …` — the ascription types the local.
                if self.p.punct(j + 1, ':') && !self.p.punct(j + 2, ':') {
                    let mut k = j + 2;
                    while k < self.p.toks.len() && !self.p.punct(k, '=') && !self.p.punct(k, ';') {
                        if self.p.punct(k, '<') {
                            k = self.p.skip_angles(k);
                        } else {
                            k += 1;
                        }
                    }
                    if self.p.punct(k, '=') {
                        self.locals.push((name.clone(), self.p.type_text(j + 2, k), self.depth));
                        self.pending_let = Some(name);
                    }
                    return i + 1;
                }
                // `==` is comparison, not binding.
                if self.p.punct(j + 1, '=') && !self.p.punct(j + 2, '=') {
                    // `let x = Ty { … }` — a struct literal types the
                    // local (and is never a guard binding).
                    let literal = self.p.word(j + 2).filter(|t| {
                        t.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                            && self.p.punct(j + 3, '{')
                    });
                    if let Some(t) = literal {
                        self.locals.push((name, norm_ident(t).to_owned(), self.depth));
                    } else {
                        // `let x = Ty::ctor(…)` / `let x = helper(…)` —
                        // type the local from the call's return type so
                        // later `x.method(…)` receivers resolve.
                        if let Some(t) = self.rhs_type(j + 2) {
                            self.locals.push((name.clone(), t, self.depth));
                        }
                        self.pending_let = Some(name);
                    }
                }
            }
            return i + 1;
        }
        // `drop(name)` releases a guard binding early.
        if w == "drop" && self.p.punct(i + 1, '(') {
            if let (Some(name), true) = (self.p.word(i + 2), self.p.punct(i + 3, ')')) {
                let name = norm_ident(name).to_owned();
                self.guards.retain(|g| g.name != name);
            }
            return i + 1;
        }
        // Macro invocation `name!(…)`: panic family becomes a panic
        // site; every macro's arguments still stream through this scan.
        if self.p.punct(i + 1, '!') {
            if matches!(w, "panic" | "unreachable" | "todo" | "unimplemented") && !self.item.is_test
            {
                self.item.panics.push(PanicSite {
                    line,
                    kind: PanicKind::Macro,
                    what: format!("{w}!"),
                });
            }
            return i + 2;
        }
        // Where does the argument list start (skipping a turbofish)?
        let mut call_paren = None;
        if self.p.punct(i + 1, '(') {
            call_paren = Some(i + 1);
        } else if self.p.punct(i + 1, ':') && self.p.punct(i + 2, ':') && self.p.punct(i + 3, '<') {
            let after = self.p.skip_angles(i + 3);
            if self.p.punct(after, '(') {
                call_paren = Some(after);
            }
        }
        let Some(paren) = call_paren else { return i + 1 };
        if is_keyword(w) {
            return i + 1;
        }

        let dotted = i > 0 && self.p.punct(i - 1, '.');
        let pathed = i > 1 && self.p.punct(i - 1, ':') && self.p.punct(i - 2, ':');
        let empty_args = self.p.punct(paren + 1, ')');

        // Lock acquisition?
        if dotted && empty_args && matches!(w, "lock" | "read" | "write") {
            let class = self.receiver_class(i - 1);
            let spawned = self.spawn_region(i).is_some();
            let held = self.held_at(i);
            // Same class acquired while already held is itself an edge
            // (class → class), which the cycle check reports.
            let op: &'static str = match w {
                "lock" => "lock",
                "read" => "read",
                _ => "write",
            };
            self.item.acquires.push(LockSite { line, class: class.clone(), held, op, spawned });
            match self.pending_let.take() {
                Some(name) if self.chain_yields_guard(paren + 2) => {
                    self.guards.push(GuardBinding { name, class, depth: self.depth, at: i });
                }
                // `let id = m.lock().…().register(x)` binds `register`'s
                // return, not the guard: scope it as a statement
                // temporary instead.
                _ => self.temps.push((class, i)),
            }
            return paren + 2;
        }

        // Panic sites.
        if dotted && !self.item.is_test && matches!(w, "unwrap" | "expect") {
            let kind = if w == "unwrap" { PanicKind::Unwrap } else { PanicKind::Expect };
            self.item.panics.push(PanicSite { line, kind, what: format!(".{w}(…)") });
            return i + 1;
        }

        // Blocking operations.
        if !self.item.is_test {
            let spawned = self.spawn_region(i).is_some();
            let site: Option<(String, bool)> = if w == "sleep" && pathed {
                Some(("thread::sleep".to_owned(), false))
            } else if BLOCKING_IO_CALLS.contains(&w) {
                Some((w.to_owned(), dotted))
            } else if dotted && matches!(w, "recv" | "recv_timeout") {
                Some((format!(".{w}()"), true))
            } else if dotted && matches!(w, "wait" | "wait_timeout" | "wait_while") {
                Some((format!("Condvar::{w}"), true))
            } else if dotted && w == "join" && empty_args {
                Some((".join()".to_owned(), true))
            } else if pathed && matches!(w, "connect" | "connect_timeout") {
                Some((w.to_owned(), false))
            } else if dotted
                && w == "send"
                // Only a *bounded* channel send blocks: type the
                // receiver — an unbounded `Sender` (or an untyped
                // receiver) stays silent.
                && self
                    .receiver_type(i - 1)
                    .is_some_and(|t| t.starts_with("SyncSender"))
            {
                Some((".send() on SyncSender".to_owned(), true))
            } else {
                None
            };
            if let Some((what, dotted)) = site {
                self.item.blocking.push(BlockingSite {
                    line,
                    what,
                    name: w.to_owned(),
                    dotted,
                    held: self.held_at(i),
                    spawned,
                });
            }
        }

        // Spawn region: the closure inside runs on another thread.
        if w == "spawn" {
            let close = self.p.skip_balanced(paren, '(', ')');
            self.spawns.push((close, i));
            return paren + 1; // walk *into* the argument
        }

        // A call site.
        let recv = if dotted {
            Recv::Method { ty: self.receiver_type(i - 1) }
        } else if pathed {
            // Capitalized path "calls" are tuple enum-variant
            // constructors (`QueryResponse::Score(…)`): data
            // construction, not call edges.
            if w.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                return i + 1;
            }
            match self.p.word(i.wrapping_sub(3)) {
                Some(ty) if !is_keyword(ty) => {
                    let ty = norm_ident(ty).to_owned();
                    let ty =
                        if ty == "Self" { self.item.self_ty.clone().unwrap_or(ty) } else { ty };
                    Recv::Path(ty)
                }
                _ => Recv::Path(String::new()),
            }
        } else {
            // Capitalized free "calls" are tuple-struct / enum-variant
            // constructors (`Some(…)`, `Job { … }` aside): not edges.
            if w.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                return i + 1;
            }
            Recv::Free
        };
        self.item.calls.push(CallSite {
            line,
            name: norm_ident(w).to_owned(),
            recv,
            held: self.held_at(i),
            spawned: self.spawn_region(i).is_some(),
        });
        i + 1
    }

    /// Walks a receiver chain backwards from the `.` at `dot` and
    /// resolves its type through struct fields and known wrappers.
    /// Returns the resolved type name, if any.
    fn receiver_type(&self, dot: usize) -> Option<String> {
        let chain = self.chain_before(dot)?;
        self.resolve_chain(&chain)
    }

    /// The *lock class* of `…​.lock()` at the `.` index: the guarded
    /// type when resolvable, else the receiver spelling qualified by the
    /// enclosing impl/fn.
    fn receiver_class(&self, dot: usize) -> String {
        if let Some(chain) = self.chain_before(dot) {
            if let Some(ty) = self.resolve_chain(&chain) {
                return ty;
            }
            let spelled: Vec<&str> =
                chain.iter().map(|h| h.name.as_str()).filter(|n| *n != "self").collect();
            if !spelled.is_empty() {
                let owner = self.item.self_ty.clone().unwrap_or_else(|| self.item.name.clone());
                return format!("{owner}::{}", spelled.join("."));
            }
        }
        format!("{}::<expr>", self.item.self_ty.clone().unwrap_or_else(|| self.item.name.clone()))
    }

    /// One hop of a receiver chain, front-to-back: a name plus whether
    /// it was a call (`f(…)`) rather than a field/variable.
    fn chain_before(&self, dot: usize) -> Option<Vec<Hop>> {
        let mut hops: Vec<Hop> = Vec::new();
        let mut j = dot; // index of the `.`; look left of it
        loop {
            let mut k = j.checked_sub(1)?;
            // `…)` — a call hop: skip the args, the word before names it.
            let mut is_call = false;
            if self.p.punct(k, ')') {
                let open = self.open_of(k, '(', ')')?;
                k = open.checked_sub(1)?;
                is_call = true;
            } else if self.p.punct(k, ']') {
                // Indexing hop: skip brackets, keep walking (the element
                // type of a Vec<Mutex<T>> field is found by unwrapping).
                let open = self.open_of(k, '[', ']')?;
                k = open.checked_sub(1)?;
            }
            let name = self.p.word(k)?;
            if is_keyword(name) && name != "self" {
                return None;
            }
            hops.push(Hop { name: norm_ident(name).to_owned(), is_call });
            // Continue left past a `.`; `::` (path) or anything else ends
            // the chain.
            if k > 0 && self.p.punct(k - 1, '.') {
                j = k - 1;
                continue;
            }
            if k > 1 && self.p.punct(k - 1, ':') && self.p.punct(k - 2, ':') {
                // A path-rooted chain (`Type::new().x`): record the root.
                if let Some(root) = self.p.word(k - 3) {
                    if !is_keyword(root) {
                        hops.push(Hop { name: norm_ident(root).to_owned(), is_call: false });
                    }
                }
            }
            hops.reverse();
            return Some(hops);
        }
    }

    /// Index of the opener matching the closer at `close`.
    fn open_of(&self, close: usize, open_c: char, close_c: char) -> Option<usize> {
        let mut depth = 0i64;
        let mut k = close;
        loop {
            if self.p.punct(k, close_c) {
                depth += 1;
            } else if self.p.punct(k, open_c) {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            k = k.checked_sub(1)?;
        }
    }

    /// Resolves a chain's final type by walking struct fields, local
    /// parameter types, and method return types, unwrapping the usual
    /// containers (`Arc`, `Box`, `Option`, `Vec`, `Mutex`, …) along the
    /// way. Best-effort: `None` when any hop fails.
    fn resolve_chain(&self, hops: &[Hop]) -> Option<String> {
        let (first, rest) = hops.split_first()?;
        let mut ty: String = if first.name == "self" {
            self.item.self_ty.clone()?
        } else if first.is_call {
            // A free or path call hop: resolve through its return type.
            let candidates = self.sigs.iter().filter(|f| f.name == first.name);
            let mut rets = candidates.map(|f| f.ret.clone()).collect::<Vec<_>>();
            rets.dedup();
            match rets.as_slice() {
                [one] if !one.is_empty() => one.clone(),
                _ => return None,
            }
        } else if let Some(lt) =
            self.locals.iter().rev().find(|(n, _, _)| *n == first.name).map(|(_, t, _)| t.clone())
        {
            lt
        } else if let Some((_, pt)) = self.item.params.iter().find(|(n, _)| *n == first.name) {
            pt.clone()
        } else {
            return None;
        };
        for hop in rest {
            let base = base_type(&ty)?;
            if hop.is_call {
                ty = self.method_return(&base, &hop.name)?;
            } else {
                ty = self.field_type(&base, &hop.name)?;
            }
        }
        base_type(&ty)
    }

    /// The type of `ty.field`, from this file's struct tables first and
    /// the workspace-wide table second (when the engine supplied one).
    fn field_type(&self, ty: &str, field: &str) -> Option<String> {
        let exact = |structs: &[StructItem]| {
            structs
                .iter()
                .find(|s| s.name == ty)
                .and_then(|s| s.fields.iter().find(|(f, _)| f == field).map(|(_, t)| t.clone()))
        };
        if let Some(t) = exact(&self.p.out.structs) {
            return Some(t);
        }
        if let Some(t) = exact(self.p.world) {
            return Some(t);
        }
        // Unique-field fallback: exactly one struct in the file has this
        // field name.
        let mut owners = self
            .p
            .out
            .structs
            .iter()
            .filter_map(|s| s.fields.iter().find(|(f, _)| f == field).map(|(_, t)| t.clone()));
        match (owners.next(), owners.next()) {
            (Some(t), None) => Some(t),
            _ => None,
        }
    }

    /// Return type of `ty::method` from this file's fn items.
    fn method_return(&self, ty: &str, method: &str) -> Option<String> {
        match method {
            // Result/Option adapters keep the success type: good enough
            // for guard typing (`.lock().expect(…)`).
            "expect" | "unwrap" | "unwrap_or_else" | "unwrap_or_default" | "clone" | "as_ref"
            | "as_mut" | "borrow" | "borrow_mut" => return Some(ty.to_owned()),
            "lock" | "write" | "read" => {
                // Guard of the inner type (set up by base_type unwrap).
                return Some(ty.to_owned());
            }
            _ => {}
        }
        let f = self.sigs.iter().find(|f| f.self_ty.as_deref() == Some(ty) && f.name == method)?;
        if f.ret.is_empty() {
            None
        } else {
            Some(f.ret.clone())
        }
    }

    /// Best-effort type of a `let` binding's right-hand side starting at
    /// token `i`: a constructor-shaped call — `helper(…)`,
    /// `Ty::assoc(…)`, or `Enum::Variant(…)` — with optional
    /// Result/Option-unwrapping suffixes (`?`, `.unwrap()`, `.expect(…)`)
    /// and method-chain hops the signature table can follow, ending at
    /// the statement's `;`. `None` for anything else (arithmetic,
    /// untypable calls, field projections).
    fn rhs_type(&self, i: usize) -> Option<String> {
        let first = self.p.word(i)?;
        if is_keyword(first) {
            return None;
        }
        let mut ty: String;
        let mut j;
        if self.p.punct(i + 1, ':') && self.p.punct(i + 2, ':') {
            // Walk the `A::B::name` path; keep the last two segments.
            let mut seg = i;
            while self.p.punct(seg + 1, ':')
                && self.p.punct(seg + 2, ':')
                && self.p.word(seg + 3).is_some()
            {
                seg += 3;
            }
            let name = self.p.word(seg)?;
            let qual = norm_ident(self.p.word(seg - 3)?);
            let qual = if qual == "Self" { self.item.self_ty.clone()? } else { qual.to_owned() };
            if !self.p.punct(seg + 1, '(') {
                return None;
            }
            j = self.p.skip_balanced(seg + 1, '(', ')');
            if name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                // `Enum::Variant(…)` constructs the enum itself.
                ty = qual;
            } else {
                let f = self
                    .sigs
                    .iter()
                    .find(|f| f.self_ty.as_deref() == Some(&qual) && f.name == name)?;
                if f.ret.is_empty() {
                    return None;
                }
                ty = replace_self(&f.ret, &qual);
            }
        } else if self.p.punct(i + 1, '(') {
            // A free call: unique return type among this file's free fns
            // (methods excluded — `build(…)` must not borrow
            // `Fmt::build`'s signature).
            j = self.p.skip_balanced(i + 1, '(', ')');
            let mut rets = self
                .sigs
                .iter()
                .filter(|f| f.self_ty.is_none() && f.name == first && !f.ret.is_empty())
                .map(|f| f.ret.clone())
                .collect::<Vec<_>>();
            rets.dedup();
            let [one] = rets.as_slice() else { return None };
            ty = one.clone();
        } else {
            return None;
        }
        // Suffixes: unwrapping adapters and resolvable method hops.
        loop {
            if self.p.punct(j, '?') {
                ty = success_type(&ty);
                j += 1;
            } else if self.p.punct(j, '.') {
                let m = self.p.word(j + 1)?;
                if !self.p.punct(j + 2, '(') {
                    return None;
                }
                match m {
                    "unwrap" | "expect" | "unwrap_or_else" | "unwrap_or_default" => {
                        ty = success_type(&ty);
                    }
                    "clone" => {}
                    _ => ty = self.method_return(&base_type(&ty)?, m)?,
                }
                j = self.p.skip_balanced(j + 2, '(', ')');
            } else if self.p.punct(j, ';') {
                return Some(ty);
            } else {
                return None;
            }
        }
    }
}

/// Substitutes whole-word `Self` in a return-type spelling with the
/// impl's type: `Result<Self,E>` + `Fmt` → `Result<Fmt,E>`.
fn replace_self(ret: &str, ty: &str) -> String {
    let mut out = String::with_capacity(ret.len());
    let mut rest = ret;
    while let Some(pos) = rest.find("Self") {
        let before_ok =
            pos == 0 || !rest[..pos].ends_with(|c: char| c.is_ascii_alphanumeric() || c == '_');
        let after = &rest[pos + 4..];
        let after_ok = !after.starts_with(|c: char| c.is_ascii_alphanumeric() || c == '_');
        out.push_str(&rest[..pos]);
        out.push_str(if before_ok && after_ok { ty } else { "Self" });
        rest = after;
    }
    out.push_str(rest);
    out
}

/// The success type of a `Result`/`Option` spelling (first top-level
/// generic argument); anything else passes through unchanged, so
/// `.unwrap()` on a non-wrapper type is harmless.
fn success_type(ty: &str) -> String {
    let t = ty.trim();
    let head_end = t.find('<').unwrap_or(t.len());
    let head = t[..head_end].rsplit("::").next().unwrap_or("").trim();
    if !matches!(head, "Result" | "Option") || head_end == t.len() {
        return t.to_owned();
    }
    let inner = &t[head_end + 1..];
    let mut depth = 0i64;
    for (k, c) in inner.char_indices() {
        match c {
            '<' => depth += 1,
            '>' if depth > 0 => depth -= 1,
            ',' | '>' if depth == 0 => return inner[..k].trim().to_owned(),
            _ => {}
        }
    }
    t.to_owned()
}

struct Hop {
    name: String,
    is_call: bool,
}

/// Strips references and the usual smart-pointer / sync wrappers down to
/// the interesting base type name: `&Arc<Mutex<Vec<Completion>>>` →
/// `Vec<Completion>`; `Mutex<InFlightIndex>` → `InFlightIndex`.
pub fn base_type(ty: &str) -> Option<String> {
    let mut s = ty.trim();
    loop {
        s = s.trim_start_matches(['&', ' ']).trim();
        for p in ["mut ", "dyn ", "'static ", "'_ "] {
            if let Some(rest) = s.strip_prefix(p) {
                s = rest.trim();
            }
        }
        let mut unwrapped = false;
        for w in ["Arc", "Rc", "Box", "Option", "RefCell", "Cell", "Mutex", "RwLock", "Vec"] {
            if let Some(rest) = s.strip_prefix(w) {
                if let Some(inner) = rest.strip_prefix('<') {
                    // Keep `Vec<Completion>` for the *lock class* of a
                    // completion queue? No: the class is the guarded
                    // payload — unwrap everything uniformly, the class
                    // name is the innermost interesting type.
                    let inner = inner.strip_suffix('>').unwrap_or(inner);
                    s = inner;
                    unwrapped = true;
                    break;
                }
            }
        }
        if !unwrapped {
            break;
        }
    }
    // `A<B>` keeps its textual form; a bare path keeps its last segment.
    if s.is_empty() {
        return None;
    }
    if let Some(lt) = s.find('<') {
        let head = &s[..lt];
        let head = head.rsplit("::").next().unwrap_or(head);
        Some(format!("{head}{}", &s[lt..]))
    } else {
        Some(s.rsplit("::").next().unwrap_or(s).to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn parse(rel: &str, src: &str) -> FileItems {
        let slugs = crate::rules::rule_slugs();
        parse_file(&SourceFile::new(rel.to_owned(), src, &slugs))
    }

    #[test]
    fn fn_items_with_impl_context() {
        let src = "
            pub struct Server { conns: Vec<Conn> }
            impl Server {
                pub fn run(&self) { self.step(); }
                fn step(&self) {}
            }
            impl Drop for Server { fn drop(&mut self) {} }
            pub async fn fetch() {}
            fn free(x: u32) -> u32 { x }
        ";
        let items = parse("crates/x/src/lib.rs", src);
        let names: Vec<(Option<&str>, &str)> =
            items.fns.iter().map(|f| (f.self_ty.as_deref(), f.name.as_str())).collect();
        assert_eq!(
            names,
            vec![
                (Some("Server"), "run"),
                (Some("Server"), "step"),
                (Some("Server"), "drop"),
                (None, "fetch"),
                (None, "free"),
            ]
        );
        assert!(items.fns[0].is_pub && items.fns[0].is_method);
        assert!(!items.fns[1].is_pub);
        assert_eq!(items.fns[2].trait_name.as_deref(), Some("Drop"));
        assert!(items.fns[3].is_async && items.fns[3].is_pub);
        assert_eq!(items.fns[4].params, vec![("x".to_owned(), "u32".to_owned())]);
        assert_eq!(items.fns[4].ret, "u32");
        assert_eq!(items.structs[0].name, "Server");
        assert_eq!(items.structs[0].fields, vec![("conns".to_owned(), "Vec<Conn>".to_owned())]);
    }

    #[test]
    fn raw_identifier_items_do_not_become_keywords() {
        // `r#fn` / `r#impl` as identifiers must not open phantom items.
        let src = "fn caller() { let r#fn = 1; r#match(r#fn); }";
        let items = parse("a.rs", src);
        assert_eq!(items.fns.len(), 1);
        assert_eq!(items.fns[0].calls.len(), 1);
        assert_eq!(items.fns[0].calls[0].name, "match");
        assert_eq!(items.fns[0].calls[0].recv, Recv::Free);
    }

    #[test]
    fn calls_with_receiver_hints() {
        let src = "
            struct S { w: Waker }
            struct Waker { fd: u32 }
            impl S {
                fn go(&self) {
                    self.local();
                    self.w.wake();
                    Envelope::error(1);
                    helper();
                    Self::assoc();
                    list.collect::<Vec<_>>();
                }
            }
        ";
        let f = &parse("a.rs", src).fns[0];
        let kinds: Vec<(&str, &Recv)> =
            f.calls.iter().map(|c| (c.name.as_str(), &c.recv)).collect();
        assert_eq!(kinds.len(), 6, "{kinds:?}");
        assert_eq!(f.calls[0].name, "local");
        assert_eq!(f.calls[0].recv, Recv::Method { ty: Some("S".to_owned()) });
        assert_eq!(f.calls[1].recv, Recv::Method { ty: Some("Waker".to_owned()) });
        assert_eq!(f.calls[2].recv, Recv::Path("Envelope".to_owned()));
        assert_eq!(f.calls[3].recv, Recv::Free);
        assert_eq!(f.calls[4].recv, Recv::Path("S".to_owned()), "Self:: rewrites to impl type");
        assert_eq!(f.calls[5].name, "collect");
        assert_eq!(f.calls[5].recv, Recv::Method { ty: None });
    }

    #[test]
    fn let_bindings_typed_from_call_returns() {
        let src = "
            struct Fmt { r: u32 }
            impl Fmt {
                fn build(r: u32) -> Result<Self, String> { Ok(Fmt { r }) }
                fn single_pair(&self, a: u32, b: u32) -> f64 { 0.0 }
            }
            fn helper(r: u32) -> Fmt { Fmt::build(r).unwrap() }
            fn use_assoc() {
                let fmt = Fmt::build(3).unwrap();
                fmt.single_pair(0, 1);
            }
            fn use_free() {
                let fmt = helper(3);
                fmt.single_pair(0, 1);
            }
            fn use_question() -> Result<(), String> {
                let fmt = Fmt::build(3)?;
                fmt.single_pair(0, 1);
                Ok(())
            }
        ";
        let items = parse("a.rs", src);
        for fname in ["use_assoc", "use_free", "use_question"] {
            let f = items.fns.iter().find(|f| f.name == fname).unwrap();
            let call = f.calls.iter().find(|c| c.name == "single_pair").unwrap();
            assert_eq!(
                call.recv,
                Recv::Method { ty: Some("Fmt".to_owned()) },
                "receiver in {fname} should type via the binding's RHS"
            );
        }
    }

    #[test]
    fn pathed_variant_constructors_are_not_call_edges() {
        let src = "
            enum Resp { Score(f64) }
            fn go() -> Resp {
                let x = Resp::Score(1.0);
                x
            }
        ";
        let f = &parse("a.rs", src).fns[0];
        assert!(
            f.calls.iter().all(|c| c.name != "Score"),
            "`Resp::Score(…)` is data construction, not a call: {:?}",
            f.calls
        );
    }

    #[test]
    fn success_type_unwraps_result_and_option() {
        assert_eq!(success_type("Result<Fmt,BaselineError>"), "Fmt");
        assert_eq!(success_type("io::Result<Vec<u8>>"), "Vec<u8>");
        assert_eq!(success_type("Option<CsrGraph>"), "CsrGraph");
        assert_eq!(success_type("Fmt"), "Fmt");
        assert_eq!(replace_self("Result<Self,E>", "Fmt"), "Result<Fmt,E>");
        assert_eq!(replace_self("SelfConfig", "Fmt"), "SelfConfig");
    }

    #[test]
    fn lock_classes_resolve_through_fields_and_params() {
        let src = "
            struct Session { inflight: Mutex<InFlightIndex>, shards: Vec<Mutex<LruShard>> }
            impl Session {
                fn f(&self) {
                    let g = self.inflight.lock().expect(\"x\");
                    self.shards[0].lock().unwrap().get(1);
                }
            }
            fn worker(state: &Mutex<Core>) {
                let c = state.lock().unwrap();
            }
        ";
        let items = parse("a.rs", src);
        let f = &items.fns[0];
        assert_eq!(f.acquires.len(), 2);
        assert_eq!(f.acquires[0].class, "InFlightIndex");
        assert!(f.acquires[0].held.is_empty());
        assert_eq!(f.acquires[1].class, "LruShard");
        // The let-bound inflight guard is held across the second lock.
        assert_eq!(f.acquires[1].held, vec!["InFlightIndex".to_owned()]);
        let w = &items.fns[1];
        assert_eq!(w.acquires[0].class, "Core");
    }

    #[test]
    fn guard_scopes_statement_temporaries_and_drop() {
        let src = "
            fn f(a: &Mutex<A>, b: &Mutex<B>) {
                { let g = a.lock().unwrap(); b.lock().unwrap(); }
                b.lock().unwrap();
                let h = a.lock().unwrap();
                drop(h);
                b.lock().unwrap();
            }
        ";
        let f = &parse("a.rs", src).fns[0];
        let held: Vec<(&str, Vec<String>)> =
            f.acquires.iter().map(|l| (l.class.as_str(), l.held.clone())).collect();
        assert_eq!(held[0], ("A", vec![]));
        assert_eq!(held[1], ("B", vec!["A".to_owned()]), "scoped guard held");
        assert_eq!(held[2], ("B", vec![]), "guard released at scope end");
        assert_eq!(held[4], ("B", vec![]), "drop(h) releases early");
    }

    #[test]
    fn typed_guard_methods_resolve_precisely() {
        // `shard.lock().expect(..).get(v)` must resolve `get` to the
        // guarded type, not to every workspace `get`.
        let src = "
            struct S { shard: Mutex<LruShard> }
            impl S { fn f(&self) { self.shard.lock().expect(\"p\").insert(1); } }
        ";
        let f = &parse("a.rs", src).fns[0];
        let call = f.calls.iter().find(|c| c.name == "insert").unwrap();
        assert_eq!(call.recv, Recv::Method { ty: Some("LruShard".to_owned()) });
        // And the temporary guard is held at the call.
        assert_eq!(call.held, vec!["LruShard".to_owned()]);
    }

    #[test]
    fn panic_sites_recorded_with_kinds() {
        let src = "
            fn f(v: Vec<u32>, o: Option<u32>) -> u32 {
                let a = v[0];
                let b = o.unwrap();
                let c = o.expect(\"set\");
                if a > 9 { panic!(\"too big\") }
                unreachable!()
            }
        ";
        let f = &parse("a.rs", src).fns[0];
        let kinds: Vec<PanicKind> = f.panics.iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            vec![
                PanicKind::Index,
                PanicKind::Unwrap,
                PanicKind::Expect,
                PanicKind::Macro,
                PanicKind::Macro
            ]
        );
    }

    #[test]
    fn index_heuristic_skips_non_index_brackets() {
        let src = "
            fn f(xs: &[u8], n: usize) -> Vec<u8> {
                let a: [u8; 4] = [0; 4];
                let v = vec![1, 2];
                let [x, y] = [n, n];
                attr(&a)
            }
            #[derive(Debug)]
            struct T;
        ";
        let f = &parse("a.rs", src).fns[0];
        assert!(f.panics.is_empty(), "{:?}", f.panics);
    }

    #[test]
    fn blocking_sites_and_spawn_detachment() {
        let src = "
            fn serve(rx: &Mutex<Receiver<Job>>) {
                std::thread::spawn(move || {
                    let job = rx.lock().unwrap().recv();
                    helper(job);
                });
                direct();
            }
        ";
        let f = &parse("a.rs", src).fns[0];
        // The recv is blocking but spawned; the helper call is spawned;
        // `direct` is not.
        let recv = f.blocking.iter().find(|b| b.what == ".recv()").unwrap();
        assert!(recv.spawned);
        let helper = f.calls.iter().find(|c| c.name == "helper").unwrap();
        assert!(helper.spawned);
        let direct = f.calls.iter().find(|c| c.name == "direct").unwrap();
        assert!(!direct.spawned);
        // The lock acquired inside the closure is marked spawned too.
        assert!(f.acquires[0].spawned);
    }

    #[test]
    fn thread_sleep_and_io_helpers_are_blocking() {
        let src = "
            fn f(s: &mut TcpStream) {
                std::thread::sleep(D);
                read_envelope(s, 10);
                s.read_exact(&mut buf);
                handle.join();
                cv.wait(g);
            }
        ";
        let f = &parse("a.rs", src).fns[0];
        let whats: Vec<&str> = f.blocking.iter().map(|b| b.what.as_str()).collect();
        assert_eq!(
            whats,
            vec!["thread::sleep", "read_envelope", "read_exact", ".join()", "Condvar::wait"]
        );
    }

    #[test]
    fn test_code_is_flagged_and_panic_free() {
        let src = "
            fn prod(o: Option<u32>) { o.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn t(o: Option<u32>) { o.unwrap(); }
            }
        ";
        let items = parse("crates/x/src/lib.rs", src);
        assert!(!items.fns[0].is_test);
        assert_eq!(items.fns[0].panics.len(), 1);
        assert!(items.fns[1].is_test);
        assert!(items.fns[1].panics.is_empty());
    }

    #[test]
    fn constructors_are_not_call_edges() {
        let src = "fn f() -> Option<u32> { Some(compute()) }";
        let f = &parse("a.rs", src).fns[0];
        assert_eq!(f.calls.len(), 1);
        assert_eq!(f.calls[0].name, "compute");
    }

    #[test]
    fn turbofish_calls_parse() {
        let src = "fn f() { helper::<u32>(); x.collect::<Vec<_>>(); }";
        let f = &parse("a.rs", src).fns[0];
        assert!(f.calls.iter().any(|c| c.name == "helper" && c.recv == Recv::Free));
        assert!(f.calls.iter().any(|c| c.name == "collect"));
    }

    #[test]
    fn base_type_unwraps_wrappers() {
        assert_eq!(base_type("&Arc<Mutex<Vec<Completion>>>").as_deref(), Some("Completion"));
        assert_eq!(base_type("Mutex<InFlightIndex>").as_deref(), Some("InFlightIndex"));
        assert_eq!(base_type("&mut ShardWorkerCore").as_deref(), Some("ShardWorkerCore"));
        assert_eq!(base_type("crate::api::Envelope").as_deref(), Some("Envelope"));
        assert_eq!(base_type("Result<R,QueryError>").as_deref(), Some("Result<R,QueryError>"));
    }
}
