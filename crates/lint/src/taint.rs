//! Stage three, part three: the taint analysis on top of the dataflow
//! framework, plus the reduction-order rule that shares its CFG.
//!
//! ## The lattice
//!
//! The abstract state ([`Env`]) is the set of *tainted paths* — dotted
//! access paths like `len` or `header.request_id` whose value is
//! attacker-influenced. Join is set union (may-taint).
//!
//! ## Sources
//!
//! A function parameter is a source when the function is named like a
//! wire decoder (`decode`, `from_bytes`, `feed`, `decode_*`, `read_*`,
//! `*_from_bytes`) **and** the parameter's type looks like a byte buffer
//! or reader (`Buf`, `[u8`, `u8]`, `Bytes`, `Read`). This naming
//! contract is deliberate: helpers that consume hostile bytes must be
//! named like decoders or the analysis treats their input as trusted.
//! `FrameHeader`-style fields taint through decode summaries (see below)
//! rather than by type, so a header whose length field was validated at
//! decode time stays clean at every use site.
//!
//! On-disk store headers are the opposite case and are sourced **by
//! type** ([`UNTRUSTED_HEADER_TYPES`]): `ShardHeader::from_bytes`
//! returns the raw decoded fields and validation happens later in
//! `validate()`, so the fields are attacker-controlled in *every*
//! method or function the header reaches. The receiver of a method on
//! an untrusted header type, and any parameter carrying one, enters
//! tainted; a field is clean only after a dominating comparison or a
//! validated `f(…)?` position in that same function.
//!
//! ## Sanitizers (kills)
//!
//! * A bare variable or field path used as a **direct operand of a
//!   comparison** (`<`, `<=`, `>`, `>=`) is considered bounds-checked
//!   from that statement on. Kills are path-insensitive (both branches),
//!   which is unsound in the `if ok { } else { use-it-anyway }` shape —
//!   accepted, since the rule targets missing checks, not misplaced
//!   ones. `debug_assert!` comparisons do not kill (compiled out in
//!   release).
//! * `.min(…)` / `.clamp(…)` / `.len()` / `.remaining()` produce clean
//!   values.
//! * `.try_into()` on a plain integer path is clean (checked
//!   conversion); `try_into` on a slice expression is *not* — a
//!   `[u8; 4]` from attacker bytes is still attacker bytes.
//! * `u32::try_from(x)`-style checked constructors are clean.
//! * An argument in a **validated position** of a `f(…)?` call is
//!   killed when the callee's summary proves `f` bounds-checks that
//!   parameter before returning `Ok`.
//!
//! ## Summaries (one interprocedural level, via the call graph)
//!
//! Every function gets a [`Summary`]: which parameters it validates,
//! which parameters flow into an allocation unchecked (making the
//! function a *length sink* at its call sites), and the taint of its
//! return value — possibly per-field ([`Taint::Fields`]) when the body
//! returns a struct literal. Summaries are computed in two passes so a
//! summary can use its callees' pass-one summaries (e.g. `read_len` is
//! clean *because* `need` validates), then a final pass reports
//! findings. Call sites resolve through the PR 8 call-graph edges, with
//! a unique-name fallback.
//!
//! ## Sinks
//!
//! * `Vec::with_capacity` / `.reserve` / `.reserve_exact` / `vec![_; n]`
//!   / slice indexing with a tainted length or index →
//!   [`rules::UNVALIDATED_WIRE_LENGTH`].
//! * `as` narrowing to `u8/u16/u32/i8/i16/i32` of a tainted value →
//!   [`rules::TAINTED_CAST_TRUNCATION`] (casts to `usize`/`u64`/`i64`
//!   are not narrowing on the 64-bit targets this workspace supports).
//! * A call passing a tainted value into a length-sink parameter →
//!   [`rules::UNVALIDATED_WIRE_LENGTH`] at the call site.
//!
//! Every allocation sink that was *checked* is recorded in
//! [`DataflowReport`] with its verdict, so `--dump-dataflow` is a proof
//! artifact: the self-hosting test asserts `FrameDecoder`'s
//! `Vec::with_capacity(header.payload_len as usize)` appears there as
//! clean, not merely that nothing fired.
//!
//! ## fp-reduction-order
//!
//! Independently of taint, any statement in a determinism directory that
//! chains a `par_*` adapter into a top-level `.sum()` / `.product()` /
//! `.reduce(…)` / `.fold(…)` with float evidence is flagged — FP
//! addition is non-associative, so the scheduler's reduction order leaks
//! into the result. `reduce`/`fold` combiners built from `min`/`max`
//! are associative and exempt; reductions nested inside a closure
//! argument (sequential per-element work) are not flagged.
//!
//! ## Known blind spots
//!
//! Documented in README §Static analysis: kills are path-insensitive;
//! `match` destructuring does not transfer taint to bound names;
//! expression-position control collapses into one statement (may-taint
//! keeps this conservative); struct-field taint does not persist across
//! method boundaries (`self.x` tainted in `feed` is clean in a sibling
//! method) *except* for [`UNTRUSTED_HEADER_TYPES`], which re-taint at
//! every method entry; the decoder naming contract above.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::Graph;
use crate::cfg::{Cfg, Stmt, StmtKind};
use crate::dataflow::{self, Semilattice};
use crate::lexer::Token;
use crate::parser::{FnItem, StructItem};
use crate::rules::{self, Finding};
use crate::source::SourceFile;

/// Directories where the reduction-order rule applies: the determinism
/// crates plus the solver whose residuals feed the convergence contract.
const FP_DIRS: &[&str] =
    &["crates/graph/src/", "crates/mc/src/", "crates/core/src/", "crates/solver/src/"];

/// Narrowing `as` targets. `usize`/`u64`/`i64` are excluded: pasco
/// supports only 64-bit targets, so widening there cannot truncate.
const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Integer types whose `try_from` is a checked (clean) conversion.
const INT_TYPES: &[&str] = &["u8", "u16", "u32", "u64", "usize", "i8", "i16", "i32", "i64"];

/// Methods whose *receiver* is written from their arguments.
const DEST_RECV: &[&str] =
    &["copy_from_slice", "extend_from_slice", "push", "extend", "insert", "append", "put_slice"];

/// Methods whose *first argument* is written from their receiver.
const DEST_ARG: &[&str] = &["copy_to_slice", "read_exact", "read", "read_to_end", "read_to_string"];

// ---------------------------------------------------------------------------
// Lattice
// ---------------------------------------------------------------------------

/// The taint environment: the set of tainted dotted paths.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Env(BTreeSet<String>);

impl Semilattice for Env {
    fn join(&mut self, other: &Self) -> bool {
        let before = self.0.len();
        self.0.extend(other.0.iter().cloned());
        self.0.len() != before
    }
}

/// True when `q` is `p` itself or a descendant (`p` is a segment-wise
/// prefix of `q`).
fn seg_prefix(p: &str, q: &str) -> bool {
    q.strip_prefix(p).is_some_and(|rest| rest.is_empty() || rest.starts_with('.'))
}

impl Env {
    fn taint(&mut self, path: &str) {
        self.0.insert(path.to_owned());
    }

    /// Removes `path` and all its descendants.
    fn kill(&mut self, path: &str) {
        self.0.retain(|e| !seg_prefix(path, e));
    }

    /// A mention of `path` is tainted when an entry overlaps it in
    /// either direction: an entry is an ancestor of the path
    /// (`header` taints `header.kind`) or a descendant (`header` as a
    /// whole is tainted when `header.request_id` is). Sibling fields do
    /// not overlap, which is the field sensitivity the transport proof
    /// needs.
    fn tainted(&self, path: &str) -> bool {
        self.0.iter().any(|e| seg_prefix(e, path) || seg_prefix(path, e))
    }
}

/// The taint of one *value* (as opposed to the environment).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum Taint {
    /// Not attacker-influenced (or proven bounded).
    #[default]
    Clean,
    /// A struct value whose named fields are tainted; the rest clean.
    Fields(BTreeSet<String>),
    /// Attacker-influenced.
    Tainted,
}

impl Taint {
    fn join(self, other: Taint) -> Taint {
        match (self, other) {
            (Taint::Tainted, _) | (_, Taint::Tainted) => Taint::Tainted,
            (Taint::Fields(mut a), Taint::Fields(b)) => {
                a.extend(b);
                Taint::Fields(a)
            }
            (Taint::Fields(a), Taint::Clean) | (Taint::Clean, Taint::Fields(a)) => Taint::Fields(a),
            (Taint::Clean, Taint::Clean) => Taint::Clean,
        }
    }

    fn of(tainted: bool) -> Taint {
        if tainted {
            Taint::Tainted
        } else {
            Taint::Clean
        }
    }

    /// Any taint at all (used where a value is consumed as a scalar).
    fn any(&self) -> bool {
        !matches!(self, Taint::Clean)
    }
}

// ---------------------------------------------------------------------------
// Summaries
// ---------------------------------------------------------------------------

/// What one function does to taint, as seen from a call site.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Summary {
    /// Parameter indices the function bounds-checks before succeeding:
    /// a tainted argument here is killed after `f(…)?`.
    pub validates: BTreeSet<usize>,
    /// Parameter indices that flow into an allocation unchecked: a
    /// tainted argument here is a finding at the call site.
    pub length_sinks: BTreeSet<usize>,
    /// Taint of the return value, computed with the callee's own
    /// sources tainted.
    pub ret: Taint,
}

impl Summary {
    fn is_trivial(&self) -> bool {
        self.validates.is_empty() && self.length_sinks.is_empty() && self.ret == Taint::Clean
    }
}

// ---------------------------------------------------------------------------
// Report (the `--dump-dataflow` artifact)
// ---------------------------------------------------------------------------

/// One checked allocation/index/cast sink, with its verdict.
#[derive(Clone, Debug)]
pub struct SinkCheck {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the sink.
    pub line: u32,
    /// Sink kind: `alloc`, `vec-macro`, `index`, `cast`, or `call`.
    pub kind: &'static str,
    /// Rendered sink expression (truncated).
    pub expr: String,
    /// True when the checked value was tainted (a finding fired).
    pub tainted: bool,
}

/// The machine-readable result of the dataflow stage.
#[derive(Clone, Debug, Default)]
pub struct DataflowReport {
    /// Function bodies analyzed to fixpoint.
    pub fns_analyzed: usize,
    /// Non-trivial interprocedural summaries, rendered.
    pub summaries: Vec<String>,
    /// Every checked allocation sink (clean or not) plus every tainted
    /// index/cast/call sink.
    pub sinks: Vec<SinkCheck>,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl DataflowReport {
    /// Renders the report as JSON for `--dump-dataflow`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"fns_analyzed\": {},\n", self.fns_analyzed));
        s.push_str("  \"summaries\": [\n");
        for (i, sum) in self.summaries.iter().enumerate() {
            let comma = if i + 1 < self.summaries.len() { "," } else { "" };
            s.push_str(&format!("    \"{}\"{}\n", esc(sum), comma));
        }
        s.push_str("  ],\n  \"sinks\": [\n");
        for (i, sink) in self.sinks.iter().enumerate() {
            let comma = if i + 1 < self.sinks.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"file\": \"{}\", \"line\": {}, \"kind\": \"{}\", \"expr\": \"{}\", \
                 \"tainted\": {}}}{}\n",
                esc(&sink.file),
                sink.line,
                sink.kind,
                esc(&sink.expr),
                sink.tainted,
                comma
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

fn is_source_fn(name: &str) -> bool {
    name == "decode"
        || name == "from_bytes"
        || name == "feed"
        || name.starts_with("decode_")
        || name.starts_with("read_")
        || name.ends_with("_from_bytes")
}

fn bufferish(ty: &str) -> bool {
    ty.contains("Buf")
        || ty.contains("[u8")
        || ty.contains("u8]")
        || ty.contains("Bytes")
        || ty.contains("Read")
}

/// Struct types whose fields stay attacker-controlled wherever the
/// value travels: headers decoded from untrusted on-disk bytes whose
/// constructor returns the raw fields and defers validation (the store
/// shard header's `from_bytes`/`validate` split). `FrameHeader` is
/// deliberately absent — its decoder validates before returning, so its
/// fields are clean at use sites via the decode summary instead.
pub const UNTRUSTED_HEADER_TYPES: &[&str] = &["ShardHeader"];

/// The untrusted header type named inside `ty`, if any. Matches the
/// bare type name inside references/paths/generics (`&ShardHeader`,
/// `store::ShardHeader`) but not a distinct type that merely shares a
/// prefix (`ShardHeaderBuilder`).
fn untrusted_header_in(ty: &str) -> Option<&'static str> {
    UNTRUSTED_HEADER_TYPES
        .iter()
        .find(|t| ty.split(|c: char| !c.is_alphanumeric() && c != '_').any(|seg| seg == **t))
        .copied()
}

/// Taints `root`'s fields individually (`root.n`, `root.start`, …) when
/// the header struct's field table is known, so a dominating comparison
/// on one field sanitizes that field without blessing its siblings.
/// Without a field table the whole root is tainted — sound, but then no
/// per-field check can clean it.
fn taint_header_root(env: &mut Env, root: &str, header: &str, world: &[StructItem]) {
    match world.iter().find(|s| s.name == header) {
        Some(s) if !s.fields.is_empty() => {
            for (fname, _) in &s.fields {
                env.taint(&format!("{root}.{fname}"));
            }
        }
        _ => env.taint(root),
    }
}

fn entry_env(item: &FnItem, world: &[StructItem]) -> Env {
    let mut env = Env::default();
    if is_source_fn(&item.name) {
        for (pname, pty) in &item.params {
            if bufferish(pty) {
                env.taint(pname);
            }
        }
    }
    // Untrusted header types are sources by *type*, not by caller: the
    // receiver of any method on one, and any parameter carrying one,
    // holds hostile field values until this function checks them.
    if item.is_method {
        if let Some(h) = item.self_ty.as_deref().and_then(untrusted_header_in) {
            taint_header_root(&mut env, "self", h, world);
        }
    }
    for (pname, pty) in &item.params {
        if let Some(h) = untrusted_header_in(pty) {
            taint_header_root(&mut env, pname, h, world);
        }
    }
    env
}

// ---------------------------------------------------------------------------
// Per-function analyzer
// ---------------------------------------------------------------------------

fn is_keyword(w: &str) -> bool {
    matches!(
        w,
        "let"
            | "mut"
            | "ref"
            | "if"
            | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "move"
            | "as"
            | "in"
            | "fn"
            | "unsafe"
            | "async"
            | "await"
            | "dyn"
    )
}

/// What a sweep over the fixpoint states collects.
#[derive(Default)]
struct Outcome {
    /// Join of every return-position value.
    ret: Taint,
    /// Root variables whose taint a sanitizer killed (validates-detection).
    killed_roots: BTreeSet<String>,
    /// True when any allocation/index sink consumed a tainted value.
    sink_tainted: bool,
    /// Emit findings/sinks (final pass only).
    report: bool,
    findings: Vec<Finding>,
    sinks: Vec<SinkCheck>,
}

/// One call expression inside a statement.
struct Call {
    name: String,
    name_idx: usize,
    line: u32,
    /// Token ranges of top-level arguments.
    args: Vec<(usize, usize)>,
    /// Index one past the closing paren.
    end: usize,
    /// True for `recv.name(…)`.
    dotted: bool,
}

struct Analyzer<'a> {
    toks: &'a [Token],
    file: &'a str,
    /// Outgoing call-graph edges of the function being analyzed.
    edges: &'a [crate::callgraph::Edge],
    graph: &'a Graph,
    summaries: &'a [Summary],
    /// Unique-name fallback when no edge resolved a call.
    by_name: &'a BTreeMap<String, Vec<usize>>,
    /// Workspace struct field tables (for untrusted-header sources).
    world: &'a [StructItem],
}

impl<'a> Analyzer<'a> {
    fn word(&self, i: usize) -> Option<&str> {
        self.toks.get(i).and_then(Token::word)
    }

    fn punct(&self, i: usize, c: char) -> bool {
        self.toks.get(i).is_some_and(|t| t.is_punct(c))
    }

    fn line(&self, i: usize) -> u32 {
        self.toks.get(i).map_or(0, |t| t.line)
    }

    fn bal_fwd(&self, i: usize, open: char, close: char) -> usize {
        let mut depth = 0i64;
        let mut j = i;
        while j < self.toks.len() {
            if self.punct(j, open) {
                depth += 1;
            } else if self.punct(j, close) {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        j
    }

    /// Index of the opener matching the closer at `j`, or `lo`.
    fn bal_back(&self, j: usize, open: char, close: char, lo: usize) -> usize {
        let mut depth = 0i64;
        let mut k = j;
        loop {
            if self.punct(k, close) {
                depth += 1;
            } else if self.punct(k, open) {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            if k == lo {
                return lo;
            }
            k -= 1;
        }
    }

    fn render(&self, lo: usize, hi: usize) -> String {
        let mut s = String::new();
        for t in &self.toks[lo..hi.min(self.toks.len())] {
            if !s.is_empty() {
                s.push(' ');
            }
            match t.word() {
                Some(w) => s.push_str(w),
                None => {
                    if let crate::lexer::Tok::Punct(c) = &t.tok {
                        s.push(*c);
                    }
                }
            }
            if s.len() > 72 {
                s.truncate(72);
                s.push('…');
                break;
            }
        }
        s
    }

    // -- call resolution ---------------------------------------------------

    /// The summary of the callee `name` called at `line`, through the
    /// call-graph edges of the current function, with a unique-name
    /// fallback for *undotted* calls. Multiple candidates join
    /// conservatively. Dotted calls get no fallback: `map.insert(…)` on
    /// a std container must not borrow the summary of whatever
    /// workspace fn happens to be named `insert`.
    fn resolve(&self, line: u32, name: &str, dotted: bool) -> Option<Summary> {
        let mut hits: Vec<usize> = self
            .edges
            .iter()
            .filter(|e| e.line == line && self.graph.nodes[e.to].item.name == name)
            .map(|e| e.to)
            .collect();
        if hits.is_empty() {
            if dotted {
                return None;
            }
            match self.by_name.get(name) {
                Some(c) if c.len() == 1 => hits = c.clone(),
                _ => return None,
            }
        }
        let mut out: Option<Summary> = None;
        for h in hits {
            let s = &self.summaries[h];
            out = Some(match out {
                None => s.clone(),
                Some(mut acc) => {
                    acc.validates = acc.validates.intersection(&s.validates).copied().collect();
                    acc.length_sinks.extend(&s.length_sinks);
                    acc.ret = acc.ret.join(s.ret.clone());
                    acc
                }
            });
        }
        out
    }

    /// All call expressions in `[lo, hi)`, nested ones included.
    fn calls_in(&self, lo: usize, hi: usize) -> Vec<Call> {
        let mut out = Vec::new();
        let mut j = lo;
        while j < hi {
            if let Some(w) = self.word(j) {
                if !is_keyword(w) && self.punct(j + 1, '(') {
                    let end = self.bal_fwd(j + 1, '(', ')');
                    let mut args = Vec::new();
                    let mut a = j + 2;
                    let inner_hi = end.saturating_sub(1);
                    let mut k = a;
                    while k < inner_hi {
                        if self.punct(k, '(') {
                            k = self.bal_fwd(k, '(', ')');
                        } else if self.punct(k, '[') {
                            k = self.bal_fwd(k, '[', ']');
                        } else if self.punct(k, '{') {
                            k = self.bal_fwd(k, '{', '}');
                        } else if self.punct(k, ',') {
                            args.push((a, k));
                            k += 1;
                            a = k;
                        } else {
                            k += 1;
                        }
                    }
                    if a < inner_hi {
                        args.push((a, inner_hi));
                    }
                    out.push(Call {
                        name: w.to_owned(),
                        name_idx: j,
                        line: self.line(j),
                        args,
                        end,
                        dotted: j > lo && self.punct(j - 1, '.'),
                    });
                }
            }
            j += 1;
        }
        out
    }

    // -- path extraction ---------------------------------------------------

    /// Maximal dotted path starting at `i` (field accesses only; stops
    /// before a method call). Returns `(path, one past its last token)`.
    fn path_starting_at(&self, i: usize, hi: usize) -> Option<(String, usize)> {
        let w = self.word(i)?;
        if is_keyword(w) {
            return None;
        }
        let mut path = w.to_owned();
        let mut j = i + 1;
        while j + 1 < hi && self.punct(j, '.') && !self.punct(j + 2, '(') {
            let Some(seg) = self.word(j + 1) else { break };
            path.push('.');
            path.push_str(seg);
            j += 2;
        }
        Some((path, j))
    }

    /// Maximal dotted path ending at token `e` (walking left), if `e`
    /// is a word not preceded by more path.
    fn path_ending_at(&self, e: usize, lo: usize) -> Option<String> {
        self.word(e)?;
        let mut start = e;
        while start >= lo + 2 && self.punct(start - 1, '.') && self.word(start - 2).is_some() {
            start -= 2;
        }
        let (path, end) = self.path_starting_at(start, e + 1)?;
        if end != e + 1 {
            return None;
        }
        Some(path)
    }

    /// Every value-position path mention in `[lo, hi)`, skipping bare
    /// call/macro names and method names.
    fn paths_in(&self, lo: usize, hi: usize) -> Vec<String> {
        let mut out = Vec::new();
        let mut i = lo;
        while i < hi {
            if self.word(i).is_some() {
                let Some((path, j)) = self.path_starting_at(i, hi) else {
                    i += 1;
                    continue;
                };
                if !path.contains('.') && (self.punct(j, '(') || self.punct(j, '!')) {
                    i = j;
                    continue;
                }
                out.push(path);
                i = j;
            } else {
                i += 1;
            }
        }
        out
    }

    /// Start of the postfix operand ending just before `j` (for `x.y[i]
    /// as u32`-style backward walks).
    fn operand_start_back(&self, j: usize, lo: usize) -> usize {
        let mut k = j;
        while k > lo {
            let p = k - 1;
            if self.punct(p, ')') {
                k = self.bal_back(p, '(', ')', lo);
            } else if self.punct(p, ']') {
                k = self.bal_back(p, '[', ']', lo);
            } else if self.word(p).is_some_and(|w| !is_keyword(w)) || (self.punct(p, '.') && k != j)
            {
                k = p;
            } else if p > lo && self.punct(p, ':') && self.punct(p - 1, ':') {
                k = p - 1;
            } else {
                break;
            }
        }
        k
    }

    // -- expression evaluation --------------------------------------------

    fn eval(&self, lo: usize, hi: usize, env: &Env) -> Taint {
        if lo >= hi {
            return Taint::Clean;
        }
        self.eval_postfix(lo, hi, env).unwrap_or_else(|| self.eval_soup(lo, hi, env))
    }

    /// Structured evaluation of a single postfix expression spanning
    /// exactly `[lo, hi)`; `None` when the range is not one.
    fn eval_postfix(&self, lo: usize, hi: usize, env: &Env) -> Option<Taint> {
        let mut j = lo;
        while j < hi
            && (self.punct(j, '&')
                || self.punct(j, '*')
                || self.punct(j, '!')
                || self.punct(j, '-')
                || self.toks[j].is_word("mut"))
        {
            j += 1;
        }
        if j >= hi {
            return None;
        }
        let mut cur;
        // True while the value is still a plain (possibly dotted) path —
        // the shape whose `.try_into()` is an integer conversion.
        let mut path_like = false;
        if self.punct(j, '(') {
            let close = self.bal_fwd(j, '(', ')');
            cur = self.eval_soup(j + 1, close.saturating_sub(1), env);
            j = close;
        } else if let Some(first) = self.word(j) {
            // Leading `::`-path (for assoc calls like `Type::decode`).
            let mut segs = vec![first.to_owned()];
            let mut k = j + 1;
            while k + 1 < hi && self.punct(k, ':') && self.punct(k + 1, ':') {
                let Some(seg) = self.word(k + 2) else { break };
                segs.push(seg.to_owned());
                k += 3;
            }
            if is_keyword(&segs[0]) {
                return None;
            }
            if self.punct(k, '(') {
                // A call: consult the callee summary, else join the
                // taint of the argument soup.
                let name = segs.last().cloned().unwrap_or_default();
                let close = self.bal_fwd(k, '(', ')');
                let qualifier = if segs.len() >= 2 { segs[segs.len() - 2].as_str() } else { "" };
                if name == "try_from" && INT_TYPES.contains(&qualifier) {
                    cur = Taint::Clean;
                } else {
                    match self.resolve(self.line(k - 1), &name, false) {
                        Some(s) => cur = s.ret,
                        None => cur = self.eval_soup(k + 1, close.saturating_sub(1), env),
                    }
                }
                j = close;
            } else if self.punct(k, '{') || self.punct(k, '!') {
                // Struct literal or macro: soup handles those.
                return None;
            } else {
                // A plain dotted path (consume field accesses).
                let (path, end) = self.path_starting_at(j, hi)?;
                cur = Taint::of(env.tainted(&path));
                path_like = true;
                j = end;
            }
        } else {
            return None;
        }
        // Postfix suffixes.
        while j < hi {
            if self.punct(j, '.') && self.word(j + 1).is_some() {
                let m = self.word(j + 1).map(str::to_owned).unwrap_or_default();
                if self.punct(j + 2, '(') {
                    let close = self.bal_fwd(j + 2, '(', ')');
                    let (alo, ahi) = (j + 3, close.saturating_sub(1));
                    cur = match m.as_str() {
                        "min" | "clamp" => Taint::Clean,
                        "len" | "remaining" | "is_empty" | "capacity" => Taint::Clean,
                        "try_into" if path_like => Taint::Clean,
                        _ => cur.join(self.eval_soup(alo, ahi, env)),
                    };
                    path_like = false;
                    j = close;
                } else {
                    // Field access after a non-path value: keep cur.
                    j += 2;
                }
            } else if self.punct(j, '?') {
                j += 1;
            } else if self.toks[j].is_word("as") {
                j += 1;
                while j < hi && self.word(j).is_some() {
                    j += 1;
                    if j + 1 < hi && self.punct(j, ':') && self.punct(j + 1, ':') {
                        j += 2;
                    } else {
                        break;
                    }
                }
            } else if self.punct(j, '[') {
                j = self.bal_fwd(j, '[', ']');
                path_like = false;
            } else {
                return None;
            }
        }
        Some(cur)
    }

    /// Conservative bag-of-mentions evaluation: any tainted path mention
    /// taints the whole expression; summarized calls shield their
    /// arguments; struct literals evaluate per-field.
    fn eval_soup(&self, lo: usize, hi: usize, env: &Env) -> Taint {
        let mut cur = Taint::Clean;
        let mut fields: BTreeSet<String> = BTreeSet::new();
        let mut i = lo;
        while i < hi {
            let Some(w) = self.word(i) else {
                i += 1;
                continue;
            };
            if is_keyword(w) {
                i += 1;
                continue;
            }
            let Some((path, j)) = self.path_starting_at(i, hi) else {
                i += 1;
                continue;
            };
            if !path.contains('.') && self.punct(j, '(') {
                // A plain call: shield its arguments when summarized.
                let dotted = i > lo && self.punct(i - 1, '.');
                if let Some(s) = self.resolve(self.line(i), &path, dotted) {
                    match s.ret {
                        Taint::Tainted => cur = Taint::Tainted,
                        Taint::Fields(fs) => fields.extend(fs),
                        Taint::Clean => {}
                    }
                    i = self.bal_fwd(j, '(', ')');
                } else {
                    i = j + 1; // scan into the arguments
                }
                continue;
            }
            if !path.contains('.')
                && self.punct(j, '{')
                && w.chars().next().is_some_and(|c| c.is_ascii_uppercase())
            {
                // Struct literal: evaluate each field initializer.
                let close = self.bal_fwd(j, '{', '}');
                self.struct_literal_fields(j + 1, close.saturating_sub(1), env, &mut fields);
                i = close;
                continue;
            }
            if !path.contains('.') && self.punct(j, '!') {
                i = j + 1; // macro name; scan into its tokens
                continue;
            }
            if env.tainted(&path) {
                cur = Taint::Tainted;
            }
            i = j;
        }
        match cur {
            Taint::Tainted => Taint::Tainted,
            _ if !fields.is_empty() => Taint::Fields(fields),
            _ => Taint::Clean,
        }
    }

    /// Collects tainted field names of a struct literal body `[lo, hi)`
    /// (handles `name: expr`, shorthand `name`, and skips `..base`).
    fn struct_literal_fields(&self, lo: usize, hi: usize, env: &Env, out: &mut BTreeSet<String>) {
        let mut a = lo;
        let mut k = lo;
        let mut parts: Vec<(usize, usize)> = Vec::new();
        while k < hi {
            if self.punct(k, '(') {
                k = self.bal_fwd(k, '(', ')');
            } else if self.punct(k, '[') {
                k = self.bal_fwd(k, '[', ']');
            } else if self.punct(k, '{') {
                k = self.bal_fwd(k, '{', '}');
            } else if self.punct(k, ',') {
                parts.push((a, k));
                k += 1;
                a = k;
            } else {
                k += 1;
            }
        }
        if a < hi {
            parts.push((a, hi));
        }
        for (plo, phi) in parts {
            let Some(fname) = self.word(plo) else { continue };
            if self.punct(plo + 1, ':') && !self.punct(plo + 2, ':') {
                if self.eval(plo + 2, phi, env).any() {
                    out.insert(fname.to_owned());
                }
            } else if phi == plo + 1 && env.tainted(fname) {
                // Shorthand `name`.
                out.insert(fname.to_owned());
            }
        }
    }

    // -- transfer function -------------------------------------------------

    fn transfer(&self, stmt: &Stmt, env: &mut Env, mut out: Option<&mut Outcome>) {
        let (lo, hi) = (stmt.lo, stmt.hi);
        let has_debug_assert = self.toks[lo..hi]
            .iter()
            .any(|t| t.word().is_some_and(|w| w.starts_with("debug_assert")));
        if !has_debug_assert {
            self.comparison_kills(lo, hi, env, &mut out);
        }
        self.validating_call_kills(lo, hi, env, &mut out);
        if let Some(o) = out {
            self.check_sinks(stmt, env, o);
            if matches!(stmt.kind, StmtKind::Return | StmtKind::Tail) {
                let elo = if stmt.kind == StmtKind::Return { lo + 1 } else { lo };
                let t = self.eval(elo, hi, env);
                let prev = std::mem::take(&mut o.ret);
                o.ret = prev.join(t);
            }
        }
        self.bindings(lo, hi, env);
        self.mutator_methods(lo, hi, env);
    }

    fn kill_path(&self, env: &mut Env, path: &str, out: &mut Option<&mut Outcome>) {
        if env.tainted(path) {
            env.kill(path);
            if let Some(o) = out.as_deref_mut() {
                let root = path.split('.').next().unwrap_or(path);
                o.killed_roots.insert(root.to_owned());
            }
        }
    }

    /// Direct operands of `<`, `<=`, `>`, `>=` are bounds-checked.
    fn comparison_kills(
        &self,
        lo: usize,
        hi: usize,
        env: &mut Env,
        out: &mut Option<&mut Outcome>,
    ) {
        for j in lo..hi {
            let is_lt = self.punct(j, '<');
            let is_gt = self.punct(j, '>');
            if !is_lt && !is_gt {
                continue;
            }
            if is_lt
                && (self.punct(j + 1, '<')
                    || (j > lo && (self.punct(j - 1, '<') || self.punct(j - 1, ':'))))
            {
                continue; // shift or turbofish/path
            }
            if is_gt
                && (self.punct(j + 1, '>')
                    || (j > lo
                        && (self.punct(j - 1, '>')
                            || self.punct(j - 1, '-')
                            || self.punct(j - 1, '='))))
            {
                continue; // shift, `->`, `=>`
            }
            if j > lo {
                if let Some(p) = self.path_ending_at(j - 1, lo) {
                    self.kill_path(env, &p, out);
                }
            }
            let mut k = j + 1;
            if self.punct(k, '=') {
                k += 1;
            }
            if let Some((p, after)) = self.path_starting_at(k, hi) {
                if !self.punct(after, '(') {
                    self.kill_path(env, &p, out);
                }
            }
        }
    }

    /// `f(…)?` kills tainted mentions in arguments the summary proves
    /// validated.
    fn validating_call_kills(
        &self,
        lo: usize,
        hi: usize,
        env: &mut Env,
        out: &mut Option<&mut Outcome>,
    ) {
        for c in self.calls_in(lo, hi) {
            if !self.punct(c.end, '?') {
                continue;
            }
            let Some(s) = self.resolve(c.line, &c.name, c.dotted) else { continue };
            for &vi in &s.validates {
                if let Some(&(alo, ahi)) = c.args.get(vi) {
                    for p in self.paths_in(alo, ahi) {
                        self.kill_path(env, &p, out);
                    }
                }
            }
        }
    }

    // -- sinks -------------------------------------------------------------

    fn emit(&self, o: &mut Outcome, line: u32, rule: &'static str, message: String) {
        if o.report {
            o.findings.push(Finding { file: self.file.to_owned(), line, rule, message });
        }
    }

    fn record_sink(
        &self,
        o: &mut Outcome,
        line: u32,
        kind: &'static str,
        expr: String,
        tainted: bool,
    ) {
        if tainted {
            o.sink_tainted = true;
        }
        if o.report {
            o.sinks.push(SinkCheck { file: self.file.to_owned(), line, kind, expr, tainted });
        }
    }

    fn check_sinks(&self, stmt: &Stmt, env: &Env, o: &mut Outcome) {
        let (lo, hi) = (stmt.lo, stmt.hi);
        for c in self.calls_in(lo, hi) {
            let qualified = c.name_idx > lo
                && (self.punct(c.name_idx - 1, '.') || self.punct(c.name_idx - 1, ':'));
            if qualified && matches!(c.name.as_str(), "with_capacity" | "reserve" | "reserve_exact")
            {
                let Some(&(alo, ahi)) = c.args.first() else { continue };
                let tainted = self.eval(alo, ahi, env).any();
                self.record_sink(o, c.line, "alloc", self.render(alo, ahi), tainted);
                if tainted {
                    self.emit(
                        o,
                        c.line,
                        rules::UNVALIDATED_WIRE_LENGTH,
                        format!(
                            "wire-derived length `{}` reaches {} without a dominating bounds \
                             check",
                            self.render(alo, ahi),
                            c.name
                        ),
                    );
                }
                continue;
            }
            // Length-sink summaries: a tainted argument in a sink
            // position is the same bug one call level up.
            if let Some(s) = self.resolve(c.line, &c.name, c.dotted) {
                for &si in &s.length_sinks {
                    if let Some(&(alo, ahi)) = c.args.get(si) {
                        if self.eval(alo, ahi, env).any() {
                            self.record_sink(o, c.line, "call", self.render(alo, ahi), true);
                            self.emit(
                                o,
                                c.line,
                                rules::UNVALIDATED_WIRE_LENGTH,
                                format!(
                                    "tainted length `{}` flows into `{}`, which allocates from \
                                     parameter #{} without a bounds check",
                                    self.render(alo, ahi),
                                    c.name,
                                    si
                                ),
                            );
                        }
                    }
                }
            }
        }
        // `vec![elem; len]`
        let mut j = lo;
        while j < hi {
            if self.toks[j].is_word("vec") && self.punct(j + 1, '!') && self.punct(j + 2, '[') {
                let close = self.bal_fwd(j + 2, '[', ']');
                let inner_hi = close.saturating_sub(1);
                let mut k = j + 3;
                let mut semi = None;
                while k < inner_hi {
                    if self.punct(k, '(') {
                        k = self.bal_fwd(k, '(', ')');
                    } else if self.punct(k, '[') {
                        k = self.bal_fwd(k, '[', ']');
                    } else if self.punct(k, '{') {
                        k = self.bal_fwd(k, '{', '}');
                    } else if self.punct(k, ';') {
                        semi = Some(k);
                        break;
                    } else {
                        k += 1;
                    }
                }
                if let Some(semi) = semi {
                    let tainted = self.eval(semi + 1, inner_hi, env).any();
                    self.record_sink(
                        o,
                        self.line(j),
                        "vec-macro",
                        self.render(semi + 1, inner_hi),
                        tainted,
                    );
                    if tainted {
                        self.emit(
                            o,
                            self.line(j),
                            rules::UNVALIDATED_WIRE_LENGTH,
                            format!(
                                "wire-derived length `{}` sizes a vec![…; n] without a \
                                 dominating bounds check",
                                self.render(semi + 1, inner_hi)
                            ),
                        );
                    }
                }
                j = close;
            } else {
                j += 1;
            }
        }
        // Slice indexing with a tainted index/bound.
        let mut j = lo + 1;
        while j < hi {
            if self.punct(j, '[')
                && (self.word(j - 1).is_some_and(|w| !is_keyword(w) && w != "vec")
                    || self.punct(j - 1, ')')
                    || self.punct(j - 1, ']'))
            {
                let close = self.bal_fwd(j, '[', ']');
                let inner_hi = close.saturating_sub(1);
                if j + 1 < inner_hi || (j + 1 == inner_hi && self.word(j + 1).is_some()) {
                    let tainted = self.eval_soup(j + 1, inner_hi, env).any();
                    if tainted {
                        self.record_sink(
                            o,
                            self.line(j),
                            "index",
                            self.render(j + 1, inner_hi),
                            true,
                        );
                        self.emit(
                            o,
                            self.line(j),
                            rules::UNVALIDATED_WIRE_LENGTH,
                            format!(
                                "wire-derived index `{}` used in slice indexing without a \
                                 dominating bounds check",
                                self.render(j + 1, inner_hi)
                            ),
                        );
                    }
                }
                j = close;
            } else {
                j += 1;
            }
        }
        // Narrowing casts.
        for j in lo..hi {
            if !self.toks[j].is_word("as") {
                continue;
            }
            let Some(target) = self.word(j + 1) else { continue };
            if !NARROW_INTS.contains(&target) {
                continue;
            }
            let olo = self.operand_start_back(j, lo);
            if olo >= j {
                continue;
            }
            if self.eval(olo, j, env).any() {
                self.record_sink(o, self.line(j), "cast", self.render(olo, j + 2), true);
                self.emit(
                    o,
                    self.line(j),
                    rules::TAINTED_CAST_TRUNCATION,
                    format!(
                        "wire-derived value `{}` narrowed to {} with `as` — use try_into or a \
                         dominating range check",
                        self.render(olo, j),
                        target
                    ),
                );
            }
        }
    }

    // -- gen: bindings and mutators ----------------------------------------

    fn apply_binding(&self, env: &mut Env, targets: &[String], t: Taint) {
        for w in targets {
            env.kill(w);
        }
        match t {
            Taint::Tainted => {
                for w in targets {
                    env.taint(w);
                }
            }
            Taint::Fields(fs) => {
                if targets.len() == 1 {
                    for f in fs {
                        env.taint(&format!("{}.{}", targets[0], f));
                    }
                } else if !fs.is_empty() {
                    for w in targets {
                        env.taint(w);
                    }
                }
            }
            Taint::Clean => {}
        }
    }

    fn bindings(&self, lo: usize, hi: usize, env: &mut Env) {
        if self.toks.get(lo).is_some_and(|t| t.is_word("let")) {
            // `let <pattern>[: ty] = rhs` (covers `if let` / `while let`
            // conditions too, whose spans start at `let`).
            let mut pats: Vec<String> = Vec::new();
            let mut saw_type = false;
            let mut eq = None;
            let mut k = lo + 1;
            while k < hi {
                if self.punct(k, '=') && !self.punct(k + 1, '=') {
                    eq = Some(k);
                    break;
                }
                if self.punct(k, ':') {
                    if self.punct(k + 1, ':') {
                        k += 2;
                        continue;
                    }
                    saw_type = true;
                    k += 1;
                    continue;
                }
                if let Some(w) = self.word(k) {
                    let first = w.chars().next().unwrap_or('_');
                    if !saw_type
                        && !is_keyword(w)
                        && w != "_"
                        && first.is_ascii_lowercase()
                        && !first.is_ascii_digit()
                    {
                        pats.push(w.to_owned());
                    }
                }
                k += 1;
            }
            match eq {
                Some(eq) => {
                    let t = self.eval(eq + 1, hi, env);
                    self.apply_binding(env, &pats, t);
                }
                None => {
                    for w in &pats {
                        env.kill(w);
                    }
                }
            }
            return;
        }
        // Assignment to a path: `x.y = rhs` / `x += rhs`.
        let mut k = lo;
        while self.punct(k, '*') {
            k += 1;
        }
        if let Some((path, after)) = self.path_starting_at(k, hi) {
            if self.punct(after, '=') && !self.punct(after + 1, '=') {
                let t = self.eval(after + 1, hi, env);
                self.apply_binding(env, std::slice::from_ref(&path), t);
            } else {
                // Compound assignment (`+=`, `<<=`, …): old ∨ rhs.
                const OPS: &[char] = &['+', '-', '*', '/', '%', '&', '|', '^', '<', '>'];
                let mut rhs = None;
                for n in 1..=2 {
                    if (after..after + n).all(|i| {
                        self.toks.get(i).is_some_and(
                            |t| matches!(&t.tok, crate::lexer::Tok::Punct(c) if OPS.contains(c)),
                        )
                    }) && self.punct(after + n, '=')
                        && !self.punct(after + n + 1, '=')
                    {
                        rhs = Some(after + n + 1);
                        break;
                    }
                }
                if let Some(rlo) = rhs {
                    let was = env.tainted(&path);
                    let t = self.eval(rlo, hi, env).join(Taint::of(was));
                    self.apply_binding(env, std::slice::from_ref(&path), t);
                }
            }
        }
    }

    /// Writes through well-known mutating methods: `dst.copy_from_slice
    /// (src)` taints `dst` from `src`; `r.read_exact(&mut buf)` taints
    /// `buf` from `r`.
    fn mutator_methods(&self, lo: usize, hi: usize, env: &mut Env) {
        for c in self.calls_in(lo, hi) {
            if !c.dotted {
                continue;
            }
            let to_recv = DEST_RECV.contains(&c.name.as_str());
            let to_arg = DEST_ARG.contains(&c.name.as_str());
            if !to_recv && !to_arg {
                continue;
            }
            // The receiver path, dropping an index/slice suffix
            // (`self.head[a..b].copy_from_slice(…)` writes `self.head`).
            let rlo = self.operand_start_back(c.name_idx - 1, lo);
            let Some((recv, _)) = self.path_starting_at(rlo, c.name_idx) else { continue };
            if to_recv {
                let arg_tainted = c
                    .args
                    .iter()
                    .any(|&(alo, ahi)| self.paths_in(alo, ahi).iter().any(|p| env.tainted(p)));
                if arg_tainted {
                    env.taint(&recv);
                }
            } else if env.tainted(&recv) {
                if let Some(&(alo, ahi)) = c.args.first() {
                    if let Some(p) = self.paths_in(alo, ahi).first() {
                        env.taint(p);
                    }
                }
            }
        }
    }

    // -- driving -----------------------------------------------------------

    /// Fixpoint + optional sweep collecting an [`Outcome`].
    fn analyze(&self, cfg: &Cfg, entry: Env, outcome: Option<&mut Outcome>) {
        let states = dataflow::forward(cfg, entry, |stmt, env| self.transfer(stmt, env, None));
        if let Some(o) = outcome {
            for (bi, b) in cfg.blocks.iter().enumerate() {
                let mut env = states[bi].clone();
                for stmt in &b.stmts {
                    self.transfer(stmt, &mut env, Some(o));
                }
            }
        }
    }

    fn summarize(&self, item: &FnItem, cfg: &Cfg) -> Summary {
        let mut sum = Summary::default();
        let mut o = Outcome::default();
        self.analyze(cfg, entry_env(item, self.world), Some(&mut o));
        sum.ret = o.ret;
        for (pi, (pname, _)) in item.params.iter().enumerate() {
            let mut env = Env::default();
            env.taint(pname);
            let mut o = Outcome::default();
            self.analyze(cfg, env, Some(&mut o));
            if o.killed_roots.contains(pname) {
                sum.validates.insert(pi);
            }
            if o.sink_tainted {
                sum.length_sinks.insert(pi);
            }
        }
        sum
    }
}

// ---------------------------------------------------------------------------
// fp-reduction-order
// ---------------------------------------------------------------------------

fn is_par_adapter(w: &str) -> bool {
    w == "into_par_iter" || w == "par_bridge" || w.starts_with("par_")
}

fn float_evidence(toks: &[Token], lo: usize, hi: usize) -> bool {
    for (off, t) in toks[lo..hi].iter().enumerate() {
        let i = lo + off;
        let Some(w) = t.word() else { continue };
        if w == "f64" || w == "f32" || w.ends_with("f64") || w.ends_with("f32") {
            return true;
        }
        // A float literal lexes as digits '.' digits.
        if w.chars().next().is_some_and(|c| c.is_ascii_digit())
            && toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && toks
                .get(i + 2)
                .and_then(Token::word)
                .is_some_and(|w2| w2.chars().next().is_some_and(|c| c.is_ascii_digit()))
        {
            return true;
        }
    }
    false
}

/// Scans one statement for a parallel float reduction; returns the line
/// of the offending reduction call.
fn fp_reduction_in_stmt(toks: &[Token], stmt: &Stmt) -> Option<(u32, String)> {
    let (lo, hi) = (stmt.lo, stmt.hi);
    let par = (lo..hi).find(|&i| toks[i].word().is_some_and(is_par_adapter))?;
    if !float_evidence(toks, lo, hi) {
        return None;
    }
    let mut depth = 0i64;
    let mut k = par + 1;
    while k < hi {
        if toks[k].is_punct('(') || toks[k].is_punct('[') || toks[k].is_punct('{') {
            depth += 1;
            k += 1;
            continue;
        }
        if toks[k].is_punct(')') || toks[k].is_punct(']') || toks[k].is_punct('}') {
            depth -= 1;
            if depth < 0 {
                break; // left the expression the par adapter lives in
            }
            k += 1;
            continue;
        }
        if depth == 0 && toks[k].is_punct('.') {
            if let Some(m) = toks.get(k + 1).and_then(Token::word) {
                if m == "sum" || m == "product" {
                    return Some((toks[k + 1].line, m.to_owned()));
                }
                if m == "reduce" || m == "fold" {
                    // Find the argument list (skipping a turbofish).
                    let mut t = k + 2;
                    while t < hi && t < k + 14 && !toks[t].is_punct('(') {
                        t += 1;
                    }
                    if t < hi && toks[t].is_punct('(') {
                        let close = bal_simple(toks, t, hi);
                        let associative = toks[t..close]
                            .iter()
                            .any(|tk| tk.word().is_some_and(|w| w == "max" || w == "min"));
                        if associative {
                            k = close;
                            continue;
                        }
                        return Some((toks[k + 1].line, m.to_owned()));
                    }
                }
            }
        }
        k += 1;
    }
    None
}

fn bal_simple(toks: &[Token], i: usize, hi: usize) -> usize {
    let mut depth = 0i64;
    let mut j = i;
    while j < hi {
        if toks[j].is_punct('(') {
            depth += 1;
        } else if toks[j].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

/// Runs the dataflow stage over the whole workspace: two summary passes
/// through the call graph, then a reporting pass.
pub fn check(
    files: &[SourceFile],
    graph: &Graph,
    world: &[StructItem],
) -> (Vec<Finding>, DataflowReport) {
    let toks_of: BTreeMap<&str, &[Token]> =
        files.iter().map(|f| (f.rel.as_str(), f.lexed.tokens.as_slice())).collect();
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, n) in graph.nodes.iter().enumerate() {
        by_name.entry(n.item.name.clone()).or_default().push(i);
    }
    // CFGs are reused across passes.
    let cfgs: Vec<Option<Cfg>> = graph
        .nodes
        .iter()
        .map(|n| {
            let toks = toks_of.get(n.file.as_str())?;
            let (blo, bhi) = n.item.body?;
            Some(Cfg::build(toks, blo, bhi))
        })
        .collect();

    let mut summaries = vec![Summary::default(); graph.nodes.len()];
    for _pass in 0..2 {
        let mut next = vec![Summary::default(); graph.nodes.len()];
        for (idx, node) in graph.nodes.iter().enumerate() {
            if node.item.is_test {
                continue;
            }
            let (Some(toks), Some(cfg)) = (toks_of.get(node.file.as_str()), cfgs[idx].as_ref())
            else {
                continue;
            };
            let az = Analyzer {
                toks,
                file: &node.file,
                edges: &graph.edges[idx],
                graph,
                summaries: &summaries,
                by_name: &by_name,
                world,
            };
            next[idx] = az.summarize(&node.item, cfg);
        }
        summaries = next;
    }

    let mut findings = Vec::new();
    let mut report = DataflowReport::default();
    for (idx, node) in graph.nodes.iter().enumerate() {
        let (Some(toks), Some(cfg)) = (toks_of.get(node.file.as_str()), cfgs[idx].as_ref()) else {
            continue;
        };
        report.fns_analyzed += 1;
        // Reduction-order rule: every fn (tests included) in FP dirs.
        if FP_DIRS.iter().any(|d| node.file.starts_with(d)) {
            let mut seen_lines = BTreeSet::new();
            for stmt in cfg.all_stmts() {
                if let Some((line, m)) = fp_reduction_in_stmt(toks, stmt) {
                    if seen_lines.insert(line) {
                        findings.push(Finding {
                            file: node.file.clone(),
                            line,
                            rule: rules::FP_REDUCTION_ORDER,
                            message: format!(
                                "parallel float `.{m}(…)` — FP addition is non-associative, so \
                                 the scheduler's reduction order changes the result; reduce \
                                 with min/max or collect and fold sequentially"
                            ),
                        });
                    }
                }
            }
        }
        if node.item.is_test {
            continue;
        }
        let az = Analyzer {
            toks,
            file: &node.file,
            edges: &graph.edges[idx],
            graph,
            summaries: &summaries,
            by_name: &by_name,
            world,
        };
        let mut o = Outcome { report: true, ..Outcome::default() };
        az.analyze(cfg, entry_env(&node.item, world), Some(&mut o));
        findings.extend(o.findings);
        report.sinks.extend(o.sinks);
        let sum = &summaries[idx];
        if !sum.is_trivial() {
            let ret = match &sum.ret {
                Taint::Clean => "clean".to_owned(),
                Taint::Tainted => "tainted".to_owned(),
                Taint::Fields(fs) => {
                    format!("fields({})", fs.iter().cloned().collect::<Vec<_>>().join(","))
                }
            };
            let v: Vec<String> = sum.validates.iter().map(|i| i.to_string()).collect();
            let l: Vec<String> = sum.length_sinks.iter().map(|i| i.to_string()).collect();
            report.summaries.push(format!(
                "{}:{} {} validates[{}] length_sinks[{}] ret={}",
                node.file,
                node.item.line,
                node.item.name,
                v.join(","),
                l.join(","),
                ret
            ));
        }
    }
    (findings, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser;

    fn run_in(rel: &str, src: &str) -> (Vec<Finding>, DataflowReport) {
        let slugs = rules::rule_slugs();
        let f = SourceFile::new(rel.to_owned(), src, &slugs);
        let items = vec![parser::parse_file(&f)];
        let world: Vec<StructItem> = items.iter().flat_map(|i| i.structs.clone()).collect();
        let graph = Graph::build(&items);
        check(std::slice::from_ref(&f), &graph, &world)
    }

    fn run(src: &str) -> (Vec<Finding>, DataflowReport) {
        run_in("crates/x/src/lib.rs", src)
    }

    #[test]
    fn seg_prefix_matches_whole_segments_only() {
        assert!(seg_prefix("self.head", "self.head"));
        assert!(seg_prefix("self.head", "self.head.x"));
        assert!(!seg_prefix("self.head", "self.header"));
        let mut env = Env::default();
        env.taint("header.request_id");
        assert!(env.tainted("header"));
        assert!(env.tainted("header.request_id"));
        assert!(!env.tainted("header.payload_len"));
    }

    #[test]
    fn unchecked_wire_length_fires() {
        let (f, _) = run("pub fn decode_msg(bytes: &[u8]) -> Vec<u8> {\n\
                 let len = bytes[0] as usize;\n\
                 let v = Vec::with_capacity(len);\n\
                 v\n\
             }\n");
        assert!(
            f.iter().any(|x| x.rule == rules::UNVALIDATED_WIRE_LENGTH && x.line == 3),
            "expected a finding, got {f:?}"
        );
    }

    #[test]
    fn dominating_bounds_check_sanitizes() {
        let (f, rep) = run("pub fn decode_msg(bytes: &[u8]) -> Vec<u8> {\n\
                 let len = bytes[0] as usize;\n\
                 if len > 64 { return Vec::new(); }\n\
                 let v = Vec::with_capacity(len);\n\
                 v\n\
             }\n");
        assert!(f.is_empty(), "expected clean, got {f:?}");
        // The sink is still recorded — with a clean verdict.
        assert!(rep.sinks.iter().any(|s| s.kind == "alloc" && !s.tainted));
    }

    #[test]
    fn narrowing_cast_fires_and_range_check_sanitizes() {
        let (f, _) = run("pub fn decode_val(raw: &[u8]) -> u16 {\n\
                 let big = raw[0] as usize;\n\
                 big as u16\n\
             }\n");
        assert!(f.iter().any(|x| x.rule == rules::TAINTED_CAST_TRUNCATION));
        let (f, _) = run("pub fn decode_val(raw: &[u8]) -> u16 {\n\
                 let big = raw[0] as usize;\n\
                 if big > 65000 { return 0; }\n\
                 big as u16\n\
             }\n");
        assert!(f.is_empty(), "range check should sanitize, got {f:?}");
    }

    #[test]
    fn validating_callee_summary_kills_at_call_site() {
        let (f, rep) = run("fn ensure(n: usize) -> Result<(), ()> {\n\
                 if n > 1024 { return Err(()); }\n\
                 Ok(())\n\
             }\n\
             pub fn decode_frame(buf: &[u8]) -> Result<Vec<u8>, ()> {\n\
                 let len = buf[0] as usize;\n\
                 ensure(len)?;\n\
                 Ok(Vec::with_capacity(len))\n\
             }\n");
        assert!(f.is_empty(), "summary should prove the check, got {f:?}");
        assert!(rep.summaries.iter().any(|s| s.contains("ensure") && s.contains("validates[0]")));
    }

    #[test]
    fn length_sink_summary_flags_the_call_site() {
        let (f, _) = run("fn alloc_for(n: usize) -> Vec<u8> {\n\
                 Vec::with_capacity(n)\n\
             }\n\
             pub fn decode_blob(buf: &[u8]) -> Vec<u8> {\n\
                 let len = buf[0] as usize;\n\
                 alloc_for(len)\n\
             }\n");
        let hit = f
            .iter()
            .find(|x| x.rule == rules::UNVALIDATED_WIRE_LENGTH && x.line == 6)
            .unwrap_or_else(|| panic!("expected a call-site finding, got {f:?}"));
        assert!(hit.message.contains("alloc_for"));
    }

    #[test]
    fn struct_field_taint_is_per_field() {
        let src = "pub struct Hdr { pub id: u64, pub len: u32 }\n\
             fn read_id(b: &[u8]) -> u64 { b[0] as u64 }\n\
             pub fn decode_hdr(b: &[u8]) -> Hdr {\n\
                 let id = read_id(b);\n\
                 let mut len = b[1] as u32;\n\
                 if len > 64 { len = 64; }\n\
                 Hdr { id, len }\n\
             }\n\
             pub fn use_len(b: &[u8]) -> Vec<u8> {\n\
                 let h = decode_hdr(b);\n\
                 Vec::with_capacity(h.len as usize)\n\
             }\n\
             pub fn use_id(b: &[u8]) -> Vec<u8> {\n\
                 let h = decode_hdr(b);\n\
                 Vec::with_capacity(h.id as usize)\n\
             }\n";
        let (f, _) = run(src);
        assert!(
            !f.iter().any(|x| x.line == 11),
            "validated field must stay clean at use sites, got {f:?}"
        );
        assert!(
            f.iter().any(|x| x.rule == rules::UNVALIDATED_WIRE_LENGTH && x.line == 15),
            "unvalidated field must flag, got {f:?}"
        );
    }

    /// The store-header source: fields of a type in
    /// [`UNTRUSTED_HEADER_TYPES`] are hostile in *every* method on it,
    /// not just inside its decoder — `from_bytes` returns raw fields
    /// and `validate` runs later, so each method must check what it
    /// uses.
    #[test]
    fn untrusted_header_fields_taint_every_method() {
        let src = "pub struct ShardHeader { pub n: u64, pub start: u32 }\n\
             impl ShardHeader {\n\
                 pub fn alloc(&self) -> Vec<u64> {\n\
                     Vec::with_capacity(self.n as usize)\n\
                 }\n\
                 pub fn alloc_checked(&self) -> Vec<u64> {\n\
                     if self.n > 1024 { return Vec::new(); }\n\
                     Vec::with_capacity(self.n as usize)\n\
                 }\n\
             }\n";
        let (f, _) = run(src);
        assert!(
            f.iter().any(|x| x.rule == rules::UNVALIDATED_WIRE_LENGTH && x.line == 4),
            "unchecked header field in an ordinary method must flag, got {f:?}"
        );
        assert!(
            !f.iter().any(|x| x.line == 8),
            "a dominating comparison sanitizes that field, got {f:?}"
        );
    }

    /// Field sensitivity: checking one header field does not bless its
    /// siblings, and a parameter *carrying* a header is as hostile as a
    /// receiver.
    #[test]
    fn untrusted_header_taint_is_per_field_and_by_param() {
        let src = "pub struct ShardHeader { pub n: u64, pub edges: u64 }\n\
             pub fn spine_of(h: &ShardHeader) -> Vec<u64> {\n\
                 if h.n > 1024 { return Vec::new(); }\n\
                 Vec::with_capacity(h.edges as usize)\n\
             }\n";
        let (f, _) = run(src);
        assert!(
            f.iter().any(|x| x.rule == rules::UNVALIDATED_WIRE_LENGTH && x.line == 4),
            "checking `n` must not sanitize sibling `edges`, got {f:?}"
        );
    }

    /// The type match is exact on the type name: a builder that merely
    /// shares the prefix is trusted (its fields came from code, not a
    /// file), and so is a method on the bare header type listed under a
    /// path qualifier.
    #[test]
    fn untrusted_header_match_is_whole_name() {
        let src = "pub struct ShardHeaderBuilder { pub n: u64 }\n\
             impl ShardHeaderBuilder {\n\
                 pub fn alloc(&self) -> Vec<u64> {\n\
                     Vec::with_capacity(self.n as usize)\n\
                 }\n\
             }\n";
        let (f, _) = run(src);
        assert!(f.is_empty(), "prefix-named type must not be sourced, got {f:?}");
        assert_eq!(untrusted_header_in("&format::ShardHeader"), Some("ShardHeader"));
        assert_eq!(untrusted_header_in("ShardHeaderBuilder"), None);
    }

    /// Without a field table for the header the whole value taints —
    /// conservative, but still a source.
    #[test]
    fn untrusted_header_without_field_table_taints_whole_value() {
        let src = "pub fn grab(h: &ShardHeader) -> Vec<u64> {\n\
                 Vec::with_capacity(h.n as usize)\n\
             }\n";
        let (f, _) = run(src);
        assert!(
            f.iter().any(|x| x.rule == rules::UNVALIDATED_WIRE_LENGTH && x.line == 2),
            "whole-value taint must reach the field, got {f:?}"
        );
    }

    #[test]
    fn read_exact_transfers_taint_to_the_buffer() {
        let (f, _) = run("pub fn read_frame(r: &mut impl Read) -> Vec<u8> {\n\
                 let mut head = [0u8; 4];\n\
                 r.read_exact(&mut head).unwrap();\n\
                 let n = head[0] as usize;\n\
                 vec![0u8; n]\n\
             }\n");
        assert!(
            f.iter().any(|x| x.rule == rules::UNVALIDATED_WIRE_LENGTH && x.line == 5),
            "vec! with reader-derived length must flag, got {f:?}"
        );
    }

    #[test]
    fn parallel_float_reduction_fires_and_max_is_exempt() {
        let src = "pub fn total(xs: &[f64]) -> f64 {\n\
                 xs.par_iter().map(|x| x * 2.0).sum()\n\
             }\n\
             pub fn maxi(xs: &[f64]) -> f64 {\n\
                 xs.par_iter().cloned().reduce(|| 0.0, f64::max)\n\
             }\n\
             pub fn seq(xs: &[f64]) -> f64 {\n\
                 xs.iter().sum()\n\
             }\n";
        let (f, _) = run_in("crates/core/src/lib.rs", src);
        let fp: Vec<_> = f.iter().filter(|x| x.rule == rules::FP_REDUCTION_ORDER).collect();
        assert_eq!(fp.len(), 1, "exactly the par sum, got {fp:?}");
        assert_eq!(fp[0].line, 2);
        // Outside the determinism dirs the rule stays silent.
        let (f, _) = run_in("crates/lint/src/lib.rs", src);
        assert!(f.iter().all(|x| x.rule != rules::FP_REDUCTION_ORDER));
    }

    #[test]
    fn inner_sequential_sum_inside_par_closure_is_exempt() {
        let src = "pub fn residual(rows: &[Vec<f64>]) -> f64 {\n\
                 rows.par_iter().map(|r| r.iter().map(|x| x * 1.0).sum::<f64>()).reduce(|| 0.0, \
             f64::max)\n\
             }\n";
        let (f, _) = run_in("crates/solver/src/lib.rs", src);
        assert!(f.iter().all(|x| x.rule != rules::FP_REDUCTION_ORDER), "got {f:?}");
    }

    #[test]
    fn try_into_on_integer_is_clean_but_cast_is_not_shielded_by_calls() {
        let (f, _) = run("pub fn decode_n(b: &[u8]) -> u32 {\n\
                 let big = b[0] as usize;\n\
                 u32::try_from(big).unwrap_or(0)\n\
             }\n");
        assert!(f.is_empty(), "try_from is a checked conversion, got {f:?}");
    }

    #[test]
    fn report_json_renders() {
        let (_, rep) = run("pub fn decode_msg(bytes: &[u8]) -> Vec<u8> {\n\
                 let len = bytes[0] as usize;\n\
                 Vec::with_capacity(len)\n\
             }\n");
        let json = rep.to_json();
        assert!(json.contains("\"sinks\""));
        assert!(json.contains("\"tainted\": true"));
    }
}
