//! A comment- and string-literal-aware lexer for Rust source.
//!
//! `pasco-lint` rules match on *code*, never on prose: a `HashSet` in a
//! doc comment or an `.unwrap()` inside a string literal must not fire.
//! The lexer therefore produces three synchronized views of a file:
//!
//! * **Tokens** — words (`[A-Za-z0-9_]+`) and single punctuation
//!   characters of the code itself, each tagged with its 1-based line.
//!   Comments and literal *contents* are removed before tokenization, so
//!   rules can pattern-match token sequences without quoting worries.
//! * **Comments** — the text of every comment with its starting line,
//!   for `pasco-lint: allow(...)` pragma parsing.
//! * **Strings** — the decoded value of every string literal with its
//!   starting line, for rules that inspect committed fixtures (the
//!   wire-tag rule scans golden-bytes hex strings).
//!
//! The lexer understands line and (nested) block comments, plain and raw
//! strings (`r"…"`, `r#"…"#` with any hash count), byte strings, char
//! and byte-char literals (including escapes), and distinguishes
//! lifetimes (`'a`) from char literals. It does not need to be a full
//! Rust lexer — only faithful enough that blanking never swallows code
//! and never leaks prose into the token stream.

/// One lexical token of the code view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// A word: identifier, keyword, or number (`[A-Za-z0-9_]+`).
    Word(String),
    /// A single non-word, non-whitespace character.
    Punct(char),
}

/// A token tagged with the 1-based source line it starts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// 1-based line number.
    pub line: u32,
    /// The token itself.
    pub tok: Tok,
}

impl Token {
    /// The word text, if this token is a word.
    pub fn word(&self) -> Option<&str> {
        match &self.tok {
            Tok::Word(w) => Some(w),
            Tok::Punct(_) => None,
        }
    }

    /// True if this token is exactly the word `w`.
    pub fn is_word(&self, w: &str) -> bool {
        matches!(&self.tok, Tok::Word(s) if s == w)
    }

    /// True if this token is exactly the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(&self.tok, Tok::Punct(p) if *p == c)
    }
}

/// The three synchronized views of one lexed source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// `(starting line, comment text)` for every comment, in order.
    pub comments: Vec<(u32, String)>,
    /// `(starting line, decoded value)` for every string literal.
    pub strings: Vec<(u32, String)>,
}

impl Lexed {
    /// The smallest line `> after` that carries at least one code token,
    /// if any. Used to attach a standalone pragma comment to the line of
    /// code it annotates.
    pub fn next_code_line(&self, after: u32) -> Option<u32> {
        self.tokens.iter().map(|t| t.line).filter(|&l| l > after).min()
    }
}

struct Cursor<'a> {
    chars: std::str::Chars<'a>,
    /// One-character lookahead buffer.
    peeked: Option<char>,
    line: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor { chars: src.chars(), peeked: None, line: 1 }
    }

    fn peek(&mut self) -> Option<char> {
        if self.peeked.is_none() {
            self.peeked = self.chars.next();
        }
        self.peeked
    }

    fn peek2(&mut self) -> Option<char> {
        self.peek();
        self.chars.clone().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peeked.take().or_else(|| self.chars.next());
        if c == Some('\n') {
            self.line += 1;
        }
        c
    }
}

fn is_word_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Lexes `src` into the three views. Never fails: unterminated literals
/// or comments simply run to end of file, which is the useful behavior
/// for a linter (rustc will reject the file anyway).
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();
    while let Some(c) = cur.peek() {
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek2() == Some('/') => {
                let line = cur.line;
                cur.bump();
                cur.bump();
                let mut text = String::new();
                while let Some(c) = cur.peek() {
                    if c == '\n' {
                        break;
                    }
                    text.push(c);
                    cur.bump();
                }
                out.comments.push((line, text));
            }
            '/' if cur.peek2() == Some('*') => {
                let line = cur.line;
                cur.bump();
                cur.bump();
                let mut depth = 1u32;
                let mut text = String::new();
                while depth > 0 {
                    match (cur.bump(), cur.peek()) {
                        (Some('/'), Some('*')) => {
                            cur.bump();
                            depth += 1;
                            text.push_str("/*");
                        }
                        (Some('*'), Some('/')) => {
                            cur.bump();
                            depth -= 1;
                            if depth > 0 {
                                text.push_str("*/");
                            }
                        }
                        (Some(ch), _) => text.push(ch),
                        (None, _) => break,
                    }
                }
                out.comments.push((line, text));
            }
            '"' => {
                let line = cur.line;
                cur.bump();
                let value = read_string_body(&mut cur);
                out.strings.push((line, value));
            }
            '\'' => read_quote(&mut cur, &mut out),
            c if is_word_char(c) => {
                let line = cur.line;
                let mut word = String::new();
                while let Some(c) = cur.peek() {
                    if !is_word_char(c) {
                        break;
                    }
                    word.push(c);
                    cur.bump();
                }
                // A literal prefix? `r"…"`, `b"…"`, `br"…"`, `r#"…"#`, …
                if matches!(word.as_str(), "r" | "b" | "br")
                    && try_prefixed_literal(&mut cur, &word, line, &mut out)
                {
                    continue;
                }
                // A raw identifier? `r#fn`, `r#impl`, … lexes as ONE word
                // (`r#fn`), never as `r` + `#` + `fn` — a shattered raw
                // identifier would hand the item parser a phantom keyword.
                if word == "r" && cur.peek() == Some('#') && cur.peek2().is_some_and(is_word_char) {
                    cur.bump(); // the '#'
                    word.push('#');
                    while let Some(c) = cur.peek() {
                        if !is_word_char(c) {
                            break;
                        }
                        word.push(c);
                        cur.bump();
                    }
                }
                out.tokens.push(Token { line, tok: Tok::Word(word) });
            }
            c => {
                let line = cur.line;
                cur.bump();
                out.tokens.push(Token { line, tok: Tok::Punct(c) });
            }
        }
    }
    out
}

/// Consumes a raw/byte string literal that follows the prefix word, if
/// one is actually there. Returns false (consuming nothing) when the
/// word turns out to be a plain identifier (`r`, `b`, `br` used as
/// names) or a raw identifier (`r#match`).
fn try_prefixed_literal(cur: &mut Cursor, prefix: &str, line: u32, out: &mut Lexed) -> bool {
    match cur.peek() {
        Some('"') => {
            cur.bump();
            let value = if prefix.contains('r') {
                read_raw_string_body(cur, 0)
            } else {
                read_string_body(cur)
            };
            out.strings.push((line, value));
            true
        }
        Some('#') if prefix.contains('r') => {
            // Count hashes; `r#"…"#`-style only if a quote follows them.
            // Otherwise this is a raw identifier (`r#type`) — leave the
            // `#` for the main loop.
            let mut probe = cur.chars.clone();
            if let Some(p) = cur.peeked {
                // peeked is the first '#'; rebuild the lookahead stream.
                let mut hashes = 0usize;
                let mut it = std::iter::once(p).chain(probe.by_ref());
                let mut next = it.next();
                while next == Some('#') {
                    hashes += 1;
                    next = it.next();
                }
                if next == Some('"') {
                    for _ in 0..=hashes {
                        cur.bump();
                    }
                    let value = read_raw_string_body(cur, hashes);
                    out.strings.push((line, value));
                    return true;
                }
            }
            false
        }
        _ => false,
    }
}

/// Reads a normal (escaped) string body after the opening quote,
/// returning the decoded value.
fn read_string_body(cur: &mut Cursor) -> String {
    let mut value = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '"' => break,
            '\\' => match cur.bump() {
                Some('n') => value.push('\n'),
                Some('r') => value.push('\r'),
                Some('t') => value.push('\t'),
                Some('0') => value.push('\0'),
                Some('\\') => value.push('\\'),
                Some('"') => value.push('"'),
                Some('\'') => value.push('\''),
                Some('x') => {
                    let h = [cur.bump(), cur.bump()];
                    if let (Some(a), Some(b)) = (h[0], h[1]) {
                        if let Ok(v) = u8::from_str_radix(&format!("{a}{b}"), 16) {
                            value.push(v as char);
                        }
                    }
                }
                Some('u') => {
                    // \u{…}
                    let mut hex = String::new();
                    if cur.peek() == Some('{') {
                        cur.bump();
                        while let Some(c) = cur.bump() {
                            if c == '}' {
                                break;
                            }
                            hex.push(c);
                        }
                    }
                    if let Ok(v) = u32::from_str_radix(&hex, 16) {
                        if let Some(ch) = char::from_u32(v) {
                            value.push(ch);
                        }
                    }
                }
                Some('\n') => {
                    // Line continuation: skip leading whitespace of the
                    // next line (Rust's `\`-newline string rule).
                    while let Some(c) = cur.peek() {
                        if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
                            cur.bump();
                        } else {
                            break;
                        }
                    }
                }
                Some(other) => value.push(other),
                None => break,
            },
            c => value.push(c),
        }
    }
    value
}

/// Reads a raw string body after the opening quote: ends at `"` followed
/// by `hashes` `#` characters. No escapes.
fn read_raw_string_body(cur: &mut Cursor, hashes: usize) -> String {
    let mut value = String::new();
    'outer: while let Some(c) = cur.bump() {
        if c == '"' {
            // Candidate terminator: need `hashes` hashes.
            let mut seen = 0usize;
            while seen < hashes {
                if cur.peek() == Some('#') {
                    cur.bump();
                    seen += 1;
                } else {
                    value.push('"');
                    for _ in 0..seen {
                        value.push('#');
                    }
                    continue 'outer;
                }
            }
            break;
        }
        value.push(c);
    }
    value
}

/// Handles a `'`: either a char literal (contents discarded — rules do
/// not inspect char values) or a lifetime (the quote is dropped and the
/// name tokenizes as a word, which is harmless).
fn read_quote(cur: &mut Cursor, _out: &mut Lexed) {
    cur.bump(); // the opening quote
    match (cur.peek(), cur.peek2()) {
        (Some('\\'), _) => {
            // Escaped char literal: consume the escape, then run to the
            // closing quote.
            cur.bump();
            cur.bump();
            while let Some(c) = cur.bump() {
                if c == '\'' {
                    break;
                }
            }
        }
        (Some(a), Some('\'')) if a != '\'' => {
            // 'x' — a one-character literal.
            cur.bump();
            cur.bump();
        }
        _ => {
            // A lifetime ('a, 'static) or stray quote: nothing to do,
            // the following word lexes normally.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(src: &str) -> Vec<String> {
        lex(src).tokens.iter().filter_map(|t| t.word().map(str::to_owned)).collect()
    }

    #[test]
    fn comments_do_not_tokenize() {
        let l = lex("let x = 1; // HashSet here\n/* and .unwrap() there */ let y = 2;");
        assert!(l.tokens.iter().all(|t| !t.is_word("HashSet") && !t.is_word("unwrap")));
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].1.contains("HashSet"));
        assert!(l.comments[1].1.contains(".unwrap()"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* a /* b */ c */ fn f() {}");
        assert_eq!(words("/* a /* b */ c */ fn f() {}"), vec!["fn", "f"]);
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn strings_blank_out_but_are_captured() {
        let l = lex(r#"let s = "HashSet.unwrap()"; let t = 3;"#);
        assert!(l.tokens.iter().all(|t| !t.is_word("HashSet") && !t.is_word("unwrap")));
        assert_eq!(l.strings, vec![(1, "HashSet.unwrap()".to_owned())]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let l = lex(r###"let s = r#"a "quoted" b"#; let x = 1;"###);
        assert_eq!(l.strings, vec![(1, "a \"quoted\" b".to_owned())]);
        assert!(l.tokens.iter().any(|t| t.is_word("x")));
    }

    #[test]
    fn byte_and_plain_prefix_identifiers_survive() {
        // `r`, `b`, `br` as ordinary identifiers must stay words.
        assert_eq!(words("let r = b; let br = 1;"), vec!["let", "r", "b", "let", "br", "1"]);
        let l = lex(r#"let s = b"bytes"; let t = r"raw";"#);
        assert_eq!(l.strings.len(), 2);
        assert_eq!(l.strings[0].1, "bytes");
        assert_eq!(l.strings[1].1, "raw");
    }

    #[test]
    fn char_literals_and_lifetimes() {
        // 'a' is a char literal; 'a in a generic is a lifetime whose name
        // lexes as a word; '\'' and '\n' are escaped char literals.
        let toks = words("fn f<'a>(x: &'a str) { let c = 'y'; let d = '\\n'; }");
        assert!(toks.contains(&"a".to_owned()));
        assert!(!toks.contains(&"y".to_owned()));
        assert!(!toks.contains(&"n".to_owned()));
    }

    #[test]
    fn raw_identifiers_lex_as_single_words() {
        // `r#fn` is an identifier named `fn`, not the `fn` keyword: it
        // must come through as one word so the item parser never sees a
        // phantom item header.
        assert_eq!(
            words("let r#fn = 1; let r#impl = r#fn;"),
            vec!["let", "r#fn", "1", "let", "r#impl", "r#fn"]
        );
        // A raw identifier in call position keeps its shape too.
        assert_eq!(words("r#match(x)"), vec!["r#match", "x"]);
        // `r#"…"#` is still a raw string, and a lone `r` stays a word.
        let l = lex(r###"let s = r#"text"#; let r = 1;"###);
        assert_eq!(l.strings, vec![(1, "text".to_owned())]);
        assert!(l.tokens.iter().any(|t| t.is_word("r")));
        assert!(!l.tokens.iter().any(|t| t.is_word("text")));
        // `r##` with no quote is not a raw identifier (two hashes): the
        // word and hashes pass through without swallowing code.
        assert_eq!(words("r## x"), vec!["r", "x"]);
    }

    #[test]
    fn turbofish_token_runs_are_faithful() {
        // Generic-argument runs must keep every word and angle/colon
        // punct in order — the parser skips `::<…>` between a callee
        // name and its argument list by matching these exact tokens.
        let l = lex("v.collect::<Vec<_>>(); HashMap::<u32, Vec<u8>>::new();");
        let flat: Vec<String> = l
            .tokens
            .iter()
            .map(|t| match &t.tok {
                Tok::Word(w) => w.clone(),
                Tok::Punct(p) => p.to_string(),
            })
            .collect();
        assert_eq!(
            flat.join(" "),
            "v . collect : : < Vec < _ > > ( ) ; \
             HashMap : : < u32 , Vec < u8 > > : : new ( ) ;"
        );
    }

    #[test]
    fn async_fn_headers_tokenize_in_order() {
        // The ROADMAP's async adapter will bring `async fn` (and
        // `pub async unsafe fn`) headers; the parser keys on the `fn`
        // word with qualifiers before it, so order must be stable.
        assert_eq!(words("pub async fn fetch() {}"), vec!["pub", "async", "fn", "fetch"]);
        assert_eq!(
            words("async unsafe fn poll_inner(cx: Ctx) -> Out {}"),
            vec!["async", "unsafe", "fn", "poll_inner", "cx", "Ctx", "Out"]
        );
    }

    #[test]
    fn string_line_continuation_decodes_like_rustc() {
        let l = lex("let s = \"ab \\\n          cd\";");
        assert_eq!(l.strings[0].1, "ab cd");
    }

    #[test]
    fn line_numbers_are_accurate() {
        let l = lex("a\nb\n\nc // note\nd");
        let lines: Vec<u32> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4, 5]);
        assert_eq!(l.comments, vec![(4, " note".to_owned())]);
        assert_eq!(l.next_code_line(4), Some(5));
    }

    #[test]
    fn multiline_string_advances_lines() {
        let l = lex("let s = \"x\ny\";\nlet t = 1;");
        assert_eq!(l.strings[0].1, "x\ny");
        assert!(l.tokens.iter().any(|t| t.is_word("t") && t.line == 3));
    }
}
