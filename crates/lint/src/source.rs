//! Per-file analysis context: the lexed views plus two derived facts the
//! rules need — which lines are *test code*, and which findings are
//! suppressed by `pasco-lint: allow(...)` pragmas.
//!
//! ## Test regions
//!
//! Rules like `no-unwrap-in-serving` apply to production code only: an
//! `.unwrap()` inside `#[cfg(test)] mod tests { … }` or a `#[test]` fn is
//! fine. Test regions are found by scanning the token stream for a
//! `#[…]` attribute containing the word `test` (`#[test]`,
//! `#[cfg(test)]`, `#[cfg(all(test, …))]`), skipping any further
//! attributes, and brace-matching the item that follows. Because the
//! lexer blanks strings and comments, brace matching cannot be fooled by
//! braces in prose.
//!
//! ## Pragmas
//!
//! ```text
//! // pasco-lint: allow(rule-a, rule-b)
//! ```
//!
//! A pragma suppresses findings of the named rules on its own line
//! (trailing-comment form) and on the next line that carries code
//! (standalone-comment form). Unknown rule names in a pragma are
//! themselves reported (rule `bad-pragma`), so a typo cannot silently
//! disable nothing. Pragmas live in plain `//` / `/* … */` comments
//! only: doc comments are documentation, so prose *about* the pragma
//! syntax (like this module header) never parses as a directive.

use crate::lexer::{lex, Lexed, Tok};
use std::collections::{BTreeMap, BTreeSet};

/// Marker in a comment introducing a suppression pragma.
pub const PRAGMA: &str = "pasco-lint:";

/// One lexed file plus derived line classifications.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// The lexed views.
    pub lexed: Lexed,
    /// True when the whole file is test/bench/example code (under a
    /// `tests/`, `benches/`, or `examples/` directory).
    pub whole_file_test: bool,
    /// Inclusive `(start, end)` line spans of `#[cfg(test)]` / `#[test]`
    /// items.
    test_spans: Vec<(u32, u32)>,
    /// rule → lines on which that rule is suppressed.
    allows: BTreeMap<String, BTreeSet<u32>>,
    /// `(line, bad rule name)` for pragmas naming unknown rules.
    pub bad_pragmas: Vec<(u32, String)>,
}

impl SourceFile {
    /// Lexes and classifies one file. `known_rules` is the registry of
    /// valid rule slugs (for pragma validation).
    pub fn new(rel: String, src: &str, known_rules: &[&str]) -> Self {
        let whole_file_test = {
            let parts: Vec<&str> = rel.split('/').collect();
            parts[..parts.len().saturating_sub(1)]
                .iter()
                .any(|d| matches!(*d, "tests" | "benches" | "examples"))
        };
        let lexed = lex(src);
        let test_spans = find_test_spans(&lexed);
        let (allows, bad_pragmas) = find_pragmas(&lexed, known_rules);
        SourceFile { rel, lexed, whole_file_test, test_spans, allows, bad_pragmas }
    }

    /// True when `line` is inside test code (or the file is wholly test).
    pub fn is_test_line(&self, line: u32) -> bool {
        self.whole_file_test || self.test_spans.iter().any(|&(s, e)| s <= line && line <= e)
    }

    /// True when a pragma suppresses `rule` on `line`.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.get(rule).is_some_and(|lines| lines.contains(&line))
    }
}

/// Scans for attributes containing the word `test` and brace-matches the
/// annotated item to an inclusive line span.
fn find_test_spans(lexed: &Lexed) -> Vec<(u32, u32)> {
    let toks = &lexed.tokens;
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        let attr_start_line = toks[i].line;
        let (attr_end, is_test) = scan_attribute(lexed, i + 1);
        if !is_test {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut j = attr_end + 1;
        while j + 1 < toks.len() && toks[j].is_punct('#') && toks[j + 1].is_punct('[') {
            let (e, _) = scan_attribute(lexed, j + 1);
            j = e + 1;
        }
        // Find the item body: the first `{` (brace-match it) or `;`
        // (item ends there) — whichever comes first.
        let mut end_line = toks.get(j).map_or(attr_start_line, |t| t.line);
        while j < toks.len() {
            if toks[j].is_punct(';') {
                end_line = toks[j].line;
                break;
            }
            if toks[j].is_punct('{') {
                let mut depth = 1i32;
                let mut k = j + 1;
                while k < toks.len() && depth > 0 {
                    if toks[k].is_punct('{') {
                        depth += 1;
                    } else if toks[k].is_punct('}') {
                        depth -= 1;
                    }
                    k += 1;
                }
                end_line = toks.get(k.saturating_sub(1)).map_or(end_line, |t| t.line);
                j = k;
                break;
            }
            end_line = toks[j].line;
            j += 1;
        }
        spans.push((attr_start_line, end_line));
        i = j.max(attr_end + 1);
    }
    spans
}

/// From the index of the `[` of an attribute, returns the index of the
/// matching `]` (or the last token) and whether the attribute contains
/// the bare word `test`.
fn scan_attribute(lexed: &Lexed, open: usize) -> (usize, bool) {
    let toks = &lexed.tokens;
    let mut depth = 0i32;
    let mut is_test = false;
    let mut i = open;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (i, is_test);
                }
            }
            Tok::Word(w) if w == "test" => is_test = true,
            _ => {}
        }
        i += 1;
    }
    (toks.len().saturating_sub(1), is_test)
}

/// Rule slug → the set of source lines a pragma suppresses it on.
type AllowMap = BTreeMap<String, BTreeSet<u32>>;

/// Parses every `pasco-lint: allow(…)` pragma out of the comments.
fn find_pragmas(lexed: &Lexed, known_rules: &[&str]) -> (AllowMap, Vec<(u32, String)>) {
    let mut allows: AllowMap = AllowMap::new();
    let mut bad = Vec::new();
    for (line, text) in &lexed.comments {
        // Doc comments (`///…` lexes as `/…`, `//!…` as `!…`, and the
        // block forms as `*…` / `!…`) are prose, never directives.
        if matches!(text.chars().next(), Some('/' | '!' | '*')) {
            continue;
        }
        let Some(at) = text.find(PRAGMA) else { continue };
        let rest = text[at + PRAGMA.len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow") else {
            bad.push((*line, rest.split_whitespace().next().unwrap_or("").to_owned()));
            continue;
        };
        let args = args.trim_start();
        let Some(inner) = args.strip_prefix('(').and_then(|a| a.split(')').next()) else {
            bad.push((*line, "allow".to_owned()));
            continue;
        };
        for rule in inner.split(',').map(str::trim).filter(|r| !r.is_empty()) {
            if !known_rules.contains(&rule) {
                bad.push((*line, rule.to_owned()));
                continue;
            }
            let lines = allows.entry(rule.to_owned()).or_default();
            lines.insert(*line);
            if let Some(next) = lexed.next_code_line(*line) {
                lines.insert(next);
            }
        }
    }
    (allows, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &[&str] = &["rule-a", "rule-b"];

    #[test]
    fn cfg_test_mod_becomes_a_test_span() {
        let src = "fn prod() {}\n\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = SourceFile::new("crates/x/src/lib.rs".into(), src, RULES);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(5));
        assert!(f.is_test_line(6));
        assert!(!f.is_test_line(7));
    }

    #[test]
    fn test_fn_with_stacked_attrs() {
        let src = "#[test]\n#[should_panic]\nfn boom() {\n    panic!();\n}\nfn prod() {}\n";
        let f = SourceFile::new("a.rs".into(), src, RULES);
        assert!(f.is_test_line(1));
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn non_test_attrs_do_not_span() {
        let src = "#[derive(Debug)]\nstruct S {\n    x: u32,\n}\n";
        let f = SourceFile::new("a.rs".into(), src, RULES);
        assert!(!f.is_test_line(2));
    }

    #[test]
    fn braces_in_strings_do_not_break_matching() {
        let src = "#[cfg(test)]\nmod tests {\n    const S: &str = \"}}}\";\n}\nfn prod() {}\n";
        let f = SourceFile::new("a.rs".into(), src, RULES);
        assert!(f.is_test_line(3));
        assert!(!f.is_test_line(5));
    }

    #[test]
    fn files_under_tests_are_wholly_test() {
        let f = SourceFile::new("tests/api.rs".into(), "fn x() {}", RULES);
        assert!(f.is_test_line(1));
        let f = SourceFile::new("crates/x/benches/b.rs".into(), "fn x() {}", RULES);
        assert!(f.is_test_line(1));
        let f = SourceFile::new("crates/x/src/lib.rs".into(), "fn x() {}", RULES);
        assert!(!f.is_test_line(1));
    }

    #[test]
    fn trailing_pragma_covers_its_own_line() {
        let src = "let x = 1; // pasco-lint: allow(rule-a)\nlet y = 2;\n";
        let f = SourceFile::new("a.rs".into(), src, RULES);
        assert!(f.is_allowed("rule-a", 1));
        assert!(f.is_allowed("rule-a", 2)); // next code line too
        assert!(!f.is_allowed("rule-b", 1));
    }

    #[test]
    fn standalone_pragma_covers_next_code_line() {
        let src = "// pasco-lint: allow(rule-a, rule-b)\n\nlet x = 1;\nlet y = 2;\n";
        let f = SourceFile::new("a.rs".into(), src, RULES);
        assert!(f.is_allowed("rule-a", 3));
        assert!(f.is_allowed("rule-b", 3));
        assert!(!f.is_allowed("rule-a", 4));
    }

    #[test]
    fn unknown_rule_in_pragma_is_reported() {
        let src = "// pasco-lint: allow(rule-a, no-such-rule)\nlet x = 1;\n";
        let f = SourceFile::new("a.rs".into(), src, RULES);
        assert!(f.is_allowed("rule-a", 2));
        assert_eq!(f.bad_pragmas, vec![(1, "no-such-rule".to_owned())]);
    }

    #[test]
    fn doc_comments_are_prose_not_directives() {
        let src = "//! Example: `// pasco-lint: allow(no-such-rule)`.\n/// Same: pasco-lint: allow(x).\nlet x = 1;\n";
        let f = SourceFile::new("a.rs".into(), src, RULES);
        assert!(f.bad_pragmas.is_empty());
        assert!(!f.is_allowed("rule-a", 3));
    }

    #[test]
    fn malformed_pragma_is_reported() {
        let src = "// pasco-lint: deny(rule-a)\nlet x = 1;\n";
        let f = SourceFile::new("a.rs".into(), src, RULES);
        assert_eq!(f.bad_pragmas.len(), 1);
    }
}
