//! Stage three, part one: a statement-level control-flow graph built
//! straight from the token stream of one function body.
//!
//! The parser ([`crate::parser`]) records each function's body token
//! span; this module turns that span into basic blocks of statements
//! connected by control edges, which is what the forward-dataflow
//! framework ([`crate::dataflow`]) iterates over.
//!
//! ## What is modelled
//!
//! * Sequential statements split at top-level `;`.
//! * `if`/`else if`/`else` in statement position: the condition becomes
//!   a [`StmtKind::Cond`] statement, each branch its own block, with a
//!   join block after.
//! * `match` in statement position: the scrutinee statement branches to
//!   one block per arm, all joining after.
//! * `while`/`for`/`loop` in statement position: a head block with a
//!   back edge from the body end, and an exit edge to the block after
//!   (plus `break`/`continue` edges).
//! * `return` (and falling off the end): edges to the synthetic exit
//!   block; the trailing expression of the body is a [`StmtKind::Tail`]
//!   statement, so return-position taint can be summarized.
//!
//! ## What is deliberately not modelled
//!
//! Control constructs in *expression* position (`let x = if … {…}`,
//! `Ok(match … {…})`) collapse into the enclosing statement: the whole
//! construct is one statement whose tokens include both branches. For a
//! may-taint analysis this is the conservative direction — the effects
//! of every branch are visible at once. Closure bodies likewise stay
//! inside their statement. `?` is not given an error edge: an early
//! `Err` return can only *remove* facts on the error path, which a
//! may-analysis is allowed to ignore.

use crate::lexer::Token;

/// Index of the synthetic entry block (always present, may be empty).
pub const ENTRY: usize = 0;
/// Index of the synthetic exit block (always present, always empty).
pub const EXIT: usize = 1;

/// What a statement is, as far as dataflow transfer cares.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StmtKind {
    /// An ordinary statement (terminated by `;`, or collapsed control).
    Plain,
    /// The condition of an `if`/`while` — the place dominating bounds
    /// comparisons live.
    Cond,
    /// A `return …` statement (return-position for summaries).
    Return,
    /// A block-trailing expression without `;` (return-position when it
    /// ends the function body).
    Tail,
}

/// One statement: a token span `[lo, hi)` in the file's token stream.
#[derive(Clone, Copy, Debug)]
pub struct Stmt {
    /// Source line of the first token.
    pub line: u32,
    /// First token index (inclusive).
    pub lo: usize,
    /// One past the last token index.
    pub hi: usize,
    /// Statement role.
    pub kind: StmtKind,
}

/// A basic block: straight-line statements plus successor edges.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Statements, in execution order.
    pub stmts: Vec<Stmt>,
    /// Successor block indices.
    pub succ: Vec<usize>,
}

/// The control-flow graph of one function body.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Blocks; [`ENTRY`] and [`EXIT`] always exist.
    pub blocks: Vec<Block>,
}

impl Cfg {
    /// Builds the CFG for the body token span `[lo, hi)` of `toks`.
    pub fn build(toks: &[Token], lo: usize, hi: usize) -> Cfg {
        let mut b = Builder {
            toks,
            blocks: vec![Block::default(), Block::default()],
            cur: ENTRY,
            loops: Vec::new(),
        };
        let hi = hi.min(toks.len());
        b.seq(lo, hi);
        b.edge(b.cur, EXIT);
        Cfg { blocks: b.blocks }
    }

    /// Statements of every block in one flat pass (for whole-body scans
    /// that do not need flow, like the reduction-order rule).
    pub fn all_stmts(&self) -> impl Iterator<Item = &Stmt> {
        self.blocks.iter().flat_map(|b| b.stmts.iter())
    }
}

struct Builder<'a> {
    toks: &'a [Token],
    blocks: Vec<Block>,
    cur: usize,
    /// Stack of enclosing loops as `(head, after)` for break/continue.
    loops: Vec<(usize, usize)>,
}

impl<'a> Builder<'a> {
    fn word(&self, i: usize) -> Option<&str> {
        self.toks.get(i).and_then(Token::word)
    }

    fn punct(&self, i: usize, c: char) -> bool {
        self.toks.get(i).is_some_and(|t| t.is_punct(c))
    }

    fn line(&self, i: usize) -> u32 {
        self.toks.get(i).map_or(0, |t| t.line)
    }

    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succ.contains(&to) {
            self.blocks[from].succ.push(to);
        }
    }

    fn push_stmt(&mut self, lo: usize, hi: usize, kind: StmtKind) {
        if lo < hi {
            let line = self.line(lo);
            self.blocks[self.cur].stmts.push(Stmt { line, lo, hi, kind });
        }
    }

    /// One past the closer matching the opener at `i`.
    fn balanced(&self, i: usize, open: char, close: char) -> usize {
        let mut depth = 0i64;
        let mut j = i;
        while j < self.toks.len() {
            if self.punct(j, open) {
                depth += 1;
            } else if self.punct(j, close) {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        j
    }

    /// Scans from `i` to the first `{` at group depth zero (the opening
    /// brace of an `if`/`while`/`for`/`match` body), capped at `hi`.
    fn find_body_brace(&self, i: usize, hi: usize) -> usize {
        let mut j = i;
        while j < hi {
            if self.punct(j, '(') {
                j = self.balanced(j, '(', ')');
            } else if self.punct(j, '[') {
                j = self.balanced(j, '[', ']');
            } else if self.punct(j, '|') && self.punct(j + 1, '|') {
                j += 2; // `||` in a condition is just boolean-or
            } else if self.punct(j, '{') {
                return j;
            } else {
                j += 1;
            }
        }
        hi
    }

    /// Scans `[i, hi)` for the end of a simple statement: the top-level
    /// `;`, or `hi`. Returns `(one past last stmt token, next index)`.
    fn find_semi(&self, i: usize, hi: usize) -> (usize, usize) {
        let mut j = i;
        while j < hi {
            if self.punct(j, '(') {
                j = self.balanced(j, '(', ')');
            } else if self.punct(j, '[') {
                j = self.balanced(j, '[', ']');
            } else if self.punct(j, '{') {
                j = self.balanced(j, '{', '}');
            } else if self.punct(j, ';') {
                return (j, j + 1);
            } else {
                j += 1;
            }
        }
        (hi, hi)
    }

    /// Walks a statement sequence `[lo, hi)` into the current block,
    /// splitting at `;` and branching at statement-position control.
    fn seq(&mut self, lo: usize, hi: usize) {
        let mut i = lo;
        let mut st = lo; // start of the pending statement
        while i < hi {
            let at_stmt_start = i == st;
            match self.word(i) {
                Some("if") if at_stmt_start => {
                    i = self.if_chain(i, hi);
                    st = i;
                }
                Some("match") if at_stmt_start => {
                    i = self.match_stmt(i, hi);
                    st = i;
                }
                Some("while" | "for") if at_stmt_start => {
                    i = self.loop_with_head(i, hi);
                    st = i;
                }
                Some("loop") if at_stmt_start && self.punct(i + 1, '{') => {
                    i = self.bare_loop(i);
                    st = i;
                }
                Some("return") if at_stmt_start => {
                    let (end, next) = self.find_semi(i, hi);
                    self.push_stmt(i, end, StmtKind::Return);
                    self.edge(self.cur, EXIT);
                    self.cur = self.new_block(); // dead until joined
                    i = next;
                    st = i;
                }
                Some("break" | "continue") if at_stmt_start => {
                    let is_break = self.word(i) == Some("break");
                    let (end, next) = self.find_semi(i, hi);
                    self.push_stmt(i, end, StmtKind::Plain);
                    if let Some(&(head, after)) = self.loops.last() {
                        let to = if is_break { after } else { head };
                        self.edge(self.cur, to);
                    }
                    self.cur = self.new_block();
                    i = next;
                    st = i;
                }
                _ => {
                    if self.punct(i, '{') {
                        let close = self.balanced(i, '{', '}');
                        if at_stmt_start {
                            // A bare statement block: walk its interior
                            // in line (no new scope modelling needed).
                            self.seq(i + 1, close.saturating_sub(1).max(i + 1));
                            i = close;
                            st = i;
                        } else {
                            // Mid-expression braces (struct literal,
                            // closure body, expression-position control):
                            // stay inside the pending statement.
                            i = close;
                        }
                    } else if self.punct(i, '(') {
                        i = self.balanced(i, '(', ')');
                    } else if self.punct(i, '[') {
                        i = self.balanced(i, '[', ']');
                    } else if self.punct(i, ';') {
                        self.push_stmt(st, i, StmtKind::Plain);
                        i += 1;
                        st = i;
                    } else {
                        i += 1;
                    }
                }
            }
        }
        // Trailing expression without `;`: return-position value.
        self.push_stmt(st, hi, StmtKind::Tail);
    }

    /// `if cond { … } else if … { … } else { … }` starting at the `if`
    /// token; returns the index past the whole chain.
    fn if_chain(&mut self, i: usize, hi: usize) -> usize {
        let mut ends: Vec<usize> = Vec::new();
        let mut j = i;
        let mut branch_from;
        let mut has_else = false;
        loop {
            // `j` is at an `if`: condition runs to the body brace.
            let brace = self.find_body_brace(j + 1, hi);
            self.push_stmt(j + 1, brace, StmtKind::Cond);
            branch_from = self.cur;
            let close = self.balanced(brace, '{', '}');
            let then = self.new_block();
            self.edge(branch_from, then);
            self.cur = then;
            self.seq(brace + 1, close.saturating_sub(1).max(brace + 1));
            ends.push(self.cur);
            j = close;
            if self.word(j) == Some("else") {
                if self.word(j + 1) == Some("if") {
                    // The chained condition evaluates when the previous
                    // one is false: give it its own block.
                    let elif = self.new_block();
                    self.edge(branch_from, elif);
                    self.cur = elif;
                    j += 1;
                    continue;
                }
                if self.punct(j + 1, '{') {
                    has_else = true;
                    let eb = self.new_block();
                    self.edge(branch_from, eb);
                    self.cur = eb;
                    let eclose = self.balanced(j + 1, '{', '}');
                    self.seq(j + 2, eclose.saturating_sub(1).max(j + 2));
                    ends.push(self.cur);
                    j = eclose;
                }
            }
            break;
        }
        let join = self.new_block();
        for e in ends {
            self.edge(e, join);
        }
        if !has_else {
            self.edge(branch_from, join);
        }
        self.cur = join;
        j
    }

    /// `match scrutinee { arms… }` at statement position; returns the
    /// index past the closing brace.
    fn match_stmt(&mut self, i: usize, hi: usize) -> usize {
        let brace = self.find_body_brace(i + 1, hi);
        self.push_stmt(i + 1, brace, StmtKind::Plain);
        let branch_from = self.cur;
        let close = self.balanced(brace, '{', '}');
        let inner_hi = close.saturating_sub(1).max(brace + 1);
        let mut ends: Vec<usize> = Vec::new();
        let mut j = brace + 1;
        while j < inner_hi {
            // Pattern (and optional guard) up to the top-level `=>`.
            let mut k = j;
            while k < inner_hi {
                if self.punct(k, '(') {
                    k = self.balanced(k, '(', ')');
                } else if self.punct(k, '[') {
                    k = self.balanced(k, '[', ']');
                } else if self.punct(k, '{') {
                    k = self.balanced(k, '{', '}');
                } else if self.punct(k, '=') && self.punct(k + 1, '>') {
                    break;
                } else {
                    k += 1;
                }
            }
            if k >= inner_hi {
                break;
            }
            let arm = self.new_block();
            self.edge(branch_from, arm);
            self.cur = arm;
            let body_start = k + 2;
            let arm_end;
            let next;
            if self.punct(body_start, '{') {
                let bclose = self.balanced(body_start, '{', '}');
                self.seq(body_start + 1, bclose.saturating_sub(1).max(body_start + 1));
                arm_end = bclose;
                next = if self.punct(bclose, ',') { bclose + 1 } else { bclose };
            } else {
                // Expression arm: runs to the top-level `,` or match end.
                let mut e = body_start;
                while e < inner_hi {
                    if self.punct(e, '(') {
                        e = self.balanced(e, '(', ')');
                    } else if self.punct(e, '[') {
                        e = self.balanced(e, '[', ']');
                    } else if self.punct(e, '{') {
                        e = self.balanced(e, '{', '}');
                    } else if self.punct(e, ',') {
                        break;
                    } else {
                        e += 1;
                    }
                }
                self.seq(body_start, e);
                arm_end = e;
                next = if self.punct(e, ',') { e + 1 } else { e };
            }
            ends.push(self.cur);
            let _ = arm_end;
            j = next;
        }
        let join = self.new_block();
        if ends.is_empty() {
            self.edge(branch_from, join);
        }
        for e in ends {
            self.edge(e, join);
        }
        self.cur = join;
        close
    }

    /// `while cond { … }` / `for pat in expr { … }`; returns the index
    /// past the body.
    fn loop_with_head(&mut self, i: usize, hi: usize) -> usize {
        let is_while = self.word(i) == Some("while");
        let head = self.new_block();
        self.edge(self.cur, head);
        self.cur = head;
        let brace = self.find_body_brace(i + 1, hi);
        let kind = if is_while { StmtKind::Cond } else { StmtKind::Plain };
        self.push_stmt(i + 1, brace, kind);
        let close = self.balanced(brace, '{', '}');
        let body = self.new_block();
        let after = self.new_block();
        self.edge(head, body);
        self.edge(head, after);
        self.loops.push((head, after));
        self.cur = body;
        self.seq(brace + 1, close.saturating_sub(1).max(brace + 1));
        self.edge(self.cur, head);
        self.loops.pop();
        self.cur = after;
        close
    }

    /// `loop { … }`; returns the index past the body. The after-block is
    /// reachable only through `break`.
    fn bare_loop(&mut self, i: usize) -> usize {
        let head = self.new_block();
        self.edge(self.cur, head);
        let after = self.new_block();
        let close = self.balanced(i + 1, '{', '}');
        self.loops.push((head, after));
        self.cur = head;
        self.seq(i + 2, close.saturating_sub(1).max(i + 2));
        self.edge(self.cur, head);
        self.loops.pop();
        self.cur = after;
        close
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn cfg_of(body: &str) -> Cfg {
        let lexed = lexer::lex(body);
        Cfg::build(&lexed.tokens, 0, lexed.tokens.len())
    }

    #[test]
    fn straight_line_is_one_block_per_semicolon() {
        let cfg = cfg_of("let a = 1; let b = a; b");
        let stmts: Vec<_> = cfg.all_stmts().collect();
        assert_eq!(stmts.len(), 3);
        assert_eq!(stmts[2].kind, StmtKind::Tail);
    }

    #[test]
    fn if_else_branches_and_joins() {
        let cfg = cfg_of("let a = 1; if a > 0 { f(); } else { g(); } h();");
        let conds: Vec<_> = cfg.all_stmts().filter(|s| s.kind == StmtKind::Cond).collect();
        assert_eq!(conds.len(), 1);
        // Entry block must have two successors via the condition.
        let cond_block =
            cfg.blocks.iter().position(|b| b.stmts.iter().any(|s| s.kind == StmtKind::Cond));
        let cb = cond_block.expect("condition block");
        assert_eq!(cfg.blocks[cb].succ.len(), 2, "then + else");
    }

    #[test]
    fn early_return_edges_to_exit() {
        let cfg = cfg_of("if a > b { return Err(x); } ok(a)");
        let has_exit_edge = cfg
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| i != EXIT && b.succ.contains(&EXIT) && !b.stmts.is_empty());
        assert!(has_exit_edge);
        let returns: Vec<_> = cfg.all_stmts().filter(|s| s.kind == StmtKind::Return).collect();
        assert_eq!(returns.len(), 1);
    }

    #[test]
    fn while_loop_has_back_edge() {
        let cfg = cfg_of("let mut i = 0; while i < n { i += 1; } done()");
        // Some block must point back at an earlier block (the loop head).
        let back = cfg.blocks.iter().enumerate().any(|(i, b)| b.succ.iter().any(|&s| s <= i));
        assert!(back, "expected a back edge");
    }

    #[test]
    fn match_arms_each_get_a_block() {
        let cfg = cfg_of("match tag { 0 => a(), 1 => { b(); }, _ => return Err(e), } after();");
        let returns: Vec<_> = cfg.all_stmts().filter(|s| s.kind == StmtKind::Return).collect();
        assert_eq!(returns.len(), 1);
        // The scrutinee block branches to three arms.
        let branch = cfg.blocks.iter().find(|b| b.succ.len() >= 3);
        assert!(branch.is_some(), "match scrutinee should fan out");
    }

    #[test]
    fn expression_position_control_collapses_into_statement() {
        let cfg = cfg_of("let x = if c { a } else { b }; y(x);");
        // No Cond statements: the `if` is expression-position.
        assert!(cfg.all_stmts().all(|s| s.kind != StmtKind::Cond));
        assert_eq!(cfg.all_stmts().count(), 2);
    }

    #[test]
    fn vec_macro_semicolon_does_not_split() {
        let cfg = cfg_of("let v = vec![0u8; len]; use_it(v);");
        assert_eq!(cfg.all_stmts().count(), 2);
    }
}
