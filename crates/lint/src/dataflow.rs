//! Stage three, part two: a small monotone forward-dataflow framework
//! over the statement CFG ([`crate::cfg`]).
//!
//! The framework is generic over the abstract state: anything that forms
//! a join-semilattice ([`Semilattice`]) with a bottom element
//! (`Default`). A client supplies a transfer function — called once per
//! statement — and gets back the fixpoint state at the *entry* of every
//! block, computed with a classic worklist iteration:
//!
//! 1. seed the entry block with the client's entry state;
//! 2. pop a block, run the transfer through its statements;
//! 3. join the result into each successor's entry state; re-queue any
//!    successor whose state grew;
//! 4. repeat until no state changes.
//!
//! Monotone transfer + finite lattice (taint tracks only names that
//! occur in the body, so the powerset is finite) ⇒ termination.
//!
//! [`crate::taint`] instantiates this with the taint environment; the
//! framework itself knows nothing about taint, so future analyses
//! (liveness of lock guards, definite initialization) can reuse it.

use crate::cfg::{Cfg, Stmt, ENTRY};

/// A join-semilattice: `join` folds another state in, reporting whether
/// anything changed (the worklist's convergence signal). `Default` is
/// the bottom element.
pub trait Semilattice: Clone + Default {
    /// Merge `other` into `self`; true when `self` changed.
    fn join(&mut self, other: &Self) -> bool;
}

/// Runs a forward analysis to fixpoint. Returns the state at the entry
/// of every block (indexed like `cfg.blocks`); unreachable blocks stay
/// at bottom.
pub fn forward<S: Semilattice>(
    cfg: &Cfg,
    entry: S,
    mut transfer: impl FnMut(&Stmt, &mut S),
) -> Vec<S> {
    let n = cfg.blocks.len();
    let mut at_entry: Vec<S> = vec![S::default(); n];
    at_entry[ENTRY] = entry;
    let mut queued = vec![false; n];
    let mut visited = vec![false; n];
    let mut worklist = vec![ENTRY];
    queued[ENTRY] = true;
    // A generous iteration fuse: the lattice is finite so this should
    // never trip, but a linter must not hang on pathological input.
    let mut fuel = n.saturating_mul(64).max(4096);
    while let Some(b) = worklist.pop() {
        queued[b] = false;
        visited[b] = true;
        if fuel == 0 {
            break;
        }
        fuel -= 1;
        let mut state = at_entry[b].clone();
        for stmt in &cfg.blocks[b].stmts {
            transfer(stmt, &mut state);
        }
        for &succ in &cfg.blocks[b].succ {
            let grew = at_entry[succ].join(&state);
            // An unvisited successor must be processed even when the
            // join added nothing (a bottom state joining bottom), or
            // blocks past an empty entry block would never run.
            if (grew || !visited[succ]) && !queued[succ] {
                queued[succ] = true;
                worklist.push(succ);
            }
        }
    }
    at_entry
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{Cfg, EXIT};
    use crate::lexer;
    use std::collections::BTreeSet;

    /// Tiny client: a set of words ever seen on a statement ("reaching
    /// mentions"), good enough to exercise joins and loop fixpoints.
    #[derive(Clone, Default, PartialEq)]
    struct Seen(BTreeSet<String>);

    impl Semilattice for Seen {
        fn join(&mut self, other: &Self) -> bool {
            let before = self.0.len();
            self.0.extend(other.0.iter().cloned());
            self.0.len() != before
        }
    }

    fn run(body: &str) -> Vec<Seen> {
        let lexed = lexer::lex(body);
        let cfg = Cfg::build(&lexed.tokens, 0, lexed.tokens.len());
        let toks = lexed.tokens.clone();
        forward(&cfg, Seen::default(), move |stmt, state: &mut Seen| {
            for t in &toks[stmt.lo..stmt.hi] {
                if let Some(w) = t.word() {
                    state.0.insert(w.to_owned());
                }
            }
        })
    }

    #[test]
    fn branches_join_at_the_merge_point() {
        let lexed = lexer::lex("if c { a; } else { b; } tail");
        let cfg = Cfg::build(&lexed.tokens, 0, lexed.tokens.len());
        let toks = lexed.tokens.clone();
        let states = forward(&cfg, Seen::default(), move |stmt, state: &mut Seen| {
            for t in &toks[stmt.lo..stmt.hi] {
                if let Some(w) = t.word() {
                    state.0.insert(w.to_owned());
                }
            }
        });
        // The exit state must contain facts from both branches.
        let exit = &states[EXIT];
        assert!(exit.0.contains("a") && exit.0.contains("b") && exit.0.contains("c"));
    }

    #[test]
    fn loop_body_facts_reach_the_loop_head() {
        let states = run("while c { inside; } after");
        // `inside` flows around the back edge into every downstream state.
        let exit = &states[EXIT];
        assert!(exit.0.contains("inside"));
        assert!(exit.0.contains("after"));
    }

    #[test]
    fn unreachable_blocks_stay_bottom() {
        let states = run("return x; never");
        assert!(states[EXIT].0.contains("x"));
    }
}
