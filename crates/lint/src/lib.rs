#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! **pasco-lint** — a workspace-native invariant checker that turns this
//! repository's past bugs into CI-enforced rules.
//!
//! rustc and clippy verify what the *language* promises; this crate
//! verifies what the *project* promises: determinism in the seed, NaN-safe
//! rankings, `unsafe` confined to one syscall shim, panic-free serving
//! paths, append-only wire tags with golden-byte fixtures, and a
//! nonblocking reactor. Each rule exists because its violation already
//! shipped once (see the rule table in `README.md` §Static analysis).
//!
//! The architecture is three small layers:
//!
//! * [`lexer`] — a comment- and string-literal-aware Rust lexer, so rules
//!   match code, never prose;
//! * [`source`] — per-file classification: `#[cfg(test)]`/`#[test]`
//!   regions and `pasco-lint: allow(…)` suppression pragmas;
//! * [`parser`] — a lightweight item parser on the token stream:
//!   `fn`/`impl`/`trait`/`struct` items, call sites, lock acquisitions,
//!   panic sites, blocking operations — the workspace symbol table;
//! * [`callgraph`] — heuristic call resolution over that table:
//!   reachability from the reactor and the serving entrypoints, the
//!   lock-order graph, and the DOT/JSON dump behind `--dump-callgraph`;
//! * [`cfg`](mod@cfg) + [`dataflow`] + [`taint`] — the dataflow stage: a
//!   statement-level CFG per function body, a generic monotone forward
//!   framework over it, and a taint analysis that tracks untrusted wire
//!   bytes into allocation/index/cast sinks (with one level of
//!   interprocedural summaries through the call graph) and flags
//!   order-sensitive parallel float reductions;
//! * [`rules`] + [`wire`] — the rules themselves, pure functions from
//!   lexed source, the call graph, and the committed
//!   `WIRE_TAGS.manifest` to [`rules::Finding`]s;
//! * [`engine`] — walks the workspace, applies suppressions, renders
//!   human or `--json` reports.
//!
//! Run it as `cargo run -p pasco-lint -- --deny-all` (CI does, as a merge
//! gate). The library surface exists so the crate's own tests — and the
//! workspace self-run test — can drive the engine in-process.

pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod engine;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod source;
pub mod taint;
pub mod wire;

pub use engine::{find_workspace_root, run_workspace, Report};
pub use rules::{Finding, RULES};
