//! The driver: walks the workspace, runs every rule, applies pragma
//! suppressions, and renders the report (human or JSON).
//!
//! ## What gets walked
//!
//! Every `.rs` file under the workspace root except:
//!
//! * `crates/shims/` — vendored dependency stand-ins, not this
//!   project's code (they hold the only sanctioned `unsafe` thread/Cell
//!   plumbing outside the epoll shim);
//! * `target/`, `.git/`, and other dotted directories.
//!
//! Files under `tests/`, `benches/`, or `examples/` directories are
//! classified *whole-file test code*; rules that exempt test code skip
//! them entirely, while workspace-wide rules (like `float-ordering`)
//! still apply.

use crate::callgraph::{Analysis, Graph};
use crate::parser;
use crate::rules::{self, Finding};
use crate::source::SourceFile;
use crate::taint::{self, DataflowReport};
use crate::wire;
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The committed unresolved-edge budget, at the workspace root. Raised
/// (or lowered) deliberately, like `WIRE_TAGS.manifest`.
pub const BASELINE_PATH: &str = "CALLGRAPH.baseline";

/// Engine knobs beyond the defaults.
#[derive(Clone, Copy, Debug, Default)]
pub struct Options {
    /// Promote indexing/slicing panic sites to findings (off by default:
    /// the signal-to-noise of `v[i]` is too low for a merge gate, but
    /// `--strict-indexing` lets an audit see them).
    pub strict_indexing: bool,
}

/// The outcome of one lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings silenced by a `pasco-lint: allow(...)` pragma.
    pub suppressed: Vec<Finding>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when nothing (unsuppressed) was found.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the machine-readable JSON form (stable field order).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str(&format!(
            "],\n  \"suppressed\": {},\n  \"files_scanned\": {}\n}}\n",
            self.suppressed.len(),
            self.files_scanned
        ));
        s
    }

    /// Renders the human-readable form.
    pub fn to_human(&self) -> String {
        let mut s = String::new();
        for f in &self.findings {
            s.push_str(&format!("error[{}]: {}\n  --> {}:{}\n", f.rule, f.message, f.file, f.line));
        }
        s.push_str(&format!(
            "pasco-lint: {} finding{} ({} suppressed by pragmas) across {} files\n",
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            self.suppressed.len(),
            self.files_scanned
        ));
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Collects every workspace `.rs` file to lint, as
/// `(workspace-relative path, absolute path)`, sorted for deterministic
/// reports.
fn collect_files(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name.starts_with('.') || name == "target" {
                    continue;
                }
                let rel = rel_path(root, &path);
                if rel == "crates/shims" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push((rel_path(root, &path), path));
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lints the workspace rooted at `root` with default options.
pub fn run_workspace(root: &Path) -> io::Result<Report> {
    run_workspace_full(root, Options::default()).map(|(report, _, _, _)| report)
}

/// Lints the workspace and also returns the call graph + analysis + the
/// dataflow report (for `--dump-callgraph`, `--dump-dataflow`, and the
/// self-hosting tests).
pub fn run_workspace_full(
    root: &Path,
    opts: Options,
) -> io::Result<(Report, Graph, Analysis, DataflowReport)> {
    let slugs = rules::rule_slugs();
    let mut files = Vec::new();
    for (rel, abs) in collect_files(root)? {
        let src = fs::read_to_string(&abs)?;
        files.push(SourceFile::new(rel, &src, &slugs));
    }

    let mut raw: Vec<Finding> = Vec::new();
    for file in &files {
        raw.extend(rules::check_file(file));
    }

    // Stage two: parse items, build the workspace call graph, run the
    // interprocedural rules. Parsing runs twice: the first pass collects
    // every struct in the workspace into a field-type table, the second
    // uses it so `self.field.method()` receivers resolve across files.
    let pre: Vec<parser::FileItems> = files.iter().map(parser::parse_file).collect();
    let world: Vec<parser::StructItem> = pre.into_iter().flat_map(|i| i.structs).collect();
    let items: Vec<parser::FileItems> =
        files.iter().map(|f| parser::parse_file_with(f, &world)).collect();
    let graph = Graph::build(&items);
    let analysis = graph.analyze();
    raw.extend(graph.check(&analysis, opts.strict_indexing));

    // Stage three: the dataflow/taint pass over the same graph.
    let (taint_findings, dataflow) = taint::check(&files, &graph, &world);
    raw.extend(taint_findings);

    // The unresolved-edge budget: resolution quality may only regress
    // deliberately, by raising the committed baseline.
    if let Ok(text) = fs::read_to_string(root.join(BASELINE_PATH)) {
        let baseline: Option<usize> = text
            .lines()
            .map(str::trim)
            .find(|l| !l.is_empty() && !l.starts_with('#'))
            .and_then(|l| l.parse().ok());
        match baseline {
            Some(budget) if graph.unresolved_count() > budget => raw.push(Finding {
                file: BASELINE_PATH.to_owned(),
                line: 1,
                rule: rules::CALLGRAPH_BASELINE,
                message: format!(
                    "{} unresolved call edges, baseline allows {budget}: new code defeated the \
                     resolver (see `pasco-lint --dump-callgraph` → callgraph.json for the \
                     list). Make the calls resolvable, or raise the baseline deliberately",
                    graph.unresolved_count()
                ),
            }),
            Some(_) => {}
            None => raw.push(Finding {
                file: BASELINE_PATH.to_owned(),
                line: 1,
                rule: rules::CALLGRAPH_BASELINE,
                message: "CALLGRAPH.baseline exists but holds no count (first non-comment line \
                          must be an integer)"
                    .to_owned(),
            }),
        }
    }

    // The workspace-level wire-tag rule: parse the declarations, read the
    // manifest, scan every string literal in the tree for golden frames.
    let mut fixture_kinds = BTreeSet::new();
    for file in &files {
        // The linter's own test corpus contains frame-shaped hex strings;
        // they must not count as protocol fixtures.
        if file.rel.starts_with("crates/lint/") {
            continue;
        }
        for (_, value) in &file.lexed.strings {
            if let Some(kind) = wire::fixture_kind(value) {
                fixture_kinds.insert(kind);
            }
        }
    }
    let find = |rel: &str| files.iter().find(|f| f.rel == rel);
    let inputs = wire::WireInputs {
        frame_kinds: find(wire::ENVELOPE_PATH)
            .map(|f| wire::parse_enum_tags(&f.lexed, "FrameKind"))
            .unwrap_or_default(),
        error_tags: find(wire::WIRE_PATH)
            .map(|f| wire::parse_const_tags(&f.lexed, "ERR_"))
            .unwrap_or_default(),
        manifest: fs::read_to_string(root.join(wire::MANIFEST_PATH)).ok(),
        fixture_kinds,
    };
    raw.extend(wire::check(&inputs));

    // Pragma suppression.
    let mut report = Report { files_scanned: files.len(), ..Report::default() };
    for f in raw {
        let allowed =
            files.iter().find(|s| s.rel == f.file).is_some_and(|s| s.is_allowed(f.rule, f.line));
        if allowed {
            report.suppressed.push(f);
        } else {
            report.findings.push(f);
        }
    }
    report.findings.sort();
    report.suppressed.sort();
    Ok((report, graph, analysis, dataflow))
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]` — how the binary finds the root when run
/// from a member crate.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn report_renders_both_forms() {
        let report = Report {
            findings: vec![Finding {
                file: "a.rs".into(),
                line: 3,
                rule: "float-ordering",
                message: "msg".into(),
            }],
            suppressed: vec![],
            files_scanned: 2,
        };
        let human = report.to_human();
        assert!(human.contains("error[float-ordering]: msg"));
        assert!(human.contains("a.rs:3"));
        assert!(human.contains("1 finding (0 suppressed by pragmas) across 2 files"));
        let json = report.to_json();
        assert!(json.contains("\"rule\": \"float-ordering\""));
        assert!(json.contains("\"files_scanned\": 2"));
    }

    #[test]
    fn empty_report_is_clean_and_valid_json() {
        let report = Report::default();
        assert!(report.is_clean());
        assert!(report.to_json().contains("\"findings\": []"));
    }
}
