//! The `wire-tag-discipline` rule: the envelope's `FrameKind` tags and
//! the `QueryError` wire tags are *append-only protocol surface*. A
//! renumbered tag silently changes what every peer on the old build
//! understands — the worst kind of wire bug, invisible to rustc and to
//! any test that runs both ends from the same binary.
//!
//! Three checks, all against the source of truth in `crates/core`:
//!
//! 1. **Uniqueness** — no two `FrameKind` variants (or two `ERR_*`
//!    constants) share a tag.
//! 2. **Manifest sync** — every `name = tag` pair matches the committed
//!    registry `WIRE_TAGS.manifest` at the workspace root. A new tag must
//!    be *appended* to the manifest (an explicit, reviewable act); an
//!    existing pair may never change or disappear.
//! 3. **Fixture coverage** — every `FrameKind` variant has a
//!    golden-bytes hex fixture somewhere in the workspace (a string
//!    literal spelling out a full frame, `50 53 43 4f 01 00 <kind> …`),
//!    so the byte-level meaning of each kind is pinned by a test.
//!
//! The parsers work on the lexed token stream, so tags in comments or
//! strings never confuse them.

use crate::lexer::Lexed;
use crate::rules::{Finding, WIRE_TAG_DISCIPLINE};
use std::collections::{BTreeMap, BTreeSet};

/// Workspace-relative path of the committed tag registry.
pub const MANIFEST_PATH: &str = "WIRE_TAGS.manifest";
/// Workspace-relative path of the `FrameKind` declaration.
pub const ENVELOPE_PATH: &str = "crates/core/src/api/envelope.rs";
/// Workspace-relative path of the `QueryError` tag constants.
pub const WIRE_PATH: &str = "crates/core/src/api/wire.rs";

/// One parsed `name = tag` declaration with its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TagDecl {
    /// Variant or constant name.
    pub name: String,
    /// The wire tag value.
    pub tag: u32,
    /// 1-based source line of the declaration.
    pub line: u32,
}

/// Extracts `Variant = N` discriminants from `enum <name> { … }`.
pub fn parse_enum_tags(lexed: &Lexed, enum_name: &str) -> Vec<TagDecl> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    // Find `enum <name> {`.
    while i + 2 < toks.len() {
        if toks[i].is_word("enum") && toks[i + 1].is_word(enum_name) && toks[i + 2].is_punct('{') {
            break;
        }
        i += 1;
    }
    if i + 2 >= toks.len() {
        return out;
    }
    let mut depth = 1i32;
    let mut j = i + 3;
    while j < toks.len() && depth > 0 {
        if toks[j].is_punct('{') {
            depth += 1;
        } else if toks[j].is_punct('}') {
            depth -= 1;
        } else if depth == 1
            && j + 3 < toks.len()
            && toks[j + 1].is_punct('=')
            && (toks[j + 3].is_punct(',') || toks[j + 3].is_punct('}'))
        {
            if let (Some(name), Some(tag)) = (toks[j].word(), toks[j + 2].word()) {
                if let Ok(tag) = tag.parse::<u32>() {
                    out.push(TagDecl { name: name.to_owned(), tag, line: toks[j].line });
                }
            }
        }
        j += 1;
    }
    out
}

/// Extracts `const <PREFIX>NAME: u8 = N;` tag constants.
pub fn parse_const_tags(lexed: &Lexed, prefix: &str) -> Vec<TagDecl> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len().saturating_sub(6) {
        if toks[i].is_word("const")
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_word("u8")
            && toks[i + 4].is_punct('=')
            && toks[i + 6].is_punct(';')
        {
            if let (Some(name), Some(tag)) = (toks[i + 1].word(), toks[i + 5].word()) {
                if name.starts_with(prefix) {
                    if let Ok(tag) = tag.parse::<u32>() {
                        out.push(TagDecl { name: name.to_owned(), tag, line: toks[i + 1].line });
                    }
                }
            }
        }
    }
    out
}

/// The parsed manifest: `space → (name → tag)`.
pub type Manifest = BTreeMap<String, BTreeMap<String, u32>>;

/// Parses `WIRE_TAGS.manifest`: one `<space> <Name> <tag>` triple per
/// line, `#` comments, blank lines ignored. Returns the manifest plus
/// any unparseable lines.
pub fn parse_manifest(text: &str) -> (Manifest, Vec<u32>) {
    let mut manifest = Manifest::new();
    let mut bad_lines = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next(), parts.next().map(str::parse::<u32>), parts.next()) {
            (Some(space), Some(name), Some(Ok(tag)), None) => {
                manifest.entry(space.to_owned()).or_default().insert(name.to_owned(), tag);
            }
            _ => bad_lines.push(idx as u32 + 1),
        }
    }
    (manifest, bad_lines)
}

/// Scans a decoded string literal for a golden frame fixture and returns
/// the frame-kind byte if the string is one: whitespace-separated hex
/// bytes spelling `50 53 43 4f` (magic "PSCO"), version `01 00`, then
/// the kind.
pub fn fixture_kind(s: &str) -> Option<u8> {
    let bytes: Option<Vec<u8>> = s
        .split_whitespace()
        .map(|t| if t.len() == 2 { u8::from_str_radix(t, 16).ok() } else { None })
        .collect();
    let bytes = bytes?;
    if bytes.len() >= 7 && bytes[..6] == [0x50, 0x53, 0x43, 0x4f, 0x01, 0x00] {
        Some(bytes[6])
    } else {
        None
    }
}

/// Everything the workspace-level check needs, separated from file I/O so
/// tests can feed doctored inputs (a desynced manifest, a missing
/// fixture) and assert the rule fires.
pub struct WireInputs {
    /// Parsed `FrameKind` variants.
    pub frame_kinds: Vec<TagDecl>,
    /// Parsed `ERR_*` constants.
    pub error_tags: Vec<TagDecl>,
    /// The manifest text, or `None` when the file is missing.
    pub manifest: Option<String>,
    /// Frame-kind bytes pinned by golden fixtures anywhere in the tree.
    pub fixture_kinds: BTreeSet<u8>,
}

const SPACE_FRAME: &str = "framekind";
const SPACE_ERROR: &str = "queryerror";

/// Runs the full wire-tag-discipline check.
pub fn check(inputs: &WireInputs) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut push = |file: &str, line: u32, message: String| {
        out.push(Finding { file: file.to_owned(), line, rule: WIRE_TAG_DISCIPLINE, message });
    };

    if inputs.frame_kinds.is_empty() {
        push(ENVELOPE_PATH, 1, "could not parse any `FrameKind` variants".to_owned());
    }
    if inputs.error_tags.is_empty() {
        push(WIRE_PATH, 1, "could not parse any `ERR_*: u8` tag constants".to_owned());
    }

    // 1. Uniqueness within each tag space.
    for (decls, file) in [(&inputs.frame_kinds, ENVELOPE_PATH), (&inputs.error_tags, WIRE_PATH)] {
        let mut seen: BTreeMap<u32, &str> = BTreeMap::new();
        for d in decls.iter() {
            if let Some(first) = seen.insert(d.tag, &d.name) {
                push(
                    file,
                    d.line,
                    format!("wire tag {} assigned to both `{first}` and `{}`", d.tag, d.name),
                );
            }
        }
    }

    // 2. Manifest sync.
    match &inputs.manifest {
        None => push(
            MANIFEST_PATH,
            1,
            format!(
                "missing `{MANIFEST_PATH}`: the committed wire-tag registry is what makes \
                 renumbering detectable"
            ),
        ),
        Some(text) => {
            let (manifest, bad_lines) = parse_manifest(text);
            for line in bad_lines {
                push(
                    MANIFEST_PATH,
                    line,
                    "unparseable manifest line (want `<space> <Name> <tag>`)".to_owned(),
                );
            }
            for (space, decls, file) in [
                (SPACE_FRAME, &inputs.frame_kinds, ENVELOPE_PATH),
                (SPACE_ERROR, &inputs.error_tags, WIRE_PATH),
            ] {
                let committed = manifest.get(space).cloned().unwrap_or_default();
                let mut in_source = BTreeSet::new();
                for d in decls.iter() {
                    in_source.insert(d.name.clone());
                    match committed.get(&d.name) {
                        None => push(
                            file,
                            d.line,
                            format!(
                                "`{}` (tag {}) is not in `{MANIFEST_PATH}`; new wire tags must \
                                 be appended there (`{space} {} {}`) so the assignment is \
                                 committed and reviewed",
                                d.name, d.tag, d.name, d.tag
                            ),
                        ),
                        Some(&committed_tag) if committed_tag != d.tag => push(
                            file,
                            d.line,
                            format!(
                                "`{}` renumbered: source says {} but `{MANIFEST_PATH}` committed \
                                 {committed_tag}. Wire tags are append-only — old peers still \
                                 interpret {committed_tag}; add a new tag instead",
                                d.name, d.tag
                            ),
                        ),
                        Some(_) => {}
                    }
                }
                for (name, tag) in &committed {
                    if !in_source.contains(name) {
                        push(
                            file,
                            1,
                            format!(
                                "`{name}` (tag {tag}) is committed in `{MANIFEST_PATH}` but no \
                                 longer declared; wire tags may never be removed or renamed — \
                                 retired tags stay reserved"
                            ),
                        );
                    }
                }
            }
        }
    }

    // 3. Golden-fixture coverage for every frame kind.
    for d in &inputs.frame_kinds {
        if u8::try_from(d.tag).map(|t| !inputs.fixture_kinds.contains(&t)).unwrap_or(true) {
            push(
                ENVELOPE_PATH,
                d.line,
                format!(
                    "`FrameKind::{}` (tag {}) has no golden-bytes fixture: no committed hex \
                     string `50 53 43 4f 01 00 {:02x} …` pins its byte-level meaning",
                    d.name, d.tag, d.tag
                ),
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const ENUM_SRC: &str = "
        #[repr(u8)]
        pub enum FrameKind {
            /// Opens = a session (prose with = signs).
            Hello = 0,
            HelloAck = 1,
            Request = 2,
        }
        impl FrameKind { fn f() { let x = 3; } }
    ";

    const CONST_SRC: &str = "
        const ERR_A: u8 = 0;
        const ERR_B: u8 = 1;
        const OTHER: u8 = 9;
        const ERR_S: usize = 9;
    ";

    fn decls(pairs: &[(&str, u32)]) -> Vec<TagDecl> {
        pairs
            .iter()
            .enumerate()
            .map(|(i, (n, t))| TagDecl { name: (*n).to_owned(), tag: *t, line: i as u32 + 1 })
            .collect()
    }

    fn inputs() -> WireInputs {
        WireInputs {
            frame_kinds: decls(&[("Hello", 0), ("HelloAck", 1)]),
            error_tags: decls(&[("ERR_A", 0)]),
            manifest: Some("framekind Hello 0\nframekind HelloAck 1\nqueryerror ERR_A 0\n".into()),
            fixture_kinds: [0u8, 1].into_iter().collect(),
        }
    }

    #[test]
    fn parses_enum_discriminants_not_prose() {
        let tags = parse_enum_tags(&lex(ENUM_SRC), "FrameKind");
        assert_eq!(
            tags.iter().map(|d| (d.name.as_str(), d.tag)).collect::<Vec<_>>(),
            vec![("Hello", 0), ("HelloAck", 1), ("Request", 2)]
        );
    }

    #[test]
    fn parses_u8_consts_with_prefix_only() {
        let tags = parse_const_tags(&lex(CONST_SRC), "ERR_");
        assert_eq!(
            tags.iter().map(|d| (d.name.as_str(), d.tag)).collect::<Vec<_>>(),
            vec![("ERR_A", 0), ("ERR_B", 1)]
        );
    }

    #[test]
    fn clean_inputs_produce_no_findings() {
        assert_eq!(check(&inputs()), vec![]);
    }

    #[test]
    fn duplicate_tag_fires() {
        let mut i = inputs();
        i.frame_kinds = decls(&[("Hello", 0), ("HelloAck", 0)]);
        i.manifest = Some("framekind Hello 0\nframekind HelloAck 0\nqueryerror ERR_A 0\n".into());
        let f = check(&i);
        assert!(f.iter().any(|f| f.message.contains("assigned to both")), "{f:?}");
    }

    #[test]
    fn renumbered_tag_fires() {
        let mut i = inputs();
        i.manifest = Some("framekind Hello 0\nframekind HelloAck 5\nqueryerror ERR_A 0\n".into());
        let f = check(&i);
        assert!(f.iter().any(|f| f.message.contains("renumbered")), "{f:?}");
    }

    #[test]
    fn unregistered_new_tag_fires() {
        let mut i = inputs();
        i.frame_kinds.push(TagDecl { name: "Fresh".into(), tag: 2, line: 9 });
        i.fixture_kinds.insert(2);
        let f = check(&i);
        assert!(f.iter().any(|f| f.message.contains("must be appended")), "{f:?}");
    }

    #[test]
    fn removed_committed_tag_fires() {
        let mut i = inputs();
        i.error_tags.clear();
        i.error_tags.push(TagDecl { name: "ERR_Z".into(), tag: 1, line: 1 });
        let f = check(&i);
        assert!(f.iter().any(|f| f.message.contains("no longer declared")), "{f:?}");
    }

    #[test]
    fn missing_fixture_fires() {
        let mut i = inputs();
        i.fixture_kinds.remove(&1);
        let f = check(&i);
        assert!(f.iter().any(|f| f.message.contains("no golden-bytes fixture")), "{f:?}");
    }

    #[test]
    fn missing_manifest_fires() {
        let mut i = inputs();
        i.manifest = None;
        assert!(check(&i).iter().any(|f| f.file == MANIFEST_PATH));
    }

    #[test]
    fn fixture_kind_parses_golden_hex() {
        assert_eq!(
            fixture_kind("50 53 43 4f 01 00 0b 00 00 00 00 00 00 00 00 00 00 00 00 00"),
            Some(0x0b)
        );
        assert_eq!(fixture_kind("50 53 43 4f 02 00 0b"), None); // wrong version
        assert_eq!(fixture_kind("not hex at all"), None);
        assert_eq!(fixture_kind("50 53 43 4f 01 00"), None); // too short
    }
}
