#![forbid(unsafe_code)]
//! The `pasco-lint` binary: lints the workspace and reports.
//!
//! ```text
//! pasco-lint [--deny-all] [--json] [--root <dir>] [--list-rules]
//!            [--dump-callgraph <dir>] [--dump-dataflow <dir>]
//!            [--strict-indexing]
//! ```
//!
//! * `--deny-all` — exit 1 when any unsuppressed finding remains (the CI
//!   merge-gate mode). Without it the run always exits 0 and just reports.
//! * `--json` — machine-readable output (findings, suppressed count,
//!   files scanned); CI uploads this as an artifact.
//! * `--root <dir>` — workspace root; defaults to walking upward from the
//!   current directory to the first `[workspace]` Cargo.toml.
//! * `--list-rules` — print the rule table and exit.
//! * `--dump-callgraph <dir>` — write `callgraph.dot` + `callgraph.json`
//!   (the resolved workspace call graph, unresolved edges, reachability
//!   sets, lock-order edges) into `<dir>`; CI uploads both as artifacts.
//! * `--dump-dataflow <dir>` — write `dataflow.json` (every checked
//!   allocation/index/cast sink with its taint verdict, plus the
//!   non-trivial interprocedural summaries) into `<dir>`; the proof
//!   artifact behind the unvalidated-wire-length rule.
//! * `--strict-indexing` — also treat `v[i]` indexing/slicing as panic
//!   sites for the panic-reachability rule (audit mode, not the gate).

use pasco_lint::{engine, rules};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny_all = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut dump: Option<PathBuf> = None;
    let mut dump_dataflow: Option<PathBuf> = None;
    let mut opts = engine::Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--json" => json = true,
            "--strict-indexing" => opts.strict_indexing = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--dump-callgraph" => match args.next() {
                Some(dir) => dump = Some(PathBuf::from(dir)),
                None => return usage("--dump-callgraph needs a directory"),
            },
            "--dump-dataflow" => match args.next() {
                Some(dir) => dump_dataflow = Some(PathBuf::from(dir)),
                None => return usage("--dump-dataflow needs a directory"),
            },
            "--list-rules" => {
                for (slug, summary) in rules::RULES {
                    println!("{slug}\n    {summary}");
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                println!(
                    "pasco-lint: the PASCO workspace invariant checker\n\n\
                     usage: pasco-lint [--deny-all] [--json] [--root <dir>] [--list-rules]\n\
                            [--dump-callgraph <dir>] [--dump-dataflow <dir>]\n\
                            [--strict-indexing]\n\n\
                     Suppress a finding in code with `// pasco-lint: allow(<rule>)` on (or\n\
                     directly above) the offending line, with a comment justifying why the\n\
                     invariant holds there."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root
        .or_else(|| std::env::current_dir().ok().and_then(|d| engine::find_workspace_root(&d)))
    {
        Some(r) => r,
        None => {
            eprintln!("pasco-lint: no workspace root found (pass --root <dir>)");
            return ExitCode::FAILURE;
        }
    };

    let (report, graph, analysis, dataflow) = match engine::run_workspace_full(&root, opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pasco-lint: failed to scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    if let Some(dir) = dump {
        let write = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(dir.join("callgraph.dot"), graph.to_dot(&analysis)))
            .and_then(|()| std::fs::write(dir.join("callgraph.json"), graph.to_json(&analysis)));
        if let Err(e) = write {
            eprintln!("pasco-lint: failed to write callgraph dump to {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    if let Some(dir) = dump_dataflow {
        let write = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(dir.join("dataflow.json"), dataflow.to_json()));
        if let Err(e) = write {
            eprintln!("pasco-lint: failed to write dataflow dump to {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    if json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.to_human());
    }

    if deny_all && !report.is_clean() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!(
        "pasco-lint: {err}\nusage: pasco-lint [--deny-all] [--json] [--root <dir>] \
         [--list-rules] [--dump-callgraph <dir>] [--dump-dataflow <dir>] [--strict-indexing]"
    );
    ExitCode::FAILURE
}
