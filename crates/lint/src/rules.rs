//! The rule registry and the per-file rules.
//!
//! Every rule here is grounded in a bug this repository actually shipped
//! (see `README.md` §Static analysis for the table):
//!
//! * [`NONDETERMINISTIC_ITERATION`] — PR 1 fixed `barabasi_albert`
//!   feeding `HashSet` iteration order into sampling, which broke
//!   deterministic-in-seed reproducibility across processes.
//! * [`FLOAT_ORDERING`] — PR 3 fixed rankings panicking on a
//!   NaN-poisoned diagonal via `partial_cmp().unwrap()`; score paths
//!   must use `total_cmp`.
//! * [`UNSAFE_CONFINEMENT`] — PR 6 confined `unsafe` to the epoll shim
//!   `crates/server/src/sys.rs` by convention; this makes it structural.
//! * [`WIRE_TAG_DISCIPLINE`] (in [`crate::wire`]) — wire tags are
//!   append-only and every frame kind needs a golden-bytes fixture.
//!
//! Three rules are *interprocedural*: they run over the whole-workspace
//! call graph ([`crate::callgraph`]) instead of file-by-file —
//!
//! * [`PANIC_REACHABLE_IN_SERVING`] — every panic site transitively
//!   reachable from a serving entrypoint must carry a justified pragma.
//!   (Supersedes the per-file unwrap ban: a panic reached *through*
//!   `pasco_simrank::core` drops the connection just the same.)
//! * [`BLOCKING_IN_REACTOR_TRANSITIVE`] — nothing reachable from the
//!   epoll event loop may block, however many frames deep. (Supersedes
//!   the single-file lexical rule.)
//! * [`LOCK_ORDER_CYCLE`] — the lock-acquisition-order graph (which
//!   lock classes are held while which are acquired, across calls) must
//!   stay acyclic.
//! * [`CALLGRAPH_BASELINE`] — heuristic call resolution records what it
//!   cannot resolve; the committed `CALLGRAPH.baseline` count may only
//!   be raised deliberately, like `WIRE_TAGS.manifest`.

use crate::source::SourceFile;

/// One reported violation.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule slug.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// Rule slug: hash-ordered collections in determinism-critical crates.
pub const NONDETERMINISTIC_ITERATION: &str = "nondeterministic-iteration";
/// Rule slug: `partial_cmp` on score paths.
pub const FLOAT_ORDERING: &str = "float-ordering";
/// Rule slug: `unsafe` outside the syscall shim / missing crate-root deny.
pub const UNSAFE_CONFINEMENT: &str = "unsafe-confinement";
/// Rule slug: wire-tag uniqueness, manifest sync, fixture coverage.
pub const WIRE_TAG_DISCIPLINE: &str = "wire-tag-discipline";
/// Rule slug: malformed pragma or pragma naming an unknown rule.
pub const BAD_PRAGMA: &str = "bad-pragma";
/// Rule slug: a cycle in the whole-workspace lock-acquisition-order graph.
pub const LOCK_ORDER_CYCLE: &str = "lock-order-cycle";
/// Rule slug: a blocking operation transitively reachable from the epoll
/// event loop.
pub const BLOCKING_IN_REACTOR_TRANSITIVE: &str = "blocking-in-reactor-transitive";
/// Rule slug: a panic site transitively reachable from a serving
/// entrypoint.
pub const PANIC_REACHABLE_IN_SERVING: &str = "panic-reachable-in-serving";
/// Rule slug: unresolved-call-edge count regressed past `CALLGRAPH.baseline`.
pub const CALLGRAPH_BASELINE: &str = "callgraph-baseline";
/// Rule slug: a wire-derived length reaches an allocation or index
/// without a dominating bounds check.
pub const UNVALIDATED_WIRE_LENGTH: &str = "unvalidated-wire-length";
/// Rule slug: a wire-derived integer narrowed with `as` without a range
/// check.
pub const TAINTED_CAST_TRUNCATION: &str = "tainted-cast-truncation";
/// Rule slug: a parallel float reduction whose addition order is
/// scheduler-dependent.
pub const FP_REDUCTION_ORDER: &str = "fp-reduction-order";

/// Every rule `pasco-lint` knows, with a one-line summary (shown by
/// `--list-rules` and used in the README table).
pub const RULES: &[(&str, &str)] = &[
    (
        NONDETERMINISTIC_ITERATION,
        "no HashSet/HashMap in pasco_graph/pasco_mc/pasco_simrank production code: hasher order \
         must never feed sampling or generation",
    ),
    (
        FLOAT_ORDERING,
        "no partial_cmp anywhere in the workspace: rankings sort with f64::total_cmp so NaN \
         cannot panic or reorder",
    ),
    (
        UNSAFE_CONFINEMENT,
        "unsafe only in the sanctioned syscall shims (crates/server/src/sys.rs epoll, \
         crates/store/src/sys.rs mmap); every other crate root carries #![deny(unsafe_code)] \
         or #![forbid(unsafe_code)]",
    ),
    (
        WIRE_TAG_DISCIPLINE,
        "FrameKind/QueryError wire tags are unique, never renumbered against WIRE_TAGS.manifest, \
         and every frame kind has a golden-bytes fixture",
    ),
    (BAD_PRAGMA, "a pasco-lint pragma must be allow(...) and name only known rules"),
    (
        LOCK_ORDER_CYCLE,
        "the whole-workspace lock-order graph (lock classes held while other classes are \
         acquired, tracked across calls) must be acyclic: a cycle is a deadlock waiting for the \
         right interleaving",
    ),
    (
        BLOCKING_IN_REACTOR_TRANSITIVE,
        "no function transitively reachable from Reactor::run may block: no thread::sleep, \
         blocking framed I/O, channel recv, condvar wait, or locking a class some other thread \
         holds across a blocking call",
    ),
    (
        PANIC_REACHABLE_IN_SERVING,
        "every panic site (unwrap/expect/panic!-family) transitively reachable from a pub \
         serving entrypoint in pasco_server/pasco_worker/pasco_cluster must be removed or carry \
         a pragma stating the invariant that rules the panic out",
    ),
    (
        CALLGRAPH_BASELINE,
        "heuristic call resolution must not regress: the unresolved-edge count may not exceed \
         the committed CALLGRAPH.baseline (raise it deliberately, like WIRE_TAGS.manifest)",
    ),
    (
        UNVALIDATED_WIRE_LENGTH,
        "a length decoded from untrusted bytes must be bounds-checked before it reaches \
         Vec::with_capacity/reserve/vec![_; n]/slice indexing — taint-tracked through decode \
         helpers via call-graph summaries",
    ),
    (
        TAINTED_CAST_TRUNCATION,
        "a wire-derived u64/u32 may not be narrowed with `as` unless a range check or \
         try_into dominates the cast: silent truncation forges lengths and ids",
    ),
    (
        FP_REDUCTION_ORDER,
        "no parallel f64/f32 sum/product/reduce/fold in determinism crates: FP addition is \
         non-associative, so scheduler-dependent order breaks cross-substrate bit-equality \
         (min/max combiners are associative and exempt)",
    ),
];

/// The slugs alone, for pragma validation.
pub fn rule_slugs() -> Vec<&'static str> {
    RULES.iter().map(|(slug, _)| *slug).collect()
}

/// Crates whose sampling / generation / scoring must be deterministic in
/// the seed: hash-ordered collections are banned in their production code.
const DETERMINISM_DIRS: &[&str] = &["crates/graph/src/", "crates/mc/src/", "crates/core/src/"];

/// Crates on the serving path, where a panic drops a connection or wedges
/// a worker instead of surfacing a typed error. Pub fns defined here are
/// the roots of the panic-reachability analysis.
pub const SERVING_DIRS: &[&str] =
    &["crates/server/src/", "crates/worker/src/", "crates/cluster/src/"];

/// The reactor event-loop module — `Reactor::run` here is the root of
/// the blocking-reachability analysis.
pub const REACTOR_FILE: &str = "crates/server/src/server.rs";
/// The sanctioned `unsafe` shim modules — raw syscall bindings wrapped
/// behind safe interfaces. Exactly two exist: the epoll shim behind the
/// reactor and the mmap shim behind the out-of-core store. Growing this
/// allowlist is a reviewed act, the same way raising a wire tag is.
pub const UNSAFE_SHIMS: &[&str] = &["crates/server/src/sys.rs", "crates/store/src/sys.rs"];
/// The crate-root gates allowed to carry `#[allow(unsafe_code)]` — one
/// per shim, each admitting its `mod sys` into an otherwise
/// `deny(unsafe_code)` crate.
pub const UNSAFE_GATES: &[&str] = &["crates/server/src/lib.rs", "crates/store/src/lib.rs"];

/// True when `rel` sits under one of `dirs`.
pub fn in_dirs(rel: &str, dirs: &[&str]) -> bool {
    dirs.iter().any(|d| rel.starts_with(d))
}

/// Runs every per-file rule over one source file. (The workspace-level
/// wire-tag rule lives in [`crate::wire`].)
pub fn check_file(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    nondeterministic_iteration(file, &mut out);
    float_ordering(file, &mut out);
    unsafe_confinement(file, &mut out);
    bad_pragmas(file, &mut out);
    out
}

fn push(out: &mut Vec<Finding>, file: &SourceFile, line: u32, rule: &'static str, msg: String) {
    out.push(Finding { file: file.rel.clone(), line, rule, message: msg });
}

fn nondeterministic_iteration(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_dirs(&file.rel, DETERMINISM_DIRS) {
        return;
    }
    for t in &file.lexed.tokens {
        let Some(w) = t.word() else { continue };
        if (w == "HashSet" || w == "HashMap") && !file.is_test_line(t.line) {
            push(
                out,
                file,
                t.line,
                NONDETERMINISTIC_ITERATION,
                format!(
                    "`{w}` is hash-ordered: iteration order depends on hasher state and can leak \
                     into sampling, generation, or rankings (the PR 1 `barabasi_albert` \
                     regression class). Use `BTreeMap`/`BTreeSet`/a sorted `Vec`, or — if order \
                     provably never escapes — add `// pasco-lint: allow({NONDETERMINISTIC_ITERATION})` \
                     with a comment saying why"
                ),
            );
        }
    }
}

fn float_ordering(file: &SourceFile, out: &mut Vec<Finding>) {
    for t in &file.lexed.tokens {
        if t.is_word("partial_cmp") {
            push(
                out,
                file,
                t.line,
                FLOAT_ORDERING,
                format!(
                    "`partial_cmp` on a score path panics or misorders on NaN (the PR 3 \
                     NaN-poisoned-diagonal ranking bug). Sort floats with `f64::total_cmp`, or \
                     justify with `// pasco-lint: allow({FLOAT_ORDERING})`"
                ),
            );
        }
    }
}

fn unsafe_confinement(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    // 1. `unsafe` tokens only in the sanctioned syscall shims.
    if !UNSAFE_SHIMS.contains(&file.rel.as_str()) {
        for t in toks {
            if t.is_word("unsafe") {
                push(
                    out,
                    file,
                    t.line,
                    UNSAFE_CONFINEMENT,
                    format!(
                        "`unsafe` is confined to the sanctioned syscall shims ({}); wrap the \
                         unsafety behind a safe interface in one of them instead",
                        UNSAFE_SHIMS.join(", ")
                    ),
                );
            }
        }
    }
    // 2. `allow(unsafe_code)` only at a shim's gate in its crate root.
    if !UNSAFE_GATES.contains(&file.rel.as_str()) {
        for win in toks.windows(4) {
            if win[0].is_word("allow")
                && win[1].is_punct('(')
                && win[2].is_word("unsafe_code")
                && win[3].is_punct(')')
            {
                push(
                    out,
                    file,
                    win[0].line,
                    UNSAFE_CONFINEMENT,
                    format!(
                        "`#[allow(unsafe_code)]` appears only in the shim gates ({}) that admit \
                         a `mod sys`; nothing else may reopen unsafe",
                        UNSAFE_GATES.join(", ")
                    ),
                );
            }
        }
    }
    // 3. Every crate root must deny (or forbid) unsafe_code.
    let is_crate_root = file.rel == "src/lib.rs"
        || (file.rel.starts_with("crates/") && file.rel.ends_with("/src/lib.rs"));
    if is_crate_root {
        let denies = toks.windows(4).any(|w| {
            (w[0].is_word("deny") || w[0].is_word("forbid"))
                && w[1].is_punct('(')
                && w[2].is_word("unsafe_code")
                && w[3].is_punct(')')
        });
        if !denies {
            push(
                out,
                file,
                1,
                UNSAFE_CONFINEMENT,
                "crate root is missing `#![deny(unsafe_code)]` (or `#![forbid(unsafe_code)]`); \
                 every non-shim crate must refuse unsafe at the root"
                    .to_owned(),
            );
        }
    }
}

fn bad_pragmas(file: &SourceFile, out: &mut Vec<Finding>) {
    for (line, what) in &file.bad_pragmas {
        push(
            out,
            file,
            *line,
            BAD_PRAGMA,
            format!(
                "pragma names no known rule (`{what}`): the only form is `pasco-lint: \
                 allow(<rule>, …)` with slugs from `pasco-lint --list-rules` — a typo here would \
                 silently suppress nothing"
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn findings(rel: &str, src: &str) -> Vec<Finding> {
        let slugs = rule_slugs();
        check_file(&SourceFile::new(rel.to_owned(), src, &slugs))
    }

    #[test]
    fn hash_collections_flagged_only_in_determinism_crates() {
        let bad =
            "use std::collections::HashSet;\nfn f() { let s: HashSet<u32> = HashSet::new(); }\n";
        let hits = findings("crates/graph/src/gen.rs", bad);
        assert_eq!(hits.iter().filter(|f| f.rule == NONDETERMINISTIC_ITERATION).count(), 3);
        // Same source elsewhere: out of scope.
        assert!(findings("crates/server/src/x.rs", bad)
            .iter()
            .all(|f| f.rule != NONDETERMINISTIC_ITERATION));
        // In test code of a determinism crate: fine.
        let test_only = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        assert!(findings("crates/core/src/x.rs", test_only).is_empty());
    }

    #[test]
    fn unsafe_flagged_outside_shim_allowlist() {
        let bad =
            "#![deny(unsafe_code)]\nfn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
        let hits = findings("crates/core/src/x.rs", bad);
        assert_eq!(hits.iter().filter(|f| f.rule == UNSAFE_CONFINEMENT).count(), 1);
        // Both sanctioned shims are clean…
        assert!(findings("crates/server/src/sys.rs", bad).is_empty());
        assert!(findings("crates/store/src/sys.rs", bad).is_empty());
        // …but a third sys.rs elsewhere is NOT a shim: allowlist, not a
        // name pattern.
        let hits = findings("crates/worker/src/sys.rs", bad);
        assert_eq!(hits.iter().filter(|f| f.rule == UNSAFE_CONFINEMENT).count(), 1);
    }

    #[test]
    fn crate_root_must_deny_unsafe() {
        let hits = findings("crates/x/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(hits.iter().filter(|f| f.rule == UNSAFE_CONFINEMENT).count(), 1);
        assert!(
            findings("crates/x/src/lib.rs", "#![forbid(unsafe_code)]\npub fn f() {}\n").is_empty()
        );
        assert!(
            findings("crates/x/src/lib.rs", "#![deny(unsafe_code)]\npub fn f() {}\n").is_empty()
        );
        // Non-root files need no attribute.
        assert!(findings("crates/x/src/util.rs", "pub fn f() {}\n").is_empty());
    }

    #[test]
    fn allow_unsafe_code_flagged_outside_gates() {
        let bad = "#![deny(unsafe_code)]\n#[allow(unsafe_code)]\nmod sys;\n";
        let hits = findings("crates/worker/src/lib.rs", bad);
        assert_eq!(hits.iter().filter(|f| f.rule == UNSAFE_CONFINEMENT).count(), 1);
        assert!(findings("crates/server/src/lib.rs", bad).is_empty());
        assert!(findings("crates/store/src/lib.rs", bad).is_empty());
    }

    #[test]
    fn partial_cmp_flagged_everywhere_even_tests() {
        let bad = "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        assert_eq!(findings("crates/core/src/x.rs", bad).len(), 1);
        assert_eq!(findings("tests/x.rs", bad).len(), 1);
        let ok = "fn f(v: &mut [f64]) { v.sort_by(f64::total_cmp); }\n";
        assert!(findings("crates/core/src/x.rs", ok).is_empty());
    }

    #[test]
    fn prose_never_fires_rules() {
        let prose = "//! Uses `HashSet` and `.unwrap()` and `partial_cmp` and `unsafe`.\n\
                     const DOC: &str = \"thread::sleep(read_envelope)\";\n";
        assert!(findings("crates/graph/src/x.rs", prose).is_empty());
        assert!(findings("crates/server/src/server.rs", prose).is_empty());
    }

    #[test]
    fn pragma_suppression_is_not_a_rule_job() {
        // Suppression happens in the engine; rules report everything.
        let src =
            "use std::collections::HashSet; // pasco-lint: allow(nondeterministic-iteration)\n";
        assert_eq!(findings("crates/graph/src/x.rs", src).len(), 1);
    }
}
