//! The rule registry and the per-file rules.
//!
//! Every rule here is grounded in a bug this repository actually shipped
//! (see `README.md` §Static analysis for the table):
//!
//! * [`NONDETERMINISTIC_ITERATION`] — PR 1 fixed `barabasi_albert`
//!   feeding `HashSet` iteration order into sampling, which broke
//!   deterministic-in-seed reproducibility across processes.
//! * [`FLOAT_ORDERING`] — PR 3 fixed rankings panicking on a
//!   NaN-poisoned diagonal via `partial_cmp().unwrap()`; score paths
//!   must use `total_cmp`.
//! * [`UNSAFE_CONFINEMENT`] — PR 6 confined `unsafe` to the epoll shim
//!   `crates/server/src/sys.rs` by convention; this makes it structural.
//! * [`NO_UNWRAP_IN_SERVING`] — a panic in `server`/`worker`/`cluster`
//!   is a dropped connection or a wedged worker, not a clean error.
//! * [`WIRE_TAG_DISCIPLINE`] (in [`crate::wire`]) — wire tags are
//!   append-only and every frame kind needs a golden-bytes fixture.
//! * [`BLOCKING_IN_REACTOR`] — one blocking call in the event loop
//!   stalls every connection the reactor owns.

use crate::source::SourceFile;

/// One reported violation.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule slug.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

/// Rule slug: hash-ordered collections in determinism-critical crates.
pub const NONDETERMINISTIC_ITERATION: &str = "nondeterministic-iteration";
/// Rule slug: `partial_cmp` on score paths.
pub const FLOAT_ORDERING: &str = "float-ordering";
/// Rule slug: `unsafe` outside the syscall shim / missing crate-root deny.
pub const UNSAFE_CONFINEMENT: &str = "unsafe-confinement";
/// Rule slug: `.unwrap()` / `.expect()` in serving-path production code.
pub const NO_UNWRAP_IN_SERVING: &str = "no-unwrap-in-serving";
/// Rule slug: wire-tag uniqueness, manifest sync, fixture coverage.
pub const WIRE_TAG_DISCIPLINE: &str = "wire-tag-discipline";
/// Rule slug: blocking calls inside the reactor event loop.
pub const BLOCKING_IN_REACTOR: &str = "blocking-in-reactor";
/// Rule slug: malformed pragma or pragma naming an unknown rule.
pub const BAD_PRAGMA: &str = "bad-pragma";

/// Every rule `pasco-lint` knows, with a one-line summary (shown by
/// `--list-rules` and used in the README table).
pub const RULES: &[(&str, &str)] = &[
    (
        NONDETERMINISTIC_ITERATION,
        "no HashSet/HashMap in pasco_graph/pasco_mc/pasco_simrank production code: hasher order \
         must never feed sampling or generation",
    ),
    (
        FLOAT_ORDERING,
        "no partial_cmp anywhere in the workspace: rankings sort with f64::total_cmp so NaN \
         cannot panic or reorder",
    ),
    (
        UNSAFE_CONFINEMENT,
        "unsafe only in crates/server/src/sys.rs; every other crate root carries \
         #![deny(unsafe_code)] or #![forbid(unsafe_code)]",
    ),
    (
        NO_UNWRAP_IN_SERVING,
        "no .unwrap()/.expect() in production code of pasco_server/pasco_worker/pasco_cluster: a \
         panic is a dropped connection or a wedged worker",
    ),
    (
        WIRE_TAG_DISCIPLINE,
        "FrameKind/QueryError wire tags are unique, never renumbered against WIRE_TAGS.manifest, \
         and every frame kind has a golden-bytes fixture",
    ),
    (
        BLOCKING_IN_REACTOR,
        "no thread::sleep or blocking framed I/O inside the reactor event-loop module \
         crates/server/src/server.rs",
    ),
    (BAD_PRAGMA, "a pasco-lint pragma must be allow(...) and name only known rules"),
];

/// The slugs alone, for pragma validation.
pub fn rule_slugs() -> Vec<&'static str> {
    RULES.iter().map(|(slug, _)| *slug).collect()
}

/// Crates whose sampling / generation / scoring must be deterministic in
/// the seed: hash-ordered collections are banned in their production code.
const DETERMINISM_DIRS: &[&str] = &["crates/graph/src/", "crates/mc/src/", "crates/core/src/"];

/// Crates on the serving path, where a panic drops a connection or wedges
/// a worker instead of surfacing a typed error.
const SERVING_DIRS: &[&str] = &["crates/server/src/", "crates/worker/src/", "crates/cluster/src/"];

/// The reactor event-loop module.
const REACTOR_FILE: &str = "crates/server/src/server.rs";
/// The one module allowed to contain `unsafe` (the epoll syscall shim).
const UNSAFE_SHIM: &str = "crates/server/src/sys.rs";
/// The one file allowed to carry `#[allow(unsafe_code)]` (the gate that
/// admits the shim module into an otherwise `deny(unsafe_code)` crate).
const UNSAFE_GATE: &str = "crates/server/src/lib.rs";

/// Blocking calls that must never appear in the reactor: the blocking
/// framed-I/O helpers (the reactor uses the resumable
/// `FrameDecoder`/`WriteQueue` state machines instead) and the blocking
/// std read/write patterns they are built from.
const REACTOR_BLOCKING_CALLS: &[&str] =
    &["read_envelope", "write_envelope", "poll_envelope", "read_exact", "read_to_end", "write_all"];

fn in_dirs(rel: &str, dirs: &[&str]) -> bool {
    dirs.iter().any(|d| rel.starts_with(d))
}

/// Runs every per-file rule over one source file. (The workspace-level
/// wire-tag rule lives in [`crate::wire`].)
pub fn check_file(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    nondeterministic_iteration(file, &mut out);
    float_ordering(file, &mut out);
    unsafe_confinement(file, &mut out);
    no_unwrap_in_serving(file, &mut out);
    blocking_in_reactor(file, &mut out);
    bad_pragmas(file, &mut out);
    out
}

fn push(out: &mut Vec<Finding>, file: &SourceFile, line: u32, rule: &'static str, msg: String) {
    out.push(Finding { file: file.rel.clone(), line, rule, message: msg });
}

fn nondeterministic_iteration(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_dirs(&file.rel, DETERMINISM_DIRS) {
        return;
    }
    for t in &file.lexed.tokens {
        let Some(w) = t.word() else { continue };
        if (w == "HashSet" || w == "HashMap") && !file.is_test_line(t.line) {
            push(
                out,
                file,
                t.line,
                NONDETERMINISTIC_ITERATION,
                format!(
                    "`{w}` is hash-ordered: iteration order depends on hasher state and can leak \
                     into sampling, generation, or rankings (the PR 1 `barabasi_albert` \
                     regression class). Use `BTreeMap`/`BTreeSet`/a sorted `Vec`, or — if order \
                     provably never escapes — add `// pasco-lint: allow({NONDETERMINISTIC_ITERATION})` \
                     with a comment saying why"
                ),
            );
        }
    }
}

fn float_ordering(file: &SourceFile, out: &mut Vec<Finding>) {
    for t in &file.lexed.tokens {
        if t.is_word("partial_cmp") {
            push(
                out,
                file,
                t.line,
                FLOAT_ORDERING,
                format!(
                    "`partial_cmp` on a score path panics or misorders on NaN (the PR 3 \
                     NaN-poisoned-diagonal ranking bug). Sort floats with `f64::total_cmp`, or \
                     justify with `// pasco-lint: allow({FLOAT_ORDERING})`"
                ),
            );
        }
    }
}

fn unsafe_confinement(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    // 1. `unsafe` tokens only in the syscall shim.
    if file.rel != UNSAFE_SHIM {
        for t in toks {
            if t.is_word("unsafe") {
                push(
                    out,
                    file,
                    t.line,
                    UNSAFE_CONFINEMENT,
                    format!(
                        "`unsafe` is confined to the epoll syscall shim `{UNSAFE_SHIM}`; wrap the \
                         unsafety behind a safe interface there instead"
                    ),
                );
            }
        }
    }
    // 2. `allow(unsafe_code)` only at the shim's gate in the server root.
    if file.rel != UNSAFE_GATE {
        for win in toks.windows(4) {
            if win[0].is_word("allow")
                && win[1].is_punct('(')
                && win[2].is_word("unsafe_code")
                && win[3].is_punct(')')
            {
                push(
                    out,
                    file,
                    win[0].line,
                    UNSAFE_CONFINEMENT,
                    format!(
                        "`#[allow(unsafe_code)]` appears only in `{UNSAFE_GATE}` (the gate that \
                         admits `mod sys`); nothing else may reopen unsafe"
                    ),
                );
            }
        }
    }
    // 3. Every crate root must deny (or forbid) unsafe_code.
    let is_crate_root = file.rel == "src/lib.rs"
        || (file.rel.starts_with("crates/") && file.rel.ends_with("/src/lib.rs"));
    if is_crate_root {
        let denies = toks.windows(4).any(|w| {
            (w[0].is_word("deny") || w[0].is_word("forbid"))
                && w[1].is_punct('(')
                && w[2].is_word("unsafe_code")
                && w[3].is_punct(')')
        });
        if !denies {
            push(
                out,
                file,
                1,
                UNSAFE_CONFINEMENT,
                "crate root is missing `#![deny(unsafe_code)]` (or `#![forbid(unsafe_code)]`); \
                 every non-shim crate must refuse unsafe at the root"
                    .to_owned(),
            );
        }
    }
}

fn no_unwrap_in_serving(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_dirs(&file.rel, SERVING_DIRS) {
        return;
    }
    let toks = &file.lexed.tokens;
    for i in 1..toks.len().saturating_sub(1) {
        let is_call = (toks[i].is_word("unwrap") || toks[i].is_word("expect"))
            && toks[i - 1].is_punct('.')
            && toks[i + 1].is_punct('(');
        if is_call && !file.is_test_line(toks[i].line) {
            let name = toks[i].word().unwrap_or_default();
            push(
                out,
                file,
                toks[i].line,
                NO_UNWRAP_IN_SERVING,
                format!(
                    "`.{name}(…)` in serving-path production code: a panic here drops a \
                     connection or wedges a worker. Return a typed error (`QueryError`, \
                     `io::Error`), or — for an invariant the surrounding code guarantees — add \
                     `// pasco-lint: allow({NO_UNWRAP_IN_SERVING})` with the guarantee spelled out"
                ),
            );
        }
    }
}

fn blocking_in_reactor(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.rel != REACTOR_FILE {
        return;
    }
    let toks = &file.lexed.tokens;
    for i in 0..toks.len() {
        if file.is_test_line(toks[i].line) {
            continue;
        }
        // `thread::sleep` (with or without a `std::` prefix).
        if toks[i].is_word("sleep")
            && i >= 2
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
        {
            push(
                out,
                file,
                toks[i].line,
                BLOCKING_IN_REACTOR,
                "`thread::sleep` inside the reactor module stalls every connection the event \
                 loop owns; arm a timer-wheel deadline and return to `epoll_wait` instead"
                    .to_owned(),
            );
        }
        // Blocking framed/stream I/O helpers.
        let is_call = toks[i].word().is_some_and(|w| REACTOR_BLOCKING_CALLS.contains(&w))
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
        if is_call {
            let name = toks[i].word().unwrap_or_default();
            push(
                out,
                file,
                toks[i].line,
                BLOCKING_IN_REACTOR,
                format!(
                    "`{name}` is blocking I/O; the reactor must stay nonblocking — feed bytes \
                     through the resumable `FrameDecoder`/`WriteQueue` state machines instead"
                ),
            );
        }
    }
}

fn bad_pragmas(file: &SourceFile, out: &mut Vec<Finding>) {
    for (line, what) in &file.bad_pragmas {
        push(
            out,
            file,
            *line,
            BAD_PRAGMA,
            format!(
                "pragma names no known rule (`{what}`): the only form is `pasco-lint: \
                 allow(<rule>, …)` with slugs from `pasco-lint --list-rules` — a typo here would \
                 silently suppress nothing"
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn findings(rel: &str, src: &str) -> Vec<Finding> {
        let slugs = rule_slugs();
        check_file(&SourceFile::new(rel.to_owned(), src, &slugs))
    }

    #[test]
    fn hash_collections_flagged_only_in_determinism_crates() {
        let bad =
            "use std::collections::HashSet;\nfn f() { let s: HashSet<u32> = HashSet::new(); }\n";
        let hits = findings("crates/graph/src/gen.rs", bad);
        assert_eq!(hits.iter().filter(|f| f.rule == NONDETERMINISTIC_ITERATION).count(), 3);
        // Same source elsewhere: out of scope.
        assert!(findings("crates/server/src/x.rs", bad)
            .iter()
            .all(|f| f.rule != NONDETERMINISTIC_ITERATION));
        // In test code of a determinism crate: fine.
        let test_only = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        assert!(findings("crates/core/src/x.rs", test_only).is_empty());
    }

    #[test]
    fn unwrap_and_expect_flagged_on_serving_path_only() {
        let bad = "fn f(x: Option<u32>) -> u32 { x.unwrap() + x.expect(\"set\") }\n";
        let hits = findings("crates/server/src/server.rs", bad);
        assert_eq!(hits.iter().filter(|f| f.rule == NO_UNWRAP_IN_SERVING).count(), 2);
        assert!(findings("crates/core/src/x.rs", bad).is_empty());
        // unwrap_or / expected are different identifiers — not flagged.
        let ok = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\nfn expected(e: u32) {}\n";
        assert!(findings("crates/worker/src/rpc.rs", ok).is_empty());
    }

    #[test]
    fn unsafe_flagged_outside_shim() {
        let bad =
            "#![deny(unsafe_code)]\nfn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
        let hits = findings("crates/core/src/x.rs", bad);
        assert_eq!(hits.iter().filter(|f| f.rule == UNSAFE_CONFINEMENT).count(), 1);
        assert!(findings("crates/server/src/sys.rs", bad).is_empty());
    }

    #[test]
    fn crate_root_must_deny_unsafe() {
        let hits = findings("crates/x/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(hits.iter().filter(|f| f.rule == UNSAFE_CONFINEMENT).count(), 1);
        assert!(
            findings("crates/x/src/lib.rs", "#![forbid(unsafe_code)]\npub fn f() {}\n").is_empty()
        );
        assert!(
            findings("crates/x/src/lib.rs", "#![deny(unsafe_code)]\npub fn f() {}\n").is_empty()
        );
        // Non-root files need no attribute.
        assert!(findings("crates/x/src/util.rs", "pub fn f() {}\n").is_empty());
    }

    #[test]
    fn allow_unsafe_code_flagged_outside_gate() {
        let bad = "#![deny(unsafe_code)]\n#[allow(unsafe_code)]\nmod sys;\n";
        let hits = findings("crates/worker/src/lib.rs", bad);
        assert_eq!(hits.iter().filter(|f| f.rule == UNSAFE_CONFINEMENT).count(), 1);
        assert!(findings("crates/server/src/lib.rs", bad).is_empty());
    }

    #[test]
    fn partial_cmp_flagged_everywhere_even_tests() {
        let bad = "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        assert_eq!(findings("crates/core/src/x.rs", bad).len(), 1);
        assert_eq!(findings("tests/x.rs", bad).len(), 1);
        let ok = "fn f(v: &mut [f64]) { v.sort_by(f64::total_cmp); }\n";
        assert!(findings("crates/core/src/x.rs", ok).is_empty());
    }

    #[test]
    fn blocking_calls_flagged_in_reactor_only() {
        let bad =
            "fn f() {\n    std::thread::sleep(D);\n    let e = read_envelope(&mut s, m);\n}\n";
        let hits = findings("crates/server/src/server.rs", bad);
        assert_eq!(hits.iter().filter(|f| f.rule == BLOCKING_IN_REACTOR).count(), 2);
        assert!(findings("crates/server/src/client.rs", bad).is_empty());
    }

    #[test]
    fn prose_never_fires_rules() {
        let prose = "//! Uses `HashSet` and `.unwrap()` and `partial_cmp` and `unsafe`.\n\
                     const DOC: &str = \"thread::sleep(read_envelope)\";\n";
        assert!(findings("crates/graph/src/x.rs", prose).is_empty());
        assert!(findings("crates/server/src/server.rs", prose).is_empty());
    }

    #[test]
    fn pragma_suppression_is_not_a_rule_job() {
        // Suppression happens in the engine; rules report everything.
        let src =
            "use std::collections::HashSet; // pasco-lint: allow(nondeterministic-iteration)\n";
        assert_eq!(findings("crates/graph/src/x.rs", src).len(), 1);
    }
}
