//! Stage two: the workspace call graph and the interprocedural rules.
//!
//! [`Graph::build`] flattens every file's [`crate::parser::FileItems`]
//! into one node table and resolves each call site to workspace
//! functions by *name + receiver-type heuristics*:
//!
//! * a typed method call (`conn.flush()` where `conn: Conn`) resolves to
//!   `impl Conn`'s `flush`, or — when the receiver type is a workspace
//!   *trait* (`svc: &dyn QueryService`) — to **every** in-workspace impl
//!   of that trait (dynamic dispatch over-approximated soundly);
//! * a path call (`Envelope::error(…)`, `Self::…`) resolves through the
//!   named type the same way;
//! * an untyped method call resolves to all workspace methods of that
//!   name, unless the name is on the [`crate::parser::COMMON_STD_METHODS`]
//!   list (where `opt.map(…)` meaning `DistVec::map` is far less likely
//!   than `Option::map`);
//! * a free call prefers same-file, then same-crate, then workspace.
//!
//! What cannot be resolved is **recorded, not dropped**: ambiguous calls
//! (edges to every candidate, plus an [`Unresolved`] entry) and calls on
//! workspace types with no matching method land in
//! [`Graph::unresolved`], whose count CI gates against the committed
//! `CALLGRAPH.baseline`. Known blind spots, by construction: dynamic
//! dispatch through non-workspace traits, function pointers / closures
//! passed as values, macro-generated calls, and fully-qualified
//! `<T as Trait>::f` syntax. See `README.md` §Static analysis.
//!
//! [`Graph::analyze`] then computes the three facts the interprocedural
//! rules need, and [`Graph::check`] turns them into findings:
//!
//! * **blocking reachability** — BFS from `Reactor::run` in the reactor
//!   module, *excluding* `spawn(…)` edges (a spawned closure runs on its
//!   own thread; the reactor does not wait). Dotted blocking candidates
//!   (`.wait(…)`, `.recv(…)`) whose receiver resolved to a workspace
//!   method are dropped first — `self.epoll.wait(…)` is the reactor's
//!   one sanctioned (timeout-bounded) blocking point, not a `Condvar`.
//! * **contended lock classes** — a class some function holds across a
//!   blocking operation (or across a call into a transitively-blocking
//!   function). The reactor locking such a class inherits the holder's
//!   worst-case stall, so that is a finding too.
//! * **panic reachability** — BFS from every non-test `pub` function in
//!   the serving crates, *including* spawn edges (a panicked pool thread
//!   wedges serving just as surely), flagging every
//!   `unwrap`/`expect`/`panic!`-family site reached. Indexing sites are
//!   recorded in the dump but only become findings under
//!   `--strict-indexing`.
//! * **lock order** — edges `held-class → acquired-class` from every
//!   acquisition site, plus `held-class → transitively-acquired-class`
//!   across every call edge; any cycle (including a self-loop: a class
//!   re-acquired while an instance is held) is a deadlock the right
//!   interleaving will eventually find.

use crate::parser::{FileItems, FnItem, PanicKind, Recv, COMMON_STD_METHODS};
use crate::rules::{
    Finding, BLOCKING_IN_REACTOR_TRANSITIVE, LOCK_ORDER_CYCLE, PANIC_REACHABLE_IN_SERVING,
    REACTOR_FILE, SERVING_DIRS,
};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One function node: where it lives plus its parsed summary.
pub struct Node {
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// The parsed item.
    pub item: FnItem,
}

/// One resolved call edge.
pub struct Edge {
    /// Callee node index.
    pub to: usize,
    /// Call-site line in the caller's file.
    pub line: u32,
    /// Lock classes held at the call site.
    pub held: Vec<String>,
    /// True when the call happens inside a `spawn(…)` argument.
    pub spawned: bool,
}

/// One call site the resolver could not pin down (recorded, not dropped).
pub struct Unresolved {
    /// Caller's file.
    pub file: String,
    /// Caller's display name.
    pub caller: String,
    /// Call-site line.
    pub line: u32,
    /// Callee name as written.
    pub callee: String,
    /// Why resolution failed (or stayed ambiguous).
    pub reason: String,
}

/// The workspace call graph.
pub struct Graph {
    /// All function nodes, in file order.
    pub nodes: Vec<Node>,
    /// Outgoing edges per node.
    pub edges: Vec<Vec<Edge>>,
    /// Calls the resolver recorded as unresolved/ambiguous.
    pub unresolved: Vec<Unresolved>,
    /// Calls attributed to std/shim (no workspace candidate) — counted
    /// for the dump, not gated.
    pub external_calls: usize,
    /// Per node: `(line, name)` of dotted calls that resolved to a
    /// workspace method — used to drop blocking candidates like
    /// `self.epoll.wait(…)`.
    resolved_dotted: Vec<BTreeSet<(u32, String)>>,
}

/// Derived facts: reachability parents, blocking closure, contention,
/// and the lock-order graph.
pub struct Analysis {
    /// BFS parent per node from `Reactor::run` (spawn edges excluded);
    /// a root is its own parent; `None` = unreachable.
    pub reactor_parents: Vec<Option<usize>>,
    /// BFS parent per node from the serving entrypoints (spawn edges
    /// included).
    pub serving_parents: Vec<Option<usize>>,
    /// Nodes that block, directly or transitively.
    pub blocks: Vec<bool>,
    /// Lock class → witness text for why it is contended.
    pub contended: BTreeMap<String, String>,
    /// Lock-order edges: `(held, acquired)` → witness text.
    pub lock_edges: BTreeMap<(String, String), String>,
}

/// A node's display name: `Type::fn` or `fn`.
pub fn display(node: &Node) -> String {
    match &node.item.self_ty {
        Some(ty) => format!("{ty}::{}", node.item.name),
        None => node.item.name.clone(),
    }
}

fn head(ty: &str) -> &str {
    ty.split('<').next().unwrap_or(ty)
}

fn crate_of(rel: &str) -> &str {
    // `crates/<name>/…` → `crates/<name>/`; anything else → itself.
    let mut parts = rel.splitn(3, '/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => &rel[..7 + name.len() + 1],
        _ => rel,
    }
}

impl Graph {
    /// Builds the graph from every file's parsed items.
    pub fn build(files: &[FileItems]) -> Graph {
        let mut nodes = Vec::new();
        for f in files {
            for item in &f.fns {
                nodes.push(Node { file: f.rel.clone(), item: item.clone() });
            }
        }
        let n = nodes.len();

        // Indexes.
        let mut self_tys: BTreeSet<&str> = BTreeSet::new();
        let mut trait_names: BTreeSet<&str> = BTreeSet::new();
        let mut methods: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut trait_methods: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut by_method_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free_fns: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, node) in nodes.iter().enumerate() {
            let it = &node.item;
            if let Some(ty) = &it.self_ty {
                self_tys.insert(ty);
                methods.entry((ty, &it.name)).or_default().push(i);
                by_method_name.entry(&it.name).or_default().push(i);
            }
            if let Some(tr) = &it.trait_name {
                trait_names.insert(tr);
                trait_methods.entry((tr, &it.name)).or_default().push(i);
                if it.self_ty.is_none() {
                    // A default method on the trait declaration.
                    by_method_name.entry(&it.name).or_default().push(i);
                }
            }
            if it.self_ty.is_none() && it.trait_name.is_none() {
                free_fns.entry(&it.name).or_default().push(i);
            }
        }

        let mut edges: Vec<Vec<Edge>> = (0..n).map(|_| Vec::new()).collect();
        let mut unresolved = Vec::new();
        let mut external_calls = 0usize;
        let mut resolved_dotted: Vec<BTreeSet<(u32, String)>> =
            (0..n).map(|_| BTreeSet::new()).collect();

        for i in 0..n {
            let node = &nodes[i];
            for call in &node.item.calls {
                let name = call.name.as_str();
                enum R {
                    Targets(Vec<usize>),
                    Ambiguous(Vec<usize>, String),
                    NoMatch(String),
                    External,
                }
                let r = match &call.recv {
                    Recv::Method { ty: Some(t) } => {
                        let t = head(t);
                        if let Some(c) = methods.get(&(t, name)) {
                            R::Targets(c.clone())
                        } else if let Some(c) = trait_methods.get(&(t, name)) {
                            // Dynamic dispatch: every in-workspace impl.
                            R::Targets(c.clone())
                        } else if self_tys.contains(t) || trait_names.contains(t) {
                            if COMMON_STD_METHODS.contains(&name) {
                                // Derive/std-trait method on a workspace
                                // type (`conn.clone()`, `kind.cmp(…)`).
                                R::External
                            } else {
                                R::NoMatch(format!("no method `{name}` on workspace type `{t}`"))
                            }
                        } else {
                            R::External
                        }
                    }
                    Recv::Method { ty: None } => {
                        if COMMON_STD_METHODS.contains(&name) {
                            R::External
                        } else {
                            match by_method_name.get(name).map(Vec::as_slice) {
                                None | Some([]) => R::External,
                                Some([one]) => R::Targets(vec![*one]),
                                Some(many) => R::Ambiguous(
                                    many.to_vec(),
                                    format!(
                                        "untyped receiver: `.{name}(…)` matches {} workspace \
                                         methods",
                                        many.len()
                                    ),
                                ),
                            }
                        }
                    }
                    Recv::Path(ty) if ty.is_empty() => R::External,
                    Recv::Path(ty) => {
                        let t = head(ty);
                        if let Some(c) = methods.get(&(t, name)) {
                            R::Targets(c.clone())
                        } else if let Some(c) = trait_methods.get(&(t, name)) {
                            R::Targets(c.clone())
                        } else if self_tys.contains(t) || trait_names.contains(t) {
                            if COMMON_STD_METHODS.contains(&name) {
                                R::External
                            } else {
                                R::NoMatch(format!(
                                    "no associated fn `{name}` on workspace type `{t}`"
                                ))
                            }
                        } else {
                            R::External
                        }
                    }
                    Recv::Free => {
                        let all = free_fns.get(name).map(Vec::as_slice).unwrap_or(&[]);
                        let same_file: Vec<usize> =
                            all.iter().copied().filter(|&j| nodes[j].file == node.file).collect();
                        let same_crate: Vec<usize> = all
                            .iter()
                            .copied()
                            .filter(|&j| crate_of(&nodes[j].file) == crate_of(&node.file))
                            .collect();
                        if !same_file.is_empty() {
                            R::Targets(same_file)
                        } else if !same_crate.is_empty() {
                            R::Targets(same_crate)
                        } else {
                            match all {
                                [] => R::External,
                                [one] => R::Targets(vec![*one]),
                                many => R::Ambiguous(
                                    many.to_vec(),
                                    format!(
                                        "free call `{name}(…)` matches {} fns in other crates",
                                        many.len()
                                    ),
                                ),
                            }
                        }
                    }
                };
                let (targets, note) = match r {
                    R::Targets(t) => (t, None),
                    R::Ambiguous(t, why) => (t, Some(why)),
                    R::NoMatch(why) => (Vec::new(), Some(why)),
                    R::External => {
                        external_calls += 1;
                        continue;
                    }
                };
                if let Some(reason) = note {
                    unresolved.push(Unresolved {
                        file: node.file.clone(),
                        caller: display(node),
                        line: call.line,
                        callee: name.to_owned(),
                        reason,
                    });
                }
                if !targets.is_empty() && matches!(call.recv, Recv::Method { .. }) {
                    resolved_dotted[i].insert((call.line, name.to_owned()));
                }
                for t in targets {
                    edges[i].push(Edge {
                        to: t,
                        line: call.line,
                        held: call.held.clone(),
                        spawned: call.spawned,
                    });
                }
            }
        }
        Graph { nodes, edges, unresolved, external_calls, resolved_dotted }
    }

    /// The gated count: ambiguous + no-match call sites.
    pub fn unresolved_count(&self) -> usize {
        self.unresolved.len()
    }

    /// Blocking sites of node `i` that survive resolution: dotted
    /// candidates whose call resolved to a workspace method are edges,
    /// not primitives.
    fn effective_blocking(&self, i: usize) -> impl Iterator<Item = &crate::parser::BlockingSite> {
        let resolved = &self.resolved_dotted[i];
        self.nodes[i]
            .item
            .blocking
            .iter()
            .filter(move |b| !b.dotted || !resolved.contains(&(b.line, b.name.clone())))
    }

    /// BFS over call edges from `roots`; returns per-node parent (roots
    /// are their own parent). Test nodes are never entered.
    fn reach(&self, roots: &[usize], follow_spawned: bool) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut q = VecDeque::new();
        for &r in roots {
            if parent[r].is_none() && !self.nodes[r].item.is_test {
                parent[r] = Some(r);
                q.push_back(r);
            }
        }
        while let Some(u) = q.pop_front() {
            for e in &self.edges[u] {
                if (e.spawned && !follow_spawned) || self.nodes[e.to].item.is_test {
                    continue;
                }
                if parent[e.to].is_none() {
                    parent[e.to] = Some(u);
                    q.push_back(e.to);
                }
            }
        }
        parent
    }

    /// Renders the call path from a root down to `i` (`A → B → C`).
    pub fn path_to(&self, parents: &[Option<usize>], mut i: usize) -> String {
        let mut names = vec![display(&self.nodes[i])];
        let mut hops = 0;
        while let Some(p) = parents[i] {
            if p == i || hops > 32 {
                break;
            }
            names.push(display(&self.nodes[p]));
            i = p;
            hops += 1;
        }
        names.reverse();
        names.join(" → ")
    }

    /// Computes reachability, the blocking closure, contended classes,
    /// and the lock-order graph.
    pub fn analyze(&self) -> Analysis {
        let n = self.nodes.len();

        // Reactor roots: `Reactor::run` in the reactor module.
        let reactor_roots: Vec<usize> = (0..n)
            .filter(|&i| {
                let nd = &self.nodes[i];
                nd.file == REACTOR_FILE
                    && nd.item.self_ty.as_deref() == Some("Reactor")
                    && nd.item.name == "run"
            })
            .collect();
        let reactor_parents = self.reach(&reactor_roots, false);

        // Serving roots: every non-test pub fn in the serving crates.
        let serving_roots: Vec<usize> = (0..n)
            .filter(|&i| {
                let nd = &self.nodes[i];
                nd.item.is_pub && !nd.item.is_test && crate::rules::in_dirs(&nd.file, SERVING_DIRS)
            })
            .collect();
        let serving_parents = self.reach(&serving_roots, true);

        // Blocking closure: direct sites, then propagate backwards over
        // non-spawned edges to a fixpoint.
        let mut blocks: Vec<bool> = (0..n)
            .map(|i| !self.nodes[i].item.is_test && self.effective_blocking(i).any(|b| !b.spawned))
            .collect();
        loop {
            let mut changed = false;
            for u in 0..n {
                if blocks[u] || self.nodes[u].item.is_test {
                    continue;
                }
                if self.edges[u].iter().any(|e| !e.spawned && blocks[e.to]) {
                    blocks[u] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Contended classes: held across a blocking primitive, or across
        // a call into a blocking function. Spawned regions count — the
        // holder being a pool thread is exactly the contention the
        // reactor must not inherit.
        let mut contended: BTreeMap<String, String> = BTreeMap::new();
        for i in 0..n {
            if self.nodes[i].item.is_test {
                continue;
            }
            let file = self.nodes[i].file.clone();
            let sites: Vec<(u32, String, Vec<String>)> = self
                .effective_blocking(i)
                .map(|b| (b.line, b.what.clone(), b.held.clone()))
                .collect();
            for (line, what, held) in sites {
                for class in held {
                    contended
                        .entry(class)
                        .or_insert_with(|| format!("held across `{what}` at {file}:{line}"));
                }
            }
            for e in &self.edges[i] {
                if blocks[e.to] {
                    for class in &e.held {
                        contended.entry(class.clone()).or_insert_with(|| {
                            format!(
                                "held across call into blocking `{}` at {}:{}",
                                display(&self.nodes[e.to]),
                                file,
                                e.line
                            )
                        });
                    }
                }
            }
        }

        // Lock-order edges. Transitive acquisition sets first.
        let mut trans_acq: Vec<BTreeSet<String>> = (0..n)
            .map(|i| {
                if self.nodes[i].item.is_test {
                    BTreeSet::new()
                } else {
                    self.nodes[i]
                        .item
                        .acquires
                        .iter()
                        .filter(|a| !a.spawned)
                        .map(|a| a.class.clone())
                        .collect()
                }
            })
            .collect();
        loop {
            let mut changed = false;
            for u in 0..n {
                if self.nodes[u].item.is_test {
                    continue;
                }
                let mut add: Vec<String> = Vec::new();
                for e in &self.edges[u] {
                    if e.spawned {
                        continue;
                    }
                    for c in &trans_acq[e.to] {
                        if !trans_acq[u].contains(c) {
                            add.push(c.clone());
                        }
                    }
                }
                if !add.is_empty() {
                    trans_acq[u].extend(add);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let mut lock_edges: BTreeMap<(String, String), String> = BTreeMap::new();
        for i in 0..n {
            let nd = &self.nodes[i];
            if nd.item.is_test {
                continue;
            }
            for a in &nd.item.acquires {
                for h in &a.held {
                    lock_edges
                        .entry((h.clone(), a.class.clone()))
                        .or_insert_with(|| format!("{}:{}", nd.file, a.line));
                }
            }
            for e in &self.edges[i] {
                for h in &e.held {
                    for c in &trans_acq[e.to] {
                        lock_edges.entry((h.clone(), c.clone())).or_insert_with(|| {
                            format!(
                                "{}:{} (via call into {})",
                                nd.file,
                                e.line,
                                display(&self.nodes[e.to])
                            )
                        });
                    }
                }
            }
        }

        Analysis { reactor_parents, serving_parents, blocks, contended, lock_edges }
    }

    /// Runs the interprocedural rules. The caller (engine) applies
    /// pragma suppression afterwards, like any other rule's findings.
    pub fn check(&self, analysis: &Analysis, strict_indexing: bool) -> Vec<Finding> {
        let mut out = Vec::new();

        // ---- lock-order-cycle ------------------------------------------
        for cycle in cycles(&analysis.lock_edges) {
            let witness_edge = (cycle[0].clone(), cycle[1 % cycle.len()].clone());
            let witness = analysis.lock_edges.get(&witness_edge);
            let (file, line) =
                witness.map(|w| split_witness(w)).unwrap_or_else(|| ("CALLGRAPH".to_owned(), 1));
            let steps: Vec<String> = cycle
                .iter()
                .enumerate()
                .map(|(k, from)| {
                    let to = &cycle[(k + 1) % cycle.len()];
                    let at = analysis
                        .lock_edges
                        .get(&(from.clone(), to.clone()))
                        .cloned()
                        .unwrap_or_default();
                    format!("`{from}` held while acquiring `{to}` at {at}")
                })
                .collect();
            out.push(Finding {
                file,
                line,
                rule: LOCK_ORDER_CYCLE,
                message: format!(
                    "lock-order cycle across {} — {}. Two threads taking these in opposite \
                     order deadlock; impose one global order (or collapse to one lock)",
                    cycle.iter().map(|c| format!("`{c}`")).collect::<Vec<_>>().join(" → "),
                    steps.join("; ")
                ),
            });
        }

        // ---- blocking-in-reactor-transitive ----------------------------
        for i in 0..self.nodes.len() {
            if analysis.reactor_parents[i].is_none() {
                continue;
            }
            let nd = &self.nodes[i];
            let path = self.path_to(&analysis.reactor_parents, i);
            for b in self.effective_blocking(i) {
                if b.spawned {
                    continue;
                }
                out.push(Finding {
                    file: nd.file.clone(),
                    line: b.line,
                    rule: BLOCKING_IN_REACTOR_TRANSITIVE,
                    message: format!(
                        "`{}` blocks and is reachable from the event loop ({path}): one stalled \
                         call here stalls every connection the reactor owns",
                        b.what
                    ),
                });
            }
            for a in &nd.item.acquires {
                if a.spawned {
                    continue;
                }
                if let Some(why) = analysis.contended.get(&a.class) {
                    out.push(Finding {
                        file: nd.file.clone(),
                        line: a.line,
                        rule: BLOCKING_IN_REACTOR_TRANSITIVE,
                        message: format!(
                            "the event loop ({path}) locks `{}`, but that class is contended: \
                             {why}. The reactor inherits the holder's worst-case stall",
                            a.class
                        ),
                    });
                }
            }
        }

        // ---- panic-reachable-in-serving --------------------------------
        for i in 0..self.nodes.len() {
            if analysis.serving_parents[i].is_none() {
                continue;
            }
            let nd = &self.nodes[i];
            let path = self.path_to(&analysis.serving_parents, i);
            for p in &nd.item.panics {
                if p.kind == PanicKind::Index && !strict_indexing {
                    continue;
                }
                out.push(Finding {
                    file: nd.file.clone(),
                    line: p.line,
                    rule: PANIC_REACHABLE_IN_SERVING,
                    message: format!(
                        "`{}` can panic and is reachable from a serving entrypoint ({path}): a \
                         panic drops the connection or wedges the worker. Return a typed error, \
                         or state the invariant in a pragma",
                        p.what
                    ),
                });
            }
        }
        out
    }

    /// Graphviz DOT rendering (reactor-reachable nodes outlined, blocking
    /// nodes filled).
    pub fn to_dot(&self, analysis: &Analysis) -> String {
        let mut s = String::from(
            "digraph pasco_callgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n",
        );
        for (i, nd) in self.nodes.iter().enumerate() {
            if nd.item.is_test {
                continue;
            }
            let mut attrs = format!("label=\"{}\\n{}:{}\"", display(nd), nd.file, nd.item.line);
            if analysis.reactor_parents[i].is_some() {
                attrs.push_str(", color=red, penwidth=2");
            }
            if analysis.blocks[i] {
                attrs.push_str(", style=filled, fillcolor=lightyellow");
            }
            s.push_str(&format!("  f{i} [{attrs}];\n"));
        }
        for (i, es) in self.edges.iter().enumerate() {
            if self.nodes[i].item.is_test {
                continue;
            }
            let mut seen = BTreeSet::new();
            for e in es {
                if self.nodes[e.to].item.is_test || !seen.insert(e.to) {
                    continue;
                }
                let style = if e.spawned { " [style=dashed]" } else { "" };
                s.push_str(&format!("  f{i} -> f{}{style};\n", e.to));
            }
        }
        s.push_str("}\n");
        s
    }

    /// JSON rendering for the CI artifact.
    pub fn to_json(&self, analysis: &Analysis) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"fns\": {},\n", self.nodes.len()));
        s.push_str(&format!("  \"edges\": {},\n", self.edges.iter().map(Vec::len).sum::<usize>()));
        s.push_str(&format!("  \"external_calls\": {},\n", self.external_calls));
        s.push_str(&format!("  \"unresolved_count\": {},\n", self.unresolved_count()));
        s.push_str("  \"unresolved\": [\n");
        for (k, u) in self.unresolved.iter().enumerate() {
            let comma = if k + 1 == self.unresolved.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"file\": {}, \"caller\": {}, \"line\": {}, \"callee\": {}, \
                 \"reason\": {}}}{comma}\n",
                json_str(&u.file),
                json_str(&u.caller),
                u.line,
                json_str(&u.callee),
                json_str(&u.reason),
            ));
        }
        s.push_str("  ],\n");
        let reactor: Vec<String> = (0..self.nodes.len())
            .filter(|&i| analysis.reactor_parents[i].is_some())
            .map(|i| display(&self.nodes[i]))
            .collect();
        s.push_str(&format!(
            "  \"reactor_reachable\": [{}],\n",
            reactor.iter().map(|n| json_str(n)).collect::<Vec<_>>().join(", ")
        ));
        s.push_str(&format!(
            "  \"serving_reachable\": {},\n",
            analysis.serving_parents.iter().filter(|p| p.is_some()).count()
        ));
        s.push_str("  \"contended_classes\": {\n");
        for (k, (class, why)) in analysis.contended.iter().enumerate() {
            let comma = if k + 1 == analysis.contended.len() { "" } else { "," };
            s.push_str(&format!("    {}: {}{comma}\n", json_str(class), json_str(why)));
        }
        s.push_str("  },\n");
        s.push_str("  \"lock_edges\": [\n");
        for (k, ((from, to), at)) in analysis.lock_edges.iter().enumerate() {
            let comma = if k + 1 == analysis.lock_edges.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{\"held\": {}, \"acquired\": {}, \"at\": {}}}{comma}\n",
                json_str(from),
                json_str(to),
                json_str(at)
            ));
        }
        s.push_str("  ],\n");
        let indexing: usize = self
            .nodes
            .iter()
            .map(|nd| nd.item.panics.iter().filter(|p| p.kind == PanicKind::Index).count())
            .sum();
        s.push_str(&format!("  \"indexing_sites\": {indexing}\n"));
        s.push_str("}\n");
        s
    }
}

/// `file:line (note)` → `(file, line)`.
fn split_witness(w: &str) -> (String, u32) {
    let head = w.split(' ').next().unwrap_or(w);
    match head.rsplit_once(':') {
        Some((file, line)) => (file.to_owned(), line.parse().unwrap_or(1)),
        None => (head.to_owned(), 1),
    }
}

/// Finds elementary cycles in the lock-class graph: one representative
/// cycle per strongly-connected component with ≥ 2 nodes, plus every
/// self-loop. Deterministic: classes visit in sorted order.
fn cycles(edges: &BTreeMap<(String, String), String>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut classes: BTreeSet<&str> = BTreeSet::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().insert(to);
        classes.insert(from);
        classes.insert(to);
    }
    let mut out = Vec::new();
    // Self-loops first.
    for c in &classes {
        if adj.get(c).is_some_and(|s| s.contains(c)) {
            out.push(vec![(*c).to_owned()]);
        }
    }
    // SCCs ≥ 2 via double DFS (Kosaraju); graphs here are tiny.
    let mut radj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        radj.entry(to).or_default().insert(from);
    }
    let mut order: Vec<&str> = Vec::new();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for &c in &classes {
        if seen.contains(c) {
            continue;
        }
        // Iterative post-order DFS.
        let mut stack: Vec<(&str, bool)> = vec![(c, false)];
        while let Some((u, done)) = stack.pop() {
            if done {
                order.push(u);
                continue;
            }
            if !seen.insert(u) {
                continue;
            }
            stack.push((u, true));
            if let Some(next) = adj.get(u) {
                for &v in next {
                    if !seen.contains(v) {
                        stack.push((v, false));
                    }
                }
            }
        }
    }
    let mut assigned: BTreeSet<&str> = BTreeSet::new();
    for &c in order.iter().rev() {
        if assigned.contains(c) {
            continue;
        }
        let mut comp: Vec<&str> = Vec::new();
        let mut stack = vec![c];
        while let Some(u) = stack.pop() {
            if !assigned.insert(u) {
                continue;
            }
            comp.push(u);
            if let Some(prev) = radj.get(u) {
                for &v in prev {
                    if !assigned.contains(v) {
                        stack.push(v);
                    }
                }
            }
        }
        if comp.len() >= 2 {
            comp.sort_unstable();
            out.push(comp.into_iter().map(str::to_owned).collect());
        }
    }
    out
}

/// Minimal JSON string escaper (mirrors the engine's report encoder).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;
    use crate::source::SourceFile;

    fn graph(files: &[(&str, &str)]) -> Graph {
        let slugs = crate::rules::rule_slugs();
        let items: Vec<_> = files
            .iter()
            .map(|(rel, src)| parse_file(&SourceFile::new((*rel).to_owned(), src, &slugs)))
            .collect();
        Graph::build(&items)
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = findings.iter().map(|f| f.rule).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn ab_ba_cycle_is_found() {
        let g = graph(&[(
            "crates/x/src/lib.rs",
            "
            struct S { a: Mutex<A>, b: Mutex<B> }
            impl S {
                fn ab(&self) { let g = self.a.lock().unwrap(); let h = self.b.lock().unwrap(); }
                fn ba(&self) { let g = self.b.lock().unwrap(); let h = self.a.lock().unwrap(); }
            }
            ",
        )]);
        let a = g.analyze();
        let f = g.check(&a, false);
        let cycles: Vec<_> = f.iter().filter(|f| f.rule == LOCK_ORDER_CYCLE).collect();
        assert_eq!(cycles.len(), 1, "{f:?}");
        assert!(cycles[0].message.contains("`A`") && cycles[0].message.contains("`B`"));
    }

    #[test]
    fn interprocedural_cycle_across_calls() {
        // `ab` holds A and calls `lock_b`; `ba` holds B and calls
        // `lock_a`: no single fn sees both locks.
        let g = graph(&[(
            "crates/x/src/lib.rs",
            "
            struct S { a: Mutex<A>, b: Mutex<B> }
            impl S {
                fn ab(&self) { let g = self.a.lock().unwrap(); self.lock_b(); }
                fn ba(&self) { let g = self.b.lock().unwrap(); self.lock_a(); }
                fn lock_a(&self) { let g = self.a.lock().unwrap(); }
                fn lock_b(&self) { let g = self.b.lock().unwrap(); }
            }
            ",
        )]);
        let f = g.check(&g.analyze(), false);
        assert_eq!(rules_of(&f), vec![LOCK_ORDER_CYCLE], "{f:?}");
    }

    #[test]
    fn ordered_nesting_is_no_cycle() {
        let g = graph(&[(
            "crates/x/src/lib.rs",
            "
            struct S { a: Mutex<A>, b: Mutex<B> }
            impl S {
                fn ab(&self) { let g = self.a.lock().unwrap(); let h = self.b.lock().unwrap(); }
                fn also_ab(&self) { let g = self.a.lock().unwrap(); self.lock_b(); }
                fn lock_b(&self) { let g = self.b.lock().unwrap(); }
            }
            ",
        )]);
        assert!(g.check(&g.analyze(), false).is_empty());
    }

    #[test]
    fn blocking_two_hops_below_reactor() {
        let g = graph(&[(
            "crates/server/src/server.rs",
            "
            struct Reactor { x: u32 }
            impl Reactor {
                pub fn run(&mut self) { self.step(); }
                fn step(&mut self) { helper(); }
            }
            fn helper() { std::thread::sleep(D); }
            ",
        )]);
        let f = g.check(&g.analyze(), false);
        assert_eq!(rules_of(&f), vec![BLOCKING_IN_REACTOR_TRANSITIVE], "{f:?}");
        assert!(f[0].message.contains("Reactor::run → Reactor::step → helper"));
    }

    #[test]
    fn spawned_blocking_does_not_reach_reactor() {
        let g = graph(&[(
            "crates/server/src/server.rs",
            "
            struct Reactor { x: u32 }
            impl Reactor {
                pub fn run(&mut self) {
                    std::thread::spawn(move || worker());
                }
            }
            fn worker() { std::thread::sleep(D); }
            ",
        )]);
        assert!(g.check(&g.analyze(), false).is_empty());
    }

    #[test]
    fn workspace_wait_is_an_edge_not_a_condvar() {
        // `self.epoll.wait(…)` resolves to Epoll::wait (a workspace
        // method) — not a blocking Condvar wait.
        let g = graph(&[
            (
                "crates/server/src/server.rs",
                "
                struct Reactor { epoll: Epoll }
                impl Reactor {
                    pub fn run(&mut self) { self.epoll.wait(t); }
                }
                ",
            ),
            (
                "crates/server/src/sys.rs",
                "
                pub struct Epoll { fd: i32 }
                impl Epoll {
                    pub fn wait(&self, t: u32) -> u32 { t }
                }
                ",
            ),
        ]);
        let f = g.check(&g.analyze(), false);
        assert!(f.is_empty(), "{f:?}");
        // But the edge exists: Epoll::wait is reactor-reachable.
        let a = g.analyze();
        let idx = g
            .nodes
            .iter()
            .position(|n| n.item.self_ty.as_deref() == Some("Epoll") && n.item.name == "wait")
            .unwrap();
        assert!(a.reactor_parents[idx].is_some());
    }

    #[test]
    fn reactor_locking_contended_class_is_flagged() {
        // A pool thread holds the job receiver lock across recv();
        // if the reactor ever locks that class, it inherits the stall.
        let g = graph(&[(
            "crates/server/src/server.rs",
            "
            struct Reactor { rx: Mutex<Receiver<Job>> }
            impl Reactor {
                pub fn run(&mut self) { let g = self.rx.lock().unwrap(); }
            }
            fn worker_loop(rx: &Mutex<Receiver<Job>>) {
                let job = match rx.lock() { Ok(rx) => rx.recv(), Err(_) => return };
            }
            ",
        )]);
        let f = g.check(&g.analyze(), false);
        let hits: Vec<_> = f.iter().filter(|f| f.rule == BLOCKING_IN_REACTOR_TRANSITIVE).collect();
        assert_eq!(hits.len(), 1, "{f:?}");
        assert!(hits[0].message.contains("contended"), "{}", hits[0].message);
    }

    #[test]
    fn panic_reachable_only_via_trait_impl() {
        // The pub serving entrypoint calls through `dyn QueryService`;
        // the panic lives in one impl, in a non-serving crate.
        let g = graph(&[
            (
                "crates/server/src/server.rs",
                "
                pub fn serve(svc: &dyn QueryService) { svc.execute(1); }
                ",
            ),
            (
                "crates/core/src/engine.rs",
                "
                trait QueryService { fn execute(&self, q: u32) -> u32; }
                struct Local { x: u32 }
                impl QueryService for Local {
                    fn execute(&self, q: u32) -> u32 { self.maybe().unwrap() }
                }
                impl Local { fn maybe(&self) -> Option<u32> { None } }
                ",
            ),
        ]);
        let f = g.check(&g.analyze(), false);
        let hits: Vec<_> = f.iter().filter(|f| f.rule == PANIC_REACHABLE_IN_SERVING).collect();
        assert_eq!(hits.len(), 1, "{f:?}");
        assert_eq!(hits[0].file, "crates/core/src/engine.rs");
        assert!(hits[0].message.contains("serve → Local::execute"), "{}", hits[0].message);
    }

    #[test]
    fn panic_in_spawned_pool_thread_still_counts_for_serving() {
        let g = graph(&[(
            "crates/server/src/server.rs",
            "
            pub fn run() { std::thread::spawn(move || pool()); }
            fn pool() { step().unwrap(); }
            fn step() -> Option<u32> { None }
            ",
        )]);
        let f = g.check(&g.analyze(), false);
        assert_eq!(rules_of(&f), vec![PANIC_REACHABLE_IN_SERVING], "{f:?}");
    }

    #[test]
    fn unreachable_panic_is_not_flagged() {
        let g = graph(&[
            ("crates/server/src/lib.rs", "pub fn entry() -> u32 { 1 }"),
            ("crates/core/src/util.rs", "fn orphan(o: Option<u32>) -> u32 { o.unwrap() }"),
        ]);
        assert!(g.check(&g.analyze(), false).is_empty());
    }

    #[test]
    fn indexing_only_under_strict() {
        let g = graph(&[("crates/server/src/lib.rs", "pub fn entry(v: &[u8]) -> u8 { v[0] }")]);
        assert!(g.check(&g.analyze(), false).is_empty());
        let f = g.check(&g.analyze(), true);
        assert_eq!(rules_of(&f), vec![PANIC_REACHABLE_IN_SERVING], "{f:?}");
    }

    #[test]
    fn ambiguous_untyped_method_is_recorded_not_dropped() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "pub struct A; impl A { pub fn frob(&self) {} }"),
            ("crates/b/src/lib.rs", "pub struct B; impl B { pub fn frob(&self) {} }"),
            ("crates/c/src/lib.rs", "pub fn go() { let x = mystery(); x.frob(); }"),
        ]);
        assert_eq!(g.unresolved_count(), 1);
        assert!(g.unresolved[0].reason.contains("2 workspace methods"));
        // Edges to both candidates exist.
        let go = g.nodes.iter().position(|n| n.item.name == "go").unwrap();
        assert_eq!(g.edges[go].len(), 2);
    }

    #[test]
    fn common_std_method_names_do_not_resolve_into_workspace() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "pub struct DistVec; impl DistVec { pub fn map(&self) {} }"),
            ("crates/b/src/lib.rs", "pub fn go(o: Untyped) { o.map(f); }"),
        ]);
        assert_eq!(g.unresolved_count(), 0);
        let go = g.nodes.iter().position(|n| n.item.name == "go").unwrap();
        assert!(g.edges[go].is_empty());
        assert!(g.external_calls >= 1);
    }

    #[test]
    fn typed_receiver_beats_the_common_list() {
        // A *typed* receiver resolves even for a common name.
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "
            pub struct DistVec { n: u32 }
            impl DistVec { pub fn map(&self) {} }
            pub fn go(v: &DistVec) { v.map(); }
            ",
        )]);
        let go = g.nodes.iter().position(|n| n.item.name == "go").unwrap();
        assert_eq!(g.edges[go].len(), 1);
    }

    #[test]
    fn free_calls_prefer_same_file_then_crate() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "fn helper() {} pub fn go() { helper(); }"),
            ("crates/a/src/other.rs", "fn helper() {}"),
            ("crates/b/src/lib.rs", "fn helper() {}"),
        ]);
        let go = g.nodes.iter().position(|n| n.item.name == "go").unwrap();
        assert_eq!(g.edges[go].len(), 1);
        let callee = &g.nodes[g.edges[go][0].to];
        assert_eq!(callee.file, "crates/a/src/lib.rs");
        assert_eq!(g.unresolved_count(), 0);
    }

    #[test]
    fn dot_and_json_render() {
        let g = graph(&[(
            "crates/server/src/server.rs",
            "
            struct Reactor { x: u32 }
            impl Reactor { pub fn run(&mut self) { helper(); } }
            fn helper() {}
            ",
        )]);
        let a = g.analyze();
        let dot = g.to_dot(&a);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("Reactor::run"));
        assert!(dot.contains("->"));
        let json = g.to_json(&a);
        assert!(json.contains("\"unresolved_count\": 0"));
        assert!(json.contains("\"reactor_reachable\""));
    }
}
