//! Construction of the linear-system rows `aᵢ`.
//!
//! Row `aᵢ = Σ_{t=0..T} cᵗ (Pᵗeᵢ) ∘ (Pᵗeᵢ)` encodes node `i`'s truncated
//! self-similarity series; the constraint `aᵢ · x = 1` pins the diagonal
//! correction. With `Pᵗeᵢ` estimated by an `R`-walker cohort, the row's
//! support is at most `T·R + 1` and the diagonal entry satisfies
//! `aᵢᵢ ≥ 1` (all walkers sit on `i` at `t = 0`), making the system
//! strongly diagonally dominant — the reason `L = 3` Jacobi sweeps suffice.

use pasco_graph::{CsrGraph, NodeId};
use pasco_mc::counts::MassMap;
use pasco_mc::walks::{reverse_walk_distributions, StepDistributions, WalkParams};
use pasco_solver::jacobi::RowSource;

/// Builds the sparse row `aᵢ` (sorted by column) from a cohort's step
/// distributions: `aᵢ(k) = Σ_t cᵗ (countₜ(k)/R)²`.
pub fn ai_row(dists: &StepDistributions, c: f64) -> Vec<(u32, f64)> {
    let r = dists.walkers as f64;
    let mut acc = MassMap::with_capacity(dists.counts.iter().map(Vec::len).sum());
    let mut ct = 1.0;
    for step in &dists.counts {
        for &(node, count) in step {
            let p = count as f64 / r;
            acc.add(node, ct * p * p);
        }
        ct *= c;
    }
    acc.into_sorted_vec()
}

/// Builds `aᵢ` exactly, propagating `eᵢ` through `Pᵗ` by sparse pushes
/// instead of sampling. Used by the exact diagonal reference and the LIN
/// baseline; cost grows with the `t`-hop in-neighbourhood of `i`.
pub fn ai_row_exact(graph: &CsrGraph, i: NodeId, c: f64, t_max: usize) -> Vec<(u32, f64)> {
    let mut acc = MassMap::with_capacity(64);
    let mut u: Vec<(NodeId, f64)> = vec![(i, 1.0)];
    let mut ct = 1.0;
    for _ in 0..=t_max {
        for &(node, p) in &u {
            acc.add(node, ct * p * p);
        }
        ct *= c;
        u = pasco_mc::forward::reverse_push_measure(graph, &u);
        if u.is_empty() {
            break;
        }
    }
    acc.into_sorted_vec()
}

/// [`RowSource`] over fully materialised rows — the `Store` strategy.
#[derive(Clone, Debug)]
pub struct StoredRows {
    rows: Vec<Vec<(u32, f64)>>,
}

impl StoredRows {
    /// Wraps materialised rows.
    pub fn new(rows: Vec<Vec<(u32, f64)>>) -> Self {
        Self { rows }
    }

    /// Approximate resident bytes (12 bytes per stored entry + vec headers).
    pub fn memory_bytes(&self) -> u64 {
        self.rows.iter().map(|r| 24 + 12 * r.len() as u64).sum()
    }

    /// Borrow a row.
    pub fn get(&self, i: u32) -> &[(u32, f64)] {
        &self.rows[i as usize]
    }
}

impl RowSource for StoredRows {
    fn dim(&self) -> usize {
        self.rows.len()
    }

    fn row(&self, i: u32, row: &mut Vec<(u32, f64)>) {
        row.clear();
        row.extend_from_slice(&self.rows[i as usize]);
    }
}

/// [`RowSource`] that regenerates each row from seeded walks on demand —
/// the `Recompute` strategy. Because walk randomness is a pure function of
/// `(seed, source, walker, step)`, regenerated rows are identical to stored
/// ones.
pub struct RecomputedRows<'g> {
    graph: &'g CsrGraph,
    params: WalkParams,
    seed: u64,
    c: f64,
}

impl<'g> RecomputedRows<'g> {
    /// A recomputing row source over `graph` with the index walk
    /// parameters.
    pub fn new(graph: &'g CsrGraph, params: WalkParams, seed: u64, c: f64) -> Self {
        Self { graph, params, seed, c }
    }
}

impl RowSource for RecomputedRows<'_> {
    fn dim(&self) -> usize {
        self.graph.node_count() as usize
    }

    fn row(&self, i: u32, row: &mut Vec<(u32, f64)>) {
        let dists = reverse_walk_distributions(self.graph, i, self.params, self.seed);
        row.clear();
        row.extend(ai_row(&dists, self.c));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasco_graph::generators;

    #[test]
    fn diagonal_entry_at_least_one() {
        let g = generators::barabasi_albert(200, 3, 7);
        for i in [0u32, 50, 199] {
            let d = reverse_walk_distributions(&g, i, WalkParams::new(10, 50), 3);
            let row = ai_row(&d, 0.6);
            let diag = row.iter().find(|&&(k, _)| k == i).map(|&(_, v)| v).unwrap();
            assert!(diag >= 1.0, "a[{i}][{i}] = {diag}");
        }
    }

    #[test]
    fn row_support_is_bounded_by_walk_budget() {
        let g = generators::barabasi_albert(500, 4, 1);
        let params = WalkParams::new(10, 20);
        let d = reverse_walk_distributions(&g, 17, params, 2);
        let row = ai_row(&d, 0.6);
        assert!(row.len() <= 10 * 20 + 1);
        assert!(row.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
    }

    #[test]
    fn exact_row_on_cycle_is_geometric() {
        // Cycle: P^t e_i is a point mass, so a_i(k) = Σ c^t [k = i - t].
        let g = generators::cycle(4);
        let row = ai_row_exact(&g, 0, 0.5, 3);
        // t=0: node 0 += 1; t=1: node 3 += 0.5; t=2: node 2 += 0.25;
        // t=3: node 1 += 0.125
        assert_eq!(row, vec![(0, 1.0), (1, 0.125), (2, 0.25), (3, 0.5)]);
    }

    #[test]
    fn exact_row_terminates_on_dangling() {
        let g = generators::path(3); // 0 -> 1 -> 2; node 0 dangling
        let row = ai_row_exact(&g, 2, 0.6, 10);
        // t=0 at 2 (1.0), t=1 at 1 (0.6·1), t=2 at 0 (0.36·1), then dies.
        assert_eq!(row, vec![(0, 0.36), (1, 0.6), (2, 1.0)]);
    }

    #[test]
    fn mc_row_converges_to_exact_row() {
        let g = generators::barabasi_albert(100, 3, 5);
        let exact = ai_row_exact(&g, 42, 0.6, 6);
        let d = reverse_walk_distributions(&g, 42, WalkParams::new(6, 60_000), 8);
        let mc = ai_row(&d, 0.6);
        // Compare the diagonal and total mass.
        let get = |row: &[(u32, f64)], k: u32| {
            row.iter().find(|&&(j, _)| j == k).map(|&(_, v)| v).unwrap_or(0.0)
        };
        assert!((get(&exact, 42) - get(&mc, 42)).abs() < 0.02);
        let sum_e: f64 = exact.iter().map(|&(_, v)| v).sum();
        let sum_m: f64 = mc.iter().map(|&(_, v)| v).sum();
        // Squared empirical frequencies are biased upward by Var/R per node,
        // so allow a generous but bounded gap.
        assert!((sum_e - sum_m).abs() / sum_e < 0.1, "{sum_e} vs {sum_m}");
    }

    #[test]
    fn stored_and_recomputed_rows_agree() {
        let g = generators::rmat(8, 1500, generators::RmatParams::default(), 3);
        let params = WalkParams::new(5, 30);
        let stored: Vec<Vec<(u32, f64)>> = (0..g.node_count())
            .map(|i| ai_row(&reverse_walk_distributions(&g, i, params, 11), 0.6))
            .collect();
        let stored = StoredRows::new(stored);
        let recomputed = RecomputedRows::new(&g, params, 11, 0.6);
        assert_eq!(stored.dim(), recomputed.dim());
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in (0..g.node_count()).step_by(37) {
            stored.row(i, &mut a);
            recomputed.row(i, &mut b);
            assert_eq!(a, b, "row {i}");
        }
    }
}
