//! The public CloudWalker API: build the index once, query forever.

use crate::api::QueryError;
use crate::config::{AiStrategy, SimRankConfig};
use crate::diag::DiagonalIndex;
use crate::engine::broadcast::BroadcastEngine;
use crate::engine::distributed::DistributedEngine;
use crate::engine::local::LocalEngine;
use crate::engine::rdd::RddEngine;
use crate::engine::sharded::ShardedEngine;
use crate::engine::{ExecMode, SimRankEngine};
use crate::error::SimRankError;
use crate::queries;
use pasco_cluster::ClusterReport;
use pasco_graph::{CsrGraph, NodeId, ReverseChainIndex};
use rayon::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Statistics from offline index construction.
#[derive(Clone, Debug)]
pub struct IndexBuildStats {
    /// Wall time of the whole build.
    pub wall: Duration,
    /// The row-provisioning strategy actually used.
    pub strategy: AiStrategy,
    /// `‖Ax − 1‖∞` after each Jacobi sweep.
    pub jacobi_residuals: Vec<f64>,
    /// Stored-row footprint, if rows were materialised.
    pub rows_bytes: Option<u64>,
    /// Cluster accounting (broadcast/RDD modes only).
    pub cluster: Option<ClusterReport>,
}

/// CloudWalker: offline-indexed, Monte-Carlo-queried SimRank.
///
/// Every query dispatches through one `Box<dyn SimRankEngine>` — the
/// execution substrate is chosen once at build time and the query paths
/// never branch on it.
///
/// ```
/// use pasco_simrank::{CloudWalker, SimRankConfig, ExecMode};
/// use pasco_graph::generators;
///
/// let g = generators::barabasi_albert(300, 4, 1);
/// let cw = CloudWalker::build(g.into(), SimRankConfig::fast(), ExecMode::Local).unwrap();
/// let s = cw.single_pair(3, 4);
/// assert!((0.0..=1.0).contains(&s));
/// ```
pub struct CloudWalker {
    graph: Arc<CsrGraph>,
    rci: Arc<ReverseChainIndex>,
    cfg: SimRankConfig,
    diag: DiagonalIndex,
    engine: Box<dyn SimRankEngine>,
}

impl CloudWalker {
    /// Builds the offline index (the diagonal correction `D`) with the
    /// chosen execution mode and returns a query-ready engine.
    pub fn build(
        graph: Arc<CsrGraph>,
        cfg: SimRankConfig,
        mode: ExecMode,
    ) -> Result<Self, SimRankError> {
        Self::build_with_stats(graph, cfg, mode).map(|(cw, _)| cw)
    }

    /// [`CloudWalker::build`] plus build statistics.
    pub fn build_with_stats(
        graph: Arc<CsrGraph>,
        cfg: SimRankConfig,
        mode: ExecMode,
    ) -> Result<(Self, IndexBuildStats), SimRankError> {
        cfg.validate()?;
        if graph.node_count() == 0 {
            return Err(SimRankError::InvalidConfig("graph has no nodes".into()));
        }
        let start = Instant::now();
        let rci = Arc::new(ReverseChainIndex::build(&graph));
        let engine = make_engine(mode, &graph, &rci)?;
        let out = engine.build_diagonal(&cfg)?;
        let stats = IndexBuildStats {
            wall: start.elapsed(),
            strategy: out.strategy,
            jacobi_residuals: out.residuals,
            rows_bytes: out.rows_bytes,
            cluster: out.cluster,
        };
        Ok((Self { graph, rci, cfg, diag: out.diag, engine }, stats))
    }

    /// Wraps a previously computed (e.g. [`crate::persist::load_index`]ed)
    /// diagonal for local-mode querying.
    pub fn from_index(
        graph: Arc<CsrGraph>,
        cfg: SimRankConfig,
        diag: DiagonalIndex,
    ) -> Result<Self, SimRankError> {
        Self::from_index_with_mode(graph, cfg, diag, ExecMode::Local)
    }

    /// [`CloudWalker::from_index`] on an explicit execution substrate: the
    /// offline build is skipped, but queries run (and are accounted) on
    /// the chosen engine — e.g. a persisted index served shard-parallel
    /// with `ExecMode::Sharded`.
    pub fn from_index_with_mode(
        graph: Arc<CsrGraph>,
        cfg: SimRankConfig,
        diag: DiagonalIndex,
        mode: ExecMode,
    ) -> Result<Self, SimRankError> {
        cfg.validate()?;
        if diag.len() != graph.node_count() as usize {
            return Err(SimRankError::BadIndex(format!(
                "index covers {} nodes but the graph has {}",
                diag.len(),
                graph.node_count()
            )));
        }
        let rci = Arc::new(ReverseChainIndex::build(&graph));
        let engine = make_engine(mode, &graph, &rci)?;
        Ok(Self { graph, rci, cfg, diag, engine })
    }

    /// MCSP — similarity of one node pair, `O(T·R′)`. Estimates are
    /// clamped into SimRank's `[0, 1]` range (Monte-Carlo noise can push a
    /// raw estimate slightly outside). Fails with
    /// [`QueryError::NodeOutOfRange`] instead of panicking; the serving
    /// stack ([`crate::api::QueryService`], [`crate::QuerySession`]) routes
    /// every query through these checked variants.
    pub fn try_single_pair(&self, i: NodeId, j: NodeId) -> Result<f64, QueryError> {
        self.check_node(i)?;
        self.check_node(j)?;
        Ok(self.engine.single_pair(self.diag.as_slice(), &self.cfg, i, j)?.clamp(0.0, 1.0))
    }

    /// MCSS — similarity of every node to `i`, `O(T²·R′·log d)`. Estimates
    /// are clamped into SimRank's `[0, 1]` range; fails with
    /// [`QueryError::NodeOutOfRange`] on a bad node.
    pub fn try_single_source(&self, i: NodeId) -> Result<Vec<f64>, QueryError> {
        self.check_node(i)?;
        let mut out = self.engine.single_source(self.diag.as_slice(), &self.cfg, i)?;
        for v in &mut out {
            *v = v.clamp(0.0, 1.0);
        }
        Ok(out)
    }

    /// Sparse top-`k` MCSS: returns only the `k` most similar nodes
    /// (query node excluded) — the right call for big graphs when only a
    /// ranking is needed. Runs on the configured engine, so cluster modes
    /// account the work in their [`ClusterReport`]. Fails with
    /// [`QueryError::NodeOutOfRange`] on a bad node and
    /// [`QueryError::InvalidK`] on `k = 0`.
    pub fn try_single_source_topk(
        &self,
        i: NodeId,
        k: usize,
    ) -> Result<Vec<(NodeId, f64)>, QueryError> {
        self.check_node(i)?;
        if k == 0 {
            return Err(QueryError::InvalidK { k: k as u64 });
        }
        self.engine.single_source_topk(self.diag.as_slice(), &self.cfg, i, k)
    }

    /// Simulates the `R'`-walker query cohort of `v` on the configured
    /// engine (the building block [`crate::QuerySession`] caches; cluster
    /// modes account the work in their [`ClusterReport`]). Fails with
    /// [`QueryError::NodeOutOfRange`] on a bad node.
    pub fn try_query_cohort(
        &self,
        v: NodeId,
    ) -> Result<pasco_mc::walks::StepDistributions, QueryError> {
        self.check_node(v)?;
        self.engine.query_cohort(&self.cfg, v)
    }

    /// The deterministic-push variant of MCSS (ablation A1); local
    /// execution regardless of mode. Fails with
    /// [`QueryError::NodeOutOfRange`] on a bad node.
    pub fn try_single_source_push(&self, i: NodeId) -> Result<Vec<f64>, QueryError> {
        self.check_node(i)?;
        let mut out = queries::single_source_push(&self.graph, self.diag.as_slice(), &self.cfg, i);
        for v in &mut out {
            *v = v.clamp(0.0, 1.0);
        }
        Ok(out)
    }

    /// Infallible [`CloudWalker::try_single_pair`].
    ///
    /// # Panics
    /// Panics if `i` or `j` is not a node of the graph; call the checked
    /// variant to get a typed [`QueryError`] instead.
    pub fn single_pair(&self, i: NodeId, j: NodeId) -> f64 {
        self.try_single_pair(i, j).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Infallible [`CloudWalker::try_single_source`].
    ///
    /// # Panics
    /// Panics if `i` is not a node of the graph.
    pub fn single_source(&self, i: NodeId) -> Vec<f64> {
        self.try_single_source(i).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Infallible [`CloudWalker::try_single_source_topk`]. `k = 0` returns
    /// an empty ranking (the checked variant treats it as
    /// [`QueryError::InvalidK`]).
    ///
    /// # Panics
    /// Panics if `i` is not a node of the graph.
    pub fn single_source_topk(&self, i: NodeId, k: usize) -> Vec<(NodeId, f64)> {
        if k == 0 {
            self.check_node(i).unwrap_or_else(|e| panic!("{e}"));
            return Vec::new();
        }
        self.try_single_source_topk(i, k).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Infallible [`CloudWalker::try_query_cohort`].
    ///
    /// # Panics
    /// Panics if `v` is not a node of the graph.
    pub fn query_cohort(&self, v: NodeId) -> pasco_mc::walks::StepDistributions {
        self.try_query_cohort(v).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Infallible [`CloudWalker::try_single_source_push`].
    ///
    /// # Panics
    /// Panics if `i` is not a node of the graph.
    pub fn single_source_push(&self, i: NodeId) -> Vec<f64> {
        self.try_single_source_push(i).unwrap_or_else(|e| panic!("{e}"))
    }

    /// MCAP — top-`k` similar nodes for every node (`O(n·T²·R′·log d)`;
    /// run it on graphs small enough to afford `n` single-source queries).
    /// Runs MCSS repeatedly (as in the paper) on the configured engine, in
    /// parallel over sources.
    ///
    /// # Panics
    /// Panics if the engine fails a query mid-sweep (only possible on the
    /// distributed substrate when a worker disappears); the per-source
    /// checked queries are the fault-tolerant surface.
    pub fn all_pairs_topk(&self, k: usize) -> Vec<Vec<(NodeId, f64)>> {
        let diag = self.diag.as_slice();
        (0..self.graph.node_count())
            .into_par_iter()
            .map(|i| {
                self.engine
                    .single_source_topk(diag, &self.cfg, i, k)
                    .unwrap_or_else(|e| panic!("{e}"))
            })
            .collect()
    }

    /// The offline index.
    pub fn diagonal(&self) -> &DiagonalIndex {
        &self.diag
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimRankConfig {
        &self.cfg
    }

    /// The indexed graph.
    pub fn graph(&self) -> &Arc<CsrGraph> {
        &self.graph
    }

    /// The reverse-chain sampling index shared with the engine.
    pub fn reverse_chain_index(&self) -> &Arc<ReverseChainIndex> {
        &self.rci
    }

    /// The engine's substrate name (`"local"`, `"sharded"`, `"broadcast"`,
    /// `"rdd"`, `"distributed"`).
    pub fn mode_name(&self) -> &'static str {
        self.engine.name()
    }

    /// Live per-worker statistics, polled over the wire
    /// (`ExecMode::Distributed` only; `None` elsewhere). One entry per
    /// worker in partition order; an unreachable worker is its typed
    /// error, so fleet-health reports never shrink silently.
    pub fn worker_stats(&self) -> Option<Vec<Result<crate::api::worker::WorkerStats, QueryError>>> {
        self.engine.worker_stats()
    }

    /// Per-shard resident bytes for in-process partitioned engines
    /// (`ExecMode::Sharded`); `None` on unsharded substrates.
    pub fn shard_footprints(&self) -> Option<Vec<u64>> {
        self.engine.shard_footprints()
    }

    /// Cluster accounting so far (None in local mode).
    pub fn cluster_report(&self) -> Option<ClusterReport> {
        self.engine.cluster_report()
    }

    /// The engine's per-worker query-time memory demand.
    pub fn memory_footprint(&self) -> crate::engine::EngineFootprint {
        self.engine.memory_footprint()
    }

    /// RDD mode's per-worker memory requirement (largest partition); `None`
    /// in other modes.
    pub fn max_partition_bytes(&self) -> Option<u64> {
        let fp = self.engine.memory_footprint();
        fp.partitioned.then_some(fp.per_worker_bytes)
    }

    #[inline]
    fn check_node(&self, v: NodeId) -> Result<(), QueryError> {
        crate::api::check_node(v, self.graph.node_count())
    }
}

/// The one place execution modes are matched: engine construction, shared
/// by [`CloudWalker::build_with_stats`] and
/// [`CloudWalker::from_index_with_mode`].
fn make_engine(
    mode: ExecMode,
    graph: &Arc<CsrGraph>,
    rci: &Arc<ReverseChainIndex>,
) -> Result<Box<dyn SimRankEngine>, SimRankError> {
    Ok(match mode {
        ExecMode::Local => Box::new(LocalEngine::new(Arc::clone(graph), Arc::clone(rci))),
        ExecMode::Broadcast(cluster_cfg) => {
            Box::new(BroadcastEngine::new(cluster_cfg, Arc::clone(graph), Arc::clone(rci))?)
        }
        ExecMode::Rdd(cluster_cfg) => Box::new(RddEngine::new(cluster_cfg, graph)),
        ExecMode::Sharded { shards } => {
            if shards == 0 {
                return Err(SimRankError::InvalidConfig(
                    "sharded mode needs at least one shard".into(),
                ));
            }
            Box::new(ShardedEngine::new(graph, shards))
        }
        ExecMode::Distributed { workers } => {
            if workers.is_empty() {
                return Err(SimRankError::InvalidConfig(
                    "distributed mode needs at least one worker address".into(),
                ));
            }
            Box::new(DistributedEngine::connect(graph, &workers)?)
        }
    })
}

impl std::fmt::Debug for CloudWalker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CloudWalker")
            .field("nodes", &self.graph.node_count())
            .field("edges", &self.graph.edge_count())
            .field("cfg", &self.cfg)
            .field("mode", &self.engine.name())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasco_cluster::ClusterConfig;
    use pasco_graph::generators;

    #[test]
    fn build_and_query_local() {
        let g = Arc::new(generators::barabasi_albert(150, 3, 3));
        let (cw, stats) =
            CloudWalker::build_with_stats(g, SimRankConfig::fast(), ExecMode::Local).unwrap();
        assert_eq!(cw.single_pair(5, 5), 1.0);
        let s = cw.single_pair(5, 60);
        assert!((0.0..=1.0).contains(&s));
        let row = cw.single_source(5);
        assert_eq!(row.len(), 150);
        assert_eq!(row[5], 1.0);
        assert_eq!(stats.jacobi_residuals.len(), cw.config().l);
        assert!(stats.cluster.is_none());
        assert_eq!(cw.mode_name(), "local");
    }

    #[test]
    fn rejects_invalid_config_and_empty_graph() {
        let g = Arc::new(generators::cycle(5));
        let bad = SimRankConfig::fast().with_c(2.0);
        assert!(CloudWalker::build(Arc::clone(&g), bad, ExecMode::Local).is_err());
        let empty = Arc::new(pasco_graph::GraphBuilder::new().build());
        assert!(CloudWalker::build(empty, SimRankConfig::fast(), ExecMode::Local).is_err());
    }

    #[test]
    fn from_index_validates_length() {
        let g = Arc::new(generators::cycle(5));
        let err = CloudWalker::from_index(
            Arc::clone(&g),
            SimRankConfig::fast(),
            DiagonalIndex::new(vec![0.4; 3]),
        )
        .unwrap_err();
        assert!(matches!(err, SimRankError::BadIndex(_)));
        let ok =
            CloudWalker::from_index(g, SimRankConfig::fast(), DiagonalIndex::new(vec![0.4; 5]));
        assert!(ok.is_ok());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn query_out_of_range_panics() {
        let g = Arc::new(generators::cycle(4));
        let cw = CloudWalker::build(g, SimRankConfig::fast(), ExecMode::Local).unwrap();
        cw.single_pair(0, 4);
    }

    #[test]
    fn checked_queries_surface_typed_errors() {
        let g = Arc::new(generators::cycle(4));
        let cw = CloudWalker::build(g, SimRankConfig::fast(), ExecMode::Local).unwrap();
        let oob = QueryError::NodeOutOfRange { node: 4, node_count: 4 };
        assert_eq!(cw.try_single_pair(0, 4).unwrap_err(), oob);
        assert_eq!(cw.try_single_source(4).unwrap_err(), oob);
        assert_eq!(cw.try_single_source_topk(4, 3).unwrap_err(), oob);
        assert_eq!(cw.try_single_source_push(4).unwrap_err(), oob);
        assert_eq!(cw.try_query_cohort(4).unwrap_err(), oob);
        assert_eq!(cw.try_single_source_topk(1, 0).unwrap_err(), QueryError::InvalidK { k: 0 });
        // Checked and infallible variants agree on valid input.
        assert_eq!(cw.try_single_pair(0, 2).unwrap(), cw.single_pair(0, 2));
        assert_eq!(cw.try_single_source_topk(0, 2).unwrap(), cw.single_source_topk(0, 2));
        assert_eq!(cw.single_source_topk(0, 0), Vec::new());
    }

    #[test]
    fn cloudwalker_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CloudWalker>();
    }

    #[test]
    fn three_modes_agree_end_to_end() {
        let g = Arc::new(generators::barabasi_albert(120, 3, 9));
        let cfg = SimRankConfig::fast().with_seed(5);
        let local = CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Local).unwrap();
        let bcast =
            CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Broadcast(ClusterConfig::local(3)))
                .unwrap();
        let rdd = CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Rdd(ClusterConfig::local(3)))
            .unwrap();
        assert_eq!(local.diagonal(), bcast.diagonal());
        assert_eq!(local.diagonal(), rdd.diagonal());
        assert_eq!(local.single_pair(3, 99), bcast.single_pair(3, 99));
        assert_eq!(local.single_pair(3, 99), rdd.single_pair(3, 99));
        assert!(bcast.cluster_report().is_some());
        assert!(rdd.max_partition_bytes().unwrap() < g.memory_bytes());
        assert!(local.max_partition_bytes().is_none());
    }
}
