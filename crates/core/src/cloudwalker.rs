//! The public CloudWalker API: build the index once, query forever.

use crate::api::QueryError;
use crate::config::{AiStrategy, SimRankConfig};
use crate::diag::DiagonalIndex;
use crate::engine::broadcast::BroadcastEngine;
use crate::engine::distributed::DistributedEngine;
use crate::engine::local::LocalEngine;
use crate::engine::mapped::MappedEngine;
use crate::engine::rdd::RddEngine;
use crate::engine::sharded::ShardedEngine;
use crate::engine::{ExecMode, SimRankEngine};
use crate::error::SimRankError;
use crate::queries;
use pasco_cluster::ClusterReport;
use pasco_graph::{CsrGraph, NodeId, ReverseChainIndex};
use pasco_store::MappedStore;
use rayon::prelude::*;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Statistics from offline index construction.
#[derive(Clone, Debug)]
pub struct IndexBuildStats {
    /// Wall time of the whole build.
    pub wall: Duration,
    /// The row-provisioning strategy actually used.
    pub strategy: AiStrategy,
    /// `‖Ax − 1‖∞` after each Jacobi sweep.
    pub jacobi_residuals: Vec<f64>,
    /// Stored-row footprint, if rows were materialised.
    pub rows_bytes: Option<u64>,
    /// Cluster accounting (broadcast/RDD modes only).
    pub cluster: Option<ClusterReport>,
}

/// CloudWalker: offline-indexed, Monte-Carlo-queried SimRank.
///
/// Every query dispatches through one `Box<dyn SimRankEngine>` — the
/// execution substrate is chosen once at build time and the query paths
/// never branch on it.
///
/// ```
/// use pasco_simrank::{CloudWalker, SimRankConfig, ExecMode};
/// use pasco_graph::generators;
///
/// let g = generators::barabasi_albert(300, 4, 1);
/// let cw = CloudWalker::build(g.into(), SimRankConfig::fast(), ExecMode::Local).unwrap();
/// let s = cw.single_pair(3, 4);
/// assert!((0.0..=1.0).contains(&s));
/// ```
pub struct CloudWalker {
    backing: GraphBacking,
    cfg: SimRankConfig,
    diag: DiagonalIndex,
    engine: Box<dyn SimRankEngine>,
}

/// What the walker holds for adjacency: a resident CSR graph (plus the
/// reverse-chain sampling index the in-memory engines share) or a
/// zero-copy mapped `PASCOSH1` shard store with no resident adjacency at
/// all. Query paths never match on this — they go through the engine —
/// only the resident-specific surfaces (`graph()`, the deterministic-push
/// ablation, `save_store`) do.
enum GraphBacking {
    /// The graph lives in memory; every [`ExecMode`] engine is available.
    Resident {
        /// The indexed graph.
        graph: Arc<CsrGraph>,
        /// The reverse-chain sampling index shared with the engine.
        rci: Arc<ReverseChainIndex>,
    },
    /// Adjacency stays on disk behind the kernel page cache; walks read
    /// the mapped shards directly ([`CloudWalker::open_store`]).
    Mapped(Arc<MappedStore>),
}

impl GraphBacking {
    fn node_count(&self) -> u32 {
        match self {
            GraphBacking::Resident { graph, .. } => graph.node_count(),
            GraphBacking::Mapped(store) => store.node_count(),
        }
    }
}

impl CloudWalker {
    /// Builds the offline index (the diagonal correction `D`) with the
    /// chosen execution mode and returns a query-ready engine.
    pub fn build(
        graph: Arc<CsrGraph>,
        cfg: SimRankConfig,
        mode: ExecMode,
    ) -> Result<Self, SimRankError> {
        Self::build_with_stats(graph, cfg, mode).map(|(cw, _)| cw)
    }

    /// [`CloudWalker::build`] plus build statistics.
    pub fn build_with_stats(
        graph: Arc<CsrGraph>,
        cfg: SimRankConfig,
        mode: ExecMode,
    ) -> Result<(Self, IndexBuildStats), SimRankError> {
        cfg.validate()?;
        if graph.node_count() == 0 {
            return Err(SimRankError::InvalidConfig("graph has no nodes".into()));
        }
        let start = Instant::now();
        let rci = Arc::new(ReverseChainIndex::build(&graph));
        let engine = make_engine(mode, &graph, &rci)?;
        let out = engine.build_diagonal(&cfg)?;
        let stats = IndexBuildStats {
            wall: start.elapsed(),
            strategy: out.strategy,
            jacobi_residuals: out.residuals,
            rows_bytes: out.rows_bytes,
            cluster: out.cluster,
        };
        Ok((
            Self { backing: GraphBacking::Resident { graph, rci }, cfg, diag: out.diag, engine },
            stats,
        ))
    }

    /// Opens a [`pasco_store`] shard directory (written by
    /// [`CloudWalker::save_store`] or `pasco save-store`) for out-of-core
    /// querying: the adjacency stays on disk behind the kernel page cache,
    /// the persisted diagonal is composed straight from the mapped shards,
    /// and no CSR graph or reverse-chain index is rebuilt — restart cost
    /// is `O(headers + offset spines)`, independent of edge count.
    ///
    /// Queries run on the [`MappedEngine`] and are bit-identical to a
    /// resident walker built from the same graph, diagonal and config,
    /// except the deterministic-push ablation
    /// ([`CloudWalker::try_single_source_push`]), which needs the resident
    /// CSR and reports [`QueryError::Unsupported`].
    pub fn open_store(dir: impl AsRef<Path>, cfg: SimRankConfig) -> Result<Self, SimRankError> {
        cfg.validate()?;
        let store = Arc::new(MappedStore::open(dir)?);
        let diag = store_diag(&store)?;
        let engine: Box<dyn SimRankEngine> = Box::new(MappedEngine::new(Arc::clone(&store)));
        Ok(Self { backing: GraphBacking::Mapped(store), cfg, diag, engine })
    }

    /// [`CloudWalker::open_store`] served by real `pasco worker`
    /// processes: each worker maps its own shard of `dir` (the directory
    /// must be reachable at the same path on every worker host — a shared
    /// or replicated filesystem), so provisioning ships one path string
    /// per worker instead of `O(E)` partition bytes, and the diagonal
    /// never crosses the wire at all.
    ///
    /// Needs at least [`MappedStore::parts`] worker addresses — shards
    /// are files, so the store's partition count is fixed at save time.
    pub fn open_store_distributed(
        dir: impl AsRef<Path>,
        cfg: SimRankConfig,
        workers: &[String],
    ) -> Result<Self, SimRankError> {
        cfg.validate()?;
        let store = Arc::new(MappedStore::open(dir)?);
        let diag = store_diag(&store)?;
        let engine: Box<dyn SimRankEngine> =
            Box::new(DistributedEngine::connect_store(&store, workers)?);
        Ok(Self { backing: GraphBacking::Mapped(store), cfg, diag, engine })
    }

    /// Persists this walker's graph and diagonal as a [`pasco_store`]
    /// shard directory with `parts` range-partitioned shards — the
    /// out-of-core dual of [`crate::persist::save_index`]. Reopen with
    /// [`CloudWalker::open_store`] (or serve it fleet-wide with
    /// [`CloudWalker::open_store_distributed`]).
    ///
    /// Only a resident walker can save a store; a mapped walker *is* the
    /// store directory already, so asking it to save reports
    /// [`SimRankError::InvalidConfig`] pointing at the existing directory.
    pub fn save_store(&self, dir: impl AsRef<Path>, parts: u32) -> Result<(), SimRankError> {
        if parts == 0 {
            return Err(SimRankError::InvalidConfig("store needs at least one shard".into()));
        }
        match &self.backing {
            GraphBacking::Resident { graph, .. } => {
                pasco_store::write_store(dir, graph, self.diag.as_slice(), parts)?;
                Ok(())
            }
            GraphBacking::Mapped(store) => Err(SimRankError::InvalidConfig(format!(
                "walker is already backed by the store at {}; copy that directory instead",
                store.dir().display()
            ))),
        }
    }

    /// Wraps a previously computed (e.g. [`crate::persist::load_index`]ed)
    /// diagonal for local-mode querying.
    pub fn from_index(
        graph: Arc<CsrGraph>,
        cfg: SimRankConfig,
        diag: DiagonalIndex,
    ) -> Result<Self, SimRankError> {
        Self::from_index_with_mode(graph, cfg, diag, ExecMode::Local)
    }

    /// [`CloudWalker::from_index`] on an explicit execution substrate: the
    /// offline build is skipped, but queries run (and are accounted) on
    /// the chosen engine — e.g. a persisted index served shard-parallel
    /// with `ExecMode::Sharded`.
    pub fn from_index_with_mode(
        graph: Arc<CsrGraph>,
        cfg: SimRankConfig,
        diag: DiagonalIndex,
        mode: ExecMode,
    ) -> Result<Self, SimRankError> {
        cfg.validate()?;
        if diag.len() != graph.node_count() as usize {
            return Err(SimRankError::BadIndex(format!(
                "index covers {} nodes but the graph has {}",
                diag.len(),
                graph.node_count()
            )));
        }
        let rci = Arc::new(ReverseChainIndex::build(&graph));
        let engine = make_engine(mode, &graph, &rci)?;
        Ok(Self { backing: GraphBacking::Resident { graph, rci }, cfg, diag, engine })
    }

    /// MCSP — similarity of one node pair, `O(T·R′)`. Estimates are
    /// clamped into SimRank's `[0, 1]` range (Monte-Carlo noise can push a
    /// raw estimate slightly outside). Fails with
    /// [`QueryError::NodeOutOfRange`] instead of panicking; the serving
    /// stack ([`crate::api::QueryService`], [`crate::QuerySession`]) routes
    /// every query through these checked variants.
    pub fn try_single_pair(&self, i: NodeId, j: NodeId) -> Result<f64, QueryError> {
        self.check_node(i)?;
        self.check_node(j)?;
        Ok(self.engine.single_pair(self.diag.as_slice(), &self.cfg, i, j)?.clamp(0.0, 1.0))
    }

    /// MCSS — similarity of every node to `i`, `O(T²·R′·log d)`. Estimates
    /// are clamped into SimRank's `[0, 1]` range; fails with
    /// [`QueryError::NodeOutOfRange`] on a bad node.
    pub fn try_single_source(&self, i: NodeId) -> Result<Vec<f64>, QueryError> {
        self.check_node(i)?;
        let mut out = self.engine.single_source(self.diag.as_slice(), &self.cfg, i)?;
        for v in &mut out {
            *v = v.clamp(0.0, 1.0);
        }
        Ok(out)
    }

    /// Sparse top-`k` MCSS: returns only the `k` most similar nodes
    /// (query node excluded) — the right call for big graphs when only a
    /// ranking is needed. Runs on the configured engine, so cluster modes
    /// account the work in their [`ClusterReport`]. Fails with
    /// [`QueryError::NodeOutOfRange`] on a bad node and
    /// [`QueryError::InvalidK`] on `k = 0`.
    pub fn try_single_source_topk(
        &self,
        i: NodeId,
        k: usize,
    ) -> Result<Vec<(NodeId, f64)>, QueryError> {
        self.check_node(i)?;
        if k == 0 {
            return Err(QueryError::InvalidK { k: k as u64 });
        }
        self.engine.single_source_topk(self.diag.as_slice(), &self.cfg, i, k)
    }

    /// Simulates the `R'`-walker query cohort of `v` on the configured
    /// engine (the building block [`crate::QuerySession`] caches; cluster
    /// modes account the work in their [`ClusterReport`]). Fails with
    /// [`QueryError::NodeOutOfRange`] on a bad node.
    pub fn try_query_cohort(
        &self,
        v: NodeId,
    ) -> Result<pasco_mc::walks::StepDistributions, QueryError> {
        self.check_node(v)?;
        self.engine.query_cohort(&self.cfg, v)
    }

    /// The deterministic-push variant of MCSS (ablation A1); local
    /// execution regardless of mode. Fails with
    /// [`QueryError::NodeOutOfRange`] on a bad node and with
    /// [`QueryError::Unsupported`] on a store-backed walker — forward
    /// push traverses the whole residual frontier through the resident
    /// CSR graph, which a mapped store deliberately does not build.
    pub fn try_single_source_push(&self, i: NodeId) -> Result<Vec<f64>, QueryError> {
        self.check_node(i)?;
        let GraphBacking::Resident { graph, .. } = &self.backing else {
            return Err(QueryError::Unsupported {
                detail: "single-source push needs the resident CSR graph; a mapped store \
                         serves only the Monte-Carlo query paths"
                    .into(),
            });
        };
        let mut out = queries::single_source_push(graph, self.diag.as_slice(), &self.cfg, i);
        for v in &mut out {
            *v = v.clamp(0.0, 1.0);
        }
        Ok(out)
    }

    /// Infallible [`CloudWalker::try_single_pair`].
    ///
    /// # Panics
    /// Panics if `i` or `j` is not a node of the graph; call the checked
    /// variant to get a typed [`QueryError`] instead.
    pub fn single_pair(&self, i: NodeId, j: NodeId) -> f64 {
        self.try_single_pair(i, j).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Infallible [`CloudWalker::try_single_source`].
    ///
    /// # Panics
    /// Panics if `i` is not a node of the graph.
    pub fn single_source(&self, i: NodeId) -> Vec<f64> {
        self.try_single_source(i).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Infallible [`CloudWalker::try_single_source_topk`]. `k = 0` returns
    /// an empty ranking (the checked variant treats it as
    /// [`QueryError::InvalidK`]).
    ///
    /// # Panics
    /// Panics if `i` is not a node of the graph.
    pub fn single_source_topk(&self, i: NodeId, k: usize) -> Vec<(NodeId, f64)> {
        if k == 0 {
            self.check_node(i).unwrap_or_else(|e| panic!("{e}"));
            return Vec::new();
        }
        self.try_single_source_topk(i, k).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Infallible [`CloudWalker::try_query_cohort`].
    ///
    /// # Panics
    /// Panics if `v` is not a node of the graph.
    pub fn query_cohort(&self, v: NodeId) -> pasco_mc::walks::StepDistributions {
        self.try_query_cohort(v).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Infallible [`CloudWalker::try_single_source_push`].
    ///
    /// # Panics
    /// Panics if `i` is not a node of the graph.
    pub fn single_source_push(&self, i: NodeId) -> Vec<f64> {
        self.try_single_source_push(i).unwrap_or_else(|e| panic!("{e}"))
    }

    /// MCAP — top-`k` similar nodes for every node (`O(n·T²·R′·log d)`;
    /// run it on graphs small enough to afford `n` single-source queries).
    /// Runs MCSS repeatedly (as in the paper) on the configured engine, in
    /// parallel over sources.
    ///
    /// # Panics
    /// Panics if the engine fails a query mid-sweep (only possible on the
    /// distributed substrate when a worker disappears); the per-source
    /// checked queries are the fault-tolerant surface.
    pub fn all_pairs_topk(&self, k: usize) -> Vec<Vec<(NodeId, f64)>> {
        let diag = self.diag.as_slice();
        (0..self.node_count())
            .into_par_iter()
            .map(|i| {
                self.engine
                    .single_source_topk(diag, &self.cfg, i, k)
                    .unwrap_or_else(|e| panic!("{e}"))
            })
            .collect()
    }

    /// The offline index.
    pub fn diagonal(&self) -> &DiagonalIndex {
        &self.diag
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimRankConfig {
        &self.cfg
    }

    /// Number of nodes in the indexed graph — available on every backing
    /// (a store-backed walker has no resident graph to ask).
    pub fn node_count(&self) -> u32 {
        self.backing.node_count()
    }

    /// The indexed graph, when resident in memory; `None` on a
    /// store-backed walker ([`CloudWalker::open_store`]), which keeps no
    /// CSR graph at all. Use [`CloudWalker::node_count`] for the node
    /// count — it never depends on the backing.
    pub fn graph(&self) -> Option<&Arc<CsrGraph>> {
        match &self.backing {
            GraphBacking::Resident { graph, .. } => Some(graph),
            GraphBacking::Mapped(_) => None,
        }
    }

    /// The reverse-chain sampling index shared with the engine; `None`
    /// on a store-backed walker (mapped shards sample from the on-disk
    /// cumulative-outflow arrays instead).
    pub fn reverse_chain_index(&self) -> Option<&Arc<ReverseChainIndex>> {
        match &self.backing {
            GraphBacking::Resident { rci, .. } => Some(rci),
            GraphBacking::Mapped(_) => None,
        }
    }

    /// The mapped shard store backing this walker, if it was opened with
    /// [`CloudWalker::open_store`] or
    /// [`CloudWalker::open_store_distributed`]; `None` on resident
    /// backings.
    pub fn store(&self) -> Option<&Arc<MappedStore>> {
        match &self.backing {
            GraphBacking::Resident { .. } => None,
            GraphBacking::Mapped(store) => Some(store),
        }
    }

    /// The engine's substrate name (`"local"`, `"sharded"`, `"broadcast"`,
    /// `"rdd"`, `"distributed"`, `"mapped"`).
    pub fn mode_name(&self) -> &'static str {
        self.engine.name()
    }

    /// Live per-worker statistics, polled over the wire
    /// (`ExecMode::Distributed` only; `None` elsewhere). One entry per
    /// worker in partition order; an unreachable worker is its typed
    /// error, so fleet-health reports never shrink silently.
    pub fn worker_stats(&self) -> Option<Vec<Result<crate::api::worker::WorkerStats, QueryError>>> {
        self.engine.worker_stats()
    }

    /// Per-shard resident bytes for in-process partitioned engines
    /// (`ExecMode::Sharded`); `None` on unsharded substrates.
    pub fn shard_footprints(&self) -> Option<Vec<u64>> {
        self.engine.shard_footprints()
    }

    /// Cluster accounting so far (None in local mode).
    pub fn cluster_report(&self) -> Option<ClusterReport> {
        self.engine.cluster_report()
    }

    /// The engine's per-worker query-time memory demand.
    pub fn memory_footprint(&self) -> crate::engine::EngineFootprint {
        self.engine.memory_footprint()
    }

    /// RDD mode's per-worker memory requirement (largest partition); `None`
    /// in other modes.
    pub fn max_partition_bytes(&self) -> Option<u64> {
        let fp = self.engine.memory_footprint();
        fp.partitioned.then_some(fp.per_worker_bytes)
    }

    #[inline]
    fn check_node(&self, v: NodeId) -> Result<(), QueryError> {
        crate::api::check_node(v, self.node_count())
    }
}

/// Composes and sanity-checks the persisted diagonal of a mapped store:
/// a store with no nodes cannot be queried, and a non-finite entry means
/// the file was not written by a finished CloudWalker build (the solver
/// only ever produces finite diagonals), so the open is refused with a
/// typed error rather than letting NaN poison every later estimate.
fn store_diag(store: &MappedStore) -> Result<DiagonalIndex, SimRankError> {
    if store.node_count() == 0 {
        return Err(SimRankError::BadIndex("store covers a graph with no nodes".into()));
    }
    let diag = store.compose_diag();
    if let Some(v) = diag.iter().find(|v| !v.is_finite()) {
        return Err(SimRankError::BadIndex(format!(
            "store diagonal holds a non-finite entry ({v})"
        )));
    }
    Ok(DiagonalIndex::new(diag))
}

/// The one place execution modes are matched: engine construction, shared
/// by [`CloudWalker::build_with_stats`] and
/// [`CloudWalker::from_index_with_mode`].
fn make_engine(
    mode: ExecMode,
    graph: &Arc<CsrGraph>,
    rci: &Arc<ReverseChainIndex>,
) -> Result<Box<dyn SimRankEngine>, SimRankError> {
    Ok(match mode {
        ExecMode::Local => Box::new(LocalEngine::new(Arc::clone(graph), Arc::clone(rci))),
        ExecMode::Broadcast(cluster_cfg) => {
            Box::new(BroadcastEngine::new(cluster_cfg, Arc::clone(graph), Arc::clone(rci))?)
        }
        ExecMode::Rdd(cluster_cfg) => Box::new(RddEngine::new(cluster_cfg, graph)),
        ExecMode::Sharded { shards } => {
            if shards == 0 {
                return Err(SimRankError::InvalidConfig(
                    "sharded mode needs at least one shard".into(),
                ));
            }
            Box::new(ShardedEngine::new(graph, shards))
        }
        ExecMode::Distributed { workers } => {
            if workers.is_empty() {
                return Err(SimRankError::InvalidConfig(
                    "distributed mode needs at least one worker address".into(),
                ));
            }
            Box::new(DistributedEngine::connect(graph, &workers)?)
        }
    })
}

impl std::fmt::Debug for CloudWalker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let edges = match &self.backing {
            GraphBacking::Resident { graph, .. } => graph.edge_count(),
            GraphBacking::Mapped(store) => store.edge_count(),
        };
        f.debug_struct("CloudWalker")
            .field("nodes", &self.node_count())
            .field("edges", &edges)
            .field("cfg", &self.cfg)
            .field("mode", &self.engine.name())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasco_cluster::ClusterConfig;
    use pasco_graph::generators;

    #[test]
    fn build_and_query_local() {
        let g = Arc::new(generators::barabasi_albert(150, 3, 3));
        let (cw, stats) =
            CloudWalker::build_with_stats(g, SimRankConfig::fast(), ExecMode::Local).unwrap();
        assert_eq!(cw.single_pair(5, 5), 1.0);
        let s = cw.single_pair(5, 60);
        assert!((0.0..=1.0).contains(&s));
        let row = cw.single_source(5);
        assert_eq!(row.len(), 150);
        assert_eq!(row[5], 1.0);
        assert_eq!(stats.jacobi_residuals.len(), cw.config().l);
        assert!(stats.cluster.is_none());
        assert_eq!(cw.mode_name(), "local");
    }

    #[test]
    fn rejects_invalid_config_and_empty_graph() {
        let g = Arc::new(generators::cycle(5));
        let bad = SimRankConfig::fast().with_c(2.0);
        assert!(CloudWalker::build(Arc::clone(&g), bad, ExecMode::Local).is_err());
        let empty = Arc::new(pasco_graph::GraphBuilder::new().build());
        assert!(CloudWalker::build(empty, SimRankConfig::fast(), ExecMode::Local).is_err());
    }

    #[test]
    fn from_index_validates_length() {
        let g = Arc::new(generators::cycle(5));
        let err = CloudWalker::from_index(
            Arc::clone(&g),
            SimRankConfig::fast(),
            DiagonalIndex::new(vec![0.4; 3]),
        )
        .unwrap_err();
        assert!(matches!(err, SimRankError::BadIndex(_)));
        let ok =
            CloudWalker::from_index(g, SimRankConfig::fast(), DiagonalIndex::new(vec![0.4; 5]));
        assert!(ok.is_ok());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn query_out_of_range_panics() {
        let g = Arc::new(generators::cycle(4));
        let cw = CloudWalker::build(g, SimRankConfig::fast(), ExecMode::Local).unwrap();
        cw.single_pair(0, 4);
    }

    #[test]
    fn checked_queries_surface_typed_errors() {
        let g = Arc::new(generators::cycle(4));
        let cw = CloudWalker::build(g, SimRankConfig::fast(), ExecMode::Local).unwrap();
        let oob = QueryError::NodeOutOfRange { node: 4, node_count: 4 };
        assert_eq!(cw.try_single_pair(0, 4).unwrap_err(), oob);
        assert_eq!(cw.try_single_source(4).unwrap_err(), oob);
        assert_eq!(cw.try_single_source_topk(4, 3).unwrap_err(), oob);
        assert_eq!(cw.try_single_source_push(4).unwrap_err(), oob);
        assert_eq!(cw.try_query_cohort(4).unwrap_err(), oob);
        assert_eq!(cw.try_single_source_topk(1, 0).unwrap_err(), QueryError::InvalidK { k: 0 });
        // Checked and infallible variants agree on valid input.
        assert_eq!(cw.try_single_pair(0, 2).unwrap(), cw.single_pair(0, 2));
        assert_eq!(cw.try_single_source_topk(0, 2).unwrap(), cw.single_source_topk(0, 2));
        assert_eq!(cw.single_source_topk(0, 0), Vec::new());
    }

    #[test]
    fn store_roundtrip_preserves_every_query() {
        let dir = std::env::temp_dir().join("pasco_cw_store_roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let g = Arc::new(generators::barabasi_albert(140, 3, 11));
        let cfg = SimRankConfig::fast().with_seed(7);
        let resident = CloudWalker::build(g, cfg, ExecMode::Local).unwrap();
        resident.save_store(&dir, 3).unwrap();

        let mapped = CloudWalker::open_store(&dir, cfg).unwrap();
        assert_eq!(mapped.mode_name(), "mapped");
        assert_eq!(mapped.node_count(), 140);
        assert!(mapped.graph().is_none());
        assert!(mapped.reverse_chain_index().is_none());
        assert_eq!(mapped.store().unwrap().parts(), 3);
        assert_eq!(mapped.diagonal(), resident.diagonal());
        assert_eq!(mapped.single_pair(3, 99), resident.single_pair(3, 99));
        assert_eq!(mapped.single_source(5), resident.single_source(5));
        assert_eq!(mapped.single_source_topk(5, 10), resident.single_source_topk(5, 10));

        // The push ablation needs the resident CSR: typed error, no panic.
        assert!(matches!(mapped.try_single_source_push(5), Err(QueryError::Unsupported { .. })));
        // A mapped walker cannot re-save: it IS the store directory.
        assert!(matches!(
            mapped.save_store(dir.join("copy"), 2),
            Err(SimRankError::InvalidConfig(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_store_rejects_zero_parts_and_open_rejects_missing_dir() {
        let g = Arc::new(generators::cycle(6));
        let cw = CloudWalker::build(g, SimRankConfig::fast(), ExecMode::Local).unwrap();
        assert!(matches!(
            cw.save_store(std::env::temp_dir().join("pasco_cw_zero"), 0),
            Err(SimRankError::InvalidConfig(_))
        ));
        let missing = std::env::temp_dir().join("pasco_cw_store_missing");
        let _ = std::fs::remove_dir_all(&missing);
        assert!(CloudWalker::open_store(&missing, SimRankConfig::fast()).is_err());
    }

    #[test]
    fn cloudwalker_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CloudWalker>();
    }

    #[test]
    fn three_modes_agree_end_to_end() {
        let g = Arc::new(generators::barabasi_albert(120, 3, 9));
        let cfg = SimRankConfig::fast().with_seed(5);
        let local = CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Local).unwrap();
        let bcast =
            CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Broadcast(ClusterConfig::local(3)))
                .unwrap();
        let rdd = CloudWalker::build(Arc::clone(&g), cfg, ExecMode::Rdd(ClusterConfig::local(3)))
            .unwrap();
        assert_eq!(local.diagonal(), bcast.diagonal());
        assert_eq!(local.diagonal(), rdd.diagonal());
        assert_eq!(local.single_pair(3, 99), bcast.single_pair(3, 99));
        assert_eq!(local.single_pair(3, 99), rdd.single_pair(3, 99));
        assert!(bcast.cluster_report().is_some());
        assert!(rdd.max_partition_bytes().unwrap() < g.memory_bytes());
        assert!(local.max_partition_bytes().is_none());
    }
}
