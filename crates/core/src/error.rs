//! Error type for CloudWalker operations.

use crate::api::QueryError;
use pasco_cluster::ClusterError;
use std::fmt;

/// Failures surfaced by index construction, persistence and queries.
#[derive(Debug)]
pub enum SimRankError {
    /// A configuration parameter is out of range.
    InvalidConfig(String),
    /// The underlying cluster refused an operation — most prominently a
    /// broadcast that exceeds per-worker memory (the paper's `N/A` cells).
    Cluster(ClusterError),
    /// Persistence I/O failure.
    Io(std::io::Error),
    /// A persisted index file is malformed or does not match the graph.
    BadIndex(String),
    /// A malformed query (see [`QueryError`]) bubbled through an
    /// operation that also has other failure modes.
    Query(QueryError),
}

impl fmt::Display for SimRankError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimRankError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimRankError::Cluster(e) => write!(f, "cluster error: {e}"),
            SimRankError::Io(e) => write!(f, "I/O error: {e}"),
            SimRankError::BadIndex(msg) => write!(f, "bad index: {msg}"),
            SimRankError::Query(e) => write!(f, "query error: {e}"),
        }
    }
}

impl std::error::Error for SimRankError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimRankError::Cluster(e) => Some(e),
            SimRankError::Io(e) => Some(e),
            SimRankError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ClusterError> for SimRankError {
    fn from(e: ClusterError) -> Self {
        SimRankError::Cluster(e)
    }
}

impl From<QueryError> for SimRankError {
    fn from(e: QueryError) -> Self {
        SimRankError::Query(e)
    }
}

impl From<std::io::Error> for SimRankError {
    fn from(e: std::io::Error) -> Self {
        SimRankError::Io(e)
    }
}

impl From<pasco_store::StoreError> for SimRankError {
    /// An I/O failure opening or writing a shard store stays [`SimRankError::Io`];
    /// every structural defect (bad magic, truncation, checksum mismatch,
    /// misalignment…) is a malformed on-disk index, i.e. [`SimRankError::BadIndex`].
    fn from(e: pasco_store::StoreError) -> Self {
        match e {
            pasco_store::StoreError::Io(e) => SimRankError::Io(e),
            other => SimRankError::BadIndex(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_descriptive() {
        let e = SimRankError::InvalidConfig("c out of range".into());
        assert!(e.to_string().contains("c out of range"));
        let e: SimRankError = ClusterError::BroadcastExceedsMemory { needed: 2, budget: 1 }.into();
        assert!(e.to_string().contains("broadcast"));
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        let e: SimRankError = std::io::Error::other("disk").into();
        assert!(e.source().is_some());
        let e: SimRankError = QueryError::NodeOutOfRange { node: 9, node_count: 4 }.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("out of range"));
    }
}
