//! Index persistence: the offline phase's output (`D`) saved to disk.
//!
//! Little-endian binary: magic `PASCODX1`, node count as `u64`, then the
//! diagonal values. The index is the *only* state the online phase needs
//! besides the graph, so this file is what a deployment would ship from the
//! preprocessing cluster to the query servers.

use crate::diag::DiagonalIndex;
use crate::error::SimRankError;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"PASCODX1";

/// Writes the index to `path`.
pub fn save_index(index: &DiagonalIndex, path: impl AsRef<Path>) -> Result<(), SimRankError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(MAGIC)?;
    w.write_all(&(index.len() as u64).to_le_bytes())?;
    for &v in index.as_slice() {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads an index written by [`save_index`].
pub fn load_index(path: impl AsRef<Path>) -> Result<DiagonalIndex, SimRankError> {
    let file = std::fs::File::open(path)?;
    let file_size = file.metadata()?.len();
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(SimRankError::BadIndex(format!("bad magic {magic:?}, expected {MAGIC:?}")));
    }
    let mut len_buf = [0u8; 8];
    r.read_exact(&mut len_buf)?;
    // The length header is untrusted: an index of `n` values is exactly
    // 16 + 8n bytes, so a count the file cannot hold is a malformed
    // index, not an allocation size. (Same unbounded-preallocation class
    // `graph::io` caps — here the real file size pins `n` exactly.)
    let n64 = u64::from_le_bytes(len_buf);
    let expected = n64.checked_mul(8).and_then(|b| b.checked_add(16));
    if expected != Some(file_size) {
        return Err(SimRankError::BadIndex(format!(
            "length header claims {n64} values but the file has {file_size} bytes"
        )));
    }
    let n = n64 as usize;
    let mut x = Vec::with_capacity(n);
    let mut buf = [0u8; 8];
    for _ in 0..n {
        r.read_exact(&mut buf)?;
        let v = f64::from_le_bytes(buf);
        if !v.is_finite() {
            return Err(SimRankError::BadIndex("non-finite diagonal value".into()));
        }
        x.push(v);
    }
    Ok(DiagonalIndex::new(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let dir = std::env::temp_dir().join("pasco_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d.idx");
        let index = DiagonalIndex::new(vec![0.4, 0.61, 0.99, 1.0 - 0.6]);
        save_index(&index, &path).unwrap();
        let back = load_index(&path).unwrap();
        assert_eq!(index, back);
    }

    #[test]
    fn rejects_bad_magic() {
        let dir = std::env::temp_dir().join("pasco_persist_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("junk.idx");
        std::fs::write(&path, b"NOTANIDXjunkjunkjunk").unwrap();
        assert!(matches!(load_index(&path), Err(SimRankError::BadIndex(_))));
    }

    #[test]
    fn rejects_truncated_file() {
        let dir = std::env::temp_dir().join("pasco_persist_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("short.idx");
        let index = DiagonalIndex::new(vec![0.5; 10]);
        save_index(&index, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        // Truncation makes the length header disagree with the file
        // size — caught before a single value is read or allocated.
        assert!(matches!(load_index(&path), Err(SimRankError::BadIndex(_))));
    }

    #[test]
    fn forged_length_header_is_rejected_without_allocating() {
        let dir = std::env::temp_dir().join("pasco_persist_test4");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("forged.idx");
        let index = DiagonalIndex::new(vec![0.5; 4]);
        save_index(&index, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Forge the count to u64::MAX: the file cannot hold it (and the
        // byte-size computation must not overflow), so load_index has to
        // refuse before `Vec::with_capacity` sees the forged number.
        bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(load_index(&path), Err(SimRankError::BadIndex(_))));
        // A merely-inflated (non-overflowing) count is refused the same way.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..16].copy_from_slice(&(1u64 << 40).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(load_index(&path), Err(SimRankError::BadIndex(_))));
    }
}
