//! Index persistence: the offline phase's output (`D`) saved to disk.
//!
//! Little-endian binary: magic `PASCODX1`, node count as `u64`, then the
//! diagonal values. The index is the *only* state the online phase needs
//! besides the graph, so this file is what a deployment would ship from the
//! preprocessing cluster to the query servers.

use crate::diag::DiagonalIndex;
use crate::error::SimRankError;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"PASCODX1";

/// Writes the index to `path`.
pub fn save_index(index: &DiagonalIndex, path: impl AsRef<Path>) -> Result<(), SimRankError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(MAGIC)?;
    w.write_all(&(index.len() as u64).to_le_bytes())?;
    for &v in index.as_slice() {
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads an index written by [`save_index`].
pub fn load_index(path: impl AsRef<Path>) -> Result<DiagonalIndex, SimRankError> {
    let file = std::fs::File::open(path)?;
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(SimRankError::BadIndex(format!("bad magic {magic:?}, expected {MAGIC:?}")));
    }
    let mut len_buf = [0u8; 8];
    r.read_exact(&mut len_buf)?;
    let n = u64::from_le_bytes(len_buf) as usize;
    let mut x = Vec::with_capacity(n);
    let mut buf = [0u8; 8];
    for _ in 0..n {
        r.read_exact(&mut buf)?;
        let v = f64::from_le_bytes(buf);
        if !v.is_finite() {
            return Err(SimRankError::BadIndex("non-finite diagonal value".into()));
        }
        x.push(v);
    }
    Ok(DiagonalIndex::new(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let dir = std::env::temp_dir().join("pasco_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d.idx");
        let index = DiagonalIndex::new(vec![0.4, 0.61, 0.99, 1.0 - 0.6]);
        save_index(&index, &path).unwrap();
        let back = load_index(&path).unwrap();
        assert_eq!(index, back);
    }

    #[test]
    fn rejects_bad_magic() {
        let dir = std::env::temp_dir().join("pasco_persist_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("junk.idx");
        std::fs::write(&path, b"NOTANIDXjunkjunkjunk").unwrap();
        assert!(matches!(load_index(&path), Err(SimRankError::BadIndex(_))));
    }

    #[test]
    fn rejects_truncated_file() {
        let dir = std::env::temp_dir().join("pasco_persist_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("short.idx");
        let index = DiagonalIndex::new(vec![0.5; 10]);
        save_index(&index, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        assert!(matches!(load_index(&path), Err(SimRankError::Io(_))));
    }
}
