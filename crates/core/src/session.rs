//! Query sessions: a thread-safe serving layer with cohort caching and
//! parallel batch APIs on top of a shared [`CloudWalker`].
//!
//! Both MCSP and MCSS start by simulating the `R'`-walker cohort of the
//! query node — and the cohort depends only on `(seed, node)`. A workload
//! that touches the same nodes repeatedly (pairwise matrices, top-k
//! fan-out, A/B probes) re-simulates identical walks over and over.
//! [`QuerySession`] memoises cohorts so repeated queries pay only the
//! scoring merge, and exposes batch entry points that exploit sharing
//! explicitly (`pairs_matrix` warms each distinct node through the cache
//! at most once per block).
//!
//! The session is `Send + Sync` and every query takes `&self`: one session
//! serves many concurrent clients. The cohort cache is sharded — each
//! shard is an independently locked O(1) LRU (hash-indexed doubly linked
//! list, no per-hit scans, no O(n)-in-graph-size allocation) — so
//! concurrent queries for different nodes rarely contend, and a
//! single-flight registry guarantees concurrent misses on the *same* node
//! simulate its cohort exactly once. Results are bitwise identical to the
//! underlying engine's; caching and concurrency only remove
//! re-simulation.
//!
//! Long-running servers configure eviction through [`SessionConfig`]: an
//! optional TTL (expired entries are evicted on lookup, never served as
//! hits) and an optional byte budget over resident cohorts (wire-encoded
//! size, enforced from each shard's cold tail). [`CacheStats`] accounts
//! every eviction alongside hits and misses.

use crate::api::wire::WireCodec;
use crate::api::QueryError;
use crate::cloudwalker::CloudWalker;
use crate::queries::score_pair;
use pasco_graph::NodeId;
use pasco_mc::walks::StepDistributions;
use rayon::prelude::*;
use std::collections::hash_map::Entry;
// HashMap here is keyed-lookup-only (see the index aliases below); the
// session never iterates a hash map, so hasher order cannot reach results.
// pasco-lint: allow(nondeterministic-iteration)
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Node → slot index of one LRU shard. Keyed lookup only: recency order
/// lives in the slots' linked list, and nothing ever iterates this map,
/// so hasher nondeterminism cannot leak into eviction or results — which
/// is why a hash map is safe in a determinism-critical crate.
// pasco-lint: allow(nondeterministic-iteration)
type SlotIndex = HashMap<NodeId, usize>;

/// Node → in-flight simulation registry for single-flight misses. Keyed
/// insert/remove only, never iterated, so hasher order is unobservable.
// pasco-lint: allow(nondeterministic-iteration)
type InFlightIndex = HashMap<NodeId, Arc<InFlight>>;

const NONE: usize = usize::MAX;

/// Splits `0..len` into consecutive index ranges of at most `block`.
fn chunked_indices(
    len: usize,
    block: usize,
) -> impl Iterator<Item = std::ops::Range<usize>> + Clone {
    (0..len.div_ceil(block)).map(move |b| (b * block)..((b + 1) * block).min(len))
}

struct Slot {
    node: NodeId,
    value: Arc<StepDistributions>,
    /// Wire-encoded size of the cohort — the byte-budget unit.
    bytes: usize,
    /// When the cohort was cached; entries older than the configured TTL
    /// are evicted on lookup instead of counting as hits.
    inserted: Instant,
    prev: usize,
    next: usize,
}

/// One independently locked O(1) LRU over cohorts: a slot slab threaded
/// into a doubly linked recency list, indexed by a `HashMap`. Hits relink
/// in O(1); eviction pops the list tail in O(1). Beyond the entry-count
/// capacity, a shard optionally enforces a TTL (expired entries are
/// evicted on lookup, not served) and a byte budget (inserting past it
/// evicts from the cold tail until the shard fits).
struct LruShard {
    capacity: usize,
    ttl: Option<Duration>,
    max_bytes: Option<usize>,
    /// Wire bytes currently resident.
    bytes: usize,
    /// Entries removed before natural replacement: capacity evictions,
    /// byte-budget evictions, and TTL expiries.
    evictions: u64,
    map: SlotIndex,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl LruShard {
    fn new(capacity: usize, ttl: Option<Duration>, max_bytes: Option<usize>) -> Self {
        Self {
            capacity,
            ttl,
            max_bytes,
            bytes: 0,
            evictions: 0,
            map: SlotIndex::with_capacity(capacity.min(1024)),
            slots: Vec::new(),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
        }
    }

    fn slot(&self, slot: usize) -> &Slot {
        self.slots[slot].as_ref().expect("linked slot must be occupied")
    }

    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.slot(slot).prev, self.slot(slot).next);
        if prev == NONE {
            self.head = next;
        } else {
            self.slots[prev].as_mut().expect("linked").next = next;
        }
        if next == NONE {
            self.tail = prev;
        } else {
            self.slots[next].as_mut().expect("linked").prev = prev;
        }
    }

    fn attach_front(&mut self, slot: usize) {
        {
            let s = self.slots[slot].as_mut().expect("linked");
            s.prev = NONE;
            s.next = self.head;
        }
        if self.head != NONE {
            self.slots[self.head].as_mut().expect("linked").prev = slot;
        }
        self.head = slot;
        if self.tail == NONE {
            self.tail = slot;
        }
    }

    /// Unlinks and frees a slot, releasing its value and byte account.
    fn remove(&mut self, slot: usize) {
        self.detach(slot);
        let s = self.slots[slot].take().expect("linked slot must be occupied");
        self.map.remove(&s.node);
        self.bytes -= s.bytes;
        self.free.push(slot);
    }

    fn expired(&self, slot: usize) -> bool {
        self.ttl.is_some_and(|ttl| self.slot(slot).inserted.elapsed() >= ttl)
    }

    fn get(&mut self, node: NodeId) -> Option<Arc<StepDistributions>> {
        let slot = *self.map.get(&node)?;
        if self.expired(slot) {
            // An expired entry is not a hit: evict it and let the caller
            // take the miss path (fresh simulation, fresh timestamp).
            self.remove(slot);
            self.evictions += 1;
            return None;
        }
        self.detach(slot);
        self.attach_front(slot);
        Some(Arc::clone(&self.slot(slot).value))
    }

    fn insert(&mut self, node: NodeId, value: Arc<StepDistributions>) {
        if let Some(&slot) = self.map.get(&node) {
            // Raced with another miss on the same node; keep the resident
            // entry (identical by determinism), refresh recency and TTL.
            self.detach(slot);
            self.attach_front(slot);
            self.slots[slot].as_mut().expect("linked").inserted = Instant::now();
            return;
        }
        let bytes = value.encoded_len();
        // A cohort that alone exceeds the byte budget can never stay
        // resident: refuse it up front (counted as an eviction-on-arrival)
        // instead of letting the budget loop below flush every warm entry
        // before evicting the newcomer anyway.
        if self.max_bytes.is_some_and(|budget| bytes > budget) {
            self.evictions += 1;
            return;
        }
        let slot_value =
            Slot { node, value, bytes, inserted: Instant::now(), prev: NONE, next: NONE };
        let slot = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(slot_value);
                i
            }
            None => {
                self.slots.push(Some(slot_value));
                self.slots.len() - 1
            }
        };
        self.bytes += bytes;
        self.map.insert(node, slot);
        self.attach_front(slot);
        // Enforce the entry-count capacity and the byte budget from the
        // cold tail. The new entry fits the budget on its own (checked
        // above), so this loop only trims colder entries until it fits
        // alongside them.
        while !self.map.is_empty()
            && (self.map.len() > self.capacity
                || self.max_bytes.is_some_and(|budget| self.bytes > budget))
        {
            self.remove(self.tail);
            self.evictions += 1;
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Where one in-flight cohort simulation stands.
#[derive(Default)]
enum FlightState {
    /// The leader is still simulating.
    #[default]
    Pending,
    /// The leader published its cohort.
    Done(Arc<StepDistributions>),
    /// The leader unwound without publishing; waiters must retry.
    Abandoned,
}

/// One in-flight cohort simulation: the leader publishes the result and
/// notifies; followers block on the condvar instead of re-simulating. If
/// the leader panics, its drop guard marks the flight [`FlightState::
/// Abandoned`] and wakes the followers so a panicking engine can never
/// wedge a node's lookups.
#[derive(Default)]
struct InFlight {
    state: Mutex<FlightState>,
    ready: Condvar,
}

/// Unwind protection for a single-flight leader: unless disarmed by a
/// successful publish, dropping the guard abandons the flight (waking all
/// followers into a retry) and clears the registry entry.
struct FlightGuard<'a> {
    session: &'a QuerySession,
    node: NodeId,
    flight: &'a Arc<InFlight>,
    published: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if self.published {
            return;
        }
        // Unwinding: never double-panic on a poisoned lock here.
        *self.flight.state.lock().unwrap_or_else(|e| e.into_inner()) = FlightState::Abandoned;
        self.flight.ready.notify_all();
        self.session.inflight.lock().unwrap_or_else(|e| e.into_inner()).remove(&self.node);
    }
}

/// Cohort-cache accounting since a session started.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Cohort lookups answered without simulating: cache hits plus
    /// lookups coalesced onto a concurrent in-flight simulation.
    pub hits: u64,
    /// Cohort lookups that ran a simulation. With the single-flight
    /// guard, concurrent misses on one node cost exactly one miss.
    pub misses: u64,
    /// Entries removed before natural replacement: LRU capacity
    /// evictions, byte-budget evictions, and TTL expiries.
    pub evictions: u64,
}

impl CacheStats {
    /// Total cohort lookups (`hits + misses`).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (0.0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% hit rate, {} evictions)",
            self.hits,
            self.misses,
            100.0 * self.hit_rate(),
            self.evictions
        )
    }
}

/// How a [`QuerySession`] caches: entry-count capacity, shard count, and
/// the optional freshness/size bounds a long-running server needs.
///
/// ```
/// use pasco_simrank::SessionConfig;
/// use std::time::Duration;
///
/// let cfg = SessionConfig::new(4096)
///     .with_ttl(Duration::from_secs(300))
///     .with_max_bytes(256 << 20);
/// assert_eq!(cfg.capacity, 4096);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionConfig {
    /// Maximum number of cached cohorts (split across shards, rounded
    /// up per shard). Must be positive.
    pub capacity: usize,
    /// Explicit shard count, or `None` to derive one from `capacity`
    /// (at most [`QuerySession::DEFAULT_SHARDS`], keeping every shard at
    /// least 4 entries deep). `1` gives exact global-LRU eviction.
    pub shards: Option<usize>,
    /// Maximum age of a served cache entry. An entry older than this is
    /// evicted on lookup — it does not count as a hit — and the lookup
    /// re-simulates. `None` (the default) never expires.
    pub ttl: Option<Duration>,
    /// Byte budget over resident cohorts, measured as their wire-encoded
    /// size ([`crate::api::wire::WireCodec::encoded_len`]) and split
    /// evenly across shards. Inserting past the budget evicts from each
    /// shard's cold tail; a single cohort larger than a shard's slice of
    /// the budget is served but never cached. `None` is unbounded.
    pub max_bytes: Option<usize>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self { capacity: 1024, shards: None, ttl: None, max_bytes: None }
    }
}

impl SessionConfig {
    /// A config caching up to `capacity` cohorts, no TTL, no byte bound.
    pub fn new(capacity: usize) -> Self {
        Self { capacity, ..Self::default() }
    }

    /// Sets an explicit shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Bounds how long a cached cohort may be served.
    pub fn with_ttl(mut self, ttl: Duration) -> Self {
        self.ttl = Some(ttl);
        self
    }

    /// Bounds the total wire bytes of resident cohorts.
    pub fn with_max_bytes(mut self, max_bytes: usize) -> Self {
        self.max_bytes = Some(max_bytes);
        self
    }
}

/// A thread-safe, bounded cohort cache wrapping a shared [`CloudWalker`]
/// for read-heavy query workloads. Cheap to create (cost independent of
/// graph size) and safe to share: queries take `&self`.
pub struct QuerySession {
    walker: Arc<CloudWalker>,
    shards: Vec<Mutex<LruShard>>,
    /// Effective total capacity (`shards × per-shard`, ≥ the requested
    /// capacity after round-up).
    capacity: usize,
    /// Single-flight registry: at most one simulation per node is ever in
    /// flight; concurrent misses on the same node wait for it instead of
    /// simulating again. Only touched on the miss path, so one map (not
    /// per-shard) is enough — simulation time dwarfs the lock.
    inflight: Mutex<InFlightIndex>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl QuerySession {
    /// Default shard count for [`QuerySession::new`].
    pub const DEFAULT_SHARDS: usize = 16;

    /// Minimum per-shard capacity [`QuerySession::new`] maintains, so a
    /// small total capacity never degenerates into one-entry shards where
    /// hash-colliding hot nodes would evict each other on every query.
    const MIN_SHARD_CAPACITY: usize = 4;

    /// A session caching up to `capacity` cohorts (each ≈ `T·R'` entries)
    /// across up to [`QuerySession::DEFAULT_SHARDS`] shards (fewer when
    /// `capacity` is smaller, keeping each shard at least
    /// `MIN_SHARD_CAPACITY` (4) deep).
    pub fn new(walker: Arc<CloudWalker>, capacity: usize) -> Self {
        Self::with_config(walker, SessionConfig::new(capacity))
    }

    /// A session with an explicit shard count. `shards = 1` gives exact
    /// global-LRU eviction; more shards trade eviction exactness for lower
    /// lock contention. Total capacity is split evenly (rounded up).
    pub fn with_shards(walker: Arc<CloudWalker>, capacity: usize, shards: usize) -> Self {
        Self::with_config(walker, SessionConfig::new(capacity).with_shards(shards))
    }

    /// A session from a full [`SessionConfig`]: capacity, shard count,
    /// and the optional TTL / byte-budget eviction bounds.
    pub fn with_config(walker: Arc<CloudWalker>, cfg: SessionConfig) -> Self {
        assert!(cfg.capacity > 0, "cache capacity must be positive");
        let shards = cfg.shards.unwrap_or_else(|| {
            (cfg.capacity / Self::MIN_SHARD_CAPACITY).clamp(1, Self::DEFAULT_SHARDS)
        });
        assert!(shards > 0, "need at least one shard");
        let per_shard = cfg.capacity.div_ceil(shards);
        // Floor division: the per-shard slices must never sum past the
        // requested byte budget.
        let per_shard_bytes = cfg.max_bytes.map(|b| (b / shards).max(1));
        Self {
            walker,
            shards: (0..shards)
                .map(|_| Mutex::new(LruShard::new(per_shard, cfg.ttl, per_shard_bytes)))
                .collect(),
            capacity: per_shard * shards,
            inflight: Mutex::new(InFlightIndex::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The shared engine this session serves from.
    pub fn walker(&self) -> &Arc<CloudWalker> {
        &self.walker
    }

    /// Hit/miss/eviction accounting since the session started.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self
                .shards
                .iter()
                .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).evictions)
                .sum(),
        }
    }

    /// Number of cohorts currently resident across all shards.
    pub fn cached_cohorts(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len()).sum()
    }

    /// Wire-encoded bytes of the cohorts currently resident — the
    /// quantity [`SessionConfig::max_bytes`] bounds.
    pub fn cached_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).bytes).sum()
    }

    #[inline]
    fn shard_of(&self, v: NodeId) -> &Mutex<LruShard> {
        // Fibonacci hashing spreads consecutive node ids across shards.
        let h = (v as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        &self.shards[(h >> 32) as usize % self.shards.len()]
    }

    /// The cached cohort of `v`, fallible end to end: an engine failure
    /// (a distributed worker dying mid-query) propagates as its typed
    /// [`QueryError`] instead of panicking a serving thread.
    fn cohort(&self, v: NodeId) -> Result<Arc<StepDistributions>, QueryError> {
        loop {
            if let Some(c) = self.cohort_once(v)? {
                return Ok(c);
            }
            // The flight this lookup joined was abandoned (its leader
            // panicked or failed); retry — the next round hits the cache,
            // joins a newer flight, or becomes the leader itself (and
            // surfaces the leader's error as its own, if it persists).
        }
    }

    /// One attempt at a cached cohort lookup; `Ok(None)` when the joined
    /// in-flight simulation was abandoned by a panicking or failing
    /// leader.
    fn cohort_once(&self, v: NodeId) -> Result<Option<Arc<StepDistributions>>, QueryError> {
        let shard = self.shard_of(v);
        if let Some(c) = shard.lock().unwrap_or_else(PoisonError::into_inner).get(v) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Some(c));
        }
        // Miss: join the in-flight simulation for this node, or become it.
        // Without this guard, N concurrent misses on one node simulated
        // the cohort N times before the first insert landed.
        let (flight, leader) = {
            let mut inflight = self.inflight.lock().unwrap_or_else(PoisonError::into_inner);
            // Re-check the cache under the registry lock: a completing
            // leader inserts into the cache *before* clearing its entry, so
            // an empty registry here means the cache check below is
            // authoritative.
            if let Some(c) = shard.lock().unwrap_or_else(PoisonError::into_inner).get(v) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Some(c));
            }
            match inflight.entry(v) {
                Entry::Occupied(e) => (Arc::clone(e.get()), false),
                Entry::Vacant(e) => {
                    let f = Arc::new(InFlight::default());
                    e.insert(Arc::clone(&f));
                    (f, true)
                }
            }
        };
        if !leader {
            let mut state = flight.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                match &*state {
                    FlightState::Done(c) => {
                        // Coalesced onto the in-flight simulation: no walk
                        // work done by this lookup, so it counts as a hit.
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(Some(Arc::clone(c)));
                    }
                    FlightState::Abandoned => return Ok(None),
                    FlightState::Pending => {
                        state = flight.ready.wait(state).unwrap_or_else(PoisonError::into_inner);
                    }
                }
            }
        }
        // Leader: simulate outside every lock so concurrent misses on other
        // nodes never serialise behind the walk simulation. The simulation
        // runs on the configured engine, so cluster modes account cohort
        // work in their ClusterReport. The guard abandons the flight if
        // anything below unwinds — or if the engine fails typed (`?`):
        // followers wake into a retry either way.
        let mut guard = FlightGuard { session: self, node: v, flight: &flight, published: false };
        self.misses.fetch_add(1, Ordering::Relaxed);
        let c = Arc::new(self.walker.try_query_cohort(v)?);
        // Publish to the cache first (insert keeps a raced resident entry
        // and just refreshes recency), then release the followers and
        // clear the registry entry.
        shard.lock().unwrap_or_else(PoisonError::into_inner).insert(v, Arc::clone(&c));
        *flight.state.lock().unwrap_or_else(PoisonError::into_inner) =
            FlightState::Done(Arc::clone(&c));
        flight.ready.notify_all();
        self.inflight.lock().unwrap_or_else(PoisonError::into_inner).remove(&v);
        guard.published = true;
        Ok(Some(c))
    }

    #[inline]
    fn check_node(&self, v: NodeId) -> Result<(), QueryError> {
        crate::api::check_node(v, self.walker.node_count())
    }

    /// Both nodes already checked; `s(i, i) = 1` by definition.
    fn single_pair_unchecked(&self, i: NodeId, j: NodeId) -> Result<f64, QueryError> {
        if i == j {
            return Ok(1.0);
        }
        let di = self.cohort(i)?;
        let dj = self.cohort(j)?;
        let cfg = self.walker.config();
        Ok(score_pair(&di, &dj, self.walker.diagonal().as_slice(), cfg.c).clamp(0.0, 1.0))
    }

    /// MCSP through the cache; numerically identical to
    /// [`CloudWalker::single_pair`].
    ///
    /// # Panics
    /// Panics if `i` or `j` is not a node of the graph (including when
    /// `i == j`); use [`QuerySession::try_single_pair`] for a typed error.
    pub fn single_pair(&self, i: NodeId, j: NodeId) -> f64 {
        self.try_single_pair(i, j).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked [`QuerySession::single_pair`]: fails with
    /// [`QueryError::NodeOutOfRange`] instead of panicking.
    pub fn try_single_pair(&self, i: NodeId, j: NodeId) -> Result<f64, QueryError> {
        self.check_node(i)?;
        self.check_node(j)?;
        self.single_pair_unchecked(i, j)
    }

    /// Checked [`QuerySession::pairs_matrix`]: every node of `rows` and
    /// `cols` is validated before any cohort is simulated, and both sets
    /// must be non-empty ([`QueryError::EmptyNodeSet`]).
    pub fn try_pairs_matrix(
        &self,
        rows: &[NodeId],
        cols: &[NodeId],
    ) -> Result<Vec<Vec<f64>>, QueryError> {
        if rows.is_empty() || cols.is_empty() {
            return Err(QueryError::EmptyNodeSet);
        }
        rows.iter().chain(cols).try_for_each(|&v| self.check_node(v))?;
        self.pairs_matrix_impl(rows, cols)
    }

    /// The (cached) query cohort of `v` — checked access to the building
    /// block both MCSP and MCSS start from.
    pub fn try_cohort(&self, v: NodeId) -> Result<Arc<StepDistributions>, QueryError> {
        self.check_node(v)?;
        self.cohort(v)
    }

    /// Scores every pair from `rows × cols` in parallel. Each distinct
    /// cohort is warmed through the cache at most once per block (when
    /// everything fits one block and no shard overflows from hash skew,
    /// that is exactly once); larger requests are processed in cache-sized
    /// blocks so pinned cohorts never exceed the session's configured
    /// capacity. Entry `[r][c]` is `s(rows[r], cols[c])`.
    ///
    /// # Panics
    /// Panics on an out-of-range node or an engine failure (a
    /// distributed worker dying mid-warm-up); use
    /// [`QuerySession::try_pairs_matrix`] for typed errors.
    pub fn pairs_matrix(&self, rows: &[NodeId], cols: &[NodeId]) -> Vec<Vec<f64>> {
        self.pairs_matrix_impl(rows, cols).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible core of [`QuerySession::pairs_matrix`] — an engine
    /// failure during any cohort warm-up aborts the matrix with its
    /// typed error.
    fn pairs_matrix_impl(
        &self,
        rows: &[NodeId],
        cols: &[NodeId],
    ) -> Result<Vec<Vec<f64>>, QueryError> {
        let capacity = self.capacity;
        let mut out = vec![vec![0.0f64; cols.len()]; rows.len()];
        // Block the matrix so at most ~capacity cohorts are pinned at once.
        let block = (capacity / 2).max(1);
        for row_block in chunked_indices(rows.len(), block) {
            for col_block in chunked_indices(cols.len(), block) {
                // Warm each distinct cohort of this block once, in
                // parallel, then score from the pinned Arcs so eviction
                // during the scoring pass cannot force a re-simulation.
                let distinct: Vec<NodeId> = row_block
                    .clone()
                    .map(|r| rows[r])
                    .chain(col_block.clone().map(|c| cols[c]))
                    .collect::<BTreeSet<_>>()
                    .into_iter()
                    .collect();
                // Keyed lookup only during the scoring pass below; the
                // map is never iterated, so hasher order cannot reach
                // the scores.
                // pasco-lint: allow(nondeterministic-iteration)
                let cohorts: HashMap<NodeId, Arc<StepDistributions>> = distinct
                    .par_iter()
                    .map(|&v| self.cohort(v).map(|c| (v, c)))
                    .collect::<Vec<_>>()
                    .into_iter()
                    .collect::<Result<Vec<_>, _>>()?
                    .into_iter()
                    .collect();
                let diag = self.walker.diagonal().as_slice();
                let c = self.walker.config().c;
                let scored: Vec<Vec<f64>> = row_block
                    .clone()
                    .collect::<Vec<_>>()
                    .par_iter()
                    .map(|&r| {
                        let i = rows[r];
                        col_block
                            .clone()
                            .map(|cc| {
                                let j = cols[cc];
                                if i == j {
                                    1.0
                                } else {
                                    score_pair(&cohorts[&i], &cohorts[&j], diag, c).clamp(0.0, 1.0)
                                }
                            })
                            .collect()
                    })
                    .collect();
                for (r, row_scores) in row_block.clone().zip(scored) {
                    for (cc, s) in col_block.clone().zip(row_scores) {
                        out[r][cc] = s;
                    }
                }
            }
        }
        Ok(out)
    }

    /// MCSS through the engine (cohort caching does not apply to the
    /// forward stage; listed here for one-stop serving workloads).
    pub fn single_source(&self, i: NodeId) -> Vec<f64> {
        self.walker.single_source(i)
    }

    /// MCSS for every source in `sources`, in parallel on the engine.
    pub fn single_source_batch(&self, sources: &[NodeId]) -> Vec<Vec<f64>> {
        sources.par_iter().map(|&i| self.walker.single_source(i)).collect()
    }

    /// Top-`k` MCSS for every source in `sources`, in parallel on the
    /// engine.
    pub fn single_source_topk_batch(
        &self,
        sources: &[NodeId],
        k: usize,
    ) -> Vec<Vec<(NodeId, f64)>> {
        sources.par_iter().map(|&i| self.walker.single_source_topk(i, k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExecMode;
    use crate::SimRankConfig;
    use pasco_graph::generators;

    fn engine() -> Arc<CloudWalker> {
        let g = Arc::new(generators::barabasi_albert(120, 3, 5));
        Arc::new(CloudWalker::build(g, SimRankConfig::fast(), ExecMode::Local).unwrap())
    }

    #[test]
    fn cached_answers_match_engine_answers() {
        let cw = engine();
        let session = QuerySession::new(Arc::clone(&cw), 16);
        for &(i, j) in &[(1u32, 2u32), (5, 80), (2, 1), (80, 5), (7, 7)] {
            assert_eq!(session.single_pair(i, j), cw.single_pair(i, j), "({i},{j})");
        }
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let session = QuerySession::new(engine(), 16);
        session.single_pair(1, 2); // 2 misses
        session.single_pair(1, 3); // 1 hit (1), 1 miss (3)
        session.single_pair(2, 3); // 2 hits
        let stats = session.cache_stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.lookups(), 6);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert!(stats.to_string().contains("50.0% hit rate"), "{stats}");
    }

    #[test]
    fn eviction_respects_lru_order() {
        // One shard = exact global LRU, the easiest shape to reason about.
        let session = QuerySession::with_shards(engine(), 2, 1);
        session.single_pair(1, 2); // cache {1, 2}
        session.single_pair(1, 3); // touch 1, insert 3 -> evict 2
        let misses_before = session.cache_stats().misses;
        session.single_pair(1, 3); // both cached
        let misses_mid = session.cache_stats().misses;
        assert_eq!(misses_before, misses_mid, "no new misses for cached pair");
        // 2 was evicted: miss on 2, whose insertion evicts 1, so 1 misses
        // too — a capacity-2 cache thrashes on a 3-node working set.
        session.single_pair(2, 1);
        let misses_after = session.cache_stats().misses;
        assert_eq!(misses_after, misses_mid + 2);
    }

    #[test]
    fn small_capacity_hot_set_stays_resident() {
        // Regression: capacity <= DEFAULT_SHARDS used to degenerate into
        // one-entry shards, so hash-colliding hot nodes evicted each other
        // on every query. A hot set within capacity must reach 100% hits.
        let session = QuerySession::new(engine(), 8);
        for _ in 0..3 {
            session.single_pair(1, 2);
            session.single_pair(3, 4);
        }
        let stats = session.cache_stats();
        assert_eq!(stats.misses, 4, "each hot node simulated once");
        assert_eq!(stats.hits, 8);
    }

    #[test]
    fn pairs_matrix_larger_than_cache_is_correct_and_bounded() {
        let cw = engine();
        let session = QuerySession::new(Arc::clone(&cw), 8);
        let nodes: Vec<u32> = (0..30).collect();
        let m = session.pairs_matrix(&nodes, &nodes);
        // Pinned cohorts are blocked by cache size, never beyond capacity.
        assert!(session.cached_cohorts() <= 8);
        for (r, &i) in nodes.iter().enumerate() {
            for (c, &j) in nodes.iter().enumerate() {
                assert_eq!(m[r][c], cw.single_pair(i, j), "({i},{j})");
            }
        }
    }

    #[test]
    fn sharded_cache_stays_within_capacity() {
        let session = QuerySession::new(engine(), 32);
        for i in 0..120u32 {
            session.single_pair(i, (i + 1) % 120);
        }
        assert!(session.cached_cohorts() <= 32 + QuerySession::DEFAULT_SHARDS);
        assert_eq!(session.cache_stats().lookups(), 240);
    }

    #[test]
    fn pairs_matrix_matches_pointwise_queries() {
        let cw = engine();
        let session = QuerySession::new(Arc::clone(&cw), 32);
        let rows = [1u32, 5, 9];
        let cols = [2u32, 5];
        let m = session.pairs_matrix(&rows, &cols);
        for (r, &i) in rows.iter().enumerate() {
            for (c, &j) in cols.iter().enumerate() {
                assert_eq!(m[r][c], cw.single_pair(i, j));
            }
        }
        // 4 distinct nodes simulated once each.
        assert_eq!(session.cache_stats().misses, 4);
    }

    #[test]
    fn batch_entry_points_match_engine() {
        let cw = engine();
        let session = QuerySession::new(Arc::clone(&cw), 8);
        let sources = [3u32, 50, 99];
        let batch = session.single_source_batch(&sources);
        let topk = session.single_source_topk_batch(&sources, 5);
        for (idx, &s) in sources.iter().enumerate() {
            assert_eq!(batch[idx], cw.single_source(s), "source {s}");
            assert_eq!(topk[idx], cw.single_source_topk(s, 5), "topk {s}");
        }
    }

    #[test]
    fn concurrent_misses_on_one_node_simulate_once() {
        // Regression: without the single-flight guard, N concurrent misses
        // on the same node simulated the cohort N times before the first
        // insert landed.
        let cw = engine();
        let session = QuerySession::new(Arc::clone(&cw), 16);
        let clients = 8;
        let barrier = std::sync::Barrier::new(clients);
        let cohorts: Vec<Arc<_>> = std::thread::scope(|scope| {
            (0..clients)
                .map(|_| {
                    let session = &session;
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        session.try_cohort(7).unwrap()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let stats = session.cache_stats();
        assert_eq!(stats.misses, 1, "one simulation for {clients} concurrent misses");
        assert_eq!(stats.lookups(), clients as u64);
        for c in &cohorts {
            assert_eq!(**c, cw.query_cohort(7), "coalesced answers match the engine");
        }
    }

    #[test]
    fn single_flight_does_not_leak_registry_entries() {
        let session = QuerySession::new(engine(), 8);
        for v in 0..20u32 {
            session.try_cohort(v).unwrap();
        }
        assert_eq!(session.inflight.lock().unwrap().len(), 0, "registry drains after each flight");
    }

    #[test]
    fn failing_leader_does_not_wedge_the_node() {
        // Regression: a leader whose simulation fails — typed engine
        // error (a dead distributed worker) or unwind — must abandon its
        // flight through the same guard (waking followers into a retry)
        // and clear its registry entry, not leave the node permanently
        // in flight. The private `cohort` path bypasses the serving
        // bounds check, so an out-of-range node makes the engine fail
        // exactly where a dead worker would.
        let session = QuerySession::new(engine(), 8);
        let err = session.cohort(10_000).unwrap_err();
        assert!(matches!(err, QueryError::NodeOutOfRange { .. }), "{err}");
        assert_eq!(session.inflight.lock().unwrap().len(), 0, "no stale flight entry");
        // The session still serves: a fresh lookup becomes a fresh leader.
        session.try_cohort(5).unwrap();
        assert_eq!(session.cache_stats().misses, 2, "failed flight counted, then a clean one");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn equal_out_of_range_pair_panics_not_one() {
        // Regression: the i == j shortcut must not skip the bounds check.
        let session = QuerySession::new(engine(), 8);
        session.single_pair(500, 500);
    }

    #[test]
    fn checked_session_queries_surface_typed_errors() {
        let session = QuerySession::new(engine(), 8);
        let oob = QueryError::NodeOutOfRange { node: 500, node_count: 120 };
        assert_eq!(session.try_single_pair(1, 500).unwrap_err(), oob);
        assert_eq!(session.try_single_pair(500, 500).unwrap_err(), oob);
        assert_eq!(session.try_cohort(500).unwrap_err(), oob);
        assert_eq!(session.try_pairs_matrix(&[1, 500], &[2]).unwrap_err(), oob);
        assert_eq!(session.try_pairs_matrix(&[], &[2]).unwrap_err(), QueryError::EmptyNodeSet);
        // Validation happens before simulation: no cohort was cached.
        assert_eq!(session.cached_cohorts(), 0);
        assert_eq!(session.try_single_pair(1, 2).unwrap(), session.single_pair(1, 2));
    }

    #[test]
    fn session_cohorts_route_through_the_engine() {
        use pasco_cluster::ClusterConfig;
        let g = Arc::new(generators::barabasi_albert(80, 3, 4));
        let cw = Arc::new(
            CloudWalker::build(
                g,
                SimRankConfig::fast(),
                ExecMode::Broadcast(ClusterConfig::local(2)),
            )
            .unwrap(),
        );
        let before = cw.cluster_report().unwrap().stages;
        let session = QuerySession::new(Arc::clone(&cw), 8);
        let s = session.single_pair(1, 2);
        let after = cw.cluster_report().unwrap().stages;
        assert!(after > before, "cohort simulation must be accounted: {before} -> {after}");
        assert_eq!(s, cw.single_pair(1, 2), "cached answer still matches the engine");
    }

    #[test]
    fn session_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QuerySession>();
    }

    #[test]
    fn zero_ttl_expires_everything_and_counts_evictions() {
        // ttl = 0: every resident entry is already expired at lookup, so
        // nothing is ever served from the cache — and none of those
        // lookups may count as hits.
        let cw = engine();
        let session = QuerySession::with_config(
            Arc::clone(&cw),
            SessionConfig::new(16).with_ttl(Duration::ZERO),
        );
        for _ in 0..3 {
            assert_eq!(session.single_pair(1, 2), cw.single_pair(1, 2));
        }
        let stats = session.cache_stats();
        assert_eq!(stats.hits, 0, "expired entries must not count as hits");
        assert_eq!(stats.misses, 6);
        assert!(stats.evictions >= 4, "expiries are evictions: {stats:?}");
    }

    #[test]
    fn long_ttl_is_transparent() {
        let session = QuerySession::with_config(
            engine(),
            SessionConfig::new(16).with_ttl(Duration::from_secs(3600)),
        );
        session.single_pair(1, 2);
        session.single_pair(1, 2);
        let stats = session.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (2, 2, 0));
    }

    #[test]
    fn expired_entries_resimulate_with_a_fresh_timestamp() {
        let ttl = Duration::from_millis(40);
        let session = QuerySession::with_config(engine(), SessionConfig::new(16).with_ttl(ttl));
        session.try_cohort(3).unwrap();
        std::thread::sleep(ttl * 4);
        session.try_cohort(3).unwrap(); // expired: evict + re-simulate
        session.try_cohort(3).unwrap(); // fresh again: a real hit
        let stats = session.cache_stats();
        assert_eq!(stats.misses, 2, "{stats:?}");
        assert_eq!(stats.hits, 1, "{stats:?}");
        assert_eq!(stats.evictions, 1, "{stats:?}");
    }

    #[test]
    fn byte_budget_bounds_residency() {
        let cw = engine();
        // Learn one cohort's wire size, then budget for about three of
        // them on a single shard (exact global LRU).
        let probe = QuerySession::new(Arc::clone(&cw), 4);
        let cohort_bytes = WireCodec::encoded_len(&*probe.try_cohort(0).unwrap());
        let budget = cohort_bytes * 3 + cohort_bytes / 2;
        let session = QuerySession::with_config(
            Arc::clone(&cw),
            SessionConfig::new(64).with_shards(1).with_max_bytes(budget),
        );
        for v in 0..20u32 {
            assert_eq!(*session.try_cohort(v).unwrap(), cw.query_cohort(v), "node {v}");
        }
        assert!(session.cached_bytes() <= budget, "{} > {budget}", session.cached_bytes());
        assert!(session.cached_cohorts() < 20, "budget must have evicted");
        assert!(session.cache_stats().evictions > 0);
    }

    #[test]
    fn oversize_insert_does_not_flush_warm_entries() {
        // Regression: a cohort that alone exceeds the byte budget must be
        // refused on arrival, not admitted and then evicted last — the
        // latter flushed every warm entry through the cold-tail loop.
        let mk = |source: u32, pairs: usize| {
            Arc::new(StepDistributions {
                source,
                walkers: 10,
                counts: vec![(0..pairs).map(|p| (p as u32, 1u64)).collect()],
            })
        };
        let small_bytes = WireCodec::encoded_len(&*mk(0, 4));
        let mut shard = LruShard::new(16, None, Some(small_bytes * 3));
        for v in 0..3u32 {
            shard.insert(v, mk(v, 4));
        }
        assert_eq!((shard.len(), shard.evictions), (3, 0));
        shard.insert(99, mk(99, 400)); // alone larger than the whole budget
        assert_eq!(shard.len(), 3, "warm entries must survive an oversize insert");
        assert_eq!(shard.evictions, 1, "the refusal itself is the only eviction");
        for v in 0..3u32 {
            assert!(shard.get(v).is_some(), "node {v} still resident");
        }
    }

    #[test]
    fn oversize_cohorts_are_served_but_never_cached() {
        let cw = engine();
        let session = QuerySession::with_config(
            Arc::clone(&cw),
            SessionConfig::new(16).with_shards(1).with_max_bytes(1),
        );
        assert_eq!(session.single_pair(1, 2), cw.single_pair(1, 2));
        assert_eq!(session.cached_cohorts(), 0, "1-byte budget caches nothing");
        assert_eq!(session.cached_bytes(), 0);
        assert!(session.cache_stats().evictions >= 2, "self-evictions count");
    }
}
