//! Query sessions: cohort caching and batch APIs on top of the local
//! engine.
//!
//! Both MCSP and MCSS start by simulating the `R'`-walker cohort of the
//! query node — and the cohort depends only on `(seed, node)`. A workload
//! that touches the same nodes repeatedly (pairwise matrices, top-k fan-out,
//! A/B probes) re-simulates identical walks over and over. [`QuerySession`]
//! memoises cohorts in a bounded LRU so repeated queries pay only the
//! scoring merge, and exposes batch entry points that exploit sharing
//! explicitly (`pairs_matrix` simulates each distinct node once).

use crate::cloudwalker::CloudWalker;
use crate::queries::{query_cohort, score_pair};
use pasco_graph::NodeId;
use pasco_mc::walks::StepDistributions;
use std::collections::VecDeque;
use std::sync::Arc;

/// A bounded cohort cache wrapping a [`CloudWalker`] for read-heavy query
/// workloads. Results are identical to the underlying engine's — caching
/// only removes re-simulation.
pub struct QuerySession<'a> {
    engine: &'a CloudWalker,
    capacity: usize,
    /// LRU: most recently used at the back.
    order: VecDeque<NodeId>,
    cohorts: Vec<Option<Arc<StepDistributions>>>,
    hits: u64,
    misses: u64,
}

impl<'a> QuerySession<'a> {
    /// A session caching up to `capacity` cohorts (each ≈ `T·R'` entries).
    pub fn new(engine: &'a CloudWalker, capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        let n = engine.graph().node_count() as usize;
        Self {
            engine,
            capacity,
            order: VecDeque::with_capacity(capacity + 1),
            cohorts: vec![None; n],
            hits: 0,
            misses: 0,
        }
    }

    /// `(hits, misses)` since the session started.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn cohort(&mut self, v: NodeId) -> Arc<StepDistributions> {
        if let Some(c) = &self.cohorts[v as usize] {
            self.hits += 1;
            // Refresh LRU position.
            if let Some(pos) = self.order.iter().position(|&x| x == v) {
                self.order.remove(pos);
            }
            self.order.push_back(v);
            return Arc::clone(c);
        }
        self.misses += 1;
        let c = Arc::new(query_cohort(self.engine.graph(), self.engine.config(), v));
        self.cohorts[v as usize] = Some(Arc::clone(&c));
        self.order.push_back(v);
        if self.order.len() > self.capacity {
            if let Some(evict) = self.order.pop_front() {
                self.cohorts[evict as usize] = None;
            }
        }
        c
    }

    /// MCSP through the cache; numerically identical to
    /// [`CloudWalker::single_pair`].
    pub fn single_pair(&mut self, i: NodeId, j: NodeId) -> f64 {
        if i == j {
            return 1.0;
        }
        let di = self.cohort(i);
        let dj = self.cohort(j);
        let cfg = self.engine.config();
        score_pair(&di, &dj, self.engine.diagonal().as_slice(), cfg.c).clamp(0.0, 1.0)
    }

    /// Scores every pair from `rows × cols`, simulating each distinct node
    /// exactly once. Entry `[r][c]` is `s(rows[r], cols[c])`.
    pub fn pairs_matrix(&mut self, rows: &[NodeId], cols: &[NodeId]) -> Vec<Vec<f64>> {
        rows.iter()
            .map(|&i| cols.iter().map(|&j| self.single_pair(i, j)).collect())
            .collect()
    }

    /// MCSS through the engine (cohort caching does not apply to the
    /// forward stage; listed here for one-stop batch workloads).
    pub fn single_source(&mut self, i: NodeId) -> Vec<f64> {
        self.engine.single_source(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExecMode;
    use crate::SimRankConfig;
    use pasco_graph::generators;

    fn engine() -> CloudWalker {
        let g = Arc::new(generators::barabasi_albert(120, 3, 5));
        CloudWalker::build(g, SimRankConfig::fast(), ExecMode::Local).unwrap()
    }

    #[test]
    fn cached_answers_match_engine_answers() {
        let cw = engine();
        let mut session = QuerySession::new(&cw, 16);
        for &(i, j) in &[(1u32, 2u32), (5, 80), (2, 1), (80, 5), (7, 7)] {
            assert_eq!(session.single_pair(i, j), cw.single_pair(i, j), "({i},{j})");
        }
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let cw = engine();
        let mut session = QuerySession::new(&cw, 16);
        session.single_pair(1, 2); // 2 misses
        session.single_pair(1, 3); // 1 hit (1), 1 miss (3)
        session.single_pair(2, 3); // 2 hits
        let (hits, misses) = session.cache_stats();
        assert_eq!(misses, 3);
        assert_eq!(hits, 3);
    }

    #[test]
    fn eviction_respects_lru_order() {
        let cw = engine();
        let mut session = QuerySession::new(&cw, 2);
        session.single_pair(1, 2); // cache {1, 2}
        session.single_pair(1, 3); // touch 1, insert 3 -> evict 2
        let (_, misses_before) = session.cache_stats();
        session.single_pair(1, 3); // both cached
        let (_, misses_mid) = session.cache_stats();
        assert_eq!(misses_before, misses_mid, "no new misses for cached pair");
        // 2 was evicted: miss on 2, whose insertion evicts 1, so 1 misses
        // too — a capacity-2 cache thrashes on a 3-node working set.
        session.single_pair(2, 1);
        let (_, misses_after) = session.cache_stats();
        assert_eq!(misses_after, misses_mid + 2);
    }

    #[test]
    fn pairs_matrix_matches_pointwise_queries() {
        let cw = engine();
        let mut session = QuerySession::new(&cw, 32);
        let rows = [1u32, 5, 9];
        let cols = [2u32, 5];
        let m = session.pairs_matrix(&rows, &cols);
        for (r, &i) in rows.iter().enumerate() {
            for (c, &j) in cols.iter().enumerate() {
                assert_eq!(m[r][c], cw.single_pair(i, j));
            }
        }
        // 4 distinct nodes simulated once each.
        let (_, misses) = session.cache_stats();
        assert_eq!(misses, 4);
    }
}
