#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! **CloudWalker** — the paper's contribution: SimRank at scale via a
//! Monte-Carlo-estimated diagonal correction and constant-time MC queries.
//!
//! # The algorithm
//!
//! SimRank linearises as `S = Σ_{t≥0} cᵗ (Pᵗ)ᵀ D Pᵗ` for a diagonal
//! correction matrix `D = diag(x)` (`P` is the column-stochastic in-link
//! transition matrix). CloudWalker:
//!
//! 1. **Offline** ([`CloudWalker::build`]): estimates row
//!    `aᵢ = Σ_{t=0..T} cᵗ (Pᵗeᵢ)∘(Pᵗeᵢ)` for every node by placing `R`
//!    walkers on `i` and walking `T` steps along in-links, then solves
//!    `A x = 1` (from `s(i,i) = 1`) with `L` parallel Jacobi iterations.
//! 2. **Online**: single-pair queries ([`CloudWalker::single_pair`],
//!    *MCSP*), single-source queries ([`CloudWalker::single_source`],
//!    *MCSS*) and all-pair queries ([`CloudWalker::all_pairs_topk`],
//!    *MCAP*) are answered from `R'` fresh walks plus the stored diagonal —
//!    time independent of the graph size.
//!
//! # Execution modes
//!
//! [`ExecMode`] selects where the work runs: [`ExecMode::Local`] on a rayon
//! pool, [`ExecMode::Sharded`] on in-process graph shards, the simulated
//! Spark cluster in the paper's two models — [`ExecMode::Broadcast`] (graph
//! replicated per worker; fails when it does not fit the per-worker budget)
//! and [`ExecMode::Rdd`] (graph partitioned; walker state shuffled every
//! step) — or [`ExecMode::Distributed`], real `pasco_worker` processes over
//! TCP with the build and every query routed to the worker owning its
//! source. Each substrate implements the object-safe [`SimRankEngine`]
//! trait and [`CloudWalker`] dispatches every query through
//! `Box<dyn SimRankEngine>`. All five produce **bitwise identical
//! results** for the same seed, because every walk step's randomness is a
//! pure function of `(seed, source, walker, step)`.
//!
//! # Serving
//!
//! [`QuerySession`] wraps an `Arc<CloudWalker>` into a `Send + Sync`
//! serving layer: queries take `&self`, cohorts are memoised in a sharded
//! O(1) LRU, and batch entry points fan out over rayon — one index serves
//! many concurrent clients with answers identical to the engine's.
//!
//! The [`api`] module is the typed front door over both layers: a
//! [`QueryRequest`]/[`QueryResponse`] protocol with a binary wire codec
//! ([`api::wire`]), typed [`QueryError`]s instead of panics, and the
//! object-safe [`QueryService`] trait implemented by [`QuerySession`] and
//! [`CloudWalker`].
//!
//! The [`exact`] module provides the `O(n²)` ground truth used by the
//! effectiveness experiments, and [`metrics`] the error/ranking measures.

pub mod ai;
pub mod api;
pub mod cloudwalker;
pub mod config;
pub mod diag;
pub mod engine;
pub mod error;
pub mod exact;
pub mod metrics;
pub mod persist;
pub mod queries;
pub mod session;

pub use api::envelope::{Envelope, FrameError, FrameKind, ServerInfo};
pub use api::{QueryError, QueryRequest, QueryResponse, QueryService};
pub use cloudwalker::{CloudWalker, IndexBuildStats};
pub use config::{AiStrategy, SimRankConfig};
pub use diag::DiagonalIndex;
pub use engine::{
    BuildOutcome, DistributedEngine, EngineFootprint, ExecMode, LocalEngine, ShardedEngine,
    SimRankEngine,
};
pub use error::SimRankError;
pub use session::{CacheStats, QuerySession, SessionConfig};
