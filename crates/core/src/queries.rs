//! Online query kernels: MCSP, MCSS (two estimators) and MCAP.
//!
//! All queries evaluate the truncated series
//! `s(i,j) = Σ_{t=0..T} cᵗ (Pᵗeᵢ)ᵀ D (Pᵗeⱼ)` from fresh `R'`-walker
//! cohorts plus the stored diagonal `D`:
//!
//! * **MCSP** intersects the two cohorts' per-step histograms —
//!   `O(T·R')` after simulation.
//! * **MCSS** propagates `D ûₜ` forward `t` steps with mass-carrying walks
//!   (`O(T²·R'·log d)`, the paper's bound) or, as the deterministic
//!   ablation variant, with exact sparse pushes.
//! * **MCAP** runs MCSS from every node — `O(n·T²·R'·log d)`.
//!
//! Query randomness derives from a *different* stream than indexing (salted
//! master seed) so query estimates do not correlate with the index's own
//! sampling error.

use crate::config::SimRankConfig;
use pasco_graph::{CsrGraph, ForwardSampler, GraphSampler, NodeId, ReverseChainIndex};
use pasco_mc::counts::MassMap;
use pasco_mc::forward::{forward_walk, forward_walk_on, push_measure};
use pasco_mc::rng::mix;
use pasco_mc::walks::{reverse_walk_distributions, StepDistributions, WalkParams};

/// Salt distinguishing query walks from index walks.
pub const QUERY_SALT: u64 = 0x0009_a5c0_9e71;
/// Salt for MCSS forward-propagation walks.
pub const FORWARD_SALT: u64 = 0x0009_a5c0_f0c4;

/// The seed for all query cohorts under `cfg`.
#[inline]
pub fn query_seed(cfg: &SimRankConfig) -> u64 {
    mix(&[cfg.seed, QUERY_SALT])
}

/// The seed for the forward-walk stage of an MCSS query from `source` at
/// series term `t`.
#[inline]
pub fn forward_seed(cfg: &SimRankConfig, source: NodeId, t: usize) -> u64 {
    mix(&[cfg.seed, FORWARD_SALT, source as u64, t as u64])
}

/// Simulates the query cohort (`R'` walkers, `T` steps) for `source`.
pub fn query_cohort(graph: &CsrGraph, cfg: &SimRankConfig, source: NodeId) -> StepDistributions {
    reverse_walk_distributions(graph, source, WalkParams::new(cfg.t, cfg.r_query), query_seed(cfg))
}

/// Scores a pair from two cohorts' distributions:
/// `Σ_t cᵗ Σ_k x_k ûₜ(k) v̂ₜ(k)` (merge over the sorted histograms).
pub fn score_pair(di: &StepDistributions, dj: &StepDistributions, diag: &[f64], c: f64) -> f64 {
    debug_assert_eq!(di.steps(), dj.steps());
    let ri = di.walkers as f64;
    let rj = dj.walkers as f64;
    let mut score = 0.0;
    let mut ct = 1.0;
    for (u, v) in di.counts.iter().zip(&dj.counts) {
        let mut term = 0.0;
        let (mut a, mut b) = (u.iter().peekable(), v.iter().peekable());
        while let (Some(&&(ka, ca)), Some(&&(kb, cb))) = (a.peek(), b.peek()) {
            match ka.cmp(&kb) {
                std::cmp::Ordering::Less => {
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    b.next();
                }
                std::cmp::Ordering::Equal => {
                    term += diag[ka as usize] * (ca as f64 / ri) * (cb as f64 / rj);
                    a.next();
                    b.next();
                }
            }
        }
        score += ct * term;
        ct *= c;
    }
    score
}

/// MCSP: the single-pair query. `s(i, i)` is 1 by definition.
pub fn single_pair(
    graph: &CsrGraph,
    diag: &[f64],
    cfg: &SimRankConfig,
    i: NodeId,
    j: NodeId,
) -> f64 {
    if i == j {
        return 1.0;
    }
    let di = query_cohort(graph, cfg, i);
    let dj = query_cohort(graph, cfg, j);
    score_pair(&di, &dj, diag, cfg.c)
}

/// The weighted support `yₜ = D ûₜ` of a cohort's step-`t` histogram.
pub fn weighted_support(dists: &StepDistributions, t: usize, diag: &[f64]) -> Vec<(NodeId, f64)> {
    let r = dists.walkers as f64;
    dists.counts[t].iter().map(|&(k, cnt)| (k, diag[k as usize] * cnt as f64 / r)).collect()
}

/// Mass-proportional walker allocation for the forward stage: entry `k`
/// with mass `y_k` receives `max(1, round(total · y_k / Σy))` walkers, so
/// the per-term budget is ≈ `total` (the paper's `R'` in its `O(T²R′ log d)`
/// bound) and concentrated where the mass is — a fixed per-entry count
/// under-samples hub-heavy supports and wrecks ranking quality.
///
/// Deterministic: identical inputs yield identical allocations on every
/// engine, preserving cross-mode trajectory equality.
pub fn forward_allocation(y: &[(NodeId, f64)], total: u32) -> Vec<(NodeId, f64, u32)> {
    let sum: f64 = y.iter().map(|&(_, v)| v).sum();
    if sum <= 0.0 {
        return Vec::new();
    }
    y.iter()
        .filter(|&&(_, v)| v > 0.0)
        .map(|&(k, v)| {
            let n = ((total as f64 * v / sum).round() as u32).max(1);
            (k, v, n)
        })
        .collect()
}

/// MCSS from precomputed cohort distributions (shared by the execution
/// modes): `s_i = Σ_t cᵗ (Pᵀ)ᵗ (D ûₜ)`, the transpose powers estimated by
/// mass-carrying forward walks keyed by [`forward_seed`].
pub fn single_source_from_dists(
    graph: &CsrGraph,
    rci: &ReverseChainIndex,
    dists: &StepDistributions,
    diag: &[f64],
    cfg: &SimRankConfig,
) -> Vec<f64> {
    single_source_from_dists_on(
        graph.node_count() as usize,
        &GraphSampler::new(graph, rci),
        dists,
        diag,
        cfg,
    )
}

/// [`single_source_from_dists`] generic over the forward-sampling source —
/// the one dense-MCSS kernel behind the resident-graph engines and the
/// sharded engine's routed view, so their bit-equality is structural.
pub fn single_source_from_dists_on<S: ForwardSampler>(
    n: usize,
    sampler: &S,
    dists: &StepDistributions,
    diag: &[f64],
    cfg: &SimRankConfig,
) -> Vec<f64> {
    let mut out = vec![0.0f64; n];
    let mut ct = 1.0;
    for t in 0..=cfg.t {
        let y = weighted_support(dists, t, diag);
        if t == 0 {
            for &(k, m) in &y {
                out[k as usize] += ct * m;
            }
        } else {
            let seed = forward_seed(cfg, dists.source, t);
            for (k, yk, nk) in forward_allocation(&y, cfg.r_forward) {
                let per = yk / nk as f64;
                for w in 0..nk {
                    let key = mix(&[seed, k as u64, w as u64, t as u64]);
                    if let Some((node, mass)) = forward_walk_on(sampler, k, per, t, key) {
                        out[node as usize] += ct * mass;
                    }
                }
            }
        }
        ct *= cfg.c;
    }
    out[dists.source as usize] = 1.0;
    out
}

/// MCSS: the single-source query (Monte-Carlo forward propagation).
pub fn single_source(
    graph: &CsrGraph,
    rci: &ReverseChainIndex,
    diag: &[f64],
    cfg: &SimRankConfig,
    i: NodeId,
) -> Vec<f64> {
    let dists = query_cohort(graph, cfg, i);
    single_source_from_dists(graph, rci, &dists, diag, cfg)
}

/// Ablation variant of MCSS: the `(Pᵀ)ᵗ` powers are applied by exact sparse
/// pushes instead of walks. Exact *given the cohort*; cost grows with the
/// push frontier (sum of out-degrees), which experiment A1 measures.
pub fn single_source_push(
    graph: &CsrGraph,
    diag: &[f64],
    cfg: &SimRankConfig,
    i: NodeId,
) -> Vec<f64> {
    let dists = query_cohort(graph, cfg, i);
    let n = graph.node_count() as usize;
    let mut out = vec![0.0f64; n];
    let mut ct = 1.0;
    for t in 0..=cfg.t {
        let mut z = weighted_support(&dists, t, diag);
        for _ in 0..t {
            z = push_measure(graph, &z);
        }
        for &(k, m) in &z {
            out[k as usize] += ct * m;
        }
        ct *= cfg.c;
    }
    out[i as usize] = 1.0;
    out
}

/// One mass-carrying forward walk used by MCSS (re-exported kernel for the
/// cluster engines, which must replay identical trajectories).
pub fn forward_walk_kernel(
    graph: &CsrGraph,
    rci: &ReverseChainIndex,
    start: NodeId,
    mass: f64,
    steps: usize,
    key: u64,
) -> Option<(NodeId, f64)> {
    forward_walk(graph, rci, start, mass, steps, key)
}

/// Sparse MCSS: like [`single_source`] but accumulating only the nodes any
/// walker actually reaches (`O(T²·R′)` entries) instead of a dense length-n
/// vector — the right shape for top-`k` retrieval on very large graphs.
/// Returns the top `k` scoring nodes (query node excluded), sorted by
/// descending score with node-id tie-breaks.
pub fn single_source_topk(
    graph: &CsrGraph,
    rci: &ReverseChainIndex,
    diag: &[f64],
    cfg: &SimRankConfig,
    i: NodeId,
    k: usize,
) -> Vec<(NodeId, f64)> {
    let dists = query_cohort(graph, cfg, i);
    let acc = sparse_masses_on(&GraphSampler::new(graph, rci), &dists, diag, cfg);
    rank_topk(acc.iter(), i, k)
}

/// The sparse accumulation stage shared by every top-`k` path: the
/// reached-node masses of the MCSS series for one cohort, as a
/// [`MassMap`] over the (at most `O(T²·R')`) nodes any walker lands on.
/// Generic over the forward-sampling source so the local and sharded
/// engines accumulate through the identical kernel.
pub fn sparse_masses_on<S: ForwardSampler>(
    sampler: &S,
    dists: &StepDistributions,
    diag: &[f64],
    cfg: &SimRankConfig,
) -> MassMap {
    let mut acc = MassMap::with_capacity(cfg.r_forward as usize);
    let mut ct = 1.0;
    for t in 0..=cfg.t {
        let y = weighted_support(dists, t, diag);
        if t == 0 {
            for &(kk, m) in &y {
                acc.add(kk, ct * m);
            }
        } else {
            let seed = forward_seed(cfg, dists.source, t);
            for (kk, yk, nk) in forward_allocation(&y, cfg.r_forward) {
                let per = yk / nk as f64;
                for w in 0..nk {
                    let key = mix(&[seed, kk as u64, w as u64, t as u64]);
                    if let Some((node, mass)) = forward_walk_on(sampler, kk, per, t, key) {
                        acc.add(node, ct * mass);
                    }
                }
            }
        }
        ct *= cfg.c;
    }
    acc
}

/// The total order every ranking path sorts by: descending score, node-id
/// tie-break. Uses [`f64::total_cmp`] so a NaN score (e.g. from a poisoned
/// diagonal entry) can never panic a query; NaN orders above every finite
/// score under `total_cmp`, deterministically. The sharded engine's k-way
/// merge and [`rank_topk`] share this comparator — the cross-engine
/// ranking-equality guarantee depends on there being exactly one.
#[inline]
pub(crate) fn ranking_cmp(a: &(NodeId, f64), b: &(NodeId, f64)) -> std::cmp::Ordering {
    b.1.total_cmp(&a.1).then(a.0.cmp(&b.0))
}

/// The shared ranking tail of every top-`k` path: clamp into `[0, 1]`,
/// drop the query node, unreached (zero-score) and NaN entries, sort by
/// [`ranking_cmp`], truncate to `k`. Local sparse, sharded merged and
/// cluster dense top-`k` all rank through here, so the cross-mode
/// ranking-equality guarantee depends on exactly one tie-break
/// implementation.
pub(crate) fn rank_topk(
    items: impl IntoIterator<Item = (NodeId, f64)>,
    exclude: NodeId,
    k: usize,
) -> Vec<(NodeId, f64)> {
    let mut out: Vec<(NodeId, f64)> = items
        .into_iter()
        .map(|(v, s)| (v, s.clamp(0.0, 1.0)))
        .filter(|&(v, s)| v != exclude && s > 0.0)
        .collect();
    out.sort_unstable_by(ranking_cmp);
    out.truncate(k);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_diagonal, ExactSimRank};
    use pasco_graph::generators;

    fn setup(g: &CsrGraph, cfg: &SimRankConfig) -> (ReverseChainIndex, Vec<f64>) {
        let rci = ReverseChainIndex::build(g);
        let diag = exact_diagonal(g, cfg.c, cfg.t, 50);
        (rci, diag.as_slice().to_vec())
    }

    #[test]
    fn identical_nodes_score_one() {
        let g = generators::barabasi_albert(100, 3, 1);
        let cfg = SimRankConfig::fast();
        let (_, diag) = setup(&g, &cfg);
        assert_eq!(single_pair(&g, &diag, &cfg, 5, 5), 1.0);
    }

    #[test]
    fn shared_parent_pair_close_to_exact() {
        // 2 -> 0, 2 -> 1 ⇒ s(0,1) = c = 0.6 exactly.
        let g = CsrGraph::from_edges(3, &[(2, 0), (2, 1)]);
        let cfg = SimRankConfig::default_paper().with_r_query(20_000);
        let (_, diag) = setup(&g, &cfg);
        let s = single_pair(&g, &diag, &cfg, 0, 1);
        assert!((s - 0.6).abs() < 0.02, "s = {s}");
    }

    #[test]
    fn mcsp_approximates_exact_simrank() {
        let g = generators::barabasi_albert(80, 3, 11);
        let cfg = SimRankConfig::default_paper().with_r_query(8_000).with_t(8);
        let (_, diag) = setup(&g, &cfg);
        let exact = ExactSimRank::compute(&g, cfg.c, 25);
        let mut worst = 0.0f64;
        for &(i, j) in &[(0u32, 1u32), (3, 40), (10, 60), (79, 2), (25, 26)] {
            let est = single_pair(&g, &diag, &cfg, i, j);
            worst = worst.max((est - exact.get(i, j)).abs());
        }
        assert!(worst < 0.06, "worst pair error {worst}");
    }

    #[test]
    fn mcss_and_push_variants_agree_with_exact() {
        let g = generators::barabasi_albert(80, 3, 13);
        let cfg = SimRankConfig::default_paper().with_r_query(4_000).with_t(8);
        let (rci, diag) = setup(&g, &cfg);
        let exact = ExactSimRank::compute(&g, cfg.c, 25);
        let i = 7u32;
        let mc = single_source(&g, &rci, &diag, &cfg, i);
        let push = single_source_push(&g, &diag, &cfg, i);
        let truth = exact.row(i);
        let mean_err_mc: f64 = mc.iter().zip(truth).map(|(a, b)| (a - b).abs()).sum::<f64>() / 80.0;
        let mean_err_push: f64 =
            push.iter().zip(truth).map(|(a, b)| (a - b).abs()).sum::<f64>() / 80.0;
        assert!(mean_err_mc < 0.03, "MC mean err {mean_err_mc}");
        assert!(mean_err_push < 0.03, "push mean err {mean_err_push}");
        // The push variant removes the forward-walk noise; it should not be
        // (much) worse than the MC variant.
        assert!(mean_err_push <= mean_err_mc + 0.01);
        assert_eq!(mc[i as usize], 1.0);
    }

    #[test]
    fn queries_are_deterministic() {
        let g = generators::rmat(8, 1200, generators::RmatParams::default(), 2);
        let cfg = SimRankConfig::fast();
        let (rci, diag) = setup(&g, &cfg);
        assert_eq!(single_pair(&g, &diag, &cfg, 3, 99), single_pair(&g, &diag, &cfg, 3, 99));
        assert_eq!(
            single_source(&g, &rci, &diag, &cfg, 3),
            single_source(&g, &rci, &diag, &cfg, 3)
        );
    }

    #[test]
    fn mcsp_is_symmetric_in_its_arguments() {
        let g = generators::barabasi_albert(60, 3, 3);
        let cfg = SimRankConfig::fast();
        let (_, diag) = setup(&g, &cfg);
        // The estimator reuses per-node cohorts, so swapping arguments uses
        // the same two cohorts and must give the identical score.
        assert_eq!(single_pair(&g, &diag, &cfg, 10, 20), single_pair(&g, &diag, &cfg, 20, 10));
    }

    #[test]
    fn sparse_topk_matches_dense_single_source() {
        let g = generators::barabasi_albert(100, 3, 21);
        let cfg = SimRankConfig::fast();
        let (rci, diag) = setup(&g, &cfg);
        let i = 8u32;
        let dense = single_source(&g, &rci, &diag, &cfg, i);
        let clamped: Vec<f64> = dense.iter().map(|s| s.clamp(0.0, 1.0)).collect();
        let expect = crate::metrics::top_k(&clamped, 10, Some(i));
        let got = single_source_topk(&g, &rci, &diag, &cfg, i, 10);
        assert_eq!(got.len(), expect.len());
        for ((gn, gs), (en, es)) in got.iter().zip(&expect) {
            assert_eq!(gn, en);
            assert!((gs - es).abs() < 1e-12, "{gs} vs {es}");
        }
    }

    #[test]
    fn rank_topk_tolerates_nan_scores() {
        // Regression: the comparator used `partial_cmp(..).unwrap()`, so a
        // single NaN score (e.g. a poisoned diagonal entry) could panic the
        // whole query. total_cmp ranks without panicking; NaN entries are
        // dropped by the zero-score filter after the clamp.
        let items = vec![(1u32, f64::NAN), (2, 0.5), (3, 0.5), (4, 0.9), (5, f64::NAN)];
        let ranked = rank_topk(items, 0, 10);
        assert_eq!(ranked, vec![(4, 0.9), (2, 0.5), (3, 0.5)]);
    }

    #[test]
    fn queries_with_poisoned_diagonal_do_not_panic() {
        // End-to-end version of the NaN regression: a NaN diagonal entry
        // must degrade the ranking, never panic the serving path.
        let g = generators::barabasi_albert(60, 3, 17);
        let cfg = SimRankConfig::fast();
        let (rci, mut diag) = setup(&g, &cfg);
        diag[7] = f64::NAN;
        let ranked = single_source_topk(&g, &rci, &diag, &cfg, 3, 5);
        assert!(ranked.len() <= 5);
        assert!(ranked.iter().all(|&(_, s)| s.is_finite()));
        let scores = single_source(&g, &rci, &diag, &cfg, 3);
        let _ = crate::metrics::top_k(&scores, 5, Some(3)); // must not panic
    }

    #[test]
    fn topk_ranks_self_out_and_sorts_for_every_source() {
        let g = generators::two_communities(40, 150, 4, 5);
        let cfg = SimRankConfig::fast();
        let (rci, diag) = setup(&g, &cfg);
        for i in g.nodes() {
            let list = single_source_topk(&g, &rci, &diag, &cfg, i, 5);
            assert!(list.len() <= 5);
            assert!(list.iter().all(|&(j, _)| j != i), "self excluded");
            assert!(list.windows(2).all(|w| w[0].1 >= w[1].1), "sorted desc");
        }
    }
}
