//! Accuracy and ranking metrics for the effectiveness experiments.

use pasco_graph::NodeId;
pub use pasco_solver::norms::{max_abs_diff, mean_abs_diff, rmse};

/// Top-`k` entries of `scores` by value (descending), optionally excluding
/// one index (the query node itself). Ties break toward the smaller node id
/// so results are deterministic. Sorts with [`f64::total_cmp`], so a NaN
/// score cannot panic the ranking (NaN orders above every finite score).
pub fn top_k(scores: &[f64], k: usize, exclude: Option<NodeId>) -> Vec<(NodeId, f64)> {
    let mut items: Vec<(NodeId, f64)> = scores
        .iter()
        .enumerate()
        .map(|(i, &s)| (i as NodeId, s))
        .filter(|&(i, _)| Some(i) != exclude)
        .collect();
    items.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    items.truncate(k);
    items
}

/// Fraction of `truth`'s members found in `estimate` (both top-k id lists).
pub fn precision_at_k(truth: &[NodeId], estimate: &[NodeId]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let hits = estimate.iter().filter(|e| truth.contains(e)).count();
    hits as f64 / truth.len() as f64
}

/// NDCG@k of an estimated ranking against true scores: gains are the *true*
/// scores of the estimated ranking's members, discounted by log₂ position,
/// normalised by the ideal ranking's DCG. 1.0 means the estimated order is
/// as good as the true order.
///
/// `exclude` removes one node (the query node, whose self-similarity of 1
/// would otherwise dominate the ideal ranking) from the ideal ranking; pass
/// the same exclusion used to produce `estimated_ranking`.
pub fn ndcg_at_k(
    true_scores: &[f64],
    estimated_ranking: &[NodeId],
    k: usize,
    exclude: Option<NodeId>,
) -> f64 {
    let dcg: f64 = estimated_ranking
        .iter()
        .filter(|&&v| Some(v) != exclude)
        .take(k)
        .enumerate()
        .map(|(pos, &v)| true_scores[v as usize] / ((pos + 2) as f64).log2())
        .sum();
    let ideal = top_k(true_scores, k, exclude);
    let idcg: f64 =
        ideal.iter().enumerate().map(|(pos, &(_, s))| s / ((pos + 2) as f64).log2()).sum();
    if idcg == 0.0 {
        1.0
    } else {
        dcg / idcg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_sorts_and_excludes() {
        let scores = [0.1, 0.9, 0.5, 0.9, 0.2];
        let top = top_k(&scores, 3, Some(1));
        assert_eq!(top.iter().map(|&(i, _)| i).collect::<Vec<_>>(), vec![3, 2, 4]);
        let top = top_k(&scores, 2, None);
        // tie between ids 1 and 3 at 0.9 → smaller id first
        assert_eq!(top.iter().map(|&(i, _)| i).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn precision_counts_overlap() {
        assert_eq!(precision_at_k(&[1, 2, 3], &[3, 4, 1]), 2.0 / 3.0);
        assert_eq!(precision_at_k(&[], &[1]), 1.0);
        assert_eq!(precision_at_k(&[5], &[]), 0.0);
    }

    #[test]
    fn ndcg_is_one_for_perfect_ranking() {
        let truth = [0.0, 0.3, 0.9, 0.1];
        let perfect = [2u32, 1, 3, 0];
        assert!((ndcg_at_k(&truth, &perfect, 4, None) - 1.0).abs() < 1e-12);
        let reversed = [0u32, 3, 1, 2];
        assert!(ndcg_at_k(&truth, &reversed, 4, None) < 1.0);
    }

    #[test]
    fn ndcg_handles_all_zero_truth() {
        assert_eq!(ndcg_at_k(&[0.0, 0.0], &[1, 0], 2, None), 1.0);
    }

    #[test]
    fn ndcg_excludes_the_query_node_from_the_ideal() {
        // Node 0 is the query (self-similarity 1). A ranking that perfectly
        // orders everyone else must score 1.0 when node 0 is excluded.
        let truth = [1.0, 0.5, 0.2, 0.4];
        let ranking = [1u32, 3, 2];
        assert!((ndcg_at_k(&truth, &ranking, 3, Some(0)) - 1.0).abs() < 1e-12);
        // Without the exclusion, the unreachable gain of node 0 caps NDCG.
        assert!(ndcg_at_k(&truth, &ranking, 3, None) < 0.8);
    }
}
