//! CloudWalker configuration.

use crate::error::SimRankError;

/// How Jacobi obtains the rows `aᵢ` on each sweep (ablation A2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AiStrategy {
    /// Materialise every row once (`O(n · T · R)` entries of memory, walks
    /// simulated once).
    Store,
    /// Regenerate rows from seeded walks on every sweep (`O(n)` extra
    /// memory, `L + 1` times the walk work). Identical results — the walks
    /// replay bit-for-bit.
    Recompute,
    /// Choose [`AiStrategy::Store`] when the estimated row storage fits the
    /// byte budget, else [`AiStrategy::Recompute`].
    Auto {
        /// Row-storage budget in bytes.
        budget_bytes: u64,
    },
}

/// All CloudWalker parameters; defaults follow the paper's table
/// (`c = 0.6, T = 10, L = 3, R = 100, R' = 10 000`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimRankConfig {
    /// SimRank decay factor `c ∈ (0, 1)`.
    pub c: f64,
    /// Walk length `T` (series truncation).
    pub t: usize,
    /// Jacobi iterations `L`.
    pub l: usize,
    /// Walkers per node for offline indexing (`R`).
    pub r: u32,
    /// Walkers per query cohort (`R'`) for MCSP/MCSS.
    pub r_query: u32,
    /// Total forward walkers per series term in MCSS's `(Pᵀ)ᵗ` estimation,
    /// allocated across the support in proportion to mass (see
    /// [`crate::queries::forward_allocation`]).
    pub r_forward: u32,
    /// Master seed; every walk derives from it deterministically.
    pub seed: u64,
    /// Row-provisioning strategy for the Jacobi solve.
    pub ai_strategy: AiStrategy,
}

impl SimRankConfig {
    /// The paper's default parameters.
    pub fn default_paper() -> Self {
        Self {
            c: 0.6,
            t: 10,
            l: 3,
            r: 100,
            r_query: 10_000,
            r_forward: 10_000,
            seed: 0x9a5c0,
            ai_strategy: AiStrategy::Auto { budget_bytes: 4 << 30 },
        }
    }

    /// A cheaper configuration for unit tests and examples on small graphs.
    pub fn fast() -> Self {
        Self { t: 7, r: 64, r_query: 2_000, r_forward: 2_000, ..Self::default_paper() }
    }

    /// Replaces the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the decay factor.
    pub fn with_c(mut self, c: f64) -> Self {
        self.c = c;
        self
    }

    /// Replaces the walk length `T`.
    pub fn with_t(mut self, t: usize) -> Self {
        self.t = t;
        self
    }

    /// Replaces the Jacobi iteration count `L`.
    pub fn with_l(mut self, l: usize) -> Self {
        self.l = l;
        self
    }

    /// Replaces the indexing walker count `R`.
    pub fn with_r(mut self, r: u32) -> Self {
        self.r = r;
        self
    }

    /// Replaces the query walker count `R'`.
    pub fn with_r_query(mut self, r_query: u32) -> Self {
        self.r_query = r_query;
        self
    }

    /// Replaces the row strategy.
    pub fn with_ai_strategy(mut self, s: AiStrategy) -> Self {
        self.ai_strategy = s;
        self
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), SimRankError> {
        if !(self.c > 0.0 && self.c < 1.0) {
            return Err(SimRankError::InvalidConfig(format!(
                "decay factor c must be in (0, 1), got {}",
                self.c
            )));
        }
        if self.r == 0 || self.r_query == 0 || self.r_forward == 0 {
            return Err(SimRankError::InvalidConfig(
                "walker counts r, r_query, r_forward must be positive".into(),
            ));
        }
        if self.t == 0 {
            return Err(SimRankError::InvalidConfig(
                "walk length t must be positive (t = 0 makes every similarity trivial)".into(),
            ));
        }
        Ok(())
    }

    /// Resolves [`AiStrategy::Auto`] for a graph of `n` nodes: estimated
    /// stored-row bytes are `n × min(T·R, n) × 12` (entry = u32 + f64).
    pub fn resolve_ai_strategy(&self, n: u32) -> AiStrategy {
        match self.ai_strategy {
            AiStrategy::Auto { budget_bytes } => {
                let per_row = (self.t as u64 * self.r as u64).min(n as u64);
                let estimate = n as u64 * per_row * 12;
                if estimate <= budget_bytes {
                    AiStrategy::Store
                } else {
                    AiStrategy::Recompute
                }
            }
            fixed => fixed,
        }
    }
}

impl Default for SimRankConfig {
    fn default() -> Self {
        Self::default_paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table() {
        let c = SimRankConfig::default_paper();
        assert_eq!(c.c, 0.6);
        assert_eq!(c.t, 10);
        assert_eq!(c.l, 3);
        assert_eq!(c.r, 100);
        assert_eq!(c.r_query, 10_000);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(SimRankConfig::default_paper().with_c(0.0).validate().is_err());
        assert!(SimRankConfig::default_paper().with_c(1.0).validate().is_err());
        assert!(SimRankConfig::default_paper().with_r(0).validate().is_err());
        assert!(SimRankConfig::default_paper().with_t(0).validate().is_err());
        let mut c = SimRankConfig::default_paper();
        c.r_forward = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn auto_strategy_resolves_by_budget() {
        let cfg = SimRankConfig::default_paper()
            .with_ai_strategy(AiStrategy::Auto { budget_bytes: 1_000_000 });
        // Tiny graph: min(T·R, n) = n = 100 → 100 × 100 × 12 = 120 KB < 1 MB.
        assert_eq!(cfg.resolve_ai_strategy(100), AiStrategy::Store);
        // Large graph: 1M × 1000 × 12 ≫ 1 MB.
        assert_eq!(cfg.resolve_ai_strategy(1_000_000), AiStrategy::Recompute);
        // Fixed strategies pass through.
        let cfg = cfg.with_ai_strategy(AiStrategy::Store);
        assert_eq!(cfg.resolve_ai_strategy(1_000_000), AiStrategy::Store);
    }

    #[test]
    fn builders_compose() {
        let c = SimRankConfig::default_paper().with_seed(9).with_t(5).with_l(2).with_r_query(77);
        assert_eq!(c.seed, 9);
        assert_eq!(c.t, 5);
        assert_eq!(c.l, 2);
        assert_eq!(c.r_query, 77);
    }
}
