//! Exact SimRank — the `O(n²)`-space ground truth.
//!
//! The Jeh–Widom iteration
//! `S₀ = I`, `S_{k+1} = c·Pᵀ S_k P` with the diagonal reset to 1 converges
//! geometrically (`‖S_k − S‖∞ ≤ cᵏ`). Feasible only on small graphs, which
//! is how the paper uses it: effectiveness is evaluated on wiki-vote. Also
//! provides the *exact truncated* diagonal solve (replacing Monte Carlo
//! rows with exact pushes) used to separate sampling error from truncation
//! error in the convergence experiment.

use crate::ai::ai_row_exact;
use crate::diag::DiagonalIndex;
use pasco_graph::{CsrGraph, NodeId};
use pasco_solver::dense::Matrix;
use pasco_solver::jacobi::{self, DenseRows, JacobiConfig};
use rayon::prelude::*;

/// Exact SimRank scores for every node pair.
#[derive(Clone, Debug)]
pub struct ExactSimRank {
    s: Matrix,
    iterations: usize,
    final_delta: f64,
}

impl ExactSimRank {
    /// Runs the Jeh–Widom iteration for `iterations` rounds (or until the
    /// max-change drops below `1e-12`).
    ///
    /// Cost per round is `O(n·m)` time and the matrices are `O(n²)` —
    /// intended for graphs of at most a few thousand nodes.
    pub fn compute(graph: &CsrGraph, c: f64, iterations: usize) -> Self {
        assert!(c > 0.0 && c < 1.0, "c must be in (0, 1)");
        let n = graph.node_count() as usize;
        let mut s = Matrix::identity(n);
        let mut iterations_done = 0;
        let mut final_delta = 0.0;
        for _ in 0..iterations {
            // A = S_k · P: column j of P averages over In(j).
            // A(i, j) = (1/|In(j)|) Σ_{k ∈ In(j)} S(i, k)
            let mut a = Matrix::zeros(n, n);
            {
                let s_ref = &s;
                a.par_rows_mut().for_each(|(i, row)| {
                    let si = s_ref.row(i);
                    for (j, slot) in row.iter_mut().enumerate() {
                        let ins = graph.in_neighbors(j as NodeId);
                        if ins.is_empty() {
                            continue;
                        }
                        let sum: f64 = ins.iter().map(|&k| si[k as usize]).sum();
                        *slot = sum / ins.len() as f64;
                    }
                });
            }
            // S' = c · Pᵀ A: row i of Pᵀ averages over In(i);
            // S'(i, j) = c/|In(i)| Σ_{k ∈ In(i)} A(k, j), then diag ← 1.
            let mut next = Matrix::zeros(n, n);
            {
                let a_ref = &a;
                next.par_rows_mut().for_each(|(i, row)| {
                    let ins = graph.in_neighbors(i as NodeId);
                    if ins.is_empty() {
                        return;
                    }
                    let scale = c / ins.len() as f64;
                    for &k in ins {
                        let ak = a_ref.row(k as usize);
                        for (slot, &v) in row.iter_mut().zip(ak) {
                            *slot += v;
                        }
                    }
                    for slot in row.iter_mut() {
                        *slot *= scale;
                    }
                });
            }
            next.fill_diagonal(1.0);
            final_delta = next.max_abs_diff(&s);
            s = next;
            iterations_done += 1;
            if final_delta < 1e-12 {
                break;
            }
        }
        Self { s, iterations: iterations_done, final_delta }
    }

    /// The exact similarity `s(i, j)`.
    #[inline]
    pub fn get(&self, i: NodeId, j: NodeId) -> f64 {
        self.s.get(i as usize, j as usize)
    }

    /// Row `i` — the exact single-source vector.
    pub fn row(&self, i: NodeId) -> &[f64] {
        self.s.row(i as usize)
    }

    /// Number of iterations performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Max-change of the final iteration (convergence witness).
    pub fn final_delta(&self) -> f64 {
        self.final_delta
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.s
    }
}

/// Solves for the diagonal correction with *exact* rows (sparse pushes
/// instead of Monte-Carlo estimates) and a fully converged Jacobi solve.
/// Separates the two error sources of CloudWalker's index: with exact rows
/// only series truncation (`T`) remains.
pub fn exact_diagonal(graph: &CsrGraph, c: f64, t_max: usize, sweeps: usize) -> DiagonalIndex {
    let n = graph.node_count();
    let rows: Vec<Vec<(u32, f64)>> =
        (0..n).into_par_iter().map(|i| ai_row_exact(graph, i, c, t_max)).collect();
    let rows = DenseRows::new(rows);
    let b = vec![1.0; n as usize];
    let x0 = vec![1.0 - c; n as usize];
    let result = jacobi::solve(
        &rows,
        &b,
        &x0,
        &JacobiConfig { iterations: sweeps, tolerance: Some(1e-12), record_residuals: false },
    );
    DiagonalIndex::new(result.x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasco_graph::generators;

    #[test]
    fn simrank_properties_hold() {
        let g = generators::barabasi_albert(60, 3, 2);
        let ex = ExactSimRank::compute(&g, 0.6, 20);
        for i in 0..60u32 {
            assert_eq!(ex.get(i, i), 1.0, "unit diagonal");
            for j in 0..60u32 {
                let s = ex.get(i, j);
                assert!((0.0..=1.0).contains(&s), "s({i},{j}) = {s}");
                assert!((s - ex.get(j, i)).abs() < 1e-9, "symmetry at ({i},{j})");
            }
        }
    }

    #[test]
    fn two_node_mutual_graph_closed_form() {
        // 0 <-> 1: s(0,1) satisfies s = c·s(1,0)... In(0) = {1}, In(1) = {0}
        // s(0,1) = c · s(1,0) ⇒ s(0,1)·(1) = c·s(0,1)?? No:
        // s(0,1) = c/(1·1) · s(1, 0) = c · s(0,1) would force 0 — but the
        // sum pairs In(0)×In(1) = {(1,0)}, and s(1,0) = s(0,1). The fixpoint
        // equation s = c·s has solution 0 for the off-diagonal.
        let g = CsrGraph::from_edges(2, &[(0, 1), (1, 0)]);
        let ex = ExactSimRank::compute(&g, 0.6, 50);
        assert!(ex.get(0, 1).abs() < 1e-9);
    }

    #[test]
    fn shared_parent_pair_closed_form() {
        // 2 -> 0, 2 -> 1: In(0) = In(1) = {2} ⇒ s(0,1) = c·s(2,2) = c.
        let g = CsrGraph::from_edges(3, &[(2, 0), (2, 1)]);
        let ex = ExactSimRank::compute(&g, 0.6, 30);
        assert!((ex.get(0, 1) - 0.6).abs() < 1e-9, "{}", ex.get(0, 1));
        // Node 2 is dangling: similarity to anything else is 0.
        assert_eq!(ex.get(2, 0), 0.0);
    }

    #[test]
    fn complete_graph_closed_form() {
        // On K_n (no self loops) symmetry forces a single off-diagonal value
        // s. In(i) × In(j) for i≠j has (n-1)(n-2) + ... pairs:
        //   s = c/(n-1)² · [ (n-2)·1·2 + ((n-1)² - 2(n-2) - (n-2)... ]
        // Simpler: verify numerically against the fixpoint equation
        //   s = c/(n-1)² · (2(n-2)·1 + ((n-1)² - 2(n-2) - (n-2))·s + (n-2)s)
        // Instead of deriving the closed form, assert the fixpoint residual
        // of the computed value is ~0.
        let n = 6u32;
        let g = generators::complete(n);
        let ex = ExactSimRank::compute(&g, 0.6, 60);
        let s = ex.get(0, 1);
        // Recompute s(0,1) from the definition using the matrix itself.
        let ins0 = g.in_neighbors(0);
        let ins1 = g.in_neighbors(1);
        let mut acc = 0.0;
        for &a in ins0 {
            for &b in ins1 {
                acc += ex.get(a, b);
            }
        }
        let rhs = 0.6 * acc / (ins0.len() as f64 * ins1.len() as f64);
        assert!((s - rhs).abs() < 1e-9, "fixpoint violated: {s} vs {rhs}");
        // All off-diagonal entries equal by symmetry.
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    assert!((ex.get(i, j) - s).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn iteration_converges_geometrically() {
        let g = generators::barabasi_albert(80, 3, 9);
        let e5 = ExactSimRank::compute(&g, 0.6, 5);
        let e15 = ExactSimRank::compute(&g, 0.6, 15);
        let mut worst = 0.0f64;
        for i in 0..80 {
            for j in 0..80 {
                worst = worst.max((e5.get(i, j) - e15.get(i, j)).abs());
            }
        }
        // ‖S_5 − S‖∞ ≤ c⁵ ≈ 0.078.
        assert!(worst <= 0.6f64.powi(5) + 1e-9, "worst diff {worst}");
    }

    #[test]
    fn exact_diagonal_reproduces_unit_self_similarity() {
        // With exact rows and converged Jacobi, plugging x back into the
        // series must give s(i,i) ≈ 1 for the truncated series.
        let g = generators::barabasi_albert(50, 3, 4);
        let d = exact_diagonal(&g, 0.6, 8, 100);
        for i in 0..50u32 {
            let row = ai_row_exact(&g, i, 0.6, 8);
            let sii: f64 = row.iter().map(|&(k, v)| v * d.get(k)).sum();
            assert!((sii - 1.0).abs() < 1e-6, "s({i},{i}) = {sii}");
        }
    }

    #[test]
    fn diagonal_on_cycle_matches_hand_solution() {
        // Cycle: a_i has entries cᵗ at node (i - t) mod n. For n=4, T=3:
        // row i: x_i + 0.5·x_{i-1}... with c=0.5: a_i = [1, .5, .25, .125]
        // circulant; by symmetry x is constant: x·(1+.5+.25+.125) = 1.
        let g = generators::cycle(4);
        let d = exact_diagonal(&g, 0.5, 3, 200);
        let expected = 1.0 / 1.875;
        for v in 0..4 {
            assert!((d.get(v) - expected).abs() < 1e-9, "x[{v}] = {}", d.get(v));
        }
    }
}
