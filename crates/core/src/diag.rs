//! The offline index: the diagonal of the correction matrix `D`.

/// CloudWalker's entire offline index — one `f64` per node
/// (`x = [D₁₁ … D_nn]`). At query time, similarity is
/// `Σ_t cᵗ (Pᵗeᵢ)ᵀ D (Pᵗeⱼ)`.
#[derive(Clone, Debug, PartialEq)]
pub struct DiagonalIndex {
    x: Vec<f64>,
}

impl DiagonalIndex {
    /// Wraps a solved diagonal.
    pub fn new(x: Vec<f64>) -> Self {
        Self { x }
    }

    /// Number of nodes the index covers.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True for an index over an empty graph.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// The diagonal value `D_vv`.
    #[inline]
    pub fn get(&self, v: u32) -> f64 {
        self.x[v as usize]
    }

    /// The full diagonal as a slice (the query kernels' weight vector).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.x
    }

    /// Summary statistics `(min, mean, max)` — the convergence experiment
    /// tracks how these move with `L`.
    pub fn stats(&self) -> (f64, f64, f64) {
        if self.x.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &v in &self.x {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        (min, sum / self.x.len() as f64, max)
    }
}

impl From<Vec<f64>> for DiagonalIndex {
    fn from(x: Vec<f64>) -> Self {
        Self::new(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_stats() {
        let d = DiagonalIndex::new(vec![0.4, 0.6, 0.8]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.get(1), 0.6);
        let (min, mean, max) = d.stats();
        assert_eq!(min, 0.4);
        assert!((mean - 0.6).abs() < 1e-12);
        assert_eq!(max, 0.8);
    }

    #[test]
    fn empty_index_is_well_behaved() {
        let d = DiagonalIndex::new(vec![]);
        assert!(d.is_empty());
        assert_eq!(d.stats(), (0.0, 0.0, 0.0));
    }
}
